//! # TimeUnion
//!
//! A from-scratch Rust reproduction of *TimeUnion: An Efficient Architecture
//! with Unified Data Model for Timeseries Management Systems on Hybrid Cloud
//! Storage* (SIGMOD '22).
//!
//! This facade crate re-exports the public API of the workspace:
//!
//! * [`engine`] — the TimeUnion engine (put/get, groups, retention).
//! * [`model`] — the unified data model (tags, series, groups).
//! * [`cloud`] — the simulated hybrid cloud storage substrate.
//! * [`lsm`] — the elastic time-partitioned LSM-tree.
//! * [`index`] — the double-array-trie inverted index.
//! * [`compress`] — Gorilla / NULL-XOR / Snappy codecs.
//! * [`baselines`] — tsdb, tsdb-LDB, TU-LDB, and Cortex-sim comparators.
//! * [`tsbs`] — the TSBS DevOps workload generator.
//!
//! ## Quickstart
//!
//! ```no_run
//! use timeunion::engine::{TimeUnion, Options};
//! use timeunion::model::Labels;
//!
//! let dir = tempfile::tempdir().unwrap();
//! let db = TimeUnion::open(dir.path(), Options::default()).unwrap();
//!
//! // Insert an individual timeseries sample (slow path returns the ID).
//! let labels = Labels::from_pairs([("metric", "cpu"), ("host", "h1")]);
//! let id = db.put(&labels, 1_000, 0.42).unwrap();
//! // Fast path: insert by ID, skipping tag comparison.
//! db.put_by_id(id, 2_000, 0.43).unwrap();
//!
//! // Query back by tag selector over a time range.
//! use timeunion::engine::Selector;
//! let results = db
//!     .query(&[Selector::exact("metric", "cpu")], 0, 10_000)
//!     .unwrap();
//! assert_eq!(results.len(), 1);
//! ```

/// The TimeUnion engine: open/put/get, groups, retention, recovery.
pub mod engine {
    pub use tu_core::engine::{Options, TimeUnion};
    pub use tu_core::introspect;
    pub use tu_core::profile::{HeatContribution, QueryProfile, StageTiming, TierProfile};
    pub use tu_core::query::{aggregate_step, AggKind, QueryResult, SeriesResult};
    pub use tu_core::selfmon::{self, SelfMonitor, SelfmonOptions};
    pub use tu_index::matcher::Selector;
}

/// The unified data model: tag sets, samples, identifiers.
pub mod model {
    pub use tu_common::types::{
        GroupId, Labels, Sample, SeriesId, SeriesRef, TimeRange, Timestamp, Value,
    };
}

/// Simulated hybrid cloud storage (block store ≈ EBS, object store ≈ S3).
pub mod cloud {
    pub use tu_cloud::block::BlockStore;
    pub use tu_cloud::cost::{CostClock, LatencyModel};
    pub use tu_cloud::ledger::{CostLedger, CostWindow, WindowTier};
    pub use tu_cloud::object::ObjectStore;
    pub use tu_cloud::pricing;
    pub use tu_cloud::StorageEnv;
}

/// The elastic time-partitioned LSM-tree and the classic leveled baseline.
pub mod lsm {
    pub use tu_lsm::leveled::LeveledTree;
    pub use tu_lsm::tree::{
        CacheIntrospect, LevelIntrospect, LsmIntrospect, PartitionIntrospect, TableIntrospect,
        TimeTree, TreeOptions,
    };
}

/// The memory-efficient inverted index.
pub mod index {
    pub use tu_index::inverted::InvertedIndex;
    pub use tu_index::matcher::Selector;
    pub use tu_index::trie::DoubleArrayTrie;
}

/// Timeseries codecs: Gorilla, NULL-extended XOR, Snappy, CRC32C.
pub mod compress {
    pub use tu_compress::gorilla::{ChunkDecoder, ChunkEncoder};
    pub use tu_compress::nullxor::{GroupChunkDecoder, GroupChunkEncoder};
    pub use tu_compress::snappy;
}

/// Baseline engines the paper compares against.
pub mod baselines {
    pub use tu_tsdb::cortex::CortexSim;
    pub use tu_tsdb::tsdb::{Tsdb, TsdbOptions};
    pub use tu_tsdb::tsdb_ldb::TsdbLdb;
    pub use tu_tsdb::tu_ldb::TuLdb;
}

/// TSBS DevOps workload generation and the Table 2 query patterns.
pub mod tsbs {
    pub use tu_tsbs::devops::{DevOpsGenerator, DevOpsOptions};
    pub use tu_tsbs::queries::QueryPattern;
}

/// Observability: process-wide counters, gauges, latency histograms, and
/// RAII spans recorded by every crate above, plus per-operation trace
/// contexts, the flight recorder, the Prometheus / chrome-trace exporters,
/// and the live plane — the embedded HTTP endpoint, vitals monitor, health
/// model, and structured event log (see `docs/OBSERVABILITY.md`).
pub mod obs {
    pub use tu_obs::heat;
    pub use tu_obs::log;
    pub use tu_obs::{
        chrome_trace_json, counter, flight, gauge, global, histogram, parse_prometheus_text,
        prometheus_text, span, span_of, traced, Counter, Endpoint, FlightEvent, FlightPhase,
        FlightRecorder, Gauge, Health, HealthCheck, HealthReport, HealthSource, HeatGuard,
        HeatSnapshot, Histogram, HistogramSnapshot, MetricsSnapshot, Monitor, MonitorOptions,
        ObsServer, PartitionHeat, PartitionKey, Registry, SampleObserver, ServeSources, SpanDelta,
        SpanQuantiles, SpanTimer, TierHeat, TierRates, TraceContext, TraceHandle, TraceSummary,
        TracedCounter, Vitals,
    };
}
