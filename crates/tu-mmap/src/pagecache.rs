//! A budgeted page pool with clock eviction and dirty write-back.
//!
//! All file-backed structures in TimeUnion go through one shared
//! [`PageCache`]. When the resident budget is exceeded, the clock hand
//! evicts not-recently-used pages, writing dirty ones back to their file —
//! the explicit analogue of the kernel swapping out cold mmap pages that
//! Figure 16 relies on. Hit/miss/swap counters feed the memory experiments.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use tu_common::{Error, Result};

/// Size of one cache page in bytes.
pub const PAGE_SIZE: usize = 4096;

/// Cache observability counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    /// Pages evicted to make room (the "swap out" of Figure 16).
    pub evictions: u64,
    /// Evicted pages that were dirty and had to be written back.
    pub writebacks: u64,
    /// Bytes currently resident in the cache.
    pub resident_bytes: u64,
}

pub(crate) struct FileBacking {
    pub(crate) file: File,
    pub(crate) len: AtomicU64,
}

struct Frame {
    key: (u64, u64), // (file id, page number)
    data: Box<[u8]>,
    dirty: bool,
    referenced: bool,
}

struct Inner {
    files: HashMap<u64, Arc<FileBacking>>,
    frames: Vec<Frame>,
    map: HashMap<(u64, u64), usize>,
    hand: usize,
    next_file_id: u64,
}

/// A shared pool of file pages with a fixed resident budget.
pub struct PageCache {
    inner: Mutex<Inner>,
    budget_pages: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    writebacks: AtomicU64,
}

impl PageCache {
    /// Creates a cache holding at most `budget_bytes` of resident pages
    /// (rounded down to whole pages, minimum one page).
    pub fn new(budget_bytes: usize) -> Arc<Self> {
        Arc::new(PageCache {
            inner: Mutex::new(Inner {
                files: HashMap::new(),
                frames: Vec::new(),
                map: HashMap::new(),
                hand: 0,
                next_file_id: 1,
            }),
            budget_pages: (budget_bytes / PAGE_SIZE).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            writebacks: AtomicU64::new(0),
        })
    }

    /// Registers (opening or creating) a file, returning its cache id and
    /// current length.
    pub(crate) fn register(&self, path: &Path) -> Result<(u64, Arc<FileBacking>)> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        let backing = Arc::new(FileBacking {
            file,
            len: AtomicU64::new(len),
        });
        let mut inner = self.inner.lock();
        let id = inner.next_file_id;
        inner.next_file_id += 1;
        inner.files.insert(id, backing.clone());
        Ok((id, backing))
    }

    /// Drops all pages of a file (writing dirty ones back) and forgets it.
    pub(crate) fn unregister(&self, file_id: u64) -> Result<()> {
        let mut inner = self.inner.lock();
        self.flush_file_locked(&mut inner, file_id)?;
        // Invalidate this file's frames; the map entries are removed and
        // the frames recycled lazily by pointing them at an unused key.
        let mut i = 0;
        while i < inner.frames.len() {
            if inner.frames[i].key.0 == file_id {
                let key = inner.frames[i].key;
                inner.map.remove(&key);
                let last = inner.frames.len() - 1;
                inner.frames.swap(i, last);
                inner.frames.pop();
                if i < inner.frames.len() {
                    let moved_key = inner.frames[i].key;
                    inner.map.insert(moved_key, i);
                }
            } else {
                i += 1;
            }
        }
        inner.hand = 0;
        inner.files.remove(&file_id);
        Ok(())
    }

    /// Runs `f` with mutable access to the given page, faulting it in if
    /// necessary. `dirty` marks the page for write-back on eviction.
    pub(crate) fn with_page<R>(
        &self,
        file_id: u64,
        page_no: u64,
        dirty: bool,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> Result<R> {
        let mut inner = self.inner.lock();
        if let Some(&idx) = inner.map.get(&(file_id, page_no)) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            let frame = &mut inner.frames[idx];
            frame.referenced = true;
            frame.dirty |= dirty;
            return Ok(f(&mut frame.data));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Fault the page in.
        let backing = inner
            .files
            .get(&file_id)
            .ok_or_else(|| Error::Closed("page cache file unregistered".into()))?
            .clone();
        let mut data = vec![0u8; PAGE_SIZE].into_boxed_slice();
        let offset = page_no * PAGE_SIZE as u64;
        if offset < backing.len.load(Ordering::Relaxed) {
            read_full_at(&backing.file, &mut data, offset)?;
        }
        let idx = if inner.frames.len() < self.budget_pages {
            inner.frames.push(Frame {
                key: (file_id, page_no),
                data,
                dirty,
                referenced: true,
            });
            inner.frames.len() - 1
        } else {
            let victim = self.pick_victim(&mut inner);
            let (vkey, was_dirty) = {
                let frame = &inner.frames[victim];
                (frame.key, frame.dirty)
            };
            if was_dirty {
                self.writeback_locked(&inner, victim)?;
                self.writebacks.fetch_add(1, Ordering::Relaxed);
            }
            self.evictions.fetch_add(1, Ordering::Relaxed);
            inner.map.remove(&vkey);
            let frame = &mut inner.frames[victim];
            frame.key = (file_id, page_no);
            frame.data = data;
            frame.dirty = dirty;
            frame.referenced = true;
            victim
        };
        inner.map.insert((file_id, page_no), idx);
        let frame = &mut inner.frames[idx];
        Ok(f(&mut frame.data))
    }

    /// Clock (second chance) victim selection.
    fn pick_victim(&self, inner: &mut Inner) -> usize {
        loop {
            let idx = inner.hand;
            inner.hand = (inner.hand + 1) % inner.frames.len();
            if inner.frames[idx].referenced {
                inner.frames[idx].referenced = false;
            } else {
                return idx;
            }
        }
    }

    fn writeback_locked(&self, inner: &Inner, idx: usize) -> Result<()> {
        let frame = &inner.frames[idx];
        let backing = inner
            .files
            .get(&frame.key.0)
            .ok_or_else(|| Error::Closed("page cache file unregistered".into()))?;
        let offset = frame.key.1 * PAGE_SIZE as u64;
        let len = backing.len.load(Ordering::Relaxed);
        if offset >= len {
            return Ok(()); // page beyond the logical end: nothing durable
        }
        let valid = ((len - offset) as usize).min(PAGE_SIZE);
        backing.file.write_all_at(&frame.data[..valid], offset)?;
        Ok(())
    }

    /// Writes back all dirty pages of one file (without evicting them).
    pub(crate) fn flush_file(&self, file_id: u64) -> Result<()> {
        let mut inner = self.inner.lock();
        self.flush_file_locked(&mut inner, file_id)
    }

    fn flush_file_locked(&self, inner: &mut Inner, file_id: u64) -> Result<()> {
        for idx in 0..inner.frames.len() {
            if inner.frames[idx].key.0 == file_id && inner.frames[idx].dirty {
                self.writeback_locked(inner, idx)?;
                inner.frames[idx].dirty = false;
            }
        }
        if let Some(backing) = inner.files.get(&file_id) {
            backing.file.sync_data()?;
        }
        Ok(())
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            writebacks: self.writebacks.load(Ordering::Relaxed),
            resident_bytes: (inner.frames.len() * PAGE_SIZE) as u64,
        }
    }

    /// The configured budget in bytes.
    pub fn budget_bytes(&self) -> usize {
        self.budget_pages * PAGE_SIZE
    }
}

fn read_full_at(file: &File, buf: &mut [u8], offset: u64) -> Result<()> {
    // Reads as much as the file has; pages past EOF stay zeroed, matching
    // mmap semantics for holes.
    let mut pos = 0;
    while pos < buf.len() {
        match file.read_at(&mut buf[pos..], offset + pos as u64) {
            Ok(0) => break,
            Ok(n) => pos += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache_with(budget_pages: usize) -> (tempfile::TempDir, Arc<PageCache>) {
        (
            tempfile::tempdir().unwrap(),
            PageCache::new(budget_pages * PAGE_SIZE),
        )
    }

    #[test]
    fn pages_fault_in_zeroed_and_remember_writes() {
        let (dir, cache) = cache_with(4);
        let (id, backing) = cache.register(&dir.path().join("f")).unwrap();
        backing.len.store(2 * PAGE_SIZE as u64, Ordering::Relaxed);
        cache
            .with_page(id, 0, true, |p| {
                assert!(p.iter().all(|&b| b == 0));
                p[10] = 42;
            })
            .unwrap();
        let v = cache.with_page(id, 0, false, |p| p[10]).unwrap();
        assert_eq!(v, 42);
        let s = cache.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn eviction_writes_dirty_pages_back() {
        let (dir, cache) = cache_with(2);
        let (id, backing) = cache.register(&dir.path().join("f")).unwrap();
        backing.len.store(16 * PAGE_SIZE as u64, Ordering::Relaxed);
        backing.file.set_len(16 * PAGE_SIZE as u64).unwrap();
        // Dirty page 0, then touch enough pages to evict it.
        cache.with_page(id, 0, true, |p| p[0] = 9).unwrap();
        for page in 1..5 {
            cache.with_page(id, page, false, |_| ()).unwrap();
        }
        let s = cache.stats();
        assert!(s.evictions >= 3, "evictions {}", s.evictions);
        assert!(s.writebacks >= 1, "writebacks {}", s.writebacks);
        assert_eq!(s.resident_bytes, 2 * PAGE_SIZE as u64);
        // Re-faulting page 0 must see the written byte (read from disk).
        let v = cache.with_page(id, 0, false, |p| p[0]).unwrap();
        assert_eq!(v, 9);
    }

    #[test]
    fn resident_bytes_never_exceed_budget() {
        let (dir, cache) = cache_with(3);
        let (id, backing) = cache.register(&dir.path().join("f")).unwrap();
        backing.len.store(64 * PAGE_SIZE as u64, Ordering::Relaxed);
        for page in 0..50 {
            cache.with_page(id, page, false, |_| ()).unwrap();
            assert!(cache.stats().resident_bytes <= 3 * PAGE_SIZE as u64);
        }
    }

    #[test]
    fn flush_persists_without_eviction() {
        let (dir, cache) = cache_with(8);
        let path = dir.path().join("f");
        let (id, backing) = cache.register(&path).unwrap();
        backing.len.store(PAGE_SIZE as u64, Ordering::Relaxed);
        backing.file.set_len(PAGE_SIZE as u64).unwrap();
        cache.with_page(id, 0, true, |p| p[100] = 7).unwrap();
        cache.flush_file(id).unwrap();
        let raw = std::fs::read(&path).unwrap();
        assert_eq!(raw[100], 7);
    }

    #[test]
    fn unregister_flushes_and_forgets() {
        let (dir, cache) = cache_with(8);
        let path = dir.path().join("f");
        let (id, backing) = cache.register(&path).unwrap();
        backing.len.store(PAGE_SIZE as u64, Ordering::Relaxed);
        backing.file.set_len(PAGE_SIZE as u64).unwrap();
        cache.with_page(id, 0, true, |p| p[5] = 3).unwrap();
        cache.unregister(id).unwrap();
        assert_eq!(std::fs::read(&path).unwrap()[5], 3);
        assert!(cache.with_page(id, 0, false, |_| ()).is_err());
        assert_eq!(cache.stats().resident_bytes, 0);
    }

    #[test]
    fn two_files_do_not_collide() {
        let (dir, cache) = cache_with(8);
        let (a, ba) = cache.register(&dir.path().join("a")).unwrap();
        let (b, bb) = cache.register(&dir.path().join("b")).unwrap();
        ba.len.store(PAGE_SIZE as u64, Ordering::Relaxed);
        bb.len.store(PAGE_SIZE as u64, Ordering::Relaxed);
        cache.with_page(a, 0, true, |p| p[0] = 1).unwrap();
        cache.with_page(b, 0, true, |p| p[0] = 2).unwrap();
        assert_eq!(cache.with_page(a, 0, false, |p| p[0]).unwrap(), 1);
        assert_eq!(cache.with_page(b, 0, false, |p| p[0]).unwrap(), 2);
    }
}
