//! Byte-addressable file access through the shared page cache.

use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use crate::pagecache::{FileBacking, PageCache, PAGE_SIZE};
use tu_common::{Error, Result};

/// A file whose reads and writes go through a [`PageCache`], the explicit
/// stand-in for an `mmap`ed region.
///
/// The logical length grows on writes past the end (zero-filling holes,
/// like `ftruncate` + `mmap`). All I/O is page-granular underneath.
pub struct PagedFile {
    cache: Arc<PageCache>,
    id: u64,
    backing: Arc<FileBacking>,
    path: PathBuf,
}

impl PagedFile {
    /// Opens (creating if missing) a paged file registered with `cache`.
    pub fn open(cache: Arc<PageCache>, path: impl Into<PathBuf>) -> Result<Self> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let (id, backing) = cache.register(&path)?;
        Ok(PagedFile {
            cache,
            id,
            backing,
            path,
        })
    }

    /// Current logical length in bytes.
    pub fn len(&self) -> u64 {
        self.backing.len.load(Ordering::Relaxed)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn path(&self) -> &std::path::Path {
        &self.path
    }

    /// Extends the logical (and physical) length to at least `new_len`.
    pub fn grow_to(&self, new_len: u64) -> Result<()> {
        let cur = self.backing.len.load(Ordering::Relaxed);
        if new_len > cur {
            self.backing.file.set_len(new_len)?;
            self.backing.len.fetch_max(new_len, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Reads exactly `buf.len()` bytes at `offset`. Errors if the range
    /// extends past the logical end.
    pub fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        let end = offset + buf.len() as u64;
        if end > self.len() {
            return Err(Error::invalid(format!(
                "read [{offset}, {end}) past end of {} ({} bytes)",
                self.path.display(),
                self.len()
            )));
        }
        let mut done = 0usize;
        while done < buf.len() {
            let pos = offset + done as u64;
            let page = pos / PAGE_SIZE as u64;
            let in_page = (pos % PAGE_SIZE as u64) as usize;
            let n = (PAGE_SIZE - in_page).min(buf.len() - done);
            self.cache.with_page(self.id, page, false, |p| {
                buf[done..done + n].copy_from_slice(&p[in_page..in_page + n]);
            })?;
            done += n;
        }
        Ok(())
    }

    /// Writes `data` at `offset`, growing the file as needed.
    pub fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        let end = offset + data.len() as u64;
        self.grow_to(end)?;
        let mut done = 0usize;
        while done < data.len() {
            let pos = offset + done as u64;
            let page = pos / PAGE_SIZE as u64;
            let in_page = (pos % PAGE_SIZE as u64) as usize;
            let n = (PAGE_SIZE - in_page).min(data.len() - done);
            self.cache.with_page(self.id, page, true, |p| {
                p[in_page..in_page + n].copy_from_slice(&data[done..done + n]);
            })?;
            done += n;
        }
        Ok(())
    }

    /// Writes all dirty pages back and fsyncs.
    pub fn sync(&self) -> Result<()> {
        self.cache.flush_file(self.id)
    }
}

impl Drop for PagedFile {
    fn drop(&mut self) {
        // Best-effort flush; errors on drop cannot be surfaced.
        let _ = self.cache.unregister(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(budget_pages: usize) -> (tempfile::TempDir, Arc<PageCache>) {
        (
            tempfile::tempdir().unwrap(),
            PageCache::new(budget_pages * PAGE_SIZE),
        )
    }

    #[test]
    fn write_then_read_within_one_page() {
        let (dir, cache) = setup(4);
        let f = PagedFile::open(cache, dir.path().join("x")).unwrap();
        f.write_at(100, b"hello").unwrap();
        let mut buf = [0u8; 5];
        f.read_at(100, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        assert_eq!(f.len(), 105);
    }

    #[test]
    fn writes_spanning_pages() {
        let (dir, cache) = setup(8);
        let f = PagedFile::open(cache, dir.path().join("x")).unwrap();
        let data: Vec<u8> = (0..3 * PAGE_SIZE + 37).map(|i| (i % 251) as u8).collect();
        f.write_at(PAGE_SIZE as u64 - 10, &data).unwrap();
        let mut back = vec![0u8; data.len()];
        f.read_at(PAGE_SIZE as u64 - 10, &mut back).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn holes_read_as_zero() {
        let (dir, cache) = setup(4);
        let f = PagedFile::open(cache, dir.path().join("x")).unwrap();
        f.write_at(10_000, b"z").unwrap();
        let mut buf = [1u8; 100];
        f.read_at(0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn read_past_end_is_an_error() {
        let (dir, cache) = setup(4);
        let f = PagedFile::open(cache, dir.path().join("x")).unwrap();
        f.write_at(0, b"abc").unwrap();
        let mut buf = [0u8; 4];
        assert!(f.read_at(0, &mut buf).is_err());
    }

    #[test]
    fn data_survives_eviction_pressure() {
        let (dir, cache) = setup(2); // tiny cache forces constant eviction
        let f = PagedFile::open(cache.clone(), dir.path().join("x")).unwrap();
        let total = 64 * PAGE_SIZE;
        for i in 0..total / 8 {
            f.write_at((i * 8) as u64, &(i as u64).to_le_bytes())
                .unwrap();
        }
        for i in (0..total / 8).step_by(777) {
            let mut buf = [0u8; 8];
            f.read_at((i * 8) as u64, &mut buf).unwrap();
            assert_eq!(u64::from_le_bytes(buf), i as u64);
        }
        assert!(cache.stats().evictions > 0);
    }

    #[test]
    fn reopen_after_sync_sees_data() {
        let (dir, cache) = setup(4);
        let path = dir.path().join("x");
        {
            let f = PagedFile::open(cache.clone(), &path).unwrap();
            f.write_at(0, b"persist me").unwrap();
            f.sync().unwrap();
        }
        let f = PagedFile::open(cache, &path).unwrap();
        assert_eq!(f.len(), 10);
        let mut buf = [0u8; 10];
        f.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"persist me");
    }
}
