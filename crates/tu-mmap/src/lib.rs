//! File-backed memory structures with an explicit page cache.
//!
//! The paper stores its big in-memory structures — the double-array trie,
//! per-series tag sets, and the in-progress data-sample chunks — in
//! dynamically growing *mmap file arrays* (§3.2, Figures 8 and 9), so that
//! the OS can swap cold pages out instead of the process dying of OOM
//! (Figure 16 shows exactly this happening at 7M+ series).
//!
//! Real `mmap` hides paging inside the kernel, which makes the behaviour
//! impossible to assert on in tests and non-deterministic in benchmarks.
//! This crate replaces it with an explicit equivalent:
//!
//! * [`pagecache::PageCache`] — a budgeted pool of 4 KiB pages over
//!   registered files, with clock (second-chance) eviction, dirty-page
//!   write-back, and swap counters. The resident pages are ordinary heap
//!   allocations, so the workspace's tracking allocator sees them exactly
//!   as RSS accounting would see mmap-resident pages.
//! * [`file::PagedFile`] — byte-addressable file I/O through the cache.
//! * [`segarr::SegArray`] — a growable typed array split across 1M-slot
//!   file segments, used for the trie's Base/Check/Tail arrays.
//! * [`chunkfile::ChunkArena`] — files split into fixed-size chunks with a
//!   header allocation bitmap (Figure 9), used for in-progress sample
//!   chunks of series and groups.

pub mod chunkfile;
pub mod file;
pub mod pagecache;
pub mod segarr;

pub use chunkfile::{ChunkArena, ChunkHandle};
pub use file::PagedFile;
pub use pagecache::{CacheStats, PageCache};
pub use segarr::SegArray;
