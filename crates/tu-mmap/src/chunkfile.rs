//! Bitmap-allocated chunk files for in-progress data samples (Figure 9).
//!
//! A [`ChunkArena`] manages a growing set of files, each split into
//! fixed-size chunks with a header bitmap marking which chunks are live.
//! TimeUnion keeps every series' (and group's) current small sample chunk
//! in such an arena; when the chunk is sealed and flushed into the
//! LSM-tree, its slot is freed for reuse (§3.2).
//!
//! File layout:
//!
//! ```text
//! [u32 magic][u32 chunk_size][u32 chunks_per_file][bitmap: ceil(n/8) bytes]
//! [chunk 0][chunk 1]...[chunk n-1]
//! ```
//!
//! Each chunk slot stores `u16 LE payload length` followed by the payload.

use std::path::PathBuf;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::file::PagedFile;
use crate::pagecache::PageCache;
use tu_common::{Error, Result};

const MAGIC: u32 = 0x54_55_43_41; // "TUCA"

/// Stable reference to an allocated chunk slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChunkHandle {
    pub file: u32,
    pub slot: u32,
}

struct ArenaFile {
    file: Arc<PagedFile>,
    /// In-memory copy of the allocation bitmap (authoritative; persisted
    /// on every alloc/free so recovery sees a consistent view).
    bitmap: Vec<u8>,
    live: u32,
}

struct Inner {
    files: Vec<ArenaFile>,
    /// Free slots available for reuse, newest first.
    free_list: Vec<ChunkHandle>,
}

/// A set of chunk files with bitmap allocation.
pub struct ChunkArena {
    cache: Arc<PageCache>,
    dir: PathBuf,
    chunk_size: usize,
    chunks_per_file: u32,
    inner: Mutex<Inner>,
}

impl ChunkArena {
    /// Opens (or creates) an arena under `dir` with the given chunk size
    /// and chunks per file. Reopening recovers the allocation bitmaps.
    pub fn open(
        cache: Arc<PageCache>,
        dir: impl Into<PathBuf>,
        chunk_size: usize,
        chunks_per_file: u32,
    ) -> Result<Self> {
        assert!(chunk_size >= 4 && chunk_size <= u16::MAX as usize + 2);
        assert!(chunks_per_file > 0);
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let arena = ChunkArena {
            cache,
            dir,
            chunk_size,
            chunks_per_file,
            inner: Mutex::new(Inner {
                files: Vec::new(),
                free_list: Vec::new(),
            }),
        };
        arena.recover()?;
        Ok(arena)
    }

    fn file_path(&self, n: usize) -> PathBuf {
        self.dir.join(format!("chunks-{n:05}.dat"))
    }

    fn header_len(&self) -> u64 {
        12 + (self.chunks_per_file as u64).div_ceil(8)
    }

    fn chunk_offset(&self, slot: u32) -> u64 {
        self.header_len() + slot as u64 * self.chunk_size as u64
    }

    fn recover(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        let mut n = 0;
        loop {
            let path = self.file_path(n);
            if !path.exists() {
                break;
            }
            let file = Arc::new(PagedFile::open(self.cache.clone(), path)?);
            let mut head = [0u8; 12];
            file.read_at(0, &mut head)?;
            let magic = tu_common::bytes::u32_le(&head[0..4]);
            let csize = tu_common::bytes::u32_le(&head[4..8]);
            let cper = tu_common::bytes::u32_le(&head[8..12]);
            if magic != MAGIC {
                return Err(Error::corruption("chunk arena file has bad magic"));
            }
            if csize as usize != self.chunk_size || cper != self.chunks_per_file {
                return Err(Error::corruption(
                    "chunk arena file geometry does not match configuration",
                ));
            }
            let mut bitmap = vec![0u8; (self.chunks_per_file as usize).div_ceil(8)];
            file.read_at(12, &mut bitmap)?;
            let mut live = 0;
            for slot in 0..self.chunks_per_file {
                if bitmap[slot as usize / 8] & (1 << (slot % 8)) != 0 {
                    live += 1;
                } else {
                    inner.free_list.push(ChunkHandle {
                        file: n as u32,
                        slot,
                    });
                }
            }
            inner.files.push(ArenaFile { file, bitmap, live });
            n += 1;
        }
        Ok(())
    }

    fn add_file(&self, inner: &mut Inner) -> Result<()> {
        let n = inner.files.len();
        let file = Arc::new(PagedFile::open(self.cache.clone(), self.file_path(n))?);
        let mut head = Vec::with_capacity(12);
        head.extend_from_slice(&MAGIC.to_le_bytes());
        head.extend_from_slice(&(self.chunk_size as u32).to_le_bytes());
        head.extend_from_slice(&self.chunks_per_file.to_le_bytes());
        file.write_at(0, &head)?;
        let bitmap = vec![0u8; (self.chunks_per_file as usize).div_ceil(8)];
        file.write_at(12, &bitmap)?;
        for slot in (0..self.chunks_per_file).rev() {
            inner.free_list.push(ChunkHandle {
                file: n as u32,
                slot,
            });
        }
        inner.files.push(ArenaFile {
            file,
            bitmap,
            live: 0,
        });
        Ok(())
    }

    /// Allocates a chunk slot, growing the arena by one file if none are
    /// free.
    pub fn alloc(&self) -> Result<ChunkHandle> {
        let mut inner = self.inner.lock();
        if inner.free_list.is_empty() {
            self.add_file(&mut inner)?;
        }
        let handle = inner
            .free_list
            .pop()
            .ok_or_else(|| Error::corruption("chunk arena free list empty after growth"))?;
        let af = &mut inner.files[handle.file as usize];
        af.bitmap[handle.slot as usize / 8] |= 1 << (handle.slot % 8);
        af.live += 1;
        let byte = af.bitmap[handle.slot as usize / 8];
        af.file.write_at(12 + handle.slot as u64 / 8, &[byte])?;
        Ok(handle)
    }

    /// Frees a chunk slot for reuse. Freeing an unallocated slot is an
    /// error (catches double frees).
    pub fn free(&self, handle: ChunkHandle) -> Result<()> {
        let mut inner = self.inner.lock();
        let af = inner
            .files
            .get_mut(handle.file as usize)
            .ok_or_else(|| Error::invalid("chunk handle file out of range"))?;
        let mask = 1 << (handle.slot % 8);
        if handle.slot >= self.chunks_per_file || af.bitmap[handle.slot as usize / 8] & mask == 0 {
            return Err(Error::invalid("freeing an unallocated chunk slot"));
        }
        af.bitmap[handle.slot as usize / 8] &= !mask;
        af.live -= 1;
        let byte = af.bitmap[handle.slot as usize / 8];
        af.file.write_at(12 + handle.slot as u64 / 8, &[byte])?;
        inner.free_list.push(handle);
        Ok(())
    }

    /// Writes a payload into a chunk slot (replacing previous contents).
    /// The payload must fit `chunk_size - 2` bytes.
    pub fn write(&self, handle: ChunkHandle, payload: &[u8]) -> Result<()> {
        if payload.len() + 2 > self.chunk_size {
            return Err(Error::invalid(format!(
                "payload of {} bytes exceeds chunk capacity {}",
                payload.len(),
                self.chunk_size - 2
            )));
        }
        let inner = self.inner.lock();
        let af = inner
            .files
            .get(handle.file as usize)
            .ok_or_else(|| Error::invalid("chunk handle file out of range"))?;
        let mut buf = Vec::with_capacity(2 + payload.len());
        buf.extend_from_slice(&(payload.len() as u16).to_le_bytes());
        buf.extend_from_slice(payload);
        af.file.write_at(self.chunk_offset(handle.slot), &buf)
    }

    /// Appends `suffix` to a slot whose payload currently has
    /// `old_payload_len` bytes, updating the length prefix — the O(1)
    /// fast path for in-order sample appends (no read-modify-write of the
    /// whole slot).
    pub fn append(&self, handle: ChunkHandle, old_payload_len: usize, suffix: &[u8]) -> Result<()> {
        let new_len = old_payload_len + suffix.len();
        if new_len + 2 > self.chunk_size {
            return Err(Error::invalid(format!(
                "append to {new_len} bytes exceeds chunk capacity {}",
                self.chunk_size - 2
            )));
        }
        let inner = self.inner.lock();
        let af = inner
            .files
            .get(handle.file as usize)
            .ok_or_else(|| Error::invalid("chunk handle file out of range"))?;
        let off = self.chunk_offset(handle.slot);
        af.file.write_at(off + 2 + old_payload_len as u64, suffix)?;
        af.file.write_at(off, &(new_len as u16).to_le_bytes())
    }

    /// Reads a chunk slot's payload.
    pub fn read(&self, handle: ChunkHandle) -> Result<Vec<u8>> {
        let inner = self.inner.lock();
        let af = inner
            .files
            .get(handle.file as usize)
            .ok_or_else(|| Error::invalid("chunk handle file out of range"))?;
        let off = self.chunk_offset(handle.slot);
        let mut len_buf = [0u8; 2];
        af.file.read_at(off, &mut len_buf)?;
        let len = u16::from_le_bytes(len_buf) as usize;
        if len + 2 > self.chunk_size {
            return Err(Error::corruption("chunk payload length exceeds slot size"));
        }
        let mut out = vec![0u8; len];
        af.file.read_at(off + 2, &mut out)?;
        Ok(out)
    }

    /// Number of live (allocated) chunks across all files.
    pub fn live_chunks(&self) -> u64 {
        self.inner.lock().files.iter().map(|f| f.live as u64).sum()
    }

    /// Number of backing files.
    pub fn file_count(&self) -> usize {
        self.inner.lock().files.len()
    }

    /// Flushes all dirty pages of all arena files.
    pub fn sync(&self) -> Result<()> {
        let inner = self.inner.lock();
        for af in &inner.files {
            af.file.sync()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagecache::PAGE_SIZE;

    fn arena(chunk_size: usize, per_file: u32) -> (tempfile::TempDir, ChunkArena) {
        let dir = tempfile::tempdir().unwrap();
        let cache = PageCache::new(64 * PAGE_SIZE);
        let a = ChunkArena::open(cache, dir.path().join("arena"), chunk_size, per_file).unwrap();
        (dir, a)
    }

    #[test]
    fn alloc_write_read_free_cycle() {
        let (_d, a) = arena(64, 16);
        let h = a.alloc().unwrap();
        a.write(h, b"sample chunk bytes").unwrap();
        assert_eq!(a.read(h).unwrap(), b"sample chunk bytes");
        assert_eq!(a.live_chunks(), 1);
        a.free(h).unwrap();
        assert_eq!(a.live_chunks(), 0);
        assert!(a.free(h).is_err(), "double free detected");
    }

    #[test]
    fn arena_grows_files_when_full() {
        let (_d, a) = arena(32, 4);
        let handles: Vec<_> = (0..10).map(|_| a.alloc().unwrap()).collect();
        assert_eq!(a.file_count(), 3);
        assert_eq!(a.live_chunks(), 10);
        for (i, h) in handles.iter().enumerate() {
            a.write(*h, format!("c{i}").as_bytes()).unwrap();
        }
        for (i, h) in handles.iter().enumerate() {
            assert_eq!(a.read(*h).unwrap(), format!("c{i}").as_bytes());
        }
    }

    #[test]
    fn freed_slots_are_reused_before_growing() {
        let (_d, a) = arena(32, 4);
        let h1 = a.alloc().unwrap();
        let _h2 = a.alloc().unwrap();
        a.free(h1).unwrap();
        let h3 = a.alloc().unwrap();
        assert_eq!(h3, h1, "freed slot should be reused");
        assert_eq!(a.file_count(), 1);
    }

    #[test]
    fn oversized_payload_rejected() {
        let (_d, a) = arena(16, 4);
        let h = a.alloc().unwrap();
        assert!(a.write(h, &[0u8; 15]).is_err());
        a.write(h, &[0u8; 14]).unwrap();
    }

    #[test]
    fn overwrite_replaces_payload() {
        let (_d, a) = arena(64, 4);
        let h = a.alloc().unwrap();
        a.write(h, b"first").unwrap();
        a.write(h, b"second, longer").unwrap();
        assert_eq!(a.read(h).unwrap(), b"second, longer");
        a.write(h, b"x").unwrap();
        assert_eq!(a.read(h).unwrap(), b"x");
    }

    #[test]
    fn reopen_recovers_bitmap_and_payloads() {
        let dir = tempfile::tempdir().unwrap();
        let cache = PageCache::new(64 * PAGE_SIZE);
        let (h_live, h_freed);
        {
            let a = ChunkArena::open(cache.clone(), dir.path().join("ar"), 64, 8).unwrap();
            h_live = a.alloc().unwrap();
            h_freed = a.alloc().unwrap();
            a.write(h_live, b"survivor").unwrap();
            a.free(h_freed).unwrap();
            a.sync().unwrap();
        }
        let a = ChunkArena::open(cache, dir.path().join("ar"), 64, 8).unwrap();
        assert_eq!(a.live_chunks(), 1);
        assert_eq!(a.read(h_live).unwrap(), b"survivor");
        // The freed slot must be allocatable again.
        let slots: Vec<_> = (0..7).map(|_| a.alloc().unwrap()).collect();
        assert!(slots.contains(&h_freed));
        assert_eq!(a.file_count(), 1);
    }

    #[test]
    fn geometry_mismatch_is_corruption() {
        let dir = tempfile::tempdir().unwrap();
        let cache = PageCache::new(64 * PAGE_SIZE);
        {
            let a = ChunkArena::open(cache.clone(), dir.path().join("ar"), 64, 8).unwrap();
            a.alloc().unwrap();
            a.sync().unwrap();
        }
        match ChunkArena::open(cache, dir.path().join("ar"), 128, 8) {
            Err(e) => assert!(e.is_corruption()),
            Ok(_) => panic!("geometry mismatch must be rejected"),
        }
    }
}
