//! Growable typed arrays split across fixed-size file segments.
//!
//! The paper stores the trie's Base/Check/Tail arrays in "dynamic mmap file
//! arrays": each file holds one million slots, and new files are appended
//! when more slots are needed (§3.2). [`SegArray`] reproduces that layout
//! over [`PagedFile`] segments.

use std::path::PathBuf;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::file::PagedFile;
use crate::pagecache::PageCache;
use tu_common::{Error, Result};

/// Element types storable in a [`SegArray`]: fixed-width, little-endian.
pub trait Element: Copy + Default {
    const WIDTH: usize;
    fn write_to(self, buf: &mut [u8]);
    fn read_from(buf: &[u8]) -> Self;
}

macro_rules! impl_element {
    ($t:ty, $w:expr) => {
        impl Element for $t {
            const WIDTH: usize = $w;
            #[inline]
            fn write_to(self, buf: &mut [u8]) {
                buf[..$w].copy_from_slice(&self.to_le_bytes());
            }
            #[inline]
            fn read_from(buf: &[u8]) -> Self {
                let mut a = [0u8; $w];
                a.copy_from_slice(&buf[..$w]);
                <$t>::from_le_bytes(a)
            }
        }
    };
}

impl_element!(u8, 1);
impl_element!(i32, 4);
impl_element!(u32, 4);
impl_element!(u64, 8);
impl_element!(i64, 8);

/// A typed array of `T` backed by a sequence of file segments, each holding
/// `slots_per_segment` elements. Segments are created on demand as the
/// array grows; reads of never-written slots return `T::default()` (files
/// are zero-filled, and all `Element` types decode zero bytes to default).
pub struct SegArray<T: Element> {
    cache: Arc<PageCache>,
    dir: PathBuf,
    name: String,
    slots_per_segment: usize,
    segments: RwLock<Vec<Arc<PagedFile>>>,
    len: RwLock<u64>,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Element> SegArray<T> {
    /// Opens (or creates) the array `name` under `dir`. Existing segment
    /// files `name.seg-N` are picked up in order; the logical length is
    /// persisted in a tiny `name.len` sidecar.
    pub fn open(
        cache: Arc<PageCache>,
        dir: impl Into<PathBuf>,
        name: &str,
        slots_per_segment: usize,
    ) -> Result<Self> {
        assert!(slots_per_segment > 0);
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let arr = SegArray {
            cache,
            dir,
            name: name.to_string(),
            slots_per_segment,
            segments: RwLock::new(Vec::new()),
            len: RwLock::new(0),
            _marker: std::marker::PhantomData,
        };
        // Recover segments and length.
        let mut n = 0;
        loop {
            let path = arr.segment_path(n);
            if !path.exists() {
                break;
            }
            let f = PagedFile::open(arr.cache.clone(), path)?;
            arr.segments.write().push(Arc::new(f));
            n += 1;
        }
        let len_path = arr.len_path();
        if len_path.exists() {
            let bytes = std::fs::read(&len_path)?;
            if bytes.len() != 8 {
                return Err(Error::corruption("segment array length sidecar damaged"));
            }
            *arr.len.write() = tu_common::bytes::u64_le(&bytes);
        }
        Ok(arr)
    }

    fn segment_path(&self, n: usize) -> PathBuf {
        self.dir.join(format!("{}.seg-{n}", self.name))
    }

    fn len_path(&self) -> PathBuf {
        self.dir.join(format!("{}.len", self.name))
    }

    /// Number of logical elements.
    pub fn len(&self) -> u64 {
        *self.len.read()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of segment files currently backing the array.
    pub fn segment_count(&self) -> usize {
        self.segments.read().len()
    }

    fn locate(&self, idx: u64) -> (usize, u64) {
        (
            (idx / self.slots_per_segment as u64) as usize,
            (idx % self.slots_per_segment as u64) * T::WIDTH as u64,
        )
    }

    fn segment(&self, n: usize) -> Result<Arc<PagedFile>> {
        {
            let segs = self.segments.read();
            if let Some(s) = segs.get(n) {
                return Ok(s.clone());
            }
        }
        let mut segs = self.segments.write();
        while segs.len() <= n {
            let f = PagedFile::open(self.cache.clone(), self.segment_path(segs.len()))?;
            segs.push(Arc::new(f));
        }
        Ok(segs[n].clone())
    }

    /// Ensures the array is at least `new_len` elements long (new slots
    /// read as `T::default()`).
    pub fn resize(&self, new_len: u64) -> Result<()> {
        let mut len = self.len.write();
        if new_len > *len {
            *len = new_len;
            // Materialize the final segment so reads have a backing file.
            let (seg, _) = self.locate(new_len - 1);
            drop(len);
            self.segment(seg)?;
        }
        Ok(())
    }

    /// Reads element `idx`. Out-of-range reads are an error.
    pub fn get(&self, idx: u64) -> Result<T> {
        if idx >= self.len() {
            return Err(Error::invalid(format!(
                "index {idx} out of bounds for {} elements",
                self.len()
            )));
        }
        let (seg_no, off) = self.locate(idx);
        let seg = self.segment(seg_no)?;
        let mut buf = [0u8; 8];
        let end = off + T::WIDTH as u64;
        if end > seg.len() {
            // Slot inside a hole that was never written: default value.
            return Ok(T::default());
        }
        seg.read_at(off, &mut buf[..T::WIDTH])?;
        Ok(T::read_from(&buf[..T::WIDTH]))
    }

    /// Reads `count` consecutive elements starting at `idx`, clamped to
    /// the array length. Fetches whole segment ranges at once — the bulk
    /// path for trie child scans, which would otherwise pay one
    /// page-cache round trip per slot.
    pub fn get_range(&self, idx: u64, count: usize) -> Result<Vec<T>> {
        let len = self.len();
        if idx >= len {
            return Ok(Vec::new());
        }
        let count = count.min((len - idx) as usize);
        let mut out = Vec::with_capacity(count);
        let mut pos = idx;
        let mut remaining = count;
        let mut buf = Vec::new();
        while remaining > 0 {
            let (seg_no, off) = self.locate(pos);
            let in_segment =
                self.slots_per_segment - (pos % self.slots_per_segment as u64) as usize;
            let n = in_segment.min(remaining);
            let seg = self.segment(seg_no)?;
            let want = n * T::WIDTH;
            buf.clear();
            buf.resize(want, 0);
            let avail = seg.len().saturating_sub(off) as usize;
            let readable = avail.min(want) / T::WIDTH * T::WIDTH;
            if readable > 0 {
                seg.read_at(off, &mut buf[..readable])?;
            }
            for i in 0..n {
                let start = i * T::WIDTH;
                if start + T::WIDTH <= readable {
                    out.push(T::read_from(&buf[start..start + T::WIDTH]));
                } else {
                    out.push(T::default()); // hole past the file end
                }
            }
            pos += n as u64;
            remaining -= n;
        }
        Ok(out)
    }

    /// Writes element `idx`, growing the array if `idx >= len`.
    pub fn set(&self, idx: u64, value: T) -> Result<()> {
        if idx >= self.len() {
            self.resize(idx + 1)?;
        }
        let (seg_no, off) = self.locate(idx);
        let seg = self.segment(seg_no)?;
        let mut buf = [0u8; 8];
        value.write_to(&mut buf[..T::WIDTH]);
        seg.write_at(off, &buf[..T::WIDTH])
    }

    /// Appends an element, returning its index.
    pub fn push(&self, value: T) -> Result<u64> {
        let idx = {
            let mut len = self.len.write();
            let idx = *len;
            *len += 1;
            idx
        };
        let (seg_no, off) = self.locate(idx);
        let seg = self.segment(seg_no)?;
        let mut buf = [0u8; 8];
        value.write_to(&mut buf[..T::WIDTH]);
        seg.write_at(off, &buf[..T::WIDTH])?;
        Ok(idx)
    }

    /// Flushes dirty pages and persists the logical length.
    pub fn sync(&self) -> Result<()> {
        for seg in self.segments.read().iter() {
            seg.sync()?;
        }
        std::fs::write(self.len_path(), self.len().to_le_bytes())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagecache::PAGE_SIZE;

    fn arr<T: Element>(slots: usize) -> (tempfile::TempDir, SegArray<T>) {
        let dir = tempfile::tempdir().unwrap();
        let cache = PageCache::new(64 * PAGE_SIZE);
        let a = SegArray::open(cache, dir.path().join("arr"), "test", slots).unwrap();
        (dir, a)
    }

    #[test]
    fn push_get_set_round_trip() {
        let (_d, a) = arr::<i32>(1000);
        assert_eq!(a.push(-5).unwrap(), 0);
        assert_eq!(a.push(7).unwrap(), 1);
        assert_eq!(a.get(0).unwrap(), -5);
        a.set(0, 99).unwrap();
        assert_eq!(a.get(0).unwrap(), 99);
        assert_eq!(a.len(), 2);
        assert!(a.get(2).is_err());
    }

    #[test]
    fn growth_spans_segments() {
        let (_d, a) = arr::<u64>(100); // tiny segments to force several files
        for i in 0..1000u64 {
            a.set(i, i * 3).unwrap();
        }
        assert_eq!(a.segment_count(), 10);
        for i in (0..1000u64).step_by(97) {
            assert_eq!(a.get(i).unwrap(), i * 3);
        }
    }

    #[test]
    fn sparse_set_reads_default_in_holes() {
        let (_d, a) = arr::<u32>(50);
        a.set(120, 7).unwrap();
        assert_eq!(a.len(), 121);
        assert_eq!(a.get(0).unwrap(), 0);
        assert_eq!(a.get(119).unwrap(), 0);
        assert_eq!(a.get(120).unwrap(), 7);
    }

    #[test]
    fn resize_extends_with_defaults() {
        let (_d, a) = arr::<u8>(64);
        a.resize(200).unwrap();
        assert_eq!(a.len(), 200);
        assert_eq!(a.get(199).unwrap(), 0);
        // Shrinking is not supported: resize to smaller is a no-op.
        a.resize(10).unwrap();
        assert_eq!(a.len(), 200);
    }

    #[test]
    fn reopen_recovers_contents_and_length() {
        let dir = tempfile::tempdir().unwrap();
        let cache = PageCache::new(64 * PAGE_SIZE);
        {
            let a: SegArray<i64> =
                SegArray::open(cache.clone(), dir.path().join("arr"), "t", 128).unwrap();
            for i in 0..300 {
                a.push(i * i).unwrap();
            }
            a.sync().unwrap();
        }
        let a: SegArray<i64> = SegArray::open(cache, dir.path().join("arr"), "t", 128).unwrap();
        assert_eq!(a.len(), 300);
        assert_eq!(a.segment_count(), 3);
        assert_eq!(a.get(17).unwrap(), 17 * 17);
        assert_eq!(a.get(299).unwrap(), 299 * 299);
    }
}
