//! A small from-scratch regular-expression engine for tag selectors.
//!
//! Supports the subset of syntax TSBS and Prometheus selectors use:
//! literals, `.`, character classes `[a-z0-9_]` (with negation `[^...]`
//! and ranges), alternation `|`, grouping `(...)`, the repetitions `*`,
//! `+`, `?`, and `\`-escapes (including `\d`, `\w`, `\s`). Matching is
//! anchored at both ends (full-match semantics), as Prometheus applies to
//! `=~` selectors.
//!
//! The engine compiles to a Thompson NFA and simulates it with a set of
//! active states, so matching is linear in input length — no backtracking
//! blow-ups from hostile patterns.

use tu_common::{Error, Result};

/// A compiled regular expression.
#[derive(Debug, Clone)]
pub struct Regex {
    prog: Vec<Inst>,
    source: String,
}

#[derive(Debug, Clone)]
enum Inst {
    /// Match one byte satisfying the class, advance.
    Byte(ByteClass),
    /// Jump to two alternatives.
    Split(usize, usize),
    /// Unconditional jump.
    Jmp(usize),
    /// Accept.
    Match,
}

#[derive(Debug, Clone)]
enum ByteClass {
    Literal(u8),
    Any,
    /// Sorted inclusive ranges; `negated` flips membership.
    Ranges {
        ranges: Vec<(u8, u8)>,
        negated: bool,
    },
}

impl ByteClass {
    fn matches(&self, b: u8) -> bool {
        match self {
            ByteClass::Literal(l) => *l == b,
            ByteClass::Any => true,
            ByteClass::Ranges { ranges, negated } => {
                let inside = ranges.iter().any(|&(lo, hi)| lo <= b && b <= hi);
                inside != *negated
            }
        }
    }
}

// --- parser: pattern -> AST ------------------------------------------------

#[derive(Debug)]
enum Ast {
    Empty,
    Byte(ByteClass),
    Concat(Vec<Ast>),
    Alt(Box<Ast>, Box<Ast>),
    Star(Box<Ast>),
    Plus(Box<Ast>),
    Quest(Box<Ast>),
}

struct Parser<'a> {
    pat: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(pat: &'a str) -> Self {
        Parser {
            pat: pat.as_bytes(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.pat.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn parse_alt(&mut self) -> Result<Ast> {
        let first = self.parse_concat()?;
        if self.peek() == Some(b'|') {
            self.bump();
            let rest = self.parse_alt()?;
            Ok(Ast::Alt(Box::new(first), Box::new(rest)))
        } else {
            Ok(first)
        }
    }

    fn parse_concat(&mut self) -> Result<Ast> {
        let mut items = Vec::new();
        while let Some(b) = self.peek() {
            if b == b'|' || b == b')' {
                break;
            }
            items.push(self.parse_repeat()?);
        }
        Ok(match items.len() {
            0 => Ast::Empty,
            1 => items.pop().expect("len checked"),
            _ => Ast::Concat(items),
        })
    }

    fn parse_repeat(&mut self) -> Result<Ast> {
        let atom = self.parse_atom()?;
        match self.peek() {
            Some(b'*') => {
                self.bump();
                Ok(Ast::Star(Box::new(atom)))
            }
            Some(b'+') => {
                self.bump();
                Ok(Ast::Plus(Box::new(atom)))
            }
            Some(b'?') => {
                self.bump();
                Ok(Ast::Quest(Box::new(atom)))
            }
            _ => Ok(atom),
        }
    }

    fn parse_atom(&mut self) -> Result<Ast> {
        match self.bump() {
            None => Err(Error::invalid("regex ended unexpectedly")),
            Some(b'(') => {
                let inner = self.parse_alt()?;
                if self.bump() != Some(b')') {
                    return Err(Error::invalid("unclosed group in regex"));
                }
                Ok(inner)
            }
            Some(b'[') => self.parse_class(),
            Some(b'.') => Ok(Ast::Byte(ByteClass::Any)),
            Some(b'\\') => {
                let esc = self
                    .bump()
                    .ok_or_else(|| Error::invalid("dangling escape in regex"))?;
                Ok(Ast::Byte(escape_class(esc)?))
            }
            Some(b) if b == b'*' || b == b'+' || b == b'?' => {
                Err(Error::invalid("repetition with nothing to repeat"))
            }
            Some(b')') => Err(Error::invalid("unmatched ')' in regex")),
            Some(b) => Ok(Ast::Byte(ByteClass::Literal(b))),
        }
    }

    fn parse_class(&mut self) -> Result<Ast> {
        let negated = if self.peek() == Some(b'^') {
            self.bump();
            true
        } else {
            false
        };
        let mut ranges: Vec<(u8, u8)> = Vec::new();
        let mut first = true;
        loop {
            let b = self
                .bump()
                .ok_or_else(|| Error::invalid("unclosed character class"))?;
            if b == b']' && !first {
                break;
            }
            first = false;
            let lo = if b == b'\\' {
                match self.bump() {
                    Some(e) => match escape_class(e)? {
                        ByteClass::Literal(l) => l,
                        ByteClass::Ranges {
                            ranges: rs,
                            negated: false,
                        } => {
                            ranges.extend(rs);
                            continue;
                        }
                        _ => return Err(Error::invalid("unsupported escape in class")),
                    },
                    None => return Err(Error::invalid("dangling escape in class")),
                }
            } else {
                b
            };
            if self.peek() == Some(b'-') && self.pat.get(self.pos + 1) != Some(&b']') {
                self.bump(); // '-'
                let hi = self
                    .bump()
                    .ok_or_else(|| Error::invalid("unclosed range in class"))?;
                if hi < lo {
                    return Err(Error::invalid("inverted range in character class"));
                }
                ranges.push((lo, hi));
            } else {
                ranges.push((lo, lo));
            }
        }
        ranges.sort_unstable();
        Ok(Ast::Byte(ByteClass::Ranges { ranges, negated }))
    }
}

fn escape_class(esc: u8) -> Result<ByteClass> {
    Ok(match esc {
        b'd' => ByteClass::Ranges {
            ranges: vec![(b'0', b'9')],
            negated: false,
        },
        b'w' => ByteClass::Ranges {
            ranges: vec![(b'0', b'9'), (b'A', b'Z'), (b'_', b'_'), (b'a', b'z')],
            negated: false,
        },
        b's' => ByteClass::Ranges {
            ranges: vec![(b'\t', b'\r'), (b' ', b' ')],
            negated: false,
        },
        b'n' => ByteClass::Literal(b'\n'),
        b't' => ByteClass::Literal(b'\t'),
        b'.' | b'*' | b'+' | b'?' | b'(' | b')' | b'[' | b']' | b'|' | b'\\' | b'^' | b'$'
        | b'-' | b'/' => ByteClass::Literal(esc),
        other => {
            return Err(Error::invalid(format!(
                "unsupported escape \\{} in regex",
                other as char
            )))
        }
    })
}

// --- compiler: AST -> NFA program -------------------------------------------

fn compile(ast: &Ast, prog: &mut Vec<Inst>) {
    match ast {
        Ast::Empty => {}
        Ast::Byte(c) => prog.push(Inst::Byte(c.clone())),
        Ast::Concat(items) => {
            for item in items {
                compile(item, prog);
            }
        }
        Ast::Alt(a, b) => {
            let split = prog.len();
            prog.push(Inst::Jmp(0)); // placeholder -> Split
            compile(a, prog);
            let jmp = prog.len();
            prog.push(Inst::Jmp(0)); // placeholder -> end
            let b_start = prog.len();
            compile(b, prog);
            let end = prog.len();
            prog[split] = Inst::Split(split + 1, b_start);
            prog[jmp] = Inst::Jmp(end);
        }
        Ast::Star(inner) => {
            let split = prog.len();
            prog.push(Inst::Jmp(0));
            compile(inner, prog);
            prog.push(Inst::Jmp(split));
            let end = prog.len();
            prog[split] = Inst::Split(split + 1, end);
        }
        Ast::Plus(inner) => {
            let start = prog.len();
            compile(inner, prog);
            let split = prog.len();
            prog.push(Inst::Split(start, split + 1));
        }
        Ast::Quest(inner) => {
            let split = prog.len();
            prog.push(Inst::Jmp(0));
            compile(inner, prog);
            let end = prog.len();
            prog[split] = Inst::Split(split + 1, end);
        }
    }
}

impl Regex {
    /// Compiles a pattern. Errors on unsupported or malformed syntax.
    pub fn new(pattern: &str) -> Result<Self> {
        let mut parser = Parser::new(pattern);
        let ast = parser.parse_alt()?;
        if parser.pos != parser.pat.len() {
            return Err(Error::invalid("trailing characters in regex"));
        }
        let mut prog = Vec::new();
        compile(&ast, &mut prog);
        prog.push(Inst::Match);
        Ok(Regex {
            prog,
            source: pattern.to_string(),
        })
    }

    /// The original pattern text.
    pub fn as_str(&self) -> &str {
        &self.source
    }

    /// Full-match test (anchored at both ends).
    pub fn is_match(&self, input: &str) -> bool {
        self.is_match_bytes(input.as_bytes())
    }

    /// Full-match test over raw bytes.
    pub fn is_match_bytes(&self, input: &[u8]) -> bool {
        let mut current = vec![false; self.prog.len()];
        let mut next = vec![false; self.prog.len()];
        let mut stack = Vec::new();
        add_state(&self.prog, &mut current, &mut stack, 0);
        for &b in input {
            if current.iter().all(|&s| !s) {
                return false;
            }
            next.iter_mut().for_each(|s| *s = false);
            for pc in 0..self.prog.len() {
                if !current[pc] {
                    continue;
                }
                if let Inst::Byte(class) = &self.prog[pc] {
                    if class.matches(b) {
                        add_state(&self.prog, &mut next, &mut stack, pc + 1);
                    }
                }
            }
            std::mem::swap(&mut current, &mut next);
        }
        (0..self.prog.len()).any(|pc| current[pc] && matches!(self.prog[pc], Inst::Match))
    }

    /// Returns the literal string this regex matches, if it matches exactly
    /// one string (no classes or repetitions). Lets the index use a cheap
    /// exact lookup for patterns like `cpu` that arrive via `=~`.
    pub fn as_literal(&self) -> Option<String> {
        let mut out = Vec::new();
        for inst in &self.prog {
            match inst {
                Inst::Byte(ByteClass::Literal(b)) => out.push(*b),
                Inst::Match => return String::from_utf8(out).ok(),
                _ => return None,
            }
        }
        None
    }
}

fn add_state(prog: &[Inst], set: &mut [bool], stack: &mut Vec<usize>, pc: usize) {
    stack.push(pc);
    while let Some(pc) = stack.pop() {
        if set[pc] {
            continue;
        }
        // Mark every visited state — including Jmp/Split — so epsilon
        // cycles (e.g. `(a*)*`) terminate. The byte loop and the final
        // accept check only inspect Byte/Match entries, so marking the
        // epsilon states costs nothing.
        set[pc] = true;
        match &prog[pc] {
            Inst::Jmp(t) => stack.push(*t),
            Inst::Split(a, b) => {
                stack.push(*a);
                stack.push(*b);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn m(pat: &str, input: &str) -> bool {
        Regex::new(pat).unwrap().is_match(input)
    }

    #[test]
    fn literals_are_fully_anchored() {
        assert!(m("cpu", "cpu"));
        assert!(!m("cpu", "cpux"));
        assert!(!m("cpu", "xcpu"));
        assert!(!m("cpu", ""));
        assert!(m("", ""));
        assert!(!m("", "a"));
    }

    #[test]
    fn dot_star_prefix_patterns() {
        let r = Regex::new("disk.*").unwrap();
        assert!(r.is_match("disk"));
        assert!(r.is_match("diskio"));
        assert!(r.is_match("disk_read_bytes"));
        assert!(!r.is_match("dis"));
        assert!(!r.is_match("mydisk"));
    }

    #[test]
    fn alternation_and_groups() {
        assert!(m("cpu|mem", "cpu"));
        assert!(m("cpu|mem", "mem"));
        assert!(!m("cpu|mem", "disk"));
        assert!(m("host_(1|2)[0-9]", "host_15"));
        assert!(!m("host_(1|2)[0-9]", "host_35"));
        assert!(m("(ab)+", "ababab"));
        assert!(!m("(ab)+", "aba"));
    }

    #[test]
    fn repetitions() {
        assert!(m("a*", ""));
        assert!(m("a*", "aaaa"));
        assert!(!m("a+", ""));
        assert!(m("a+", "a"));
        assert!(m("colou?r", "color"));
        assert!(m("colou?r", "colour"));
        assert!(!m("colou?r", "colouur"));
    }

    #[test]
    fn character_classes() {
        assert!(m("[a-c]+", "abcba"));
        assert!(!m("[a-c]+", "abd"));
        assert!(m("[^0-9]+", "abc"));
        assert!(!m("[^0-9]+", "ab3"));
        assert!(m("[-x]", "-"));
        assert!(m("[]a]", "]"), "']' first in class is a literal");
        assert!(m(r"[\d]+", "123"));
    }

    #[test]
    fn escapes() {
        assert!(m(r"\d+", "42"));
        assert!(!m(r"\d+", "4a"));
        assert!(m(r"\w+", "host_1"));
        assert!(m(r"a\.b", "a.b"));
        assert!(!m(r"a\.b", "axb"));
        assert!(m(r"\*", "*"));
    }

    #[test]
    fn malformed_patterns_error() {
        for pat in ["(", "(a", "a)", "[a", "*a", "+", r"\q", "[z-a]"] {
            assert!(Regex::new(pat).is_err(), "{pat} should fail to compile");
        }
    }

    #[test]
    fn literal_detection() {
        assert_eq!(Regex::new("cpu").unwrap().as_literal(), Some("cpu".into()));
        assert_eq!(
            Regex::new(r"a\.b").unwrap().as_literal(),
            Some("a.b".into())
        );
        assert_eq!(Regex::new("a.*").unwrap().as_literal(), None);
        assert_eq!(Regex::new("a|b").unwrap().as_literal(), None);
    }

    #[test]
    fn pathological_pattern_is_linear() {
        // (a*)*b against many 'a's is exponential for backtrackers; the NFA
        // simulation must finish instantly.
        let r = Regex::new("(a*)*b").unwrap();
        let input = "a".repeat(10_000);
        let start = std::time::Instant::now();
        assert!(!r.is_match(&input));
        assert!(start.elapsed().as_secs() < 2);
    }

    #[test]
    fn tsbs_style_patterns() {
        let hosts = Regex::new("host_[0-9]+").unwrap();
        assert!(hosts.is_match("host_0"));
        assert!(hosts.is_match("host_1234"));
        assert!(!hosts.is_match("host_"));
        let metrics = Regex::new("(cpu|mem|disk)_.*").unwrap();
        assert!(metrics.is_match("cpu_usage_user"));
        assert!(metrics.is_match("disk_io_time"));
        assert!(!metrics.is_match("net_rx"));
    }

    proptest! {
        #[test]
        fn prop_literal_patterns_match_themselves(s in "[a-zA-Z0-9_]{0,20}") {
            prop_assert!(m(&s, &s));
        }

        #[test]
        fn prop_prefix_star(s in "[a-z]{1,10}", suffix in "[a-z0-9_]{0,10}") {
            let pat = format!("{s}.*");
            let input = format!("{}{}", s, suffix);
            prop_assert!(m(&pat, &input));
        }
    }
}
