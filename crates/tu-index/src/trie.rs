//! A double-array trie with a tail array (Figure 8 of the paper).
//!
//! The paper indexes tag pairs with a double-array trie (derived from the
//! cedar implementation) because it stores millions of keys in three flat
//! arrays — Base, Check, and Tail — which live in segmented file-backed
//! arrays so the page cache can swap cold regions out (§3.2).
//!
//! Structure (Aoe's scheme):
//!
//! * `base[s] > 0` — internal node: the transition on code `c` goes to
//!   `t = base[s] + c`, valid iff `check[t] == s`.
//! * `base[s] < 0` — leaf: `-base[s]` points into the tail array, which
//!   stores the remaining key suffix and the 8-byte value.
//! * `check[t] == FREE (0)` — slot `t` is unallocated.
//!
//! Byte `b` uses code `b + 2`; code 1 is the end-of-key terminator, so a
//! key that is a prefix of another still gets its own leaf.

use std::path::Path;
use std::sync::Arc;

use parking_lot::Mutex;

use tu_common::{varint, Error, Result};
use tu_mmap::pagecache::PageCache;
use tu_mmap::SegArray;

const ROOT: u64 = 1;
const FREE: i32 = 0;
const TERM_CODE: u64 = 1;
const ALPHABET: u64 = 258; // terminator + 256 byte codes, codes 1..=257

#[inline]
fn code_of(b: u8) -> u64 {
    b as u64 + 2
}

/// Statistics for space accounting (Table 3, Figure 3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrieStats {
    pub keys: u64,
    pub base_slots: u64,
    pub tail_bytes: u64,
}

struct Inner {
    base: SegArray<i32>,
    check: SegArray<i32>,
    tail: SegArray<u8>,
    keys: u64,
    /// Search hint: where the last free-base scan ended.
    next_free_hint: u64,
}

/// A persistent double-array trie mapping byte keys to `u64` values.
pub struct DoubleArrayTrie {
    inner: Mutex<Inner>,
}

impl DoubleArrayTrie {
    /// Opens (or creates) a trie stored under `dir` with the given number
    /// of slots per segment file (the paper uses one million).
    pub fn open(
        cache: Arc<PageCache>,
        dir: impl AsRef<Path>,
        slots_per_segment: usize,
    ) -> Result<Self> {
        let dir = dir.as_ref();
        let base = SegArray::open(cache.clone(), dir, "base", slots_per_segment)?;
        let check = SegArray::open(cache.clone(), dir, "check", slots_per_segment)?;
        let tail = SegArray::open(cache, dir, "tail", slots_per_segment)?;
        let mut keys = 0;
        if base.is_empty() {
            // Fresh trie: materialize the root.
            base.set(0, 0)?; // slot 0 unused
            base.set(ROOT, 1)?;
            check.set(0, 0)?;
            check.set(ROOT, 0)?;
            tail.set(0, 0)?; // tail position 0 reserved (negative-zero ambiguity)
        } else {
            // Key count is recomputed lazily on reopen via a full scan; it
            // is persisted in a sidecar to avoid that in the common case.
            let count_path = dir.join("trie.keys");
            if let Ok(bytes) = std::fs::read(&count_path) {
                if bytes.len() == 8 {
                    keys = u64::from_le_bytes(bytes.try_into().expect("8 bytes"));
                }
            }
        }
        Ok(DoubleArrayTrie {
            inner: Mutex::new(Inner {
                base,
                check,
                tail,
                keys,
                next_free_hint: ROOT + 1,
            }),
        })
    }

    /// Persists dirty pages and the key-count sidecar.
    pub fn sync(&self, dir: impl AsRef<Path>) -> Result<()> {
        let inner = self.inner.lock();
        inner.base.sync()?;
        inner.check.sync()?;
        inner.tail.sync()?;
        // tu-lint: allow(held-lock-io): the key-count sidecar must match the
        // synced arrays exactly, so writers stay excluded until it is on disk;
        // sync runs on the maintenance path, never under a query.
        std::fs::write(dir.as_ref().join("trie.keys"), inner.keys.to_le_bytes())?;
        Ok(())
    }

    /// Number of keys stored.
    pub fn len(&self) -> u64 {
        self.inner.lock().keys
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Space accounting for the index-size experiments.
    pub fn stats(&self) -> TrieStats {
        let inner = self.inner.lock();
        TrieStats {
            keys: inner.keys,
            base_slots: inner.base.len(),
            tail_bytes: inner.tail.len(),
        }
    }

    /// Inserts `key -> value`, returning the previous value if the key was
    /// already present.
    pub fn insert(&self, key: &[u8], value: u64) -> Result<Option<u64>> {
        let mut inner = self.inner.lock();
        let mut s = ROOT;
        let mut i = 0usize;
        loop {
            let base_s = inner.base.get(s)?;
            if base_s < 0 {
                // Leaf: compare the remaining key with the stored suffix.
                return split_leaf(&mut inner, s, (-base_s) as u64, &key[i..], value);
            }
            let c = if i < key.len() {
                code_of(key[i])
            } else {
                TERM_CODE
            };
            let t = base_s as u64 + c;
            let check_t = if t < inner.check.len() {
                inner.check.get(t)?
            } else {
                FREE
            };
            if check_t == s as i32 {
                if c == TERM_CODE {
                    // Terminator transition must lead to a leaf.
                    let base_t = inner.base.get(t)?;
                    if base_t < 0 {
                        return split_leaf(&mut inner, t, (-base_t) as u64, &[], value);
                    }
                    return Err(Error::corruption("terminator node is not a leaf"));
                }
                s = t;
                i += 1;
                continue;
            }
            // No transition on c: attach a new leaf holding the remainder.
            let t = claim_child(&mut inner, s, c)?;
            let suffix = if i < key.len() { &key[i + 1..] } else { &[] };
            let tail_pos = append_tail(&mut inner, suffix, value)?;
            inner.base.set(t, -(tail_pos as i32))?;
            inner.keys += 1;
            return Ok(None);
        }
    }

    /// Looks up a key.
    pub fn get(&self, key: &[u8]) -> Result<Option<u64>> {
        let inner = self.inner.lock();
        let mut s = ROOT;
        let mut i = 0usize;
        loop {
            let base_s = inner.base.get(s)?;
            if base_s < 0 {
                let (suffix, value) = read_tail(&inner, (-base_s) as u64)?;
                return Ok((suffix == key[i..]).then_some(value));
            }
            let c = if i < key.len() {
                code_of(key[i])
            } else {
                TERM_CODE
            };
            let t = base_s as u64 + c;
            if t >= inner.check.len() || inner.check.get(t)? != s as i32 {
                return Ok(None);
            }
            if c == TERM_CODE {
                let base_t = inner.base.get(t)?;
                if base_t < 0 {
                    let (suffix, value) = read_tail(&inner, (-base_t) as u64)?;
                    return Ok(suffix.is_empty().then_some(value));
                }
                return Ok(None);
            }
            s = t;
            i += 1;
        }
    }

    /// Visits every `(key, value)` whose key starts with `prefix`, in
    /// unspecified order. The callback returns `false` to stop early.
    pub fn scan_prefix(
        &self,
        prefix: &[u8],
        mut visit: impl FnMut(&[u8], u64) -> bool,
    ) -> Result<()> {
        let inner = self.inner.lock();
        // Walk down the prefix.
        let mut s = ROOT;
        let mut i = 0usize;
        while i < prefix.len() {
            let base_s = inner.base.get(s)?;
            if base_s < 0 {
                let (suffix, value) = read_tail(&inner, (-base_s) as u64)?;
                if suffix.starts_with(&prefix[i..]) {
                    let mut key = prefix[..i].to_vec();
                    key.extend_from_slice(&suffix);
                    visit(&key, value);
                }
                return Ok(());
            }
            let c = code_of(prefix[i]);
            let t = base_s as u64 + c;
            if t >= inner.check.len() || inner.check.get(t)? != s as i32 {
                return Ok(());
            }
            s = t;
            i += 1;
        }
        // DFS below the prefix node.
        let mut stack: Vec<(u64, Vec<u8>)> = vec![(s, prefix.to_vec())];
        while let Some((node, key_so_far)) = stack.pop() {
            let base_n = inner.base.get(node)?;
            if base_n < 0 {
                let (suffix, value) = read_tail(&inner, (-base_n) as u64)?;
                let mut key = key_so_far.clone();
                key.extend_from_slice(&suffix);
                if !visit(&key, value) {
                    return Ok(());
                }
                continue;
            }
            let start = base_n as u64 + TERM_CODE;
            let checks = inner
                .check
                .get_range(start, (ALPHABET - TERM_CODE) as usize)?;
            for (i, &chk) in checks.iter().enumerate().rev() {
                if chk == node as i32 {
                    let c = TERM_CODE + i as u64;
                    let t = base_n as u64 + c;
                    let mut key = key_so_far.clone();
                    if c == TERM_CODE {
                        stack.push((t, key));
                    } else {
                        key.push((c - 2) as u8);
                        stack.push((t, key));
                    }
                }
            }
        }
        Ok(())
    }
}

// --- internal helpers -------------------------------------------------------

/// Appends `suffix` + `value` to the tail pool; returns its position.
fn append_tail(inner: &mut Inner, suffix: &[u8], value: u64) -> Result<u64> {
    let pos = inner.tail.len();
    let mut rec = Vec::with_capacity(suffix.len() + 12);
    varint::write_u64(&mut rec, suffix.len() as u64);
    rec.extend_from_slice(suffix);
    rec.extend_from_slice(&value.to_le_bytes());
    for (k, &b) in rec.iter().enumerate() {
        inner.tail.set(pos + k as u64, b)?;
    }
    if pos > i32::MAX as u64 {
        return Err(Error::LimitExceeded("trie tail exceeds 2 GiB".into()));
    }
    Ok(pos)
}

/// Reads the suffix and value stored at tail position `pos`.
fn read_tail(inner: &Inner, pos: u64) -> Result<(Vec<u8>, u64)> {
    // Read the length varint byte-by-byte (it is at most 10 bytes).
    let mut len_buf = Vec::with_capacity(varint::MAX_VARINT_LEN);
    let mut p = pos;
    loop {
        let b = inner.tail.get(p)?;
        len_buf.push(b);
        p += 1;
        if b & 0x80 == 0 {
            break;
        }
        if len_buf.len() > varint::MAX_VARINT_LEN {
            return Err(Error::corruption("tail length varint too long"));
        }
    }
    let (len, _) = varint::read_u64(&len_buf)?;
    let mut suffix = Vec::with_capacity(len as usize);
    for k in 0..len {
        suffix.push(inner.tail.get(p + k)?);
    }
    p += len;
    let mut vbuf = [0u8; 8];
    for (k, slot) in vbuf.iter_mut().enumerate() {
        *slot = inner.tail.get(p + k as u64)?;
    }
    Ok((suffix, u64::from_le_bytes(vbuf)))
}

/// Overwrites the value of the tail record at `pos` (suffix unchanged).
fn write_tail_value(inner: &mut Inner, pos: u64, value: u64) -> Result<()> {
    let mut p = pos;
    let mut len_buf = Vec::with_capacity(varint::MAX_VARINT_LEN);
    loop {
        let b = inner.tail.get(p)?;
        len_buf.push(b);
        p += 1;
        if b & 0x80 == 0 {
            break;
        }
    }
    let (len, _) = varint::read_u64(&len_buf)?;
    p += len;
    for (k, b) in value.to_le_bytes().iter().enumerate() {
        inner.tail.set(p + k as u64, *b)?;
    }
    Ok(())
}

/// The remaining key at a leaf diverged from the stored suffix: grow the
/// shared prefix into trie nodes and attach two fresh leaves.
fn split_leaf(
    inner: &mut Inner,
    leaf: u64,
    tail_pos: u64,
    new_suffix: &[u8],
    value: u64,
) -> Result<Option<u64>> {
    let (old_suffix, old_value) = read_tail(inner, tail_pos)?;
    if old_suffix == new_suffix {
        write_tail_value(inner, tail_pos, value)?;
        return Ok(Some(old_value));
    }
    // Length of the common prefix.
    let p = old_suffix
        .iter()
        .zip(new_suffix.iter())
        .take_while(|(a, b)| a == b)
        .count();
    // Convert the leaf into a chain of internal nodes for the shared part.
    let mut node = leaf;
    for &b in &old_suffix[..p] {
        let child = claim_child(inner, node, code_of(b))?;
        node = child;
    }
    // Diverge: one child continues the old suffix, one the new.
    let old_code = old_suffix.get(p).map(|&b| code_of(b)).unwrap_or(TERM_CODE);
    let new_code = new_suffix.get(p).map(|&b| code_of(b)).unwrap_or(TERM_CODE);
    debug_assert_ne!(old_code, new_code, "suffixes differ beyond prefix");

    let old_child = claim_child(inner, node, old_code)?;
    let old_rest = if p < old_suffix.len() {
        &old_suffix[p + 1..]
    } else {
        &[]
    };
    let old_tail = append_tail(inner, old_rest, old_value)?;
    inner.base.set(old_child, -(old_tail as i32))?;

    let new_child = claim_child(inner, node, new_code)?;
    let new_rest = if p < new_suffix.len() {
        &new_suffix[p + 1..]
    } else {
        &[]
    };
    let new_tail = append_tail(inner, new_rest, value)?;
    inner.base.set(new_child, -(new_tail as i32))?;

    inner.keys += 1;
    Ok(None)
}

/// Ensures node `parent` has a child on `code`, relocating `parent`'s
/// children if the natural slot is taken. Returns the child slot, with
/// `check` set and `base` zeroed (caller decides leaf vs. internal).
fn claim_child(inner: &mut Inner, parent: u64, code: u64) -> Result<u64> {
    let base_p = inner.base.get(parent)?;
    if base_p > 0 {
        let t = base_p as u64 + code;
        ensure_len(inner, t + 1)?;
        if inner.check.get(t)? == FREE {
            inner.check.set(t, parent as i32)?;
            inner.base.set(t, 0)?;
            return Ok(t);
        }
        // Conflict: relocate parent's children to a base that also fits
        // the new code.
        let mut codes = children_of(inner, parent)?;
        codes.push(code);
        let new_base = find_base(inner, &codes)?;
        relocate(inner, parent, new_base, &codes[..codes.len() - 1])?;
        let t = new_base + code;
        inner.check.set(t, parent as i32)?;
        inner.base.set(t, 0)?;
        Ok(t)
    } else {
        // Parent was a leaf being converted to an internal node (split), or
        // a fresh node with no base yet: pick a base fitting this one code.
        let new_base = find_base(inner, &[code])?;
        inner.base.set(parent, new_base as i32)?;
        let t = new_base + code;
        inner.check.set(t, parent as i32)?;
        inner.base.set(t, 0)?;
        Ok(t)
    }
}

/// All outgoing transition codes of `parent`.
fn children_of(inner: &Inner, parent: u64) -> Result<Vec<u64>> {
    let base_p = inner.base.get(parent)?;
    let mut out = Vec::new();
    if base_p <= 0 {
        return Ok(out);
    }
    let start = base_p as u64 + TERM_CODE;
    let checks = inner
        .check
        .get_range(start, (ALPHABET - TERM_CODE) as usize)?;
    for (i, &chk) in checks.iter().enumerate() {
        if chk == parent as i32 {
            out.push(TERM_CODE + i as u64);
        }
    }
    Ok(out)
}

/// Finds a base value such that `base + c` is free for every `c` in
/// `codes`. Bases start at 1 so slot indexes stay positive.
fn find_base(inner: &mut Inner, codes: &[u64]) -> Result<u64> {
    debug_assert!(!codes.is_empty());
    let mut b = inner.next_free_hint.max(ALPHABET) - ALPHABET + 1;
    if b < 1 {
        b = 1;
    }
    'search: loop {
        for &c in codes {
            let t = b + c;
            if t <= ROOT {
                b += 1;
                continue 'search;
            }
            ensure_len(inner, t + 1)?;
            if inner.check.get(t)? != FREE {
                b += 1;
                continue 'search;
            }
        }
        // Advance the hint conservatively: slots below b + min(code) are
        // unlikely to fit future claims of similar shape.
        inner.next_free_hint = b;
        return Ok(b);
    }
}

fn ensure_len(inner: &mut Inner, len: u64) -> Result<()> {
    if inner.check.len() < len {
        inner.check.resize(len)?;
    }
    if inner.base.len() < len {
        inner.base.resize(len)?;
    }
    Ok(())
}

/// Moves `parent`'s children (transition codes in `codes`) to `new_base`,
/// updating grandchildren's check pointers.
fn relocate(inner: &mut Inner, parent: u64, new_base: u64, codes: &[u64]) -> Result<()> {
    let old_base = inner.base.get(parent)? as u64;
    for &c in codes {
        let old = old_base + c;
        let new = new_base + c;
        let old_node_base = inner.base.get(old)?;
        inner.base.set(new, old_node_base)?;
        inner.check.set(new, parent as i32)?;
        // Re-point grandchildren at the moved node.
        if old_node_base > 0 {
            let start = old_node_base as u64 + TERM_CODE;
            let checks = inner
                .check
                .get_range(start, (ALPHABET - TERM_CODE) as usize)?;
            for (i, &chk) in checks.iter().enumerate() {
                if chk == old as i32 {
                    inner.check.set(start + i as u64, new as i32)?;
                }
            }
        }
        inner.base.set(old, 0)?;
        inner.check.set(old, FREE)?;
    }
    inner.base.set(parent, new_base as i32)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;
    use tu_mmap::pagecache::PAGE_SIZE;

    fn trie() -> (tempfile::TempDir, DoubleArrayTrie) {
        let dir = tempfile::tempdir().unwrap();
        let cache = PageCache::new(256 * PAGE_SIZE);
        let t = DoubleArrayTrie::open(cache, dir.path().join("trie"), 4096).unwrap();
        (dir, t)
    }

    #[test]
    fn insert_get_basic() {
        let (_d, t) = trie();
        assert_eq!(t.insert(b"metric\x01cpu", 1).unwrap(), None);
        assert_eq!(t.insert(b"metric\x01disk", 2).unwrap(), None);
        assert_eq!(t.get(b"metric\x01cpu").unwrap(), Some(1));
        assert_eq!(t.get(b"metric\x01disk").unwrap(), Some(2));
        assert_eq!(t.get(b"metric\x01mem").unwrap(), None);
        assert_eq!(t.get(b"metric").unwrap(), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn overwrite_returns_old_value() {
        let (_d, t) = trie();
        assert_eq!(t.insert(b"k", 10).unwrap(), None);
        assert_eq!(t.insert(b"k", 20).unwrap(), Some(10));
        assert_eq!(t.get(b"k").unwrap(), Some(20));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn prefix_keys_coexist() {
        let (_d, t) = trie();
        t.insert(b"a", 1).unwrap();
        t.insert(b"ab", 2).unwrap();
        t.insert(b"abc", 3).unwrap();
        t.insert(b"", 0).unwrap();
        assert_eq!(t.get(b"").unwrap(), Some(0));
        assert_eq!(t.get(b"a").unwrap(), Some(1));
        assert_eq!(t.get(b"ab").unwrap(), Some(2));
        assert_eq!(t.get(b"abc").unwrap(), Some(3));
        assert_eq!(t.get(b"abcd").unwrap(), None);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn paper_example_cpu_disk() {
        // Figure 8: metric$cpu and metric$disk share the "metric$" spine
        // and diverge into tails "pu" / "isk".
        let (_d, t) = trie();
        t.insert(b"metric$cpu", 100).unwrap();
        t.insert(b"metric$disk", 200).unwrap();
        assert_eq!(t.get(b"metric$cpu").unwrap(), Some(100));
        assert_eq!(t.get(b"metric$disk").unwrap(), Some(200));
        assert_eq!(t.get(b"metric$c").unwrap(), None);
        assert_eq!(t.get(b"metric$cpux").unwrap(), None);
    }

    #[test]
    fn scan_prefix_enumerates_subtree() {
        let (_d, t) = trie();
        let keys: &[(&[u8], u64)] = &[
            (b"host\x01h1", 1),
            (b"host\x01h2", 2),
            (b"host\x01h10", 3),
            (b"metric\x01cpu", 4),
        ];
        for (k, v) in keys {
            t.insert(k, *v).unwrap();
        }
        let mut seen = BTreeMap::new();
        t.scan_prefix(b"host\x01", |k, v| {
            seen.insert(k.to_vec(), v);
            true
        })
        .unwrap();
        assert_eq!(seen.len(), 3);
        assert_eq!(seen.get(b"host\x01h10".as_slice()), Some(&3));
        // Full scan sees everything.
        let mut count = 0;
        t.scan_prefix(b"", |_, _| {
            count += 1;
            true
        })
        .unwrap();
        assert_eq!(count, 4);
        // Early stop works.
        let mut count = 0;
        t.scan_prefix(b"", |_, _| {
            count += 1;
            false
        })
        .unwrap();
        assert_eq!(count, 1);
    }

    #[test]
    fn many_keys_force_relocations() {
        let (_d, t) = trie();
        let mut model = BTreeMap::new();
        for i in 0..2000u64 {
            let key = format!("tag{}\x01value{}", i % 37, i);
            t.insert(key.as_bytes(), i).unwrap();
            model.insert(key, i);
        }
        assert_eq!(t.len(), model.len() as u64);
        for (k, v) in &model {
            assert_eq!(t.get(k.as_bytes()).unwrap(), Some(*v), "key {k}");
        }
        assert_eq!(t.get(b"tag0\x01value2001").unwrap(), None);
    }

    #[test]
    fn binary_keys_with_all_byte_values() {
        let (_d, t) = trie();
        let keys: Vec<Vec<u8>> = (0..=255u8).map(|b| vec![b, 255 - b, b]).collect();
        for (i, k) in keys.iter().enumerate() {
            t.insert(k, i as u64).unwrap();
        }
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(t.get(k).unwrap(), Some(i as u64));
        }
    }

    #[test]
    fn reopen_recovers_contents() {
        let dir = tempfile::tempdir().unwrap();
        let cache = PageCache::new(256 * PAGE_SIZE);
        {
            let t = DoubleArrayTrie::open(cache.clone(), dir.path().join("t"), 4096).unwrap();
            for i in 0..500u64 {
                t.insert(format!("key-{i}").as_bytes(), i).unwrap();
            }
            t.sync(dir.path().join("t")).unwrap();
        }
        let t = DoubleArrayTrie::open(cache, dir.path().join("t"), 4096).unwrap();
        assert_eq!(t.len(), 500);
        for i in (0..500u64).step_by(41) {
            assert_eq!(t.get(format!("key-{i}").as_bytes()).unwrap(), Some(i));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(20))]
        #[test]
        fn prop_matches_btreemap_model(
            entries in proptest::collection::vec(
                (proptest::collection::vec(any::<u8>(), 0..20), any::<u64>()),
                0..300,
            ),
            probes in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..20), 0..50),
        ) {
            let (_d, t) = trie();
            let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
            for (k, v) in &entries {
                let expected = model.insert(k.clone(), *v);
                prop_assert_eq!(t.insert(k, *v).unwrap(), expected);
            }
            prop_assert_eq!(t.len(), model.len() as u64);
            for (k, v) in &model {
                prop_assert_eq!(t.get(k).unwrap(), Some(*v));
            }
            for probe in &probes {
                prop_assert_eq!(t.get(probe).unwrap(), model.get(probe).copied());
            }
            // scan_prefix("") must enumerate exactly the model.
            let mut seen: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
            t.scan_prefix(b"", |k, v| { seen.insert(k.to_vec(), v); true }).unwrap();
            prop_assert_eq!(seen, model);
        }
    }
}
