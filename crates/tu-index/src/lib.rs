//! The memory-efficient inverted index (§3.2 of the paper).
//!
//! Prometheus tsdb keeps one inverted index per time partition in nested
//! hash tables, which Figure 3 shows dominating memory at scale. TimeUnion
//! replaces that with a single *global* index whose tag dictionary is a
//! double-array trie stored in segmented file-backed arrays:
//!
//! * [`trie`] — a cedar-style double-array trie with a tail array
//!   (Figure 8), keyed by `tagkey\x01tagvalue` strings, mapping each tag
//!   pair to a postings slot.
//! * [`postings`] — sorted postings lists of series/group IDs with
//!   intersection/union operations.
//! * [`inverted`] — the combined index: add/remove series, evaluate tag
//!   selectors.
//! * [`matcher`] — exact and regular-expression tag selectors, backed by a
//!   small from-scratch regex engine (anchored full-match semantics, the
//!   same as Prometheus selectors like `metric=~"disk.*"`).

pub mod inverted;
pub mod matcher;
pub mod postings;
pub mod regexlite;
pub mod trie;

pub use inverted::InvertedIndex;
pub use matcher::Selector;
pub use trie::DoubleArrayTrie;

/// Separator between tag key and tag value in trie keys. The paper uses
/// `'$'`; a control byte is used here so user data cannot collide with it.
pub const KV_SEPARATOR: u8 = 0x01;
