//! Sorted postings lists of series/group IDs.
//!
//! Each tag pair maps (through the trie) to one postings list. Lists are
//! kept sorted so selector evaluation is a linear-time merge. Group IDs
//! appear in postings exactly like series IDs (the paper's §3.1: "the
//! group ID is utilized as the postings ID"), which is what shortens
//! postings lists under grouping (Figure 5).

use tu_common::SeriesId;

/// A store of postings lists, addressed by dense `u64` slots handed out at
/// creation time (the trie stores the slot as the tag pair's value).
#[derive(Debug, Default)]
pub struct PostingsStore {
    lists: Vec<Vec<SeriesId>>,
}

impl PostingsStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty list and returns its slot.
    pub fn create(&mut self) -> u64 {
        self.lists.push(Vec::new());
        (self.lists.len() - 1) as u64
    }

    /// Number of lists.
    pub fn len(&self) -> usize {
        self.lists.len()
    }

    pub fn is_empty(&self) -> bool {
        self.lists.is_empty()
    }

    /// Adds `id` to the list at `slot` (no-op if already present).
    pub fn add(&mut self, slot: u64, id: SeriesId) {
        let list = &mut self.lists[slot as usize];
        if let Err(pos) = list.binary_search(&id) {
            list.insert(pos, id);
        }
    }

    /// Removes `id` from the list at `slot`. Returns true if it was there.
    pub fn remove(&mut self, slot: u64, id: SeriesId) -> bool {
        let list = &mut self.lists[slot as usize];
        match list.binary_search(&id) {
            Ok(pos) => {
                list.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Borrow of the sorted list at `slot`.
    pub fn get(&self, slot: u64) -> &[SeriesId] {
        &self.lists[slot as usize]
    }

    /// Total number of posting entries across all lists (the `N·T·Sp` term
    /// of Equation 1).
    pub fn total_entries(&self) -> u64 {
        self.lists.iter().map(|l| l.len() as u64).sum()
    }

    /// Heap bytes retained, for the memory experiments.
    pub fn heap_bytes(&self) -> usize {
        self.lists.capacity() * std::mem::size_of::<Vec<SeriesId>>()
            + self
                .lists
                .iter()
                .map(|l| l.capacity() * std::mem::size_of::<SeriesId>())
                .sum::<usize>()
    }
}

/// Intersection of two sorted ID lists.
pub fn intersect(a: &[SeriesId], b: &[SeriesId]) -> Vec<SeriesId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Union of two sorted ID lists.
pub fn union(a: &[SeriesId], b: &[SeriesId]) -> Vec<SeriesId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    #[test]
    fn add_remove_keeps_sorted_dedup() {
        let mut p = PostingsStore::new();
        let slot = p.create();
        for id in [5, 1, 3, 5, 2, 1] {
            p.add(slot, id);
        }
        assert_eq!(p.get(slot), &[1, 2, 3, 5]);
        assert!(p.remove(slot, 3));
        assert!(!p.remove(slot, 3));
        assert_eq!(p.get(slot), &[1, 2, 5]);
        assert_eq!(p.total_entries(), 3);
    }

    #[test]
    fn intersect_and_union_basics() {
        assert_eq!(intersect(&[1, 3, 5], &[2, 3, 5, 7]), vec![3, 5]);
        assert_eq!(intersect(&[], &[1]), Vec::<u64>::new());
        assert_eq!(union(&[1, 3], &[2, 3, 9]), vec![1, 2, 3, 9]);
        assert_eq!(union(&[], &[]), Vec::<u64>::new());
    }

    proptest! {
        #[test]
        fn prop_set_semantics(a in proptest::collection::btree_set(0u64..500, 0..100),
                              b in proptest::collection::btree_set(0u64..500, 0..100)) {
            let av: Vec<u64> = a.iter().copied().collect();
            let bv: Vec<u64> = b.iter().copied().collect();
            let expect_i: Vec<u64> = a.intersection(&b).copied().collect();
            let expect_u: Vec<u64> = a.union(&b).copied().collect();
            prop_assert_eq!(intersect(&av, &bv), expect_i);
            prop_assert_eq!(union(&av, &bv), expect_u);
        }

        #[test]
        fn prop_store_matches_model(ops in proptest::collection::vec((any::<bool>(), 0u64..100), 0..200)) {
            let mut p = PostingsStore::new();
            let slot = p.create();
            let mut model = BTreeSet::new();
            for (add, id) in ops {
                if add {
                    p.add(slot, id);
                    model.insert(id);
                } else {
                    let removed = p.remove(slot, id);
                    prop_assert_eq!(removed, model.remove(&id));
                }
            }
            let expect: Vec<u64> = model.into_iter().collect();
            prop_assert_eq!(p.get(slot), expect.as_slice());
        }
    }
}
