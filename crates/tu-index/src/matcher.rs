//! Tag selectors: exact and regular-expression matchers (§3.4).
//!
//! A query passes a set of selectors such as `metric="cpu"` or
//! `metric=~"disk.*"`; the index intersects the postings of all selectors.

use crate::regexlite::Regex;
use tu_common::Result;

/// How a selector matches tag values.
#[derive(Debug, Clone)]
pub enum Matcher {
    /// Exact string equality (`=`).
    Exact(String),
    /// Anchored regular-expression match (`=~`).
    Regex(Regex),
}

/// A tag selector: a tag key plus a value matcher.
#[derive(Debug, Clone)]
pub struct Selector {
    pub key: String,
    pub matcher: Matcher,
}

impl Selector {
    /// `key="value"`.
    pub fn exact(key: impl Into<String>, value: impl Into<String>) -> Self {
        Selector {
            key: key.into(),
            matcher: Matcher::Exact(value.into()),
        }
    }

    /// `key=~"pattern"`. Errors on malformed patterns.
    pub fn regex(key: impl Into<String>, pattern: &str) -> Result<Self> {
        let compiled = Regex::new(pattern)?;
        // Degenerate regexes like `cpu` are downgraded to exact matches so
        // they use a single trie lookup instead of a prefix scan.
        if let Some(lit) = compiled.as_literal() {
            return Ok(Selector {
                key: key.into(),
                matcher: Matcher::Exact(lit),
            });
        }
        Ok(Selector {
            key: key.into(),
            matcher: Matcher::Regex(compiled),
        })
    }

    /// Tests a tag value against this selector.
    pub fn matches_value(&self, value: &str) -> bool {
        match &self.matcher {
            Matcher::Exact(v) => v == value,
            Matcher::Regex(r) => r.is_match(value),
        }
    }

    /// True if this selector needs a value scan (regex) rather than one
    /// exact lookup.
    pub fn is_regex(&self) -> bool {
        matches!(self.matcher, Matcher::Regex(_))
    }
}

impl std::fmt::Display for Selector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.matcher {
            Matcher::Exact(v) => write!(f, "{}=\"{v}\"", self.key),
            Matcher::Regex(r) => write!(f, "{}=~\"{}\"", self.key, r.as_str()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_selector_matches_exactly() {
        let s = Selector::exact("metric", "cpu");
        assert!(s.matches_value("cpu"));
        assert!(!s.matches_value("cpu2"));
        assert!(!s.is_regex());
        assert_eq!(s.to_string(), "metric=\"cpu\"");
    }

    #[test]
    fn regex_selector_matches_anchored() {
        let s = Selector::regex("metric", "disk.*").unwrap();
        assert!(s.is_regex());
        assert!(s.matches_value("disk"));
        assert!(s.matches_value("diskio"));
        assert!(!s.matches_value("ramdisk"));
        assert_eq!(s.to_string(), "metric=~\"disk.*\"");
    }

    #[test]
    fn literal_regex_downgrades_to_exact() {
        let s = Selector::regex("metric", "cpu").unwrap();
        assert!(!s.is_regex(), "literal pattern should become exact");
        assert!(s.matches_value("cpu"));
        assert!(!s.matches_value("cpux"));
    }

    #[test]
    fn malformed_regex_is_an_error() {
        assert!(Selector::regex("m", "(").is_err());
    }
}
