//! The global inverted index: trie-backed tag dictionary plus postings.
//!
//! Unlike Prometheus tsdb, which builds one index per time partition and
//! loads old partitions' indexes into memory for querying, TimeUnion keeps
//! a *single* global index covering all live series and groups (§3.2).
//! Tag pairs live in the double-array trie; each maps to a postings list
//! of series/group IDs.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::matcher::{Matcher, Selector};
use crate::postings::{intersect, union, PostingsStore};
use crate::trie::DoubleArrayTrie;
use crate::KV_SEPARATOR;
use tu_common::{Labels, Result, SeriesId};
use tu_mmap::pagecache::PageCache;

fn trie_key(key: &str, value: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(key.len() + value.len() + 1);
    out.extend_from_slice(key.as_bytes());
    out.push(KV_SEPARATOR);
    out.extend_from_slice(value.as_bytes());
    out
}

/// The combined inverted index.
pub struct InvertedIndex {
    trie: DoubleArrayTrie,
    postings: RwLock<PostingsStore>,
    dir: PathBuf,
}

impl InvertedIndex {
    /// Opens (or creates) the index under `dir`. `slots_per_segment`
    /// controls the trie's file-array segmentation (1M in the paper).
    pub fn open(
        cache: Arc<PageCache>,
        dir: impl Into<PathBuf>,
        slots_per_segment: usize,
    ) -> Result<Self> {
        let dir = dir.into();
        let trie = DoubleArrayTrie::open(cache, &dir, slots_per_segment)?;
        let mut postings = PostingsStore::new();
        // Postings are rebuilt from the sidecar on reopen; if absent (crash
        // before sync), the engine replays its WAL to repopulate.
        let sidecar = dir.join("postings.dat");
        if sidecar.exists() {
            postings = load_postings(&sidecar)?;
        }
        Ok(InvertedIndex {
            trie,
            postings: RwLock::new(postings),
            dir,
        })
    }

    /// Indexes `id` under every tag pair in `labels`.
    pub fn add(&self, labels: &Labels, id: SeriesId) -> Result<()> {
        for (k, v) in labels.iter() {
            let key = trie_key(k, v);
            let slot = match self.trie.get(&key)? {
                Some(slot) => slot,
                None => {
                    let slot = self.postings.write().create();
                    self.trie.insert(&key, slot)?;
                    slot
                }
            };
            self.postings.write().add(slot, id);
        }
        Ok(())
    }

    /// Removes `id` from every tag pair in `labels` (retention purge).
    pub fn remove(&self, labels: &Labels, id: SeriesId) -> Result<()> {
        for (k, v) in labels.iter() {
            if let Some(slot) = self.trie.get(&trie_key(k, v))? {
                self.postings.write().remove(slot, id);
            }
        }
        Ok(())
    }

    /// The sorted postings for one exact tag pair.
    pub fn postings_for(&self, key: &str, value: &str) -> Result<Vec<SeriesId>> {
        Ok(match self.trie.get(&trie_key(key, value))? {
            Some(slot) => self.postings.read().get(slot).to_vec(),
            None => Vec::new(),
        })
    }

    /// All values recorded for a tag key, sorted.
    pub fn tag_values(&self, key: &str) -> Result<Vec<String>> {
        let mut prefix = key.as_bytes().to_vec();
        prefix.push(KV_SEPARATOR);
        let mut out = Vec::new();
        self.trie.scan_prefix(&prefix, |full_key, _| {
            let value = &full_key[prefix.len()..];
            if let Ok(s) = std::str::from_utf8(value) {
                out.push(s.to_string());
            }
            true
        })?;
        out.sort();
        Ok(out)
    }

    /// Evaluates one selector to a sorted ID list.
    fn eval_selector(&self, sel: &Selector) -> Result<Vec<SeriesId>> {
        match &sel.matcher {
            Matcher::Exact(value) => self.postings_for(&sel.key, value),
            Matcher::Regex(re) => {
                let mut prefix = sel.key.as_bytes().to_vec();
                prefix.push(KV_SEPARATOR);
                let mut slots = Vec::new();
                self.trie.scan_prefix(&prefix, |full_key, slot| {
                    let value = &full_key[prefix.len()..];
                    if re.is_match_bytes(value) {
                        slots.push(slot);
                    }
                    true
                })?;
                let postings = self.postings.read();
                let mut acc: Vec<SeriesId> = Vec::new();
                for slot in slots {
                    acc = union(&acc, postings.get(slot));
                }
                Ok(acc)
            }
        }
    }

    /// Evaluates a conjunction of selectors: the intersection of each
    /// selector's postings. An empty selector list selects nothing.
    pub fn select(&self, selectors: &[Selector]) -> Result<Vec<SeriesId>> {
        let mut iter = selectors.iter();
        let first = match iter.next() {
            Some(s) => self.eval_selector(s)?,
            None => return Ok(Vec::new()),
        };
        let mut acc = first;
        for sel in iter {
            if acc.is_empty() {
                break;
            }
            acc = intersect(&acc, &self.eval_selector(sel)?);
        }
        Ok(acc)
    }

    /// Number of distinct tag pairs indexed.
    pub fn tag_pairs(&self) -> u64 {
        self.trie.len()
    }

    /// Total posting entries (Equation 1's `N·T` term measured directly).
    pub fn posting_entries(&self) -> u64 {
        self.postings.read().total_entries()
    }

    /// Heap bytes of the postings lists (the trie is file-backed and
    /// accounted via the page cache).
    pub fn heap_bytes(&self) -> usize {
        self.postings.read().heap_bytes()
    }

    /// Persists the trie and the postings sidecar.
    pub fn sync(&self) -> Result<()> {
        self.trie.sync(&self.dir)?;
        save_postings(&self.dir.join("postings.dat"), &self.postings.read())?;
        Ok(())
    }
}

fn save_postings(path: &Path, store: &PostingsStore) -> Result<()> {
    use tu_common::varint;
    let mut out = Vec::new();
    varint::write_u64(&mut out, store.len() as u64);
    for slot in 0..store.len() as u64 {
        let list = store.get(slot);
        varint::write_u64(&mut out, list.len() as u64);
        let mut prev = 0u64;
        for &id in list {
            varint::write_u64(&mut out, id.wrapping_sub(prev));
            prev = id;
        }
    }
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, &out)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

fn load_postings(path: &Path) -> Result<PostingsStore> {
    use tu_common::varint;
    let bytes = std::fs::read(path)?;
    let mut off = 0usize;
    let (count, n) = varint::read_u64(&bytes[off..])?;
    off += n;
    let mut store = PostingsStore::new();
    for _ in 0..count {
        let slot = store.create();
        let (len, n) = varint::read_u64(&bytes[off..])?;
        off += n;
        let mut prev = 0u64;
        for _ in 0..len {
            let (delta, n) = varint::read_u64(&bytes[off..])?;
            off += n;
            prev = prev.wrapping_add(delta);
            store.add(slot, prev);
        }
    }
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tu_common::GROUP_ID_FLAG;
    use tu_mmap::pagecache::PAGE_SIZE;

    fn index() -> (tempfile::TempDir, InvertedIndex) {
        let dir = tempfile::tempdir().unwrap();
        let cache = PageCache::new(256 * PAGE_SIZE);
        let idx = InvertedIndex::open(cache, dir.path().join("idx"), 4096).unwrap();
        (dir, idx)
    }

    fn labels(pairs: &[(&str, &str)]) -> Labels {
        Labels::from_pairs(pairs.iter().copied())
    }

    #[test]
    fn add_and_select_exact() {
        let (_d, idx) = index();
        idx.add(&labels(&[("metric", "cpu"), ("host", "h1")]), 1)
            .unwrap();
        idx.add(&labels(&[("metric", "cpu"), ("host", "h2")]), 2)
            .unwrap();
        idx.add(&labels(&[("metric", "mem"), ("host", "h1")]), 3)
            .unwrap();
        assert_eq!(
            idx.select(&[Selector::exact("metric", "cpu")]).unwrap(),
            vec![1, 2]
        );
        assert_eq!(
            idx.select(&[
                Selector::exact("metric", "cpu"),
                Selector::exact("host", "h1")
            ])
            .unwrap(),
            vec![1]
        );
        assert!(idx
            .select(&[Selector::exact("metric", "disk")])
            .unwrap()
            .is_empty());
        assert!(idx.select(&[]).unwrap().is_empty());
        assert_eq!(idx.tag_pairs(), 4);
        assert_eq!(idx.posting_entries(), 6);
    }

    #[test]
    fn regex_selection_unions_matching_values() {
        let (_d, idx) = index();
        for (i, m) in ["disk_read", "disk_write", "cpu_user", "diskless"]
            .iter()
            .enumerate()
        {
            idx.add(&labels(&[("metric", m)]), i as u64 + 1).unwrap();
        }
        let sel = Selector::regex("metric", "disk_.*").unwrap();
        assert_eq!(idx.select(&[sel]).unwrap(), vec![1, 2]);
        let sel = Selector::regex("metric", "disk.*").unwrap();
        assert_eq!(idx.select(&[sel]).unwrap(), vec![1, 2, 4]);
    }

    #[test]
    fn group_ids_live_in_the_same_postings() {
        // Figure 5: grouping shortens postings because the group ID stands
        // in for all member series.
        let (_d, idx) = index();
        let gid = 7 | GROUP_ID_FLAG;
        idx.add(&labels(&[("region", "1"), ("device", "1")]), gid)
            .unwrap();
        assert_eq!(idx.postings_for("region", "1").unwrap(), vec![gid]);
        assert_eq!(idx.posting_entries(), 2);
    }

    #[test]
    fn remove_unindexes_series() {
        let (_d, idx) = index();
        let l = labels(&[("metric", "cpu"), ("host", "h1")]);
        idx.add(&l, 1).unwrap();
        idx.add(&labels(&[("metric", "cpu")]), 2).unwrap();
        idx.remove(&l, 1).unwrap();
        assert_eq!(
            idx.select(&[Selector::exact("metric", "cpu")]).unwrap(),
            vec![2]
        );
        assert!(idx.postings_for("host", "h1").unwrap().is_empty());
    }

    #[test]
    fn tag_values_enumerates_sorted() {
        let (_d, idx) = index();
        for (i, h) in ["h9", "h1", "h10"].iter().enumerate() {
            idx.add(&labels(&[("host", h)]), i as u64).unwrap();
        }
        assert_eq!(idx.tag_values("host").unwrap(), vec!["h1", "h10", "h9"]);
        assert!(idx.tag_values("nope").unwrap().is_empty());
    }

    #[test]
    fn duplicate_add_is_idempotent() {
        let (_d, idx) = index();
        let l = labels(&[("metric", "cpu")]);
        idx.add(&l, 5).unwrap();
        idx.add(&l, 5).unwrap();
        assert_eq!(idx.postings_for("metric", "cpu").unwrap(), vec![5]);
    }

    #[test]
    fn sync_and_reopen_recovers() {
        let dir = tempfile::tempdir().unwrap();
        let cache = PageCache::new(256 * PAGE_SIZE);
        {
            let idx = InvertedIndex::open(cache.clone(), dir.path().join("i"), 4096).unwrap();
            for i in 0..100u64 {
                idx.add(&labels(&[("metric", "cpu"), ("host", &format!("h{i}"))]), i)
                    .unwrap();
            }
            idx.sync().unwrap();
        }
        let idx = InvertedIndex::open(cache, dir.path().join("i"), 4096).unwrap();
        assert_eq!(
            idx.select(&[Selector::exact("metric", "cpu")])
                .unwrap()
                .len(),
            100
        );
        assert_eq!(
            idx.select(&[Selector::exact("host", "h42")]).unwrap(),
            vec![42]
        );
    }

    #[test]
    fn high_cardinality_selection() {
        let (_d, idx) = index();
        for i in 0..1000u64 {
            idx.add(
                &labels(&[
                    ("metric", if i % 2 == 0 { "cpu" } else { "mem" }),
                    ("host", &format!("host_{i}")),
                    ("dc", &format!("dc{}", i % 4)),
                ]),
                i,
            )
            .unwrap();
        }
        let got = idx
            .select(&[
                Selector::exact("metric", "cpu"),
                Selector::exact("dc", "dc2"),
            ])
            .unwrap();
        assert_eq!(got.len(), 250);
        assert!(got.iter().all(|id| id % 2 == 0 && id % 4 == 2));
        let re = idx
            .select(&[Selector::regex("host", "host_99[0-9]").unwrap()])
            .unwrap();
        assert_eq!(re.len(), 10);
    }
}
