//! Property tests of the SSTable against a BTreeMap reference model, and
//! fault-injection tests of the time-partitioned tree's error handling.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;

use tu_cloud::block::BlockStore;
use tu_cloud::cost::{CostClock, LatencyMode, LatencyModel};
use tu_cloud::StorageEnv;
use tu_lsm::sstable::{Table, TableBuilder, TableSource};
use tu_lsm::{TimeTree, TreeOptions};

fn open_table(dir: &tempfile::TempDir, bytes: &[u8]) -> Table {
    let store = Arc::new(
        BlockStore::open(
            dir.path().join("b"),
            LatencyModel::ebs(),
            CostClock::new(LatencyMode::Off),
        )
        .unwrap(),
    );
    store.write_file("sst", bytes).unwrap();
    Table::open(TableSource::Block(store, "sst".into()), None).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// get/range/scan_all agree with a BTreeMap over arbitrary key/value
    /// sets (including empty values, long keys, adjacent keys).
    #[test]
    fn table_matches_btreemap_model(
        entries in proptest::collection::btree_map(
            proptest::collection::vec(any::<u8>(), 1..24),
            proptest::collection::vec(any::<u8>(), 0..64),
            1..300,
        ),
        probes in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..24), 0..30),
    ) {
        let model: BTreeMap<Vec<u8>, Vec<u8>> = entries;
        let mut b = TableBuilder::new();
        for (k, v) in &model {
            b.add(k, v).unwrap();
        }
        let (bytes, props) = b.finish().unwrap();
        prop_assert_eq!(props.entries as usize, model.len());
        let dir = tempfile::tempdir().unwrap();
        let table = open_table(&dir, &bytes);

        // Point gets: members and non-members.
        for (k, v) in model.iter().take(50) {
            let got = table.get(k).unwrap();
            prop_assert_eq!(got.as_deref(), Some(v.as_slice()));
        }
        for probe in &probes {
            prop_assert_eq!(
                table.get(probe).unwrap(),
                model.get(probe).cloned(),
            );
        }
        // Full scan preserves order and content.
        let scanned = table.scan_all().unwrap();
        let expect: Vec<(Vec<u8>, Vec<u8>)> =
            model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        prop_assert_eq!(scanned, expect);
        // Range between two probe keys equals the model range.
        if probes.len() >= 2 {
            let (mut lo, mut hi) = (probes[0].clone(), probes[1].clone());
            if lo > hi {
                std::mem::swap(&mut lo, &mut hi);
            }
            let got = table.range(&lo, &hi).unwrap();
            let expect: Vec<(Vec<u8>, Vec<u8>)> = model
                .range(lo..hi)
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            prop_assert_eq!(got, expect);
        }
    }
}

const MIN: i64 = 60_000;

fn loaded_tree(dir: &tempfile::TempDir) -> (StorageEnv, TimeTree) {
    let env = StorageEnv::open(dir.path(), LatencyMode::Off).unwrap();
    let tree = TimeTree::open(
        env.clone(),
        TreeOptions {
            memtable_bytes: 8 << 10,
            l0_partition_ms: 30 * MIN,
            l2_partition_ms: 120 * MIN,
            max_sstable_bytes: 16 << 10,
            ..TreeOptions::default()
        },
    )
    .unwrap();
    for c in 0..12i64 {
        for id in 0..8u64 {
            let payload: Vec<u8> = (0..64).map(|i| (id as u8) ^ (c as u8) ^ i).collect();
            if tree.put(id, c * 30 * MIN, payload) {
                tree.maintain().unwrap();
            }
        }
    }
    tree.flush_all_to_slow().unwrap();
    (env, tree)
}

/// A vanished slow-tier object surfaces as a typed error, never a panic
/// or silent data loss.
#[test]
fn missing_s3_object_is_a_typed_error() {
    let dir = tempfile::tempdir().unwrap();
    let (env, tree) = loaded_tree(&dir);
    let victims = env.object.list_prefix("l2/");
    assert!(!victims.is_empty());
    env.object.delete(&victims[0]).unwrap();
    let mut saw_error = false;
    for id in 0..8u64 {
        match tree.range_chunks(id, 0, 10 * 120 * MIN) {
            Ok(_) => {}
            Err(e) => {
                saw_error = true;
                assert!(
                    e.is_not_found() || e.is_corruption(),
                    "unexpected error kind: {e}"
                );
            }
        }
    }
    assert!(saw_error, "some series must hit the missing table");
}

/// A corrupted slow-tier object is detected by checksums.
#[test]
fn corrupted_s3_object_is_detected() {
    let dir = tempfile::tempdir().unwrap();
    let (env, tree) = loaded_tree(&dir);
    let victims = env.object.list_prefix("l2/");
    let name = &victims[0];
    let mut bytes = env.object.get(name).unwrap();
    let mid = bytes.len() / 3;
    bytes[mid] ^= 0xff;
    env.object.put(name, &bytes).unwrap();
    let mut saw_corruption = false;
    for id in 0..8u64 {
        if let Err(e) = tree.range_chunks(id, 0, 10 * 120 * MIN) {
            assert!(e.is_corruption(), "expected corruption, got {e}");
            saw_corruption = true;
        }
    }
    assert!(saw_corruption, "the flipped byte must be noticed");
}

/// Manifest corruption is rejected at open, not later.
#[test]
fn manifest_corruption_rejected_at_open() {
    let dir = tempfile::tempdir().unwrap();
    {
        let (_, tree) = loaded_tree(&dir);
        drop(tree);
    }
    let env = StorageEnv::open(dir.path(), LatencyMode::Off).unwrap();
    let mut manifest = env.block.read_file("MANIFEST").unwrap();
    // Damage a numeric field.
    let text = String::from_utf8(manifest.clone()).unwrap();
    let damaged = text.replacen("L2", "LX", 1);
    manifest = damaged.into_bytes();
    env.block.write_file("MANIFEST", &manifest).unwrap();
    match TimeTree::open(env, TreeOptions::default()) {
        Err(e) => assert!(e.is_corruption(), "got {e}"),
        Ok(_) => panic!("damaged manifest must be rejected"),
    }
}
