//! The compaction cost model of §3.3 (Equations 7–10).
//!
//! The paper argues that keeping exactly one level on slow cloud storage
//! avoids the multiplicative rewrite cost of a traditional leveled LSM.
//! These closed forms back the `figures compaction-cost` experiment, which
//! cross-checks them against the simulator's measured Put traffic.

/// Parameters of the cost model (Table of §3.3).
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Total data size `S_d` in bytes.
    pub data_size: f64,
    /// Topmost level size `S_b` in bytes (64 MB in the paper's example).
    pub top_level_size: f64,
    /// Level size multiplier `M` (10 in the paper's example).
    pub multiplier: f64,
    /// Fast-storage capacity `S_fast` in bytes (1 GB in the example).
    pub fast_size: f64,
}

impl CostModel {
    /// The paper's running example: Sb = 64 MB, M = 10, Sfast = 1 GB,
    /// Sd = 100 GB.
    pub fn paper_example() -> Self {
        CostModel {
            data_size: 100.0 * GB,
            top_level_size: 64.0 * MB,
            multiplier: 10.0,
            fast_size: 1.0 * GB,
        }
    }

    /// Equation 7: number of levels needed to hold `size` bytes.
    pub fn levels_for(&self, size: f64) -> f64 {
        ((size * (self.multiplier - 1.0) / self.top_level_size) + 1.0).log10()
            / self.multiplier.log10()
    }

    /// `L`: levels for the whole dataset.
    pub fn total_levels(&self) -> f64 {
        self.levels_for(self.data_size)
    }

    /// `L_fast`: levels that fit in fast storage.
    pub fn fast_levels(&self) -> f64 {
        self.levels_for(self.fast_size)
    }

    /// Equation 8: bytes written to slow storage by a traditional
    /// multi-level LSM — each slow level `l` (1-based beyond the fast
    /// levels) rewrites its data `l` times on the way down.
    pub fn traditional_slow_write_bytes(&self) -> f64 {
        let l = self.total_levels().floor() as i64;
        let lf = self.fast_levels().floor() as i64;
        let mut cost = 0.0;
        for i in 1..=(l - lf).max(0) {
            cost += self.top_level_size * self.multiplier.powi((lf + i - 1) as i32) * i as f64;
        }
        cost
    }

    /// Equation 9: bytes written to slow storage with a single slow level —
    /// every byte beyond fast storage is written exactly once.
    pub fn single_level_slow_write_bytes(&self) -> f64 {
        let l = self.total_levels().floor() as i64;
        let lf = self.fast_levels().floor() as i64;
        let mut cost = 0.0;
        for i in 1..=(l - lf).max(0) {
            cost += self.top_level_size * self.multiplier.powi((lf + i - 1) as i32);
        }
        cost
    }

    /// Equation 10: the saving of the single-level design.
    pub fn saving_bytes(&self) -> f64 {
        self.traditional_slow_write_bytes() - self.single_level_slow_write_bytes()
    }
}

pub const KB: f64 = 1024.0;
pub const MB: f64 = 1024.0 * KB;
pub const GB: f64 = 1024.0 * MB;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_levels() {
        // The paper computes L_fast = 2.2 and L = 4.2 for its example.
        let m = CostModel::paper_example();
        assert!((m.fast_levels() - 2.2).abs() < 0.1, "{}", m.fast_levels());
        assert!((m.total_levels() - 4.2).abs() < 0.1, "{}", m.total_levels());
    }

    #[test]
    fn paper_example_saves_at_least_64_gb() {
        // "we can at least save 64GB of data write to slow storage" —
        // exactly 1000 copies of the 64 MB top level (the paper's GB is
        // 1000 x Sb, i.e. 62.5 GiB).
        let m = CostModel::paper_example();
        let expected = 1000.0 * m.top_level_size;
        assert!(
            (m.saving_bytes() - expected).abs() < 1.0,
            "saving {} GiB, expected {} GiB",
            m.saving_bytes() / GB,
            expected / GB
        );
    }

    #[test]
    fn single_level_cost_equals_spill_size() {
        // Equation 9 is Sd - Sfast restricted to whole levels: every byte
        // that does not fit fast storage is written to slow storage once.
        let m = CostModel::paper_example();
        let single = m.single_level_slow_write_bytes();
        let spill = m.data_size - m.fast_size;
        // Whole-level flooring makes these agree only loosely.
        assert!(single > 0.0 && single < m.data_size);
        assert!(single <= spill * 1.1);
    }

    #[test]
    fn traditional_cost_dominates() {
        for data_gb in [10.0, 100.0, 1000.0] {
            let m = CostModel {
                data_size: data_gb * GB,
                ..CostModel::paper_example()
            };
            assert!(
                m.traditional_slow_write_bytes() >= m.single_level_slow_write_bytes(),
                "at {data_gb} GB"
            );
        }
    }

    #[test]
    fn no_slow_levels_means_no_cost() {
        let m = CostModel {
            data_size: 0.5 * GB,
            fast_size: 1.0 * GB,
            ..CostModel::paper_example()
        };
        assert_eq!(m.traditional_slow_write_bytes(), 0.0);
        assert_eq!(m.single_level_slow_write_bytes(), 0.0);
        assert_eq!(m.saving_bytes(), 0.0);
    }
}
