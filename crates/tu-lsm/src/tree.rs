//! The elastic time-partitioned LSM-tree (§3.3, Figure 10).
//!
//! Three levels over two storage tiers:
//!
//! * **L0, L1** on the fast tier (block store ≈ EBS) hold recent data in
//!   short time partitions (initially 30 minutes).
//! * **L2**, the *only* level on the slow tier (object store ≈ S3), holds
//!   everything older in longer partitions (initially 2 hours). Keeping a
//!   single slow level avoids the multiplicative rewrite traffic of a
//!   classic leveled LSM (Equations 8–10).
//!
//! Keys are the 16-byte `(series/group id, chunk start timestamp)` keys of
//! [`tu_common::keys`]; values are serialized chunks. The tree maintains:
//!
//! * an active MemTable + immutable queue (flushes split entries into
//!   L0 time partitions),
//! * L0→L1 compaction that gathers each series' chunks together,
//! * L1→L2 compaction that uploads closed windows to the slow tier,
//! * out-of-order handling via stale-partition merges (fast tier) and
//!   *patches* appended to L2 SSTables (Figure 11), merged when a table
//!   accumulates more than `patch_threshold` patches,
//! * dynamic size control of partition lengths (Algorithm 1, Figure 19),
//! * retention purges of whole partitions.
//!
//! The tree is synchronous: `put` never blocks on I/O beyond the WAL-less
//! memtable insert, and all background-style work happens in
//! [`TimeTree::maintain`], which the embedding engine calls from its worker
//! thread (or inline in deterministic benchmarks).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use tu_common::lockdep::{self, Mutex};

use tu_cloud::StorageEnv;
use tu_common::keys::{decode_id, decode_ts, encode_key};
use tu_common::pool::{WorkerPool, INGEST_THREADS_ENV};
use tu_common::{Error, Result, TimeRange, Timestamp};

use crate::cache::BlockCache;
use crate::memtable::{MemTable, MemTableSet};
use crate::sstable::{Table, TableBuilder, TableProps, TableSource};

/// Configuration of the tree.
#[derive(Debug, Clone)]
pub struct TreeOptions {
    /// Seal the active memtable beyond this many payload bytes.
    pub memtable_bytes: usize,
    /// Initial L0/L1 partition length `R1` in ms (paper: 30 minutes).
    pub l0_partition_ms: i64,
    /// Initial L2 partition length `R2` in ms (paper: 2 hours).
    pub l2_partition_ms: i64,
    /// L0 partition count that triggers an L0→L1 compaction (paper: 2).
    pub l0_compact_trigger: usize,
    /// Patches per L2 SSTable before a forced merge (paper: 3).
    pub patch_threshold: usize,
    /// Fast-storage usage target `ST` in bytes; enables dynamic size
    /// control (Algorithm 1) when set.
    pub fast_limit_bytes: Option<u64>,
    /// Lower bound `LB` for partition lengths during dynamic control.
    pub partition_min_ms: i64,
    /// Upper bound for partition lengths during dynamic control.
    pub partition_max_ms: i64,
    /// Split compaction outputs into tables of roughly this many bytes.
    pub max_sstable_bytes: usize,
    /// Block-cache budget (paper: 1 GiB).
    pub block_cache_bytes: usize,
    /// Max adjacent uncached SSTable blocks one coalesced readahead request
    /// may fetch during range scans (`<= 1` disables coalescing).
    pub readahead_blocks: usize,
    /// Worker threads for flush encoding and compaction reads. `0` resolves
    /// through the ingest chain: `TU_INGEST_THREADS` env var, then available
    /// cores capped at 8.
    pub flush_threads: usize,
}

impl Default for TreeOptions {
    fn default() -> Self {
        TreeOptions {
            memtable_bytes: 4 << 20,
            l0_partition_ms: 30 * 60 * 1000,
            l2_partition_ms: 2 * 60 * 60 * 1000,
            l0_compact_trigger: 2,
            patch_threshold: 3,
            fast_limit_bytes: None,
            partition_min_ms: 15 * 60 * 1000,
            partition_max_ms: 8 * 60 * 60 * 1000,
            max_sstable_bytes: 2 << 20,
            block_cache_bytes: 64 << 20,
            readahead_blocks: crate::sstable::DEFAULT_READAHEAD_BLOCKS,
            flush_threads: 0,
        }
    }
}

/// One table inside a partition, as reported by [`TimeTree::introspect`].
#[derive(Debug, Clone)]
pub struct TableIntrospect {
    pub name: String,
    pub seq: u64,
    pub entries: u64,
    pub file_len: u64,
    /// Entries carrying a stats envelope (pushdown-eligible).
    pub stats_chunks: u64,
    /// Patch tables appended to this base table (L2 only).
    pub patches: usize,
}

/// One time partition of one level, as reported by [`TimeTree::introspect`].
#[derive(Debug, Clone)]
pub struct PartitionIntrospect {
    pub start_ms: i64,
    pub end_ms: i64,
    /// Residency tier: `"block"` (L0/L1) or `"object"` (L2).
    pub tier: &'static str,
    /// Total bytes across base tables and patches.
    pub bytes: u64,
    /// Total chunk entries across base tables and patches.
    pub chunks: u64,
    /// Entries carrying a stats envelope, for coverage ratios.
    pub stats_chunks: u64,
    /// Patch tables across the partition (L2 only).
    pub patches: usize,
    pub tables: Vec<TableIntrospect>,
}

/// One level of the tree, as reported by [`TimeTree::introspect`].
#[derive(Debug, Clone)]
pub struct LevelIntrospect {
    pub level: u8,
    pub tier: &'static str,
    pub partitions: Vec<PartitionIntrospect>,
}

/// Block-cache counters, as reported by [`TimeTree::introspect`].
#[derive(Debug, Clone, Copy)]
pub struct CacheIntrospect {
    pub shards: usize,
    pub used_bytes: usize,
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

/// Point-in-time structural view of the tree: partition boundaries, table
/// inventory, stats-footer coverage, and cache counters — the payload
/// behind the `/introspect/lsm` endpoint.
#[derive(Debug, Clone)]
pub struct LsmIntrospect {
    pub r1_ms: i64,
    pub r2_ms: i64,
    pub levels: Vec<LevelIntrospect>,
    pub cache: CacheIntrospect,
}

impl LsmIntrospect {
    /// All partitions across all levels, flattened (the
    /// `/introspect/partitions` view before heat is joined in).
    pub fn partitions(&self) -> Vec<&PartitionIntrospect> {
        self.levels
            .iter()
            .flat_map(|l| l.partitions.iter())
            .collect()
    }
}

/// Counters for the experiments.
#[derive(Debug, Default, Clone, Copy)]
pub struct TreeStats {
    pub flushes: u64,
    pub l0_to_l1_compactions: u64,
    pub l1_to_l2_compactions: u64,
    pub patch_merges: u64,
    pub patches_created: u64,
    pub stale_l0_merges: u64,
    /// Current partition lengths (after dynamic control).
    pub r1_ms: i64,
    pub r2_ms: i64,
    pub l0_partitions: usize,
    pub l1_partitions: usize,
    pub l2_partitions: usize,
    pub fast_bytes: u64,
    pub slow_bytes: u64,
}

#[derive(Debug, Clone)]
struct TableMeta {
    name: String,
    seq: u64,
    props: TableProps,
    on_slow: bool,
    /// Owning time partition — the attribution key every storage request
    /// for this table is charged to in the partition heat registry.
    range: TimeRange,
}

impl TableMeta {
    fn first_id(&self) -> u64 {
        decode_id(&self.props.first_key).unwrap_or(0)
    }
    fn last_id(&self) -> u64 {
        decode_id(&self.props.last_key).unwrap_or(u64::MAX)
    }
    fn overlaps_id(&self, id: u64) -> bool {
        self.first_id() <= id && id <= self.last_id()
    }
}

#[derive(Debug, Clone)]
struct Partition {
    range: TimeRange,
    tables: Vec<TableMeta>,
}

#[derive(Debug, Clone)]
struct L2Table {
    base: TableMeta,
    patches: Vec<TableMeta>,
}

#[derive(Debug, Clone)]
struct L2Partition {
    range: TimeRange,
    tables: Vec<L2Table>,
}

struct Levels {
    l0: Vec<Partition>,
    l1: Vec<Partition>,
    l2: Vec<L2Partition>,
    r1_ms: i64,
    r2_ms: i64,
}

/// The time-partitioned LSM-tree.
pub struct TimeTree {
    env: StorageEnv,
    opts: TreeOptions,
    mem: MemTableSet,
    levels: Mutex<Levels>,
    cache: Arc<BlockCache>,
    next_seq: AtomicU64,
    stats: Mutex<TreeStats>,
    /// Open table handles (footer/index/bloom parsed once per table, as
    /// LevelDB's table cache does).
    tables: Mutex<std::collections::HashMap<String, Arc<Table>>>,
    /// Number of memtables sealed / flushed — the durability epochs the
    /// engine's WAL-checkpoint logic keys on (§3.3 "Logging"): an entry
    /// put while `seal_epoch() == e` is durable once `flushed_epoch() > e`.
    seals: AtomicU64,
    flushed: AtomicU64,
    /// Workers for flush encoding and compaction table scans. The on-disk
    /// result is independent of the width: encoded blobs are written and
    /// sequence-numbered sequentially in bucket order, and merges fold the
    /// parallel scans back in table order.
    flush_pool: WorkerPool,
}

impl TimeTree {
    /// Opens (or recovers from the manifest) a tree over `env`.
    pub fn open(env: StorageEnv, opts: TreeOptions) -> Result<Self> {
        let cache = Arc::new(BlockCache::new(opts.block_cache_bytes));
        let flush_pool = WorkerPool::resolve_env(INGEST_THREADS_ENV, opts.flush_threads);
        tu_obs::gauge("lsm.flush.workers").set(flush_pool.threads() as i64);
        let tree = TimeTree {
            flush_pool,
            cache,
            mem: MemTableSet::new(),
            levels: Mutex::new(
                &lockdep::LSM_TREE_LEVELS,
                Levels {
                    l0: Vec::new(),
                    l1: Vec::new(),
                    l2: Vec::new(),
                    r1_ms: opts.l0_partition_ms,
                    r2_ms: opts.l2_partition_ms,
                },
            ),
            next_seq: AtomicU64::new(1),
            stats: Mutex::new(&lockdep::LSM_TREE_STATS, TreeStats::default()),
            tables: Mutex::new(&lockdep::LSM_TREE_TABLES, std::collections::HashMap::new()),
            seals: AtomicU64::new(0),
            flushed: AtomicU64::new(0),
            env,
            opts,
        };
        tree.load_manifest()?;
        Ok(tree)
    }

    // --- writes -------------------------------------------------------------

    /// Inserts a chunk under its `(id, start_ts)` key. Returns true if the
    /// active memtable crossed the seal threshold (the caller should
    /// schedule [`TimeTree::maintain`]).
    pub fn put(&self, id: u64, start_ts: Timestamp, chunk: Vec<u8>) -> bool {
        let key = encode_key(id, start_ts).to_vec();
        let size = self.mem.put(key, chunk);
        if size >= self.opts.memtable_bytes {
            self.seal();
            true
        } else {
            false
        }
    }

    /// Seals the active memtable regardless of size (shutdown, tests).
    pub fn seal(&self) {
        if self.mem.seal().is_some() {
            self.seals.fetch_add(1, Ordering::SeqCst);
            tu_obs::gauge("lsm.flush.backlog").set(self.mem.immutable_count() as i64);
        }
    }

    /// Durability epoch of entries going into the current active memtable.
    pub fn seal_epoch(&self) -> u64 {
        self.seals.load(Ordering::SeqCst)
    }

    /// Number of immutable memtables flushed to L0 so far. Entries put at
    /// `seal_epoch() == e` are durable once `flushed_epoch() > e`.
    pub fn flushed_epoch(&self) -> u64 {
        self.flushed.load(Ordering::SeqCst)
    }

    /// Runs all pending background work to quiescence: flushes, both
    /// compaction kinds, patch merges, and dynamic size control.
    pub fn maintain(&self) -> Result<()> {
        while let Some(imm) = self.mem.oldest_immutable() {
            self.flush_one(&imm)?;
            self.mem.retire(&imm);
            self.flushed.fetch_add(1, Ordering::SeqCst);
            tu_obs::gauge("lsm.flush.backlog").set(self.mem.immutable_count() as i64);
        }
        loop {
            let l0_count = self.levels.lock().l0.len();
            if l0_count <= self.opts.l0_compact_trigger {
                break;
            }
            self.compact_l0_to_l1()?;
        }
        while self.l1_window_closed() {
            self.compact_l1_to_l2()?;
        }
        self.merge_over_threshold_patches()?;
        self.dynamic_size_control()?;
        self.save_manifest()?;
        Ok(())
    }

    /// Seals and fully drains everything above L2 into L2 (used by tests
    /// and orderly shutdown benchmarks).
    pub fn flush_all_to_slow(&self) -> Result<()> {
        self.seal();
        self.maintain()?;
        loop {
            let empty_l0 = {
                let lv = self.levels.lock();
                lv.l0.is_empty()
            };
            if !empty_l0 {
                self.compact_l0_to_l1()?;
                continue;
            }
            let empty_l1 = self.levels.lock().l1.is_empty();
            if !empty_l1 {
                self.compact_l1_to_l2()?;
                continue;
            }
            break;
        }
        self.save_manifest()
    }

    fn next_seq(&self) -> u64 {
        self.next_seq.fetch_add(1, Ordering::Relaxed)
    }

    fn flush_one(&self, imm: &Arc<MemTable>) -> Result<()> {
        let _span = tu_obs::span("lsm.flush");
        let r1 = self.levels.lock().r1_ms;
        // Split entries into time-partition buckets on the current grid.
        let mut buckets: BTreeMap<i64, Vec<(Vec<u8>, Vec<u8>)>> = BTreeMap::new();
        for (k, v) in imm.iter() {
            let ts = decode_ts(k)?;
            let slot = ts.div_euclid(r1);
            buckets
                .entry(slot)
                .or_default()
                .push((k.to_vec(), v.to_vec()));
        }
        let partitions = buckets.len();
        let mut entries_flushed = 0usize;
        // Encode every bucket's SSTables across the flush workers (the CPU
        // cost: sorting is done, but block building, compression framing and
        // checksumming are not). Writes and sequence numbers are assigned
        // sequentially in bucket order below, so the on-disk layout is
        // identical for every worker count.
        let buckets: Vec<(i64, Vec<(Vec<u8>, Vec<u8>)>)> = buckets.into_iter().collect();
        let encoded = self
            .flush_pool
            .run(buckets.len(), |i| self.encode_tables(&buckets[i].1));
        for ((slot, entries), blobs) in buckets.iter().zip(encoded) {
            entries_flushed += entries.len();
            let range = TimeRange::new(slot * r1, (slot + 1) * r1);
            let metas = self.write_tables(blobs?, 0, range)?;
            let mut lv = self.levels.lock();
            match lv.l0.iter_mut().find(|p| p.range == range) {
                Some(p) => p.tables.extend(metas),
                None => {
                    lv.l0.push(Partition {
                        range,
                        tables: metas,
                    });
                    lv.l0.sort_by_key(|p| p.range.start);
                }
            }
        }
        self.stats.lock().flushes += 1;
        tu_obs::log::info(
            "lsm.flush",
            "memtable flushed to L0",
            &[
                ("entries", entries_flushed.into()),
                ("partitions", partitions.into()),
            ],
        );
        Ok(())
    }

    /// Encodes sorted entries into SSTable blobs split at the configured
    /// size. Pure CPU — no naming, sequencing, or I/O — so buckets can be
    /// encoded concurrently without affecting the on-disk layout.
    fn encode_tables(&self, entries: &[(Vec<u8>, Vec<u8>)]) -> Result<Vec<(Vec<u8>, TableProps)>> {
        let mut out = Vec::new();
        let mut builder = TableBuilder::new();
        let mut finish = |builder: &mut TableBuilder| -> Result<()> {
            if builder.is_empty() {
                return Ok(());
            }
            out.push(std::mem::take(builder).finish()?);
            Ok(())
        };
        for (k, v) in entries {
            builder.add(k, v)?;
            if builder.estimated_len() >= self.opts.max_sstable_bytes {
                finish(&mut builder)?;
            }
        }
        finish(&mut builder)?;
        Ok(out)
    }

    /// Writes encoded blobs to the fast tier, assigning sequence numbers
    /// and names in order.
    fn write_tables(
        &self,
        blobs: Vec<(Vec<u8>, TableProps)>,
        level: u8,
        range: TimeRange,
    ) -> Result<Vec<TableMeta>> {
        let mut out = Vec::new();
        let _heat = tu_obs::heat::attribute(range.start, range.end);
        for (bytes, props) in blobs {
            let seq = self.next_seq();
            let name = format!("l{level}/p{}-{}/sst-{seq:08}", range.start, range.end);
            self.env.block.write_file(&name, &bytes)?;
            out.push(TableMeta {
                name,
                seq,
                props,
                on_slow: false,
                range,
            });
        }
        Ok(out)
    }

    /// Builds one or more SSTables on the fast tier from sorted entries.
    fn build_tables(
        &self,
        entries: &[(Vec<u8>, Vec<u8>)],
        level: u8,
        range: TimeRange,
    ) -> Result<Vec<TableMeta>> {
        self.write_tables(self.encode_tables(entries)?, level, range)
    }

    fn open_table(&self, meta: &TableMeta) -> Result<Arc<Table>> {
        if let Some(t) = self.tables.lock().get(&meta.name) {
            return Ok(t.clone());
        }
        let source = if meta.on_slow {
            TableSource::Object(self.env.object.clone(), meta.name.clone())
        } else {
            TableSource::Block(self.env.block.clone(), meta.name.clone())
        };
        let mut opened = Table::open(source, Some(self.cache.clone()))?;
        opened.set_readahead(self.opts.readahead_blocks);
        let table = Arc::new(opened);
        self.tables.lock().insert(meta.name.clone(), table.clone());
        Ok(table)
    }

    fn delete_table(&self, meta: &TableMeta) -> Result<()> {
        self.tables.lock().remove(&meta.name);
        let _heat = tu_obs::heat::attribute(meta.range.start, meta.range.end);
        if meta.on_slow {
            self.env.object.delete(&meta.name)?;
            self.cache.invalidate_table(&format!("o:{}", meta.name));
        } else {
            self.env.block.delete(&meta.name)?;
            self.cache.invalidate_table(&format!("b:{}", meta.name));
        }
        Ok(())
    }

    /// Merges a set of tables newest-wins into sorted entries. The scans —
    /// the I/O-heavy part, often against the slow tier — fan out across the
    /// flush workers; the newest-wins fold runs sequentially in table order
    /// afterwards, so the result is independent of the worker count.
    fn merge_tables(&self, metas: &[TableMeta]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let scans = self.flush_pool.run(metas.len(), |i| {
            // The attribution guard is thread-local and the pool does not
            // propagate it, so it must be installed inside the per-table
            // closure for compaction reads to land on the right partition.
            let _heat = tu_obs::heat::attribute(metas[i].range.start, metas[i].range.end);
            let table = self.open_table(&metas[i])?;
            table.scan_all()
        });
        let mut merged: BTreeMap<Vec<u8>, (u64, Vec<u8>)> = BTreeMap::new();
        for (meta, scan) in metas.iter().zip(scans) {
            for (k, v) in scan? {
                match merged.get(&k) {
                    Some((seq, _)) if *seq > meta.seq => {}
                    _ => {
                        merged.insert(k, (meta.seq, v));
                    }
                }
            }
        }
        Ok(merged.into_iter().map(|(k, (_, v))| (k, v)).collect())
    }

    // --- L0 -> L1 -------------------------------------------------------------

    fn compact_l0_to_l1(&self) -> Result<()> {
        let _span = tu_obs::span("lsm.compact.l0_l1");
        // Select the oldest L0 partition plus everything overlapping it.
        let (l0_sel, l1_sel, out_len) = {
            let mut lv = self.levels.lock();
            if lv.l0.is_empty() {
                return Ok(());
            }
            let victim_range = lv.l0[0].range;
            let mut sel_range = victim_range;
            // Gather overlapping L0 partitions (multi-grid overlap after
            // dynamic resizing) transitively.
            let mut changed = true;
            while changed {
                changed = false;
                for p in &lv.l0 {
                    if p.range.overlaps(&sel_range) && !sel_range.covers(&p.range) {
                        sel_range = sel_range.union(&p.range);
                        changed = true;
                    }
                }
                for p in &lv.l1 {
                    if p.range.overlaps(&sel_range) && !sel_range.covers(&p.range) {
                        sel_range = sel_range.union(&p.range);
                        changed = true;
                    }
                }
            }
            let l0_sel: Vec<Partition> = lv
                .l0
                .iter()
                .filter(|p| p.range.overlaps(&sel_range))
                .cloned()
                .collect();
            let l1_sel: Vec<Partition> = lv
                .l1
                .iter()
                .filter(|p| p.range.overlaps(&sel_range))
                .cloned()
                .collect();
            // Figure 12: output aligned to the shortest selected length.
            let out_len = l0_sel
                .iter()
                .chain(l1_sel.iter())
                .map(|p| p.range.len())
                .min()
                .unwrap_or(lv.r1_ms)
                .max(1);
            lv.l0.retain(|p| !p.range.overlaps(&sel_range));
            lv.l1.retain(|p| !p.range.overlaps(&sel_range));
            (l0_sel, l1_sel, out_len)
        };
        let stale = !l1_sel.is_empty();
        let all_tables: Vec<TableMeta> = l0_sel
            .iter()
            .chain(l1_sel.iter())
            .flat_map(|p| p.tables.iter().cloned())
            .collect();
        let merged = self.merge_tables(&all_tables)?;
        // Split merged entries into output partitions on the out_len grid.
        let mut buckets: BTreeMap<i64, Vec<(Vec<u8>, Vec<u8>)>> = BTreeMap::new();
        for (k, v) in merged {
            let ts = decode_ts(&k)?;
            buckets
                .entry(ts.div_euclid(out_len))
                .or_default()
                .push((k, v));
        }
        let mut new_parts = Vec::new();
        for (slot, entries) in buckets {
            // Entries are grouped per series already (BTreeMap over the
            // id-prefixed key), giving the data locality the paper wants.
            let range = TimeRange::new(slot * out_len, (slot + 1) * out_len);
            let tables = self.build_tables(&entries, 1, range)?;
            new_parts.push(Partition { range, tables });
        }
        {
            let mut lv = self.levels.lock();
            lv.l1.extend(new_parts);
            lv.l1.sort_by_key(|p| p.range.start);
        }
        for meta in &all_tables {
            self.delete_table(meta)?;
        }
        let mut stats = self.stats.lock();
        stats.l0_to_l1_compactions += 1;
        if stale {
            stats.stale_l0_merges += 1;
        }
        drop(stats);
        tu_obs::log::info(
            "lsm.compact",
            "L0->L1 compaction",
            &[
                ("input_tables", all_tables.len().into()),
                ("stale", stale.into()),
            ],
        );
        Ok(())
    }

    // --- L1 -> L2 -------------------------------------------------------------

    /// True when the oldest L2-grid window in L1 is "closed": newer data
    /// exists beyond its end, so no in-order data will arrive for it.
    fn l1_window_closed(&self) -> bool {
        let lv = self.levels.lock();
        let Some(oldest) = lv.l1.iter().map(|p| p.range.start).min() else {
            return false;
        };
        let window_end = (oldest.div_euclid(lv.r2_ms) + 1) * lv.r2_ms;
        let newest = lv
            .l0
            .iter()
            .chain(lv.l1.iter())
            .map(|p| p.range.end)
            .max()
            .unwrap_or(window_end);
        newest > window_end
    }

    fn compact_l1_to_l2(&self) -> Result<()> {
        let _span = tu_obs::span("lsm.compact.l1_l2");
        let (selected, window) = {
            let mut lv = self.levels.lock();
            let Some(oldest) = lv.l1.iter().map(|p| p.range.start).min() else {
                return Ok(());
            };
            let w_start = oldest.div_euclid(lv.r2_ms) * lv.r2_ms;
            let window = TimeRange::new(w_start, w_start + lv.r2_ms);
            let selected: Vec<Partition> = lv
                .l1
                .iter()
                .filter(|p| window.covers(&p.range))
                .cloned()
                .collect();
            if selected.is_empty() {
                // A straddling partition (possible after resizes): widen the
                // window to cover it so progress is guaranteed, and take
                // every partition the widened window now covers.
                let Some(p) = lv.l1.iter().min_by_key(|p| p.range.start).cloned() else {
                    return Ok(()); // L1 emptied concurrently: nothing to move
                };
                let window = TimeRange::new(
                    w_start.min(p.range.start),
                    p.range.end.max(w_start + lv.r2_ms),
                );
                let sel: Vec<Partition> = lv
                    .l1
                    .iter()
                    .filter(|q| window.covers(&q.range))
                    .cloned()
                    .collect();
                lv.l1.retain(|q| !window.covers(&q.range));
                (sel, window)
            } else {
                lv.l1.retain(|p| !window.covers(&p.range));
                (selected, window)
            }
        };
        let tables: Vec<TableMeta> = selected
            .iter()
            .flat_map(|p| p.tables.iter().cloned())
            .collect();
        let merged = self.merge_tables(&tables)?;

        // Out-of-order: entries overlapping existing L2 partitions become
        // patches; the rest forms new L2 partitions.
        let overlapping: Vec<TimeRange> = {
            let lv = self.levels.lock();
            lv.l2
                .iter()
                .map(|p| p.range)
                .filter(|r| r.overlaps(&window))
                .collect()
        };
        let mut patch_groups: BTreeMap<i64, Vec<(Vec<u8>, Vec<u8>)>> = BTreeMap::new();
        let mut fresh: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        for (k, v) in merged {
            let ts = decode_ts(&k)?;
            match overlapping.iter().find(|r| r.contains(ts)) {
                Some(r) => patch_groups.entry(r.start).or_default().push((k, v)),
                None => fresh.push((k, v)),
            }
        }
        if !patch_groups.is_empty() {
            self.append_patches(patch_groups)?;
        }
        if !fresh.is_empty() {
            // Time ranges not covered by existing partitions are split and
            // aligned to the shortest selected L2 partition length — or the
            // current R2 when none overlap (Figure 12, right).
            let align = overlapping
                .iter()
                .map(|r| r.len())
                .min()
                .unwrap_or_else(|| self.levels.lock().r2_ms)
                .max(1);
            let mut buckets: BTreeMap<i64, Vec<(Vec<u8>, Vec<u8>)>> = BTreeMap::new();
            for (k, v) in fresh {
                let ts = decode_ts(&k)?;
                buckets
                    .entry(ts.div_euclid(align))
                    .or_default()
                    .push((k, v));
            }
            for (slot, entries) in buckets {
                let range = TimeRange::new(slot * align, (slot + 1) * align);
                let metas = self.upload_l2_tables(&entries, range)?;
                let mut lv = self.levels.lock();
                match lv.l2.iter_mut().find(|p| p.range == range) {
                    Some(p) => p.tables.extend(metas.into_iter().map(|m| L2Table {
                        base: m,
                        patches: Vec::new(),
                    })),
                    None => {
                        lv.l2.push(L2Partition {
                            range,
                            tables: metas
                                .into_iter()
                                .map(|m| L2Table {
                                    base: m,
                                    patches: Vec::new(),
                                })
                                .collect(),
                        });
                        lv.l2.sort_by_key(|p| p.range.start);
                    }
                }
            }
        }
        for meta in &tables {
            self.delete_table(meta)?;
        }
        self.stats.lock().l1_to_l2_compactions += 1;
        tu_obs::log::info(
            "lsm.compact",
            "L1->L2 merge-and-upload",
            &[
                ("input_tables", tables.len().into()),
                ("window_start", window.start.into()),
                ("window_end", window.end.into()),
            ],
        );
        Ok(())
    }

    /// Builds and uploads SSTables to the slow tier.
    fn upload_l2_tables(
        &self,
        entries: &[(Vec<u8>, Vec<u8>)],
        range: TimeRange,
    ) -> Result<Vec<TableMeta>> {
        let mut out = Vec::new();
        let _heat = tu_obs::heat::attribute(range.start, range.end);
        let mut builder = TableBuilder::new();
        let mut flush = |builder: &mut TableBuilder| -> Result<()> {
            if builder.is_empty() {
                return Ok(());
            }
            let done = std::mem::take(builder);
            let (bytes, props) = done.finish()?;
            let seq = self.next_seq();
            let name = format!("l2/p{}-{}/sst-{seq:08}", range.start, range.end);
            self.env.object.put(&name, &bytes)?;
            out.push(TableMeta {
                name,
                seq,
                props,
                on_slow: true,
                range,
            });
            Ok(())
        };
        for (k, v) in entries {
            builder.add(k, v)?;
            if builder.estimated_len() >= self.opts.max_sstable_bytes {
                flush(&mut builder)?;
            }
        }
        flush(&mut builder)?;
        Ok(out)
    }

    /// Routes out-of-order entries into patches appended to the L2 tables
    /// whose ID ranges cover them (Figure 11).
    fn append_patches(&self, groups: BTreeMap<i64, Vec<(Vec<u8>, Vec<u8>)>>) -> Result<()> {
        for (part_start, entries) in groups {
            // Snapshot the partition's table ID ranges.
            let (range, id_ranges) = {
                let lv = self.levels.lock();
                let p = lv
                    .l2
                    .iter()
                    .find(|p| p.range.start == part_start)
                    .ok_or_else(|| Error::corruption("patch target partition vanished"))?;
                (
                    p.range,
                    p.tables
                        .iter()
                        .map(|t| (t.base.first_id(), t.base.last_id()))
                        .collect::<Vec<_>>(),
                )
            };
            // Split entries by target table (ID ranges are disjoint; route
            // by the first range whose last_id >= id, falling back to the
            // final table for ids beyond all ranges).
            let mut per_table: BTreeMap<usize, Vec<(Vec<u8>, Vec<u8>)>> = BTreeMap::new();
            for (k, v) in entries {
                let id = decode_id(&k)?;
                let idx = id_ranges
                    .iter()
                    .position(|&(_, last)| id <= last)
                    .unwrap_or(id_ranges.len().saturating_sub(1));
                per_table.entry(idx).or_default().push((k, v));
            }
            for (idx, entries) in per_table {
                let mut builder = TableBuilder::new();
                for (k, v) in &entries {
                    builder.add(k, v)?;
                }
                let (bytes, props) = builder.finish()?;
                let seq = self.next_seq();
                let name = format!("l2/p{}-{}/patch-{seq:08}", range.start, range.end);
                {
                    let _heat = tu_obs::heat::attribute(range.start, range.end);
                    self.env.object.put(&name, &bytes)?;
                }
                let meta = TableMeta {
                    name,
                    seq,
                    props,
                    on_slow: true,
                    range,
                };
                let mut lv = self.levels.lock();
                let p = lv
                    .l2
                    .iter_mut()
                    .find(|p| p.range.start == part_start)
                    .ok_or_else(|| Error::corruption("patch target partition vanished"))?;
                if let Some(t) = p.tables.get_mut(idx) {
                    t.patches.push(meta);
                } else {
                    // Partition had no tables (shouldn't happen): promote the
                    // patch to a base table.
                    p.tables.push(L2Table {
                        base: meta,
                        patches: Vec::new(),
                    });
                }
                self.stats.lock().patches_created += 1;
            }
        }
        Ok(())
    }

    /// Merges any L2 table whose patch count exceeds the threshold
    /// (Figure 11: the merge may split the table into several with
    /// disjoint ID ranges).
    fn merge_over_threshold_patches(&self) -> Result<()> {
        loop {
            let target = {
                let lv = self.levels.lock();
                let mut found = None;
                'outer: for (pi, p) in lv.l2.iter().enumerate() {
                    for (ti, t) in p.tables.iter().enumerate() {
                        if t.patches.len() > self.opts.patch_threshold {
                            found = Some((pi, ti, p.range));
                            break 'outer;
                        }
                    }
                }
                found
            };
            let Some((pi, ti, range)) = target else {
                return Ok(());
            };
            let victim = {
                let lv = self.levels.lock();
                lv.l2[pi].tables[ti].clone()
            };
            let mut all = vec![victim.base.clone()];
            all.extend(victim.patches.iter().cloned());
            let merged = self.merge_tables(&all)?;
            let metas = self.upload_l2_tables(&merged, range)?;
            {
                let mut lv = self.levels.lock();
                // The partition may have shifted; find it again by range.
                let p = lv
                    .l2
                    .iter_mut()
                    .find(|p| p.range == range)
                    .ok_or_else(|| Error::corruption("patched partition vanished"))?;
                let pos = p
                    .tables
                    .iter()
                    .position(|t| t.base.name == victim.base.name)
                    .ok_or_else(|| Error::corruption("patched table vanished"))?;
                p.tables.remove(pos);
                for (off, m) in metas.into_iter().enumerate() {
                    p.tables.insert(
                        pos + off,
                        L2Table {
                            base: m,
                            patches: Vec::new(),
                        },
                    );
                }
                // Keep tables sorted by their first key for routing.
                p.tables
                    .sort_by(|a, b| a.base.props.first_key.cmp(&b.base.props.first_key));
            }
            for meta in &all {
                self.delete_table(meta)?;
            }
            self.stats.lock().patch_merges += 1;
        }
    }

    // --- dynamic size control (Algorithm 1) -----------------------------------

    fn dynamic_size_control(&self) -> Result<()> {
        let Some(st) = self.opts.fast_limit_bytes else {
            return Ok(());
        };
        let mut lv = self.levels.lock();
        let total_size: u64 = lv
            .l0
            .iter()
            .chain(lv.l1.iter())
            .flat_map(|p| p.tables.iter())
            .map(|t| t.props.file_len)
            .sum();
        if total_size == 0 {
            return Ok(());
        }
        // thres = ST / total_size * R1: the partition length that would fit
        // the budget at the observed data density.
        let thres = (st as f64 / total_size as f64) * lv.r1_ms as f64;
        if total_size > st {
            while (lv.r1_ms / 2) as f64 > thres && lv.r1_ms / 2 >= self.opts.partition_min_ms {
                lv.r1_ms /= 2;
            }
            while lv.r2_ms / 2 >= lv.r1_ms
                && lv.r2_ms / 2 >= self.opts.partition_min_ms
                && (lv.r2_ms / 2) as f64 > thres
            {
                lv.r2_ms /= 2;
            }
        } else {
            // Grow gradually (one doubling per maintenance round) when the
            // fast levels span multiple partitions but sit well under
            // budget (sparse samples or few series — Algorithm 1's else
            // branch).
            let fast_span: i64 = lv
                .l0
                .iter()
                .chain(lv.l1.iter())
                .map(|p| p.range.len())
                .sum();
            if fast_span >= lv.r1_ms
                && (total_size as f64) < st as f64 * 0.5
                && (lv.r1_ms * 2) as f64 <= thres
                && lv.r1_ms * 2 <= self.opts.partition_max_ms
            {
                lv.r1_ms *= 2;
                if lv.r2_ms < lv.r1_ms {
                    lv.r2_ms = lv.r1_ms;
                }
            }
        }
        Ok(())
    }

    // --- reads ----------------------------------------------------------------

    /// All chunks of `id` whose *start timestamp* lies in `[start, end)`,
    /// newest version per key, sorted by key. Callers extend `start`
    /// downward by the maximum chunk duration to catch chunks straddling
    /// the range start.
    pub fn range_chunks(
        &self,
        id: u64,
        start: Timestamp,
        end: Timestamp,
    ) -> Result<Vec<(Timestamp, Vec<u8>)>> {
        let start_key = encode_key(id, start);
        let end_key = encode_key(id, end.max(start));
        let tr = TimeRange::new(start, end.max(start));
        // Accumulate (key, seq, value) triples flat, then resolve
        // newest-wins with one sort + dedup. Each source is already sorted,
        // so the sort sees pre-sorted runs and the whole resolution costs
        // far less than the per-entry BTreeMap node churn it replaced
        // (~0.6µs/chunk on meta-answered aggregate queries).
        let mut acc: Vec<(Vec<u8>, u64, Vec<u8>)> = Vec::new();
        // Read the memtables BEFORE snapshotting the level metadata. Flush
        // publishes tables to the levels first and only then retires the
        // flushed memtable, so in this order every entry is visible in at
        // least one of the two reads (possibly both — deduped by key, with
        // the memtable copy winning via seq = MAX). The reverse order has
        // a lost-visibility window: levels snapshotted before the publish,
        // memtable read after the retire.
        let mem_entries: Vec<(Vec<u8>, Vec<u8>)> = self.mem.range(&start_key, &end_key);
        // Snapshot the level metadata, then read without holding the lock.
        let (l01_tables, l2_tables): (Vec<TableMeta>, Vec<TableMeta>) = {
            let lv = self.levels.lock();
            let mut fast = Vec::new();
            for p in lv.l0.iter().chain(lv.l1.iter()) {
                if p.range.overlaps(&tr) {
                    for t in &p.tables {
                        if t.overlaps_id(id) {
                            fast.push(t.clone());
                        }
                    }
                }
            }
            let mut slow = Vec::new();
            for p in &lv.l2 {
                if p.range.overlaps(&tr) {
                    for t in &p.tables {
                        if t.base.overlaps_id(id) {
                            slow.push(t.base.clone());
                        }
                        for patch in &t.patches {
                            if patch.overlaps_id(id) {
                                slow.push(patch.clone());
                            }
                        }
                    }
                }
            }
            (fast, slow)
        };
        for meta in l01_tables.iter().chain(l2_tables.iter()) {
            // Charge this table's block fetches to its owning partition.
            let _heat = tu_obs::heat::attribute(meta.range.start, meta.range.end);
            let table = self.open_table(meta)?;
            for (k, v) in table.range(&start_key, &end_key)? {
                acc.push((k, meta.seq, v));
            }
        }
        for (k, v) in mem_entries {
            acc.push((k, u64::MAX, v));
        }
        // Newest version per key: sort by (key asc, seq desc); the stable
        // sort keeps insertion order on (key, seq) ties, so the earlier
        // source still wins exactly as the map's `>=` rule did. dedup_by
        // drops the *later* of two adjacent equals, keeping the winner.
        acc.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
        acc.dedup_by(|next, kept| next.0 == kept.0);
        acc.into_iter()
            .map(|(k, _, v)| Ok((decode_ts(&k)?, v)))
            .collect()
    }

    /// Point lookup of the chunk at exactly `(id, start_ts)`.
    pub fn get_chunk(&self, id: u64, start_ts: Timestamp) -> Result<Option<Vec<u8>>> {
        let mut found = self
            .range_chunks(id, start_ts, start_ts + 1)?
            .into_iter()
            .map(|(_, v)| v);
        Ok(found.next())
    }

    // --- retention --------------------------------------------------------------

    /// Deletes every partition that ends at or before `watermark`.
    /// Returns the number of partitions removed.
    pub fn purge_before(&self, watermark: Timestamp) -> Result<usize> {
        let (drop_fast, drop_slow) = {
            let mut lv = self.levels.lock();
            let mut fast = Vec::new();
            for p in lv.l0.iter().chain(lv.l1.iter()) {
                if p.range.end <= watermark {
                    fast.extend(p.tables.iter().cloned());
                }
            }
            let mut slow = Vec::new();
            for p in &lv.l2 {
                if p.range.end <= watermark {
                    for t in &p.tables {
                        slow.push(t.base.clone());
                        slow.extend(t.patches.iter().cloned());
                    }
                }
            }
            lv.l0.retain(|p| p.range.end > watermark);
            lv.l1.retain(|p| p.range.end > watermark);
            lv.l2.retain(|p| p.range.end > watermark);
            (fast, slow)
        };
        let count = drop_fast.len() + drop_slow.len();
        for meta in drop_fast.iter().chain(drop_slow.iter()) {
            self.delete_table(meta)?;
        }
        self.save_manifest()?;
        Ok(count)
    }

    // --- observability ------------------------------------------------------------

    pub fn stats(&self) -> TreeStats {
        let lv = self.levels.lock();
        let mut s = *self.stats.lock();
        s.r1_ms = lv.r1_ms;
        s.r2_ms = lv.r2_ms;
        s.l0_partitions = lv.l0.len();
        s.l1_partitions = lv.l1.len();
        s.l2_partitions = lv.l2.len();
        s.fast_bytes = lv
            .l0
            .iter()
            .chain(lv.l1.iter())
            .flat_map(|p| p.tables.iter())
            .map(|t| t.props.file_len)
            .sum();
        s.slow_bytes = lv
            .l2
            .iter()
            .flat_map(|p| p.tables.iter())
            .map(|t| {
                t.base.props.file_len + t.patches.iter().map(|x| x.props.file_len).sum::<u64>()
            })
            .sum();
        s
    }

    /// Structural snapshot for the introspection plane: every level's
    /// partitions with boundaries, table inventory, stats-footer coverage,
    /// and the block cache's counters. Metadata only — no storage I/O.
    pub fn introspect(&self) -> LsmIntrospect {
        fn table_view(m: &TableMeta, patches: usize) -> TableIntrospect {
            TableIntrospect {
                name: m.name.clone(),
                seq: m.seq,
                entries: m.props.entries,
                file_len: m.props.file_len,
                stats_chunks: m.props.stats_chunks,
                patches,
            }
        }
        fn fast_partition(p: &Partition) -> PartitionIntrospect {
            PartitionIntrospect {
                start_ms: p.range.start,
                end_ms: p.range.end,
                tier: "block",
                bytes: p.tables.iter().map(|t| t.props.file_len).sum(),
                chunks: p.tables.iter().map(|t| t.props.entries).sum(),
                stats_chunks: p.tables.iter().map(|t| t.props.stats_chunks).sum(),
                patches: 0,
                tables: p.tables.iter().map(|t| table_view(t, 0)).collect(),
            }
        }
        let lv = self.levels.lock();
        let levels = vec![
            LevelIntrospect {
                level: 0,
                tier: "block",
                partitions: lv.l0.iter().map(fast_partition).collect(),
            },
            LevelIntrospect {
                level: 1,
                tier: "block",
                partitions: lv.l1.iter().map(fast_partition).collect(),
            },
            LevelIntrospect {
                level: 2,
                tier: "object",
                partitions: lv
                    .l2
                    .iter()
                    .map(|p| {
                        fn all(t: &L2Table) -> impl Iterator<Item = &TableMeta> {
                            std::iter::once(&t.base).chain(t.patches.iter())
                        }
                        PartitionIntrospect {
                            start_ms: p.range.start,
                            end_ms: p.range.end,
                            tier: "object",
                            bytes: p
                                .tables
                                .iter()
                                .flat_map(all)
                                .map(|t| t.props.file_len)
                                .sum(),
                            chunks: p.tables.iter().flat_map(all).map(|t| t.props.entries).sum(),
                            stats_chunks: p
                                .tables
                                .iter()
                                .flat_map(all)
                                .map(|t| t.props.stats_chunks)
                                .sum(),
                            patches: p.tables.iter().map(|t| t.patches.len()).sum(),
                            tables: p
                                .tables
                                .iter()
                                .map(|t| table_view(&t.base, t.patches.len()))
                                .collect(),
                        }
                    })
                    .collect(),
            },
        ];
        LsmIntrospect {
            r1_ms: lv.r1_ms,
            r2_ms: lv.r2_ms,
            levels,
            cache: CacheIntrospect {
                shards: self.cache.shard_count(),
                used_bytes: self.cache.used_bytes(),
                hits: self.cache.hit_count(),
                misses: self.cache.miss_count(),
                evictions: self.cache.eviction_count(),
            },
        }
    }

    /// Bytes buffered in memtables (pending flush).
    pub fn memtable_bytes(&self) -> usize {
        self.mem.approx_bytes()
    }

    /// The shared block cache (exposed for cache-hit experiments).
    pub fn block_cache(&self) -> &Arc<BlockCache> {
        &self.cache
    }

    /// Drops cached data blocks, keeping table handles (benchmarking).
    pub fn clear_block_cache(&self) {
        self.cache.clear();
    }

    // --- manifest ----------------------------------------------------------------

    const MANIFEST: &'static str = "MANIFEST";

    fn save_manifest(&self) -> Result<()> {
        let lv = self.levels.lock();
        let mut out = String::new();
        use std::fmt::Write as _;
        let _ = writeln!(
            out,
            "V1 {} {} {}",
            self.next_seq.load(Ordering::Relaxed),
            lv.r1_ms,
            lv.r2_ms
        );
        let table_line = |tag: &str, range: &TimeRange, m: &TableMeta, out: &mut String| {
            let _ = writeln!(
                out,
                "{tag} {} {} {} {} {} {} {} {} {} {}",
                range.start,
                range.end,
                m.name,
                m.seq,
                m.props.entries,
                hex(&m.props.first_key),
                hex(&m.props.last_key),
                m.props.file_len,
                m.on_slow as u8,
                m.props.stats_chunks,
            );
        };
        for p in &lv.l0 {
            for t in &p.tables {
                table_line("L0", &p.range, t, &mut out);
            }
        }
        for p in &lv.l1 {
            for t in &p.tables {
                table_line("L1", &p.range, t, &mut out);
            }
        }
        for p in &lv.l2 {
            for t in &p.tables {
                table_line("L2", &p.range, &t.base, &mut out);
                for patch in &t.patches {
                    table_line("PATCH", &p.range, patch, &mut out);
                }
            }
        }
        self.env.block.write_file(Self::MANIFEST, out.as_bytes())
    }

    fn load_manifest(&self) -> Result<()> {
        let bytes = match self.env.block.read_file(Self::MANIFEST) {
            Ok(b) => b,
            Err(e) if e.is_not_found() => return Ok(()),
            Err(e) => return Err(e),
        };
        let text =
            String::from_utf8(bytes).map_err(|_| Error::corruption("manifest is not utf-8"))?;
        let mut lv = self.levels.lock();
        for (i, line) in text.lines().enumerate() {
            let fields: Vec<&str> = line.split_whitespace().collect();
            if i == 0 {
                if fields.len() != 4 || fields[0] != "V1" {
                    return Err(Error::corruption("manifest header malformed"));
                }
                self.next_seq
                    .store(parse(fields[1], "seq")?, Ordering::Relaxed);
                lv.r1_ms = parse(fields[2], "r1")? as i64;
                lv.r2_ms = parse(fields[3], "r2")? as i64;
                continue;
            }
            // 10-field lines predate stats-footer coverage tracking; they
            // load with a coverage of zero.
            if fields.len() != 10 && fields.len() != 11 {
                return Err(Error::corruption("manifest table line malformed"));
            }
            let range = TimeRange::new(
                parse(fields[1], "start")? as i64,
                parse(fields[2], "end")? as i64,
            );
            let meta = TableMeta {
                name: fields[3].to_string(),
                seq: parse(fields[4], "seq")?,
                props: TableProps {
                    entries: parse(fields[5], "entries")?,
                    first_key: unhex(fields[6])?,
                    last_key: unhex(fields[7])?,
                    file_len: parse(fields[8], "len")?,
                    stats_chunks: match fields.get(10) {
                        Some(f) => parse(f, "stats_chunks")?,
                        None => 0,
                    },
                },
                on_slow: fields[9] == "1",
                range,
            };
            match fields[0] {
                "L0" | "L1" => {
                    let list = if fields[0] == "L0" {
                        &mut lv.l0
                    } else {
                        &mut lv.l1
                    };
                    match list.iter_mut().find(|p| p.range == range) {
                        Some(p) => p.tables.push(meta),
                        None => list.push(Partition {
                            range,
                            tables: vec![meta],
                        }),
                    }
                }
                "L2" => {
                    let part = match lv.l2.iter_mut().find(|p| p.range == range) {
                        Some(p) => p,
                        None => {
                            lv.l2.push(L2Partition {
                                range,
                                tables: Vec::new(),
                            });
                            let end = lv.l2.len() - 1;
                            &mut lv.l2[end]
                        }
                    };
                    part.tables.push(L2Table {
                        base: meta,
                        patches: Vec::new(),
                    });
                }
                "PATCH" => {
                    let part = lv
                        .l2
                        .iter_mut()
                        .find(|p| p.range == range)
                        .ok_or_else(|| Error::corruption("patch before its partition"))?;
                    let table = part
                        .tables
                        .last_mut()
                        .ok_or_else(|| Error::corruption("patch before its base table"))?;
                    table.patches.push(meta);
                }
                other => return Err(Error::corruption(format!("unknown manifest tag {other}"))),
            }
        }
        lv.l0.sort_by_key(|p| p.range.start);
        lv.l1.sort_by_key(|p| p.range.start);
        lv.l2.sort_by_key(|p| p.range.start);
        Ok(())
    }
}

fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        use std::fmt::Write as _;
        let _ = write!(s, "{b:02x}");
    }
    if s.is_empty() {
        s.push('-');
    }
    s
}

fn unhex(s: &str) -> Result<Vec<u8>> {
    if s == "-" {
        return Ok(Vec::new());
    }
    if s.len() % 2 != 0 {
        return Err(Error::corruption("odd-length hex in manifest"));
    }
    (0..s.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(&s[i..i + 2], 16)
                .map_err(|_| Error::corruption("bad hex in manifest"))
        })
        .collect()
}

fn parse(s: &str, what: &str) -> Result<u64> {
    s.parse()
        .map_err(|_| Error::corruption(format!("manifest field {what} malformed")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tu_cloud::cost::LatencyMode;

    const MIN: i64 = 60_000;
    const HOUR: i64 = 60 * MIN;

    fn tree_with(opts: TreeOptions) -> (tempfile::TempDir, TimeTree) {
        let dir = tempfile::tempdir().unwrap();
        let env = StorageEnv::open(dir.path(), LatencyMode::Off).unwrap();
        let t = TimeTree::open(env, opts).unwrap();
        (dir, t)
    }

    fn small_opts() -> TreeOptions {
        TreeOptions {
            memtable_bytes: 16 << 10,
            l0_partition_ms: 30 * MIN,
            l2_partition_ms: 2 * HOUR,
            max_sstable_bytes: 32 << 10,
            partition_min_ms: 15 * MIN,
            ..TreeOptions::default()
        }
    }

    /// An incompressible pseudo-random chunk payload (real chunks are
    /// Gorilla-compressed and do not collapse under Snappy either).
    fn chunk(tag: u64) -> Vec<u8> {
        let mut state = tag.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        (0..120)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as u8
            })
            .collect()
    }

    /// Inserts `n_chunks` chunks per series for `n_series` series at
    /// 30-minute chunk spacing starting at t=0, maintaining as signalled.
    fn load(t: &TimeTree, n_series: u64, n_chunks: i64) {
        for c in 0..n_chunks {
            for id in 0..n_series {
                let ts = c * 30 * MIN;
                if t.put(id, ts, chunk(id * 1000 + c as u64)) {
                    t.maintain().unwrap();
                }
            }
        }
        t.seal();
        t.maintain().unwrap();
    }

    #[test]
    fn put_get_from_memtable() {
        let (_d, t) = tree_with(small_opts());
        t.put(7, 1000, chunk(1));
        assert_eq!(t.get_chunk(7, 1000).unwrap(), Some(chunk(1)));
        assert_eq!(t.get_chunk(7, 2000).unwrap(), None);
        assert_eq!(t.get_chunk(8, 1000).unwrap(), None);
    }

    #[test]
    fn flush_moves_data_to_l0_partitions() {
        let (_d, t) = tree_with(small_opts());
        // Two chunks in different 30-min partitions.
        t.put(1, 5 * MIN, chunk(1));
        t.put(1, 40 * MIN, chunk(2));
        t.seal();
        t.maintain().unwrap();
        let s = t.stats();
        assert_eq!(s.flushes, 1);
        assert_eq!(s.l0_partitions, 2);
        assert_eq!(t.get_chunk(1, 5 * MIN).unwrap(), Some(chunk(1)));
        assert_eq!(t.get_chunk(1, 40 * MIN).unwrap(), Some(chunk(2)));
    }

    #[test]
    fn l0_compaction_gathers_into_l1() {
        let (_d, t) = tree_with(small_opts());
        load(&t, 4, 8); // 4 hours of data in 30-min chunks
        let s = t.stats();
        assert!(s.l0_to_l1_compactions > 0, "{s:?}");
        // Everything must still be readable.
        for id in 0..4 {
            let chunks = t.range_chunks(id, 0, 5 * HOUR).unwrap();
            assert_eq!(chunks.len(), 8, "series {id}: {s:?}");
        }
    }

    #[test]
    fn l1_to_l2_uploads_closed_windows() {
        let (_d, t) = tree_with(small_opts());
        load(&t, 4, 12); // 6 hours: at least two closed 2h windows
        let s = t.stats();
        assert!(s.l1_to_l2_compactions >= 1, "{s:?}");
        assert!(s.l2_partitions >= 1, "{s:?}");
        assert!(s.slow_bytes > 0);
        for id in 0..4 {
            assert_eq!(t.range_chunks(id, 0, 7 * HOUR).unwrap().len(), 12);
        }
    }

    #[test]
    fn flush_all_to_slow_empties_fast_levels() {
        let (_d, t) = tree_with(small_opts());
        load(&t, 2, 6);
        t.flush_all_to_slow().unwrap();
        let s = t.stats();
        assert_eq!(s.l0_partitions, 0);
        assert_eq!(s.l1_partitions, 0);
        assert!(s.l2_partitions > 0);
        assert_eq!(s.fast_bytes, 0);
        for id in 0..2 {
            assert_eq!(t.range_chunks(id, 0, 4 * HOUR).unwrap().len(), 6);
        }
    }

    #[test]
    fn newest_version_wins_after_rewrite() {
        let (_d, t) = tree_with(small_opts());
        t.put(1, 1000, chunk(1));
        t.seal();
        t.maintain().unwrap();
        t.put(1, 1000, chunk(99));
        assert_eq!(t.get_chunk(1, 1000).unwrap(), Some(chunk(99)));
        t.seal();
        t.maintain().unwrap();
        assert_eq!(t.get_chunk(1, 1000).unwrap(), Some(chunk(99)));
    }

    #[test]
    fn out_of_order_flush_lands_in_old_partition() {
        let (_d, t) = tree_with(small_opts());
        load(&t, 2, 4);
        // Late write for the first partition.
        t.put(0, 1 * MIN, chunk(777));
        t.seal();
        t.maintain().unwrap();
        assert_eq!(t.get_chunk(0, 1 * MIN).unwrap(), Some(chunk(777)));
        // And it merges fine through further compactions.
        t.flush_all_to_slow().unwrap();
        assert_eq!(t.get_chunk(0, 1 * MIN).unwrap(), Some(chunk(777)));
    }

    #[test]
    fn out_of_order_to_l2_creates_patches() {
        let (_d, t) = tree_with(small_opts());
        load(&t, 4, 12);
        t.flush_all_to_slow().unwrap();
        let before = t.stats();
        assert!(before.l2_partitions >= 2);
        // Backfill into an L2-resident window, then force it down.
        t.put(2, 10 * MIN, chunk(4242));
        t.flush_all_to_slow().unwrap();
        let after = t.stats();
        assert!(after.patches_created > before.patches_created, "{after:?}");
        assert_eq!(t.get_chunk(2, 10 * MIN).unwrap(), Some(chunk(4242)));
        // Old data in the patched partition is still there.
        assert_eq!(t.range_chunks(2, 0, 7 * HOUR).unwrap().len(), 13);
    }

    #[test]
    fn excess_patches_trigger_merge() {
        let opts = TreeOptions {
            patch_threshold: 1,
            ..small_opts()
        };
        let (_d, t) = tree_with(opts);
        load(&t, 2, 12);
        t.flush_all_to_slow().unwrap();
        // Two separate backfills to the same old window.
        for (i, ts) in [(0u64, 3 * MIN), (0, 7 * MIN), (0, 9 * MIN)] {
            t.put(i, ts, chunk(ts as u64));
            t.flush_all_to_slow().unwrap();
        }
        let s = t.stats();
        assert!(s.patch_merges >= 1, "{s:?}");
        for ts in [3 * MIN, 7 * MIN, 9 * MIN] {
            assert_eq!(t.get_chunk(0, ts).unwrap(), Some(chunk(ts as u64)));
        }
        assert_eq!(t.range_chunks(0, 0, 7 * HOUR).unwrap().len(), 15);
    }

    #[test]
    fn retention_purges_old_partitions() {
        let (_d, t) = tree_with(small_opts());
        load(&t, 2, 12);
        t.flush_all_to_slow().unwrap();
        let removed = t.purge_before(4 * HOUR).unwrap();
        assert!(removed > 0);
        let remaining = t.range_chunks(0, 0, 7 * HOUR).unwrap();
        assert!(remaining.len() < 12);
        assert!(remaining.iter().all(|(ts, _)| *ts >= 4 * HOUR - 30 * MIN));
    }

    #[test]
    fn dynamic_control_shrinks_partitions_under_pressure() {
        let opts = TreeOptions {
            fast_limit_bytes: Some(16 << 10),
            l0_partition_ms: 2 * HOUR,
            partition_min_ms: 15 * MIN,
            ..small_opts()
        };
        let (_d, t) = tree_with(opts);
        load(&t, 32, 12);
        let s = t.stats();
        assert!(s.r1_ms < 2 * HOUR, "partition length should shrink: {s:?}");
        assert!(s.r1_ms >= 15 * MIN);
    }

    #[test]
    fn manifest_round_trip_preserves_everything() {
        let dir = tempfile::tempdir().unwrap();
        let env = StorageEnv::open(dir.path(), LatencyMode::Off).unwrap();
        {
            let t = TimeTree::open(env.clone(), small_opts()).unwrap();
            load(&t, 3, 12);
            t.put(0, 3 * MIN, chunk(55)); // leave a patch behind
            t.flush_all_to_slow().unwrap();
        }
        let env2 = StorageEnv::open(dir.path(), LatencyMode::Off).unwrap();
        let t = TimeTree::open(env2, small_opts()).unwrap();
        for id in 0..3 {
            let expect = if id == 0 { 13 } else { 12 };
            assert_eq!(
                t.range_chunks(id, 0, 7 * HOUR).unwrap().len(),
                expect,
                "series {id}"
            );
        }
        assert_eq!(t.get_chunk(0, 3 * MIN).unwrap(), Some(chunk(55)));
    }

    #[test]
    fn range_chunks_respects_bounds_and_ids() {
        let (_d, t) = tree_with(small_opts());
        load(&t, 3, 8);
        let chunks = t.range_chunks(1, 1 * HOUR, 3 * HOUR).unwrap();
        assert_eq!(chunks.len(), 4); // starts at 1h, 1.5h, 2h, 2.5h
        assert!(chunks
            .iter()
            .all(|(ts, _)| (1 * HOUR..3 * HOUR).contains(ts)));
        assert!(t.range_chunks(99, 0, 10 * HOUR).unwrap().is_empty());
    }

    #[test]
    fn single_slow_level_writes_less_than_data_rewrite() {
        // The headline property: bytes PUT to the slow tier stay close to
        // the data size (1x write amplification at L2).
        let dir = tempfile::tempdir().unwrap();
        let env = StorageEnv::open(dir.path(), LatencyMode::Off).unwrap();
        let t = TimeTree::open(env.clone(), small_opts()).unwrap();
        load(&t, 8, 16);
        t.flush_all_to_slow().unwrap();
        let slow = env.object.stats();
        let data = t.stats().slow_bytes;
        assert!(
            slow.bytes_written <= data * 2,
            "slow writes {} vs resident {}",
            slow.bytes_written,
            data
        );
    }
}
