//! The write buffer: a sorted MemTable plus the immutable-memtable queue.
//!
//! The paper extends LevelDB with a queue of immutable MemTables so several
//! flushes can be in flight without blocking insertion (§3.3 "Compaction on
//! fast cloud storage").

use std::collections::BTreeMap;
use std::sync::Arc;

use tu_common::lockdep::{self, Mutex, RwLock};

/// A sorted in-memory write buffer. Last write wins per key.
#[derive(Debug, Default)]
pub struct MemTable {
    map: BTreeMap<Vec<u8>, Vec<u8>>,
    bytes: usize,
}

impl MemTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts or replaces a key. Returns the table's new approximate size.
    pub fn put(&mut self, key: Vec<u8>, value: Vec<u8>) -> usize {
        let key_len = key.len();
        let value_len = value.len();
        match self.map.insert(key, value) {
            Some(old) => {
                // Key bytes were already counted; swap the value charge.
                self.bytes = self.bytes - old.len() + value_len;
            }
            None => self.bytes += key_len + value_len,
        }
        self.bytes
    }

    pub fn get(&self, key: &[u8]) -> Option<&[u8]> {
        self.map.get(key).map(|v| v.as_slice())
    }

    /// Entries with keys in `[start, end)`.
    pub fn range(&self, start: &[u8], end: &[u8]) -> impl Iterator<Item = (&[u8], &[u8])> {
        self.map
            .range::<[u8], _>((
                std::ops::Bound::Included(start),
                std::ops::Bound::Excluded(end),
            ))
            .map(|(k, v)| (k.as_slice(), v.as_slice()))
    }

    pub fn iter(&self) -> impl Iterator<Item = (&[u8], &[u8])> {
        self.map.iter().map(|(k, v)| (k.as_slice(), v.as_slice()))
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Approximate payload bytes held.
    pub fn approx_bytes(&self) -> usize {
        self.bytes
    }

    /// Consumes the table into its sorted entries.
    pub fn into_entries(self) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.map.into_iter().collect()
    }
}

/// The active MemTable plus the queue of sealed (immutable) tables waiting
/// to be flushed, oldest first.
pub struct MemTableSet {
    active: RwLock<MemTable>,
    immutables: Mutex<Vec<Arc<MemTable>>>,
}

impl Default for MemTableSet {
    fn default() -> Self {
        Self::new()
    }
}

impl MemTableSet {
    pub fn new() -> Self {
        MemTableSet {
            active: RwLock::new(&lockdep::LSM_MEMTABLE_ACTIVE, MemTable::new()),
            immutables: Mutex::new(&lockdep::LSM_MEMTABLE_IMM, Vec::new()),
        }
    }

    /// Inserts into the active table; returns its approximate size so the
    /// caller can decide to seal.
    pub fn put(&self, key: Vec<u8>, value: Vec<u8>) -> usize {
        self.active.write().put(key, value)
    }

    /// Seals the active table into the immutable queue (if non-empty) and
    /// installs a fresh one. Returns the sealed table.
    pub fn seal(&self) -> Option<Arc<MemTable>> {
        let mut active = self.active.write();
        if active.is_empty() {
            return None;
        }
        let sealed = Arc::new(std::mem::take(&mut *active));
        self.immutables.lock().push(sealed.clone());
        Some(sealed)
    }

    /// Removes a flushed table from the queue.
    pub fn retire(&self, table: &Arc<MemTable>) {
        let mut q = self.immutables.lock();
        if let Some(pos) = q.iter().position(|t| Arc::ptr_eq(t, table)) {
            q.remove(pos);
        }
    }

    /// Oldest-first snapshot of the immutable queue.
    pub fn immutables(&self) -> Vec<Arc<MemTable>> {
        self.immutables.lock().clone()
    }

    /// Pops the oldest immutable table for flushing (without retiring it —
    /// call [`MemTableSet::retire`] after the flush commits).
    pub fn oldest_immutable(&self) -> Option<Arc<MemTable>> {
        self.immutables.lock().first().cloned()
    }

    /// Point lookup across active + immutables, newest first.
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        if let Some(v) = self.active.read().get(key) {
            return Some(v.to_vec());
        }
        let q = self.immutables.lock();
        for t in q.iter().rev() {
            if let Some(v) = t.get(key) {
                return Some(v.to_vec());
            }
        }
        None
    }

    /// Range scan across active + immutables; newest value wins per key.
    pub fn range(&self, start: &[u8], end: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut out: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        // Oldest first so newer writes overwrite.
        for t in self.immutables.lock().iter() {
            for (k, v) in t.range(start, end) {
                out.insert(k.to_vec(), v.to_vec());
            }
        }
        for (k, v) in self.active.read().range(start, end) {
            out.insert(k.to_vec(), v.to_vec());
        }
        out.into_iter().collect()
    }

    /// Approximate bytes across active and immutable tables.
    pub fn approx_bytes(&self) -> usize {
        self.active.read().approx_bytes()
            + self
                .immutables
                .lock()
                .iter()
                .map(|t| t.approx_bytes())
                .sum::<usize>()
    }

    /// Number of queued immutable tables.
    pub fn immutable_count(&self) -> usize {
        self.immutables.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memtable_put_get_overwrite() {
        let mut m = MemTable::new();
        m.put(b"b".to_vec(), b"1".to_vec());
        m.put(b"a".to_vec(), b"2".to_vec());
        m.put(b"b".to_vec(), b"3".to_vec());
        assert_eq!(m.get(b"b"), Some(b"3".as_slice()));
        assert_eq!(m.len(), 2);
        let keys: Vec<&[u8]> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![b"a".as_slice(), b"b".as_slice()]);
    }

    #[test]
    fn memtable_range_is_half_open() {
        let mut m = MemTable::new();
        for k in ["a", "b", "c", "d"] {
            m.put(k.as_bytes().to_vec(), b"x".to_vec());
        }
        let got: Vec<&[u8]> = m.range(b"b", b"d").map(|(k, _)| k).collect();
        assert_eq!(got, vec![b"b".as_slice(), b"c".as_slice()]);
    }

    #[test]
    fn size_grows_with_payload() {
        let mut m = MemTable::new();
        let s0 = m.approx_bytes();
        m.put(vec![0; 100], vec![0; 900]);
        assert!(m.approx_bytes() >= s0 + 1000);
    }

    #[test]
    fn set_seal_and_retire_cycle() {
        let set = MemTableSet::new();
        assert!(set.seal().is_none(), "empty active table does not seal");
        set.put(b"k1".to_vec(), b"v1".to_vec());
        let sealed = set.seal().expect("sealed");
        assert_eq!(set.immutable_count(), 1);
        set.put(b"k2".to_vec(), b"v2".to_vec());
        // Both visible while the flush is pending.
        assert_eq!(set.get(b"k1"), Some(b"v1".to_vec()));
        assert_eq!(set.get(b"k2"), Some(b"v2".to_vec()));
        set.retire(&sealed);
        assert_eq!(set.immutable_count(), 0);
        assert_eq!(set.get(b"k1"), None, "retired table no longer visible");
    }

    #[test]
    fn newest_write_wins_across_tables() {
        let set = MemTableSet::new();
        set.put(b"k".to_vec(), b"old".to_vec());
        set.seal().unwrap();
        set.put(b"k".to_vec(), b"new".to_vec());
        assert_eq!(set.get(b"k"), Some(b"new".to_vec()));
        let all = set.range(b"", b"~");
        assert_eq!(all, vec![(b"k".to_vec(), b"new".to_vec())]);
    }

    #[test]
    fn multiple_immutables_queue_in_order() {
        let set = MemTableSet::new();
        for i in 0..3 {
            set.put(format!("k{i}").into_bytes(), b"v".to_vec());
            set.seal().unwrap();
        }
        assert_eq!(set.immutable_count(), 3);
        let oldest = set.oldest_immutable().unwrap();
        assert!(oldest.get(b"k0").is_some());
    }
}
