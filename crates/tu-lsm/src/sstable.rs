//! SSTable format: prefix-compressed data blocks, an index block, a bloom
//! filter, and a properties footer.
//!
//! Layout (offsets grow downward):
//!
//! ```text
//! [data block 0][data block 1]...      Snappy-compressed, CRC-guarded
//! [index block]                        last-key -> (offset, len) per block
//! [bloom filter]
//! [properties]                         entry count, first/last key
//! [footer: 4 x (u64 offset, u64 len) + u64 magic]
//! ```
//!
//! Every block (data, index, properties) is framed as
//! `[payload][compression tag: 1 byte][masked crc32c: 4 bytes]`, like
//! LevelDB. Keys are the 16-byte `(id, start_ts)` chunk keys of
//! `tu_common::keys`, so the properties' first/last key double as the
//! table's ID range — which the patch mechanism needs (Figure 11).

use std::sync::Arc;

use tu_cloud::block::BlockStore;
use tu_cloud::object::ObjectStore;
use tu_common::{varint, Error, Result};
use tu_compress::{crc, snappy};

use crate::bloom::BloomFilter;
use crate::cache::BlockCache;

/// A parsed data block as stored in the cache.
type Block = Arc<Vec<(Vec<u8>, Vec<u8>)>>;

const MAGIC: u64 = 0x7475_5353_5441_424c; // "tuSSTABL"
const FOOTER_LEN: usize = 8 * 8 + 8;
const RESTART_INTERVAL: usize = 16;
/// Target uncompressed data-block size; the paper's cost model bills one
/// slow-storage Get per 4 KiB block (Table 1: `S_block`).
pub const BLOCK_SIZE: usize = 4096;

const COMPRESS_NONE: u8 = 0;
const COMPRESS_SNAPPY: u8 = 1;

/// Block-load and readahead counters, resolved once per process. Traced,
/// so profiled operations see which block fetches they caused.
struct SstObs {
    block_loads: tu_obs::TracedCounter,
    block_load_bytes: tu_obs::TracedCounter,
    coalesced_requests: tu_obs::TracedCounter,
    coalesced_blocks: tu_obs::TracedCounter,
    bloom_checks: tu_obs::TracedCounter,
    bloom_negatives: tu_obs::TracedCounter,
}

fn sst_obs() -> &'static SstObs {
    static OBS: std::sync::OnceLock<SstObs> = std::sync::OnceLock::new();
    OBS.get_or_init(|| SstObs {
        block_loads: tu_obs::traced("lsm.sstable.block_loads"),
        block_load_bytes: tu_obs::traced("lsm.sstable.block_load_bytes"),
        coalesced_requests: tu_obs::traced("lsm.readahead.coalesced_requests"),
        coalesced_blocks: tu_obs::traced("lsm.readahead.coalesced_blocks"),
        bloom_checks: tu_obs::traced("lsm.bloom.checks"),
        bloom_negatives: tu_obs::traced("lsm.bloom.negatives"),
    })
}

/// Default cap on how many adjacent uncached blocks one coalesced readahead
/// request may fetch (64 x 4 KiB ≈ 256 KiB per request — well past the
/// latency model's 16 KiB knee, so larger runs would trade little latency
/// for much more over-read on early-terminated scans).
pub const DEFAULT_READAHEAD_BLOCKS: usize = 64;

// --- block building ---------------------------------------------------------

/// Builds one prefix-compressed block.
struct BlockBuilder {
    buf: Vec<u8>,
    restarts: Vec<u32>,
    last_key: Vec<u8>,
    entries: usize,
}

impl BlockBuilder {
    fn new() -> Self {
        BlockBuilder {
            buf: Vec::with_capacity(BLOCK_SIZE),
            restarts: vec![0],
            last_key: Vec::new(),
            entries: 0,
        }
    }

    fn add(&mut self, key: &[u8], value: &[u8]) {
        let shared = if self.entries % RESTART_INTERVAL == 0 {
            self.restarts.push(self.buf.len() as u32);
            0
        } else {
            key.iter()
                .zip(&self.last_key)
                .take_while(|(a, b)| a == b)
                .count()
        };
        varint::write_u64(&mut self.buf, shared as u64);
        varint::write_u64(&mut self.buf, (key.len() - shared) as u64);
        varint::write_u64(&mut self.buf, value.len() as u64);
        self.buf.extend_from_slice(&key[shared..]);
        self.buf.extend_from_slice(value);
        self.last_key.clear();
        self.last_key.extend_from_slice(key);
        self.entries += 1;
    }

    fn estimated_len(&self) -> usize {
        self.buf.len() + self.restarts.len() * 4 + 4
    }

    fn is_empty(&self) -> bool {
        self.entries == 0
    }

    fn finish(mut self) -> Vec<u8> {
        // The first restart pushed at construction is a duplicate of the
        // one pushed by the first add(); drop it.
        let restarts = if self.restarts.len() > 1 {
            &self.restarts[1..]
        } else {
            &self.restarts[..]
        };
        for &r in restarts {
            self.buf.extend_from_slice(&r.to_le_bytes());
        }
        self.buf
            .extend_from_slice(&(restarts.len() as u32).to_le_bytes());
        self.buf
    }
}

/// Parses entries out of one uncompressed block.
fn block_entries(block: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
    if block.len() < 4 {
        return Err(Error::corruption("sstable block shorter than trailer"));
    }
    let n_restarts = tu_common::bytes::u32_le(&block[block.len() - 4..]) as usize;
    let data_end = block
        .len()
        .checked_sub(4 + n_restarts * 4)
        .ok_or_else(|| Error::corruption("sstable block restart count invalid"))?;
    let mut out = Vec::new();
    let mut off = 0usize;
    let mut last_key: Vec<u8> = Vec::new();
    while off < data_end {
        let (shared, n) = varint::read_u64(&block[off..])?;
        off += n;
        let (non_shared, n) = varint::read_u64(&block[off..])?;
        off += n;
        let (vlen, n) = varint::read_u64(&block[off..])?;
        off += n;
        let shared = shared as usize;
        let non_shared = non_shared as usize;
        let vlen = vlen as usize;
        if shared > last_key.len() || off + non_shared + vlen > data_end {
            return Err(Error::corruption("sstable block entry out of bounds"));
        }
        let mut key = last_key[..shared].to_vec();
        key.extend_from_slice(&block[off..off + non_shared]);
        off += non_shared;
        let value = block[off..off + vlen].to_vec();
        off += vlen;
        last_key = key.clone();
        out.push((key, value));
    }
    Ok(out)
}

fn frame_block(payload: &[u8]) -> Vec<u8> {
    // Compress if it helps.
    let compressed = snappy::compress(payload);
    let (tag, body) = if compressed.len() < payload.len() {
        (COMPRESS_SNAPPY, compressed)
    } else {
        (COMPRESS_NONE, payload.to_vec())
    };
    let mut out = body;
    out.push(tag);
    let checksum = crc::mask(crc::crc32c(&out));
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

fn unframe_block(framed: &[u8]) -> Result<Vec<u8>> {
    if framed.len() < 5 {
        return Err(Error::corruption("sstable block frame truncated"));
    }
    let (body_tag, crc_bytes) = framed.split_at(framed.len() - 4);
    let stored = crc::unmask(tu_common::bytes::u32_le(crc_bytes));
    if crc::crc32c(body_tag) != stored {
        return Err(Error::corruption("sstable block checksum mismatch"));
    }
    let (body, tag) = body_tag.split_at(body_tag.len() - 1);
    match tag[0] {
        COMPRESS_NONE => Ok(body.to_vec()),
        COMPRESS_SNAPPY => snappy::decompress(body),
        other => Err(Error::corruption(format!(
            "unknown sstable compression tag {other}"
        ))),
    }
}

// --- table building ----------------------------------------------------------

/// Summary of a finished table, persisted by the tree's manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableProps {
    pub entries: u64,
    pub first_key: Vec<u8>,
    pub last_key: Vec<u8>,
    /// Total file size in bytes.
    pub file_len: u64,
    /// How many entries carry a `tu_compress::agg` stats envelope — the
    /// pushdown-eligible fraction the introspection plane reports as
    /// "stats-footer coverage".
    pub stats_chunks: u64,
}

/// Builds a serialized SSTable in memory from sorted `(key, value)` adds.
pub struct TableBuilder {
    buf: Vec<u8>,
    current: BlockBuilder,
    index: Vec<(Vec<u8>, u64, u64)>, // (last key, offset, len)
    keys: Vec<Vec<u8>>,
    first_key: Option<Vec<u8>>,
    last_key: Vec<u8>,
    entries: u64,
    stats_chunks: u64,
}

impl Default for TableBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl TableBuilder {
    pub fn new() -> Self {
        TableBuilder {
            buf: Vec::new(),
            current: BlockBuilder::new(),
            index: Vec::new(),
            keys: Vec::new(),
            first_key: None,
            last_key: Vec::new(),
            entries: 0,
            stats_chunks: 0,
        }
    }

    /// Adds an entry; keys must arrive in strictly increasing order.
    pub fn add(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        if self.entries > 0 && key <= self.last_key.as_slice() {
            return Err(Error::invalid("sstable keys must be strictly increasing"));
        }
        if self.first_key.is_none() {
            self.first_key = Some(key.to_vec());
        }
        self.current.add(key, value);
        if tu_compress::agg::split_envelope(value).0.is_some() {
            self.stats_chunks += 1;
        }
        self.keys.push(key.to_vec());
        self.last_key.clear();
        self.last_key.extend_from_slice(key);
        self.entries += 1;
        if self.current.estimated_len() >= BLOCK_SIZE {
            self.flush_block();
        }
        Ok(())
    }

    fn flush_block(&mut self) {
        if self.current.is_empty() {
            return;
        }
        let block = std::mem::replace(&mut self.current, BlockBuilder::new());
        let framed = frame_block(&block.finish());
        let offset = self.buf.len() as u64;
        self.buf.extend_from_slice(&framed);
        self.index
            .push((self.last_key.clone(), offset, framed.len() as u64));
    }

    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Current approximate size of the table being built.
    pub fn estimated_len(&self) -> usize {
        self.buf.len() + self.current.estimated_len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Finalizes the table, returning the file bytes and properties.
    pub fn finish(mut self) -> Result<(Vec<u8>, TableProps)> {
        if self.entries == 0 {
            return Err(Error::invalid("cannot finish an empty sstable"));
        }
        self.flush_block();
        // Index block.
        let mut idx = BlockBuilder::new();
        for (last_key, offset, len) in &self.index {
            let mut v = Vec::with_capacity(16);
            varint::write_u64(&mut v, *offset);
            varint::write_u64(&mut v, *len);
            idx.add(last_key, &v);
        }
        let index_framed = frame_block(&idx.finish());
        let index_off = self.buf.len() as u64;
        self.buf.extend_from_slice(&index_framed);
        // Bloom filter.
        let bloom = BloomFilter::build(self.keys.iter().map(|k| k.as_slice()), 10);
        let bloom_bytes = bloom.to_bytes();
        let bloom_off = self.buf.len() as u64;
        self.buf.extend_from_slice(&bloom_bytes);
        // Properties block.
        let first_key = self
            .first_key
            .ok_or_else(|| Error::invalid("sstable has entries but no first key"))?;
        let mut props = Vec::new();
        varint::write_u64(&mut props, self.entries);
        varint::write_u64(&mut props, first_key.len() as u64);
        props.extend_from_slice(&first_key);
        varint::write_u64(&mut props, self.last_key.len() as u64);
        props.extend_from_slice(&self.last_key);
        varint::write_u64(&mut props, self.stats_chunks);
        let props_framed = frame_block(&props);
        let props_off = self.buf.len() as u64;
        self.buf.extend_from_slice(&props_framed);
        // Footer.
        for v in [
            index_off,
            index_framed.len() as u64,
            bloom_off,
            bloom_bytes.len() as u64,
            props_off,
            props_framed.len() as u64,
            0,
            0,
        ] {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
        self.buf.extend_from_slice(&MAGIC.to_le_bytes());
        let props = TableProps {
            entries: self.entries,
            first_key,
            last_key: self.last_key,
            file_len: self.buf.len() as u64,
            stats_chunks: self.stats_chunks,
        };
        Ok((self.buf, props))
    }
}

// --- reading ------------------------------------------------------------------

/// Random-access byte source an SSTable can be read from: a fast-tier file
/// or a slow-tier object.
pub enum TableSource {
    Block(Arc<BlockStore>, String),
    Object(Arc<ObjectStore>, String),
}

impl TableSource {
    fn read_at(&self, offset: u64, len: usize) -> Result<Vec<u8>> {
        let data = match self {
            TableSource::Block(store, name) => store.read_range(name, offset, len)?,
            TableSource::Object(store, key) => store.get_range(key, offset, len)?,
        };
        if data.len() != len {
            return Err(Error::corruption(format!(
                "short read: wanted {len} bytes at {offset}, got {}",
                data.len()
            )));
        }
        Ok(data)
    }

    /// Fetches several ranges with one billable store request (the
    /// readahead path: a run of adjacent data blocks costs one Get).
    fn read_multi(&self, ranges: &[(u64, usize)]) -> Result<Vec<Vec<u8>>> {
        let parts = match self {
            TableSource::Block(store, name) => store.read_multi_range(name, ranges)?,
            TableSource::Object(store, key) => store.get_multi_range(key, ranges)?,
        };
        for (part, &(offset, len)) in parts.iter().zip(ranges) {
            if part.len() != len {
                return Err(Error::corruption(format!(
                    "short read: wanted {len} bytes at {offset}, got {}",
                    part.len()
                )));
            }
        }
        Ok(parts)
    }

    fn len(&self) -> Result<u64> {
        match self {
            TableSource::Block(store, name) => store.len(name),
            TableSource::Object(store, key) => store.len(key),
        }
    }

    /// A cache identity for this table.
    fn cache_name(&self) -> String {
        match self {
            TableSource::Block(_, name) => format!("b:{name}"),
            TableSource::Object(_, key) => format!("o:{key}"),
        }
    }
}

/// An open SSTable: footer, index, and bloom loaded; data blocks fetched on
/// demand through the block cache.
pub struct Table {
    source: TableSource,
    cache: Option<Arc<BlockCache>>,
    cache_name: String,
    index: Vec<(Vec<u8>, u64, u64)>,
    bloom: BloomFilter,
    props: TableProps,
    /// Max adjacent uncached blocks fetched by one coalesced readahead
    /// request during range scans; `<= 1` disables coalescing.
    readahead_blocks: usize,
}

impl Table {
    /// Opens a table, reading footer + index + bloom + properties.
    pub fn open(source: TableSource, cache: Option<Arc<BlockCache>>) -> Result<Self> {
        let file_len = source.len()?;
        if file_len < FOOTER_LEN as u64 {
            return Err(Error::corruption("sstable shorter than its footer"));
        }
        let footer = source.read_at(file_len - FOOTER_LEN as u64, FOOTER_LEN)?;
        let magic = tu_common::bytes::u64_le(&footer[FOOTER_LEN - 8..]);
        if magic != MAGIC {
            return Err(Error::corruption("sstable footer magic mismatch"));
        }
        let mut fields = [0u64; 8];
        for (i, f) in fields.iter_mut().enumerate() {
            *f = tu_common::bytes::u64_le(&footer[i * 8..i * 8 + 8]);
        }
        let [index_off, index_len, bloom_off, bloom_len, props_off, props_len, _, _] = fields;
        // Index, bloom, and properties are laid out contiguously at the
        // file tail; fetch them in a single request (one Get on the slow
        // tier instead of three).
        let tail_len = (file_len - FOOTER_LEN as u64 - index_off) as usize;
        let tail = source.read_at(index_off, tail_len)?;
        let slice = |off: u64, len: u64| -> Result<&[u8]> {
            let start = (off - index_off) as usize;
            tail.get(start..start + len as usize)
                .ok_or_else(|| Error::corruption("sstable tail section out of bounds"))
        };
        let index_block = unframe_block(slice(index_off, index_len)?)?;
        let mut index = Vec::new();
        for (key, value) in block_entries(&index_block)? {
            let (off, n) = varint::read_u64(&value)?;
            let (len, _) = varint::read_u64(&value[n..])?;
            index.push((key, off, len));
        }
        let bloom = BloomFilter::from_bytes(slice(bloom_off, bloom_len)?)
            .ok_or_else(|| Error::corruption("sstable bloom filter truncated"))?;
        let props_block = unframe_block(slice(props_off, props_len)?)?;
        let mut off = 0usize;
        let (entries, n) = varint::read_u64(&props_block[off..])?;
        off += n;
        let (fk_len, n) = varint::read_u64(&props_block[off..])?;
        off += n;
        let first_key = props_block
            .get(off..off + fk_len as usize)
            .ok_or_else(|| Error::corruption("sstable properties truncated"))?
            .to_vec();
        off += fk_len as usize;
        let (lk_len, n) = varint::read_u64(&props_block[off..])?;
        off += n;
        let last_key = props_block
            .get(off..off + lk_len as usize)
            .ok_or_else(|| Error::corruption("sstable properties truncated"))?
            .to_vec();
        off += lk_len as usize;
        // Tables written before stats coverage was recorded simply end
        // here; treat them as having no stats envelopes.
        let stats_chunks = if off < props_block.len() {
            varint::read_u64(&props_block[off..])?.0
        } else {
            0
        };
        let cache_name = source.cache_name();
        Ok(Table {
            source,
            cache,
            cache_name,
            index,
            bloom,
            props: TableProps {
                entries,
                first_key,
                last_key,
                file_len,
                stats_chunks,
            },
            readahead_blocks: DEFAULT_READAHEAD_BLOCKS,
        })
    }

    /// Sets the coalesced-readahead cap for range scans (`<= 1` disables
    /// coalescing; every block is then fetched with its own request).
    pub fn set_readahead(&mut self, blocks: usize) {
        self.readahead_blocks = blocks;
    }

    pub fn props(&self) -> &TableProps {
        &self.props
    }

    /// Number of data blocks.
    pub fn block_count(&self) -> usize {
        self.index.len()
    }

    fn load_block(&self, block_idx: usize) -> Result<Arc<Vec<(Vec<u8>, Vec<u8>)>>> {
        let (_, off, len) = self.index[block_idx];
        if let Some(cache) = &self.cache {
            if let Some(hit) = cache.get(&self.cache_name, off) {
                return Ok(hit);
            }
        }
        // Cache miss: this read reaches storage (one billable Get on the
        // slow tier — the per-block term of Equations 4/6).
        sst_obs().block_loads.inc();
        sst_obs().block_load_bytes.add(len);
        let framed = self.source.read_at(off, len as usize)?;
        let entries = Arc::new(block_entries(&unframe_block(&framed)?)?);
        if let Some(cache) = &self.cache {
            cache.insert(&self.cache_name, off, entries.clone(), len as usize);
        }
        Ok(entries)
    }

    /// Loads blocks `first..=last` for a range scan, coalescing runs of
    /// adjacent uncached blocks into single ranged store reads.
    ///
    /// Cache accounting matches the one-at-a-time path exactly: each block
    /// is probed once (one hit or one miss per block), and
    /// `lsm.sstable.block_loads`/`block_load_bytes` still count every block
    /// that reached storage. What changes is the *request* count — a run of
    /// `k >= 2` adjacent misses costs one Get instead of `k` (the
    /// per-request term of Equations 4/6), surfaced as
    /// `lsm.readahead.coalesced_requests`/`coalesced_blocks`.
    fn load_blocks(&self, first: usize, last: usize) -> Result<Vec<Block>> {
        let mut out: Vec<Option<Block>> = vec![None; last - first + 1];
        let mut missing: Vec<usize> = Vec::new();
        for idx in first..=last {
            let (_, off, _) = self.index[idx];
            if let Some(cache) = &self.cache {
                if let Some(hit) = cache.get(&self.cache_name, off) {
                    out[idx - first] = Some(hit);
                    continue;
                }
            }
            missing.push(idx);
        }
        let max_run = self.readahead_blocks.max(1);
        let mut i = 0;
        while i < missing.len() {
            let mut j = i + 1;
            while j < missing.len() && missing[j] == missing[j - 1] + 1 && j - i < max_run {
                j += 1;
            }
            self.fetch_run(&missing[i..j], first, &mut out)?;
            i = j;
        }
        out.into_iter()
            .map(|b| b.ok_or_else(|| Error::corruption("range block neither cached nor fetched")))
            .collect()
    }

    /// Fetches one run of adjacent uncached blocks from storage, parses
    /// them, and inserts them into the cache.
    fn fetch_run(&self, run: &[usize], first: usize, out: &mut [Option<Block>]) -> Result<()> {
        let frames = if run.len() >= 2 {
            let ranges: Vec<(u64, usize)> = run
                .iter()
                .map(|&idx| {
                    let (_, off, len) = self.index[idx];
                    (off, len as usize)
                })
                .collect();
            sst_obs().coalesced_requests.inc();
            sst_obs().coalesced_blocks.add(run.len() as u64);
            self.source.read_multi(&ranges)?
        } else {
            let (_, off, len) = self.index[run[0]];
            vec![self.source.read_at(off, len as usize)?]
        };
        for (&idx, framed) in run.iter().zip(&frames) {
            let (_, off, len) = self.index[idx];
            sst_obs().block_loads.inc();
            sst_obs().block_load_bytes.add(len);
            let entries = Arc::new(block_entries(&unframe_block(framed)?)?);
            if let Some(cache) = &self.cache {
                cache.insert(&self.cache_name, off, entries.clone(), len as usize);
            }
            out[idx - first] = Some(entries);
        }
        Ok(())
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        if key < self.props.first_key.as_slice() || key > self.props.last_key.as_slice() {
            return Ok(None);
        }
        sst_obs().bloom_checks.inc();
        if !self.bloom.may_contain(key) {
            sst_obs().bloom_negatives.inc();
            return Ok(None);
        }
        let block_idx = match self
            .index
            .binary_search_by(|(last, _, _)| last.as_slice().cmp(key))
        {
            Ok(i) => i,
            Err(i) if i < self.index.len() => i,
            Err(_) => return Ok(None),
        };
        let entries = self.load_block(block_idx)?;
        Ok(entries
            .binary_search_by(|(k, _)| k.as_slice().cmp(key))
            .ok()
            .map(|i| entries[i].1.clone()))
    }

    /// Iterates entries with keys in `[start, end)`.
    ///
    /// Both bounding blocks are located up front via the index, so the
    /// needed block run is known before any data is fetched and adjacent
    /// uncached blocks can be read ahead with coalesced store requests.
    pub fn range(&self, start: &[u8], end: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut out = Vec::new();
        if self.index.is_empty() || start >= end {
            return Ok(out);
        }
        let first_block = match self
            .index
            .binary_search_by(|(last, _, _)| last.as_slice().cmp(start))
        {
            Ok(i) => i,
            Err(i) => i,
        };
        if first_block >= self.index.len() {
            return Ok(out);
        }
        // The first block whose last key reaches `end` is the final block
        // that can still hold keys `< end`; later blocks start past it.
        let last_block = match self
            .index
            .binary_search_by(|(last, _, _)| last.as_slice().cmp(end))
        {
            Ok(i) => i,
            Err(i) => i.min(self.index.len() - 1),
        };
        for entries in self.load_blocks(first_block, last_block)? {
            for (k, v) in entries.iter() {
                if k.as_slice() >= end {
                    return Ok(out);
                }
                if k.as_slice() >= start {
                    out.push((k.clone(), v.clone()));
                }
            }
        }
        Ok(out)
    }

    /// Reads every entry (used by compaction). Fetches the whole data
    /// region in a single request — compactions stream tables
    /// sequentially, so they pay one Get per table, not one per block
    /// (queries do pay per block, as the paper's Equations 4/6 model).
    pub fn scan_all(&self) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let Some(&(_, last_off, last_len)) = self.index.last() else {
            return Ok(Vec::new());
        };
        let data_end = (last_off + last_len) as usize;
        let region = self.source.read_at(0, data_end)?;
        let mut out = Vec::with_capacity(self.props.entries as usize);
        for &(_, off, len) in &self.index {
            let framed = &region[off as usize..(off + len) as usize];
            out.extend(block_entries(&unframe_block(framed)?)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tu_cloud::cost::{CostClock, LatencyMode, LatencyModel};
    use tu_common::keys::encode_key;

    fn build_table(n: u64) -> (Vec<u8>, TableProps) {
        let mut b = TableBuilder::new();
        for i in 0..n {
            let key = encode_key(i / 8, (i % 8) as i64 * 1000);
            b.add(&key, format!("value-{i}").as_bytes()).unwrap();
        }
        b.finish().unwrap()
    }

    fn open_on_block(bytes: &[u8]) -> (tempfile::TempDir, Table) {
        let dir = tempfile::tempdir().unwrap();
        let store = Arc::new(
            BlockStore::open(
                dir.path().join("b"),
                LatencyModel::ebs(),
                CostClock::new(LatencyMode::Off),
            )
            .unwrap(),
        );
        store.write_file("sst-1", bytes).unwrap();
        let t = Table::open(TableSource::Block(store, "sst-1".into()), None).unwrap();
        (dir, t)
    }

    #[test]
    fn build_and_point_get() {
        let (bytes, props) = build_table(500);
        assert_eq!(props.entries, 500);
        let (_d, t) = open_on_block(&bytes);
        assert_eq!(t.props().entries, 500);
        for i in (0..500u64).step_by(37) {
            let key = encode_key(i / 8, (i % 8) as i64 * 1000);
            assert_eq!(
                t.get(&key).unwrap(),
                Some(format!("value-{i}").into_bytes()),
                "entry {i}"
            );
        }
        assert_eq!(t.get(&encode_key(999, 0)).unwrap(), None);
        assert_eq!(t.get(&encode_key(0, 999)).unwrap(), None);
    }

    #[test]
    fn multi_block_tables_have_many_blocks() {
        let (bytes, _) = build_table(5000);
        let (_d, t) = open_on_block(&bytes);
        assert!(t.block_count() > 1, "5000 entries should span blocks");
        assert_eq!(t.scan_all().unwrap().len(), 5000);
    }

    #[test]
    fn range_scan_respects_bounds() {
        let (bytes, _) = build_table(256);
        let (_d, t) = open_on_block(&bytes);
        // Keys of series id 3 (entries 24..32): timestamps 0..8000.
        let start = encode_key(3, 0);
        let end = encode_key(4, 0);
        let hits = t.range(&start, &end).unwrap();
        assert_eq!(hits.len(), 8);
        for (k, _) in &hits {
            assert_eq!(tu_common::keys::decode_id(k).unwrap(), 3);
        }
        // Sub-range of timestamps.
        let hits = t.range(&encode_key(3, 2000), &encode_key(3, 5000)).unwrap();
        assert_eq!(hits.len(), 3);
        assert!(t.range(&end, &start).unwrap().is_empty());
    }

    #[test]
    fn keys_must_be_strictly_increasing() {
        let mut b = TableBuilder::new();
        b.add(b"aaaaaaaaaaaaaaaa", b"1").unwrap();
        assert!(b.add(b"aaaaaaaaaaaaaaaa", b"2").is_err());
        assert!(b.add(b"a", b"2").is_err());
    }

    #[test]
    fn empty_table_cannot_finish() {
        assert!(TableBuilder::new().finish().is_err());
    }

    #[test]
    fn corruption_is_detected() {
        let (mut bytes, _) = build_table(100);
        // Flip a byte in the middle of the first data block.
        bytes[10] ^= 0xff;
        let (_d, t) = open_on_block(&bytes);
        let key = encode_key(0, 0);
        let err = t.get(&key).unwrap_err();
        assert!(err.is_corruption(), "got {err}");
    }

    #[test]
    fn bad_magic_rejected_at_open() {
        let (mut bytes, _) = build_table(10);
        let n = bytes.len();
        bytes[n - 1] ^= 0xff;
        let dir = tempfile::tempdir().unwrap();
        let store = Arc::new(
            BlockStore::open(
                dir.path().join("b"),
                LatencyModel::ebs(),
                CostClock::new(LatencyMode::Off),
            )
            .unwrap(),
        );
        store.write_file("sst", &bytes).unwrap();
        assert!(Table::open(TableSource::Block(store, "sst".into()), None).is_err());
    }

    #[test]
    fn works_from_object_store_with_cache() {
        let (bytes, _) = build_table(2000);
        let dir = tempfile::tempdir().unwrap();
        let store = Arc::new(
            ObjectStore::open(
                dir.path().join("o"),
                LatencyModel::s3(),
                CostClock::new(LatencyMode::Virtual),
            )
            .unwrap(),
        );
        store.put("l2/sst-9", &bytes).unwrap();
        let cache = Arc::new(BlockCache::new(1 << 20));
        let t = Table::open(
            TableSource::Object(store.clone(), "l2/sst-9".into()),
            Some(cache),
        )
        .unwrap();
        let key = encode_key(5, 3000);
        let before = store.stats();
        assert!(t.get(&key).unwrap().is_some());
        let after_first = store.stats();
        assert!(t.get(&key).unwrap().is_some());
        let after_second = store.stats();
        assert!(after_first.get_requests > before.get_requests);
        assert_eq!(
            after_second.get_requests, after_first.get_requests,
            "second read must be served from the block cache"
        );
    }

    #[test]
    fn range_readahead_coalesces_adjacent_block_fetches() {
        // A long cold range scan over a multi-block table must cost far
        // fewer Get requests than blocks, because adjacent uncached blocks
        // are fetched with one coalesced ranged read (Equations 4/6 bill
        // per request). Stats are read per store instance, so this is
        // immune to other tests' global-counter traffic.
        let (bytes, _) = build_table(5000);
        let dir = tempfile::tempdir().unwrap();
        let store = Arc::new(
            ObjectStore::open(
                dir.path().join("o"),
                LatencyModel::s3(),
                CostClock::new(LatencyMode::Virtual),
            )
            .unwrap(),
        );
        store.put("l2/sst", &bytes).unwrap();
        let cache = Arc::new(BlockCache::new(1 << 20));
        let t = Table::open(
            TableSource::Object(store.clone(), "l2/sst".into()),
            Some(cache.clone()),
        )
        .unwrap();
        let blocks = t.block_count();
        assert!(blocks >= 4, "need a multi-block table, got {blocks}");

        let before = store.stats();
        let all = t
            .range(&encode_key(0, 0), &encode_key(u64::MAX, i64::MAX))
            .unwrap();
        assert_eq!(all.len(), 5000);
        let cold = store.stats().since(&before);
        assert_eq!(
            cold.get_requests, 1,
            "one coalesced Get for {blocks} blocks"
        );

        // Warm re-scan: everything is cached, zero requests.
        let before = store.stats();
        t.range(&encode_key(0, 0), &encode_key(u64::MAX, i64::MAX))
            .unwrap();
        assert_eq!(store.stats().since(&before).get_requests, 0);

        // With coalescing disabled the same cold scan pays one Get/block.
        cache.clear();
        let mut t2 = Table::open(
            TableSource::Object(store.clone(), "l2/sst".into()),
            Some(cache),
        )
        .unwrap();
        t2.set_readahead(1);
        let before = store.stats();
        t2.range(&encode_key(0, 0), &encode_key(u64::MAX, i64::MAX))
            .unwrap();
        assert_eq!(
            store.stats().since(&before).get_requests,
            blocks as u64,
            "uncoalesced scan pays one Get per block"
        );
    }

    #[test]
    fn readahead_skips_cached_blocks_and_respects_cap() {
        let (bytes, _) = build_table(5000);
        let dir = tempfile::tempdir().unwrap();
        let store = Arc::new(
            BlockStore::open(
                dir.path().join("b"),
                LatencyModel::ebs(),
                CostClock::new(LatencyMode::Off),
            )
            .unwrap(),
        );
        store.write_file("sst-1", &bytes).unwrap();
        let cache = Arc::new(BlockCache::new(1 << 20));
        let mut t = Table::open(
            TableSource::Block(store.clone(), "sst-1".into()),
            Some(cache),
        )
        .unwrap();
        t.set_readahead(2);
        // Warm one middle block via a point get so the cold scan has a
        // cached hole splitting the run.
        t.get(&encode_key(300, 0)).unwrap();
        let before = store.stats();
        let all = t
            .range(&encode_key(0, 0), &encode_key(u64::MAX, i64::MAX))
            .unwrap();
        assert_eq!(all.len(), 5000);
        let d = store.stats().since(&before);
        let blocks = t.block_count() as u64;
        // Cap 2 → at least ceil((blocks-1)/2) requests, but strictly
        // fewer than one per block.
        assert!(d.get_requests < blocks, "{} !< {blocks}", d.get_requests);
        assert!(
            d.get_requests >= blocks / 2,
            "{} vs {blocks}",
            d.get_requests
        );
    }

    #[test]
    fn chunk_key_prefix_compression_is_effective() {
        // Consecutive chunks of one series share 8-byte ID prefixes and
        // most timestamp bytes (§3.3); prefix compression should make the
        // per-entry key overhead small.
        let mut b = TableBuilder::new();
        for i in 0..1000i64 {
            b.add(&encode_key(42, i * 60_000), &[0u8; 8]).unwrap();
        }
        let (bytes, _) = b.finish().unwrap();
        // 1000 entries x (16B key + 8B value) = 24 KB raw; expect much less.
        assert!(bytes.len() < 12_000, "got {} bytes", bytes.len());
    }
}
