//! A classic leveled LSM-tree (LevelDB-style), used by the paper's
//! baselines: *tsdb-LDB* (chunk storage on S3) and *TU-LDB* (TimeUnion's
//! memory layer over a traditional LSM with the first two levels on EBS).
//!
//! The defining behaviour the paper measures against (§2.4, Figure 4): a
//! compaction selects a victim table and must read **all overlapping
//! SSTables in the next level**, which on slow cloud storage turns into
//! Get/Put request storms — the cost the time-partitioned design avoids.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use tu_common::lockdep::{self, Mutex};

use tu_cloud::StorageEnv;
use tu_common::keys::encode_key;
use tu_common::{Result, Timestamp};

use crate::cache::BlockCache;
use crate::memtable::MemTableSet;
use crate::sstable::{Table, TableBuilder, TableProps, TableSource};

/// Configuration of the leveled tree.
#[derive(Debug, Clone)]
pub struct LeveledOptions {
    /// Seal the active memtable beyond this many payload bytes.
    pub memtable_bytes: usize,
    /// L0 table count that triggers compaction into L1 (LevelDB: 4).
    pub l0_table_trigger: usize,
    /// Target byte size of L1; level `l` targets `base · multiplier^(l-1)`.
    pub base_level_bytes: u64,
    /// Level size multiplier `M` (LevelDB: 10).
    pub multiplier: u64,
    /// Split compaction outputs into tables of roughly this many bytes.
    pub max_sstable_bytes: usize,
    /// Levels at or beyond this index live on the slow tier. `0` puts
    /// everything on S3 (tsdb-LDB), `2` keeps L0/L1 on EBS (TU-LDB),
    /// `u8::MAX` keeps everything on EBS (EBS-only evaluation).
    pub slow_level_start: u8,
    /// Block-cache budget.
    pub block_cache_bytes: usize,
    /// Number of levels.
    pub max_levels: usize,
}

impl Default for LeveledOptions {
    fn default() -> Self {
        LeveledOptions {
            memtable_bytes: 4 << 20,
            l0_table_trigger: 4,
            base_level_bytes: 8 << 20,
            multiplier: 10,
            max_sstable_bytes: 2 << 20,
            slow_level_start: 2,
            block_cache_bytes: 64 << 20,
            max_levels: 7,
        }
    }
}

/// Counters for the Figure 4 experiment.
#[derive(Debug, Default, Clone, Copy)]
pub struct LeveledStats {
    pub flushes: u64,
    pub compactions: u64,
    /// Total SSTables read across all compactions (Figure 4b bottom).
    pub compaction_tables_read: u64,
    /// Bytes written by flushes + compactions (Figure 4b top).
    pub bytes_written: u64,
    pub fast_bytes: u64,
    pub slow_bytes: u64,
    pub tables_per_level: [usize; 8],
}

#[derive(Debug, Clone)]
struct TableMeta {
    name: String,
    seq: u64,
    props: TableProps,
    on_slow: bool,
}

/// The leveled LSM-tree.
pub struct LeveledTree {
    env: StorageEnv,
    opts: LeveledOptions,
    mem: MemTableSet,
    /// `levels[0]` may overlap; deeper levels are sorted and disjoint.
    levels: Mutex<Vec<Vec<TableMeta>>>,
    cache: Arc<BlockCache>,
    tables: Mutex<std::collections::HashMap<String, Arc<Table>>>,
    next_seq: AtomicU64,
    stats: Mutex<LeveledStats>,
}

impl LeveledTree {
    pub fn open(env: StorageEnv, opts: LeveledOptions) -> Result<Self> {
        let cache = Arc::new(BlockCache::new(opts.block_cache_bytes));
        let levels = vec![Vec::new(); opts.max_levels];
        Ok(LeveledTree {
            env,
            mem: MemTableSet::new(),
            levels: Mutex::new(&lockdep::LSM_LEVELED_LEVELS, levels),
            cache,
            tables: Mutex::new(
                &lockdep::LSM_LEVELED_TABLES,
                std::collections::HashMap::new(),
            ),
            next_seq: AtomicU64::new(1),
            stats: Mutex::new(&lockdep::LSM_LEVELED_STATS, LeveledStats::default()),
            opts,
        })
    }

    /// Inserts a chunk. Returns true when the memtable sealed (caller
    /// should run [`LeveledTree::maintain`]).
    pub fn put(&self, id: u64, start_ts: Timestamp, chunk: Vec<u8>) -> bool {
        let key = encode_key(id, start_ts).to_vec();
        let size = self.mem.put(key, chunk);
        if size >= self.opts.memtable_bytes {
            self.mem.seal();
            true
        } else {
            false
        }
    }

    pub fn seal(&self) {
        self.mem.seal();
    }

    fn next_seq(&self) -> u64 {
        self.next_seq.fetch_add(1, Ordering::Relaxed)
    }

    fn level_is_slow(&self, level: usize) -> bool {
        level >= self.opts.slow_level_start as usize
    }

    fn open_table(&self, meta: &TableMeta) -> Result<Arc<Table>> {
        if let Some(t) = self.tables.lock().get(&meta.name) {
            return Ok(t.clone());
        }
        let source = if meta.on_slow {
            TableSource::Object(self.env.object.clone(), meta.name.clone())
        } else {
            TableSource::Block(self.env.block.clone(), meta.name.clone())
        };
        let table = Arc::new(Table::open(source, Some(self.cache.clone()))?);
        self.tables.lock().insert(meta.name.clone(), table.clone());
        Ok(table)
    }

    fn delete_table(&self, meta: &TableMeta) -> Result<()> {
        self.tables.lock().remove(&meta.name);
        if meta.on_slow {
            self.env.object.delete(&meta.name)?;
            self.cache.invalidate_table(&format!("o:{}", meta.name));
        } else {
            self.env.block.delete(&meta.name)?;
            self.cache.invalidate_table(&format!("b:{}", meta.name));
        }
        Ok(())
    }

    fn build_tables(&self, entries: &[(Vec<u8>, Vec<u8>)], level: usize) -> Result<Vec<TableMeta>> {
        let on_slow = self.level_is_slow(level);
        let mut out = Vec::new();
        let mut builder = TableBuilder::new();
        let mut flush = |builder: &mut TableBuilder| -> Result<()> {
            if builder.is_empty() {
                return Ok(());
            }
            let done = std::mem::take(builder);
            let (bytes, props) = done.finish()?;
            let seq = self.next_seq();
            let name = format!("ldb/l{level}/sst-{seq:08}");
            if on_slow {
                self.env.object.put(&name, &bytes)?;
            } else {
                self.env.block.write_file(&name, &bytes)?;
            }
            self.stats.lock().bytes_written += bytes.len() as u64;
            out.push(TableMeta {
                name,
                seq,
                props,
                on_slow,
            });
            Ok(())
        };
        for (k, v) in entries {
            builder.add(k, v)?;
            if builder.estimated_len() >= self.opts.max_sstable_bytes {
                flush(&mut builder)?;
            }
        }
        flush(&mut builder)?;
        Ok(out)
    }

    /// Flushes sealed memtables into L0 without compacting — what the
    /// background flush thread does while inserts continue (the paper
    /// notes tsdb-LDB "flushes in the background without affecting the
    /// foreground insertion" while compaction lags).
    pub fn flush_memtables(&self) -> Result<()> {
        while let Some(imm) = self.mem.oldest_immutable() {
            let entries: Vec<(Vec<u8>, Vec<u8>)> =
                imm.iter().map(|(k, v)| (k.to_vec(), v.to_vec())).collect();
            let metas = self.build_tables(&entries, 0)?;
            self.levels.lock()[0].extend(metas);
            self.mem.retire(&imm);
            self.stats.lock().flushes += 1;
        }
        Ok(())
    }

    /// Runs flushes and compactions to quiescence.
    pub fn maintain(&self) -> Result<()> {
        self.flush_memtables()?;
        while let Some(level) = self.pick_compaction_level() {
            self.compact_level(level)?;
        }
        Ok(())
    }

    fn level_bytes(&self, tables: &[TableMeta]) -> u64 {
        tables.iter().map(|t| t.props.file_len).sum()
    }

    fn level_target(&self, level: usize) -> u64 {
        self.opts.base_level_bytes * self.opts.multiplier.pow(level.saturating_sub(1) as u32)
    }

    fn pick_compaction_level(&self) -> Option<usize> {
        let lv = self.levels.lock();
        if lv[0].len() > self.opts.l0_table_trigger {
            return Some(0);
        }
        for level in 1..lv.len() - 1 {
            if self.level_bytes(&lv[level]) > self.level_target(level) {
                return Some(level);
            }
        }
        None
    }

    fn compact_level(&self, level: usize) -> Result<()> {
        let (victims, overlaps) = {
            let mut lv = self.levels.lock();
            let victims: Vec<TableMeta> = if level == 0 {
                std::mem::take(&mut lv[0])
            } else {
                // Oldest table in the level is the victim.
                let idx = lv[level]
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, t)| t.seq)
                    .map(|(i, _)| i);
                match idx {
                    Some(i) => vec![lv[level].remove(i)],
                    None => return Ok(()),
                }
            };
            if victims.is_empty() {
                return Ok(());
            }
            let (min_key, max_key) = match (
                victims.iter().map(|t| &t.props.first_key).min(),
                victims.iter().map(|t| &t.props.last_key).max(),
            ) {
                (Some(lo), Some(hi)) => (lo.clone(), hi.clone()),
                // Unreachable: victims was checked non-empty above.
                _ => return Ok(()),
            };
            // All overlapping tables in the next level are read (the
            // behaviour Figure 4 quantifies).
            let next = level + 1;
            let mut overlaps = Vec::new();
            lv[next].retain(|t| {
                let keep = t.props.last_key < min_key || t.props.first_key > max_key;
                if !keep {
                    overlaps.push(t.clone());
                }
                keep
            });
            (victims, overlaps)
        };
        // Merge newest-wins: higher seq wins (victims from the shallower
        // level are always newer than the next level's tables, and their
        // seqs reflect that).
        let mut merged: BTreeMap<Vec<u8>, (u64, Vec<u8>)> = BTreeMap::new();
        let mut read_tables = 0u64;
        for meta in overlaps.iter().chain(victims.iter()) {
            let table = self.open_table(meta)?;
            read_tables += 1;
            for (k, v) in table.scan_all()? {
                match merged.get(&k) {
                    Some((seq, _)) if *seq > meta.seq => {}
                    _ => {
                        merged.insert(k, (meta.seq, v));
                    }
                }
            }
        }
        let entries: Vec<(Vec<u8>, Vec<u8>)> =
            merged.into_iter().map(|(k, (_, v))| (k, v)).collect();
        let metas = self.build_tables(&entries, level + 1)?;
        {
            let mut lv = self.levels.lock();
            lv[level + 1].extend(metas);
            lv[level + 1].sort_by(|a, b| a.props.first_key.cmp(&b.props.first_key));
        }
        for meta in victims.iter().chain(overlaps.iter()) {
            self.delete_table(meta)?;
        }
        let mut stats = self.stats.lock();
        stats.compactions += 1;
        stats.compaction_tables_read += read_tables;
        Ok(())
    }

    /// Compacts until every level is within its target (used to measure
    /// "time until all compactions finish", Figure 4a bottom).
    pub fn compact_to_quiescence(&self) -> Result<()> {
        self.seal();
        self.maintain()
    }

    /// All chunks of `id` with start timestamps in `[start, end)`, newest
    /// per key, sorted.
    pub fn range_chunks(
        &self,
        id: u64,
        start: Timestamp,
        end: Timestamp,
    ) -> Result<Vec<(Timestamp, Vec<u8>)>> {
        let start_key = encode_key(id, start);
        let end_key = encode_key(id, end.max(start));
        let mut acc: BTreeMap<Vec<u8>, (u64, Vec<u8>)> = BTreeMap::new();
        let metas: Vec<TableMeta> = {
            let lv = self.levels.lock();
            lv.iter()
                .flat_map(|tables| tables.iter())
                .filter(|t| {
                    !(t.props.last_key.as_slice() < start_key.as_slice()
                        || t.props.first_key.as_slice() >= end_key.as_slice())
                })
                .cloned()
                .collect()
        };
        for meta in metas {
            let table = self.open_table(&meta)?;
            for (k, v) in table.range(&start_key, &end_key)? {
                match acc.get(&k) {
                    Some((seq, _)) if *seq > meta.seq => {}
                    _ => {
                        acc.insert(k, (meta.seq, v));
                    }
                }
            }
        }
        for (k, v) in self.mem.range(&start_key, &end_key) {
            acc.insert(k, (u64::MAX, v));
        }
        acc.into_iter()
            .map(|(k, (_, v))| Ok((tu_common::keys::decode_ts(&k)?, v)))
            .collect()
    }

    /// Point lookup.
    pub fn get_chunk(&self, id: u64, start_ts: Timestamp) -> Result<Option<Vec<u8>>> {
        Ok(self
            .range_chunks(id, start_ts, start_ts + 1)?
            .into_iter()
            .next()
            .map(|(_, v)| v))
    }

    /// Deletes whole tables that fall entirely before the watermark
    /// (coarse retention; a leveled tree cannot drop partitions).
    pub fn purge_before(&self, watermark: Timestamp) -> Result<usize> {
        // Keys sort by (id, ts), so time-based retention cannot be done by
        // key range; this baseline simply reports zero, matching the
        // paper's observation that retention is awkward without time
        // partitioning.
        let _ = watermark;
        Ok(0)
    }

    pub fn memtable_bytes(&self) -> usize {
        self.mem.approx_bytes()
    }

    /// Drops cached data blocks, keeping table handles (benchmarking).
    pub fn clear_block_cache(&self) {
        self.cache.clear();
    }

    pub fn stats(&self) -> LeveledStats {
        let lv = self.levels.lock();
        let mut s = *self.stats.lock();
        for (i, tables) in lv.iter().enumerate().take(8) {
            s.tables_per_level[i] = tables.len();
        }
        s.fast_bytes = lv
            .iter()
            .flatten()
            .filter(|t| !t.on_slow)
            .map(|t| t.props.file_len)
            .sum();
        s.slow_bytes = lv
            .iter()
            .flatten()
            .filter(|t| t.on_slow)
            .map(|t| t.props.file_len)
            .sum();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tu_cloud::cost::LatencyMode;

    fn tree(opts: LeveledOptions) -> (tempfile::TempDir, LeveledTree) {
        let dir = tempfile::tempdir().unwrap();
        let env = StorageEnv::open(dir.path(), LatencyMode::Off).unwrap();
        let t = LeveledTree::open(env, opts).unwrap();
        (dir, t)
    }

    fn small_opts() -> LeveledOptions {
        LeveledOptions {
            memtable_bytes: 8 << 10,
            l0_table_trigger: 2,
            base_level_bytes: 32 << 10,
            max_sstable_bytes: 16 << 10,
            ..LeveledOptions::default()
        }
    }

    fn chunk(tag: u64) -> Vec<u8> {
        let mut v = vec![0u8; 64];
        v[..8].copy_from_slice(&tag.to_le_bytes());
        v
    }

    fn load(t: &LeveledTree, n_series: u64, n_chunks: i64) {
        for c in 0..n_chunks {
            for id in 0..n_series {
                if t.put(id, c * 60_000, chunk(id * 10_000 + c as u64)) {
                    t.maintain().unwrap();
                }
            }
        }
        t.seal();
        t.maintain().unwrap();
    }

    #[test]
    fn put_get_round_trip() {
        let (_d, t) = tree(small_opts());
        t.put(1, 1000, chunk(1));
        assert_eq!(t.get_chunk(1, 1000).unwrap(), Some(chunk(1)));
        t.seal();
        t.maintain().unwrap();
        assert_eq!(t.get_chunk(1, 1000).unwrap(), Some(chunk(1)));
    }

    #[test]
    fn compactions_push_data_down_and_read_overlaps() {
        let (_d, t) = tree(small_opts());
        load(&t, 16, 64);
        let s = t.stats();
        assert!(s.compactions > 0, "{s:?}");
        assert!(s.compaction_tables_read > s.compactions, "{s:?}");
        // All data readable after compactions.
        for id in [0u64, 7, 15] {
            assert_eq!(
                t.range_chunks(id, 0, 64 * 60_000).unwrap().len(),
                64,
                "series {id}"
            );
        }
    }

    #[test]
    fn deeper_levels_go_to_slow_tier() {
        let dir = tempfile::tempdir().unwrap();
        let env = StorageEnv::open(dir.path(), LatencyMode::Off).unwrap();
        let t = LeveledTree::open(
            env.clone(),
            LeveledOptions {
                slow_level_start: 2,
                ..small_opts()
            },
        )
        .unwrap();
        for c in 0..256i64 {
            for id in 0..16u64 {
                if t.put(id, c * 60_000, chunk(id + c as u64)) {
                    t.maintain().unwrap();
                }
            }
        }
        t.seal();
        t.maintain().unwrap();
        let s = t.stats();
        assert!(s.slow_bytes > 0, "deep levels must reach S3: {s:?}");
        assert!(env.object.stats().put_requests > 0);
    }

    #[test]
    fn newest_value_wins_through_compactions() {
        let (_d, t) = tree(small_opts());
        t.put(1, 500, chunk(1));
        t.seal();
        t.maintain().unwrap();
        t.put(1, 500, chunk(2));
        t.seal();
        t.maintain().unwrap();
        assert_eq!(t.get_chunk(1, 500).unwrap(), Some(chunk(2)));
        load(&t, 8, 32); // force more compactions over the duplicate
        assert_eq!(t.get_chunk(1, 500).unwrap(), Some(chunk(2)));
    }

    #[test]
    fn range_is_id_scoped() {
        let (_d, t) = tree(small_opts());
        load(&t, 4, 8);
        let r = t.range_chunks(2, 2 * 60_000, 5 * 60_000).unwrap();
        assert_eq!(r.len(), 3);
        assert!(t.range_chunks(9, 0, i64::MAX / 2).unwrap().is_empty());
    }
}
