//! The elastic time-partitioned LSM-tree (§3.3 of the paper), plus the
//! classic leveled LSM used by the paper's baselines.
//!
//! * [`sstable`] — LevelDB-style SSTables: prefix-compressed 4 KiB data
//!   blocks (Snappy), an index block, a bloom filter, and a properties
//!   footer recording the key/ID range (patches need ID ranges, Fig. 11).
//! * [`bloom`] — the filter behind point lookups.
//! * [`cache`] — the block LRU cache (1 GiB in the paper's evaluation).
//! * [`memtable`] — sorted write buffer plus the immutable-memtable queue
//!   that lets multiple flushes proceed without blocking inserts.
//! * [`wal`] — record-framed write-ahead log with sequence-ID checkpoints
//!   (§3.3 "Logging").
//! * [`tree`] — the time-partitioned three-level tree: L0/L1 on the fast
//!   tier, a single L2 on the slow tier, time-partition compaction,
//!   out-of-order patches, dynamic size control (Algorithm 1), retention.
//! * [`leveled`] — a classic leveled LSM (overlap-based compaction) for
//!   the tsdb-LDB and TU-LDB baselines.
//! * [`analysis`] — the closed-form compaction cost model (Equations 7–10).

pub mod analysis;
pub mod bloom;
pub mod cache;
pub mod leveled;
pub mod memtable;
pub mod sstable;
pub mod tree;
pub mod wal;

pub use leveled::{LeveledOptions, LeveledTree};
pub use memtable::MemTable;
pub use tree::{
    CacheIntrospect, LevelIntrospect, LsmIntrospect, PartitionIntrospect, TableIntrospect,
    TimeTree, TreeOptions,
};
