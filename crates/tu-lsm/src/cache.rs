//! Block LRU cache for SSTable data blocks.
//!
//! The evaluation equips every system with a 1 GiB in-memory LRU cache for
//! data segments fetched from S3 (§4.1). Entries are parsed blocks keyed by
//! `(table, offset)`; the charged size is the on-disk block length.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

type Block = Arc<Vec<(Vec<u8>, Vec<u8>)>>;

struct Entry {
    block: Block,
    charge: usize,
    /// Monotonic access stamp for LRU ordering.
    stamp: u64,
}

struct Inner {
    map: HashMap<(String, u64), Entry>,
    used: usize,
    tick: u64,
}

/// A byte-budgeted LRU cache of parsed SSTable blocks.
///
/// Hit/miss/eviction counts are kept both locally (per cache instance, for
/// the experiment harness) and mirrored into the global `tu-obs` registry
/// under `lsm.cache.*` (aggregated across every cache in the process).
pub struct BlockCache {
    inner: Mutex<Inner>,
    budget: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    obs_hits: &'static tu_obs::Counter,
    obs_misses: &'static tu_obs::Counter,
    obs_evictions: &'static tu_obs::Counter,
}

impl BlockCache {
    pub fn new(budget_bytes: usize) -> Self {
        BlockCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                used: 0,
                tick: 0,
            }),
            budget: budget_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            obs_hits: tu_obs::counter("lsm.cache.hits"),
            obs_misses: tu_obs::counter("lsm.cache.misses"),
            obs_evictions: tu_obs::counter("lsm.cache.evictions"),
        }
    }

    /// Looks up a block.
    pub fn get(&self, table: &str, offset: u64) -> Option<Block> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&(table.to_string(), offset)) {
            Some(e) => {
                e.stamp = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.obs_hits.inc();
                Some(e.block.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.obs_misses.inc();
                None
            }
        }
    }

    /// Inserts a block, evicting least-recently-used entries to fit the
    /// budget. Entries larger than the whole budget are not cached.
    pub fn insert(&self, table: &str, offset: u64, block: Block, charge: usize) {
        if charge > self.budget {
            return;
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let key = (table.to_string(), offset);
        if let Some(old) = inner.map.insert(
            key,
            Entry {
                block,
                charge,
                stamp: tick,
            },
        ) {
            inner.used -= old.charge;
        }
        inner.used += charge;
        while inner.used > self.budget {
            // Evict the stalest entry. Linear scan is acceptable: blocks
            // are ~4 KiB, so even a 1 GiB cache holds ~256k entries, and
            // eviction is amortized over block loads from slow storage.
            let victim = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    let e = inner.map.remove(&k).expect("present");
                    inner.used -= e.charge;
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    self.obs_evictions.inc();
                }
                None => break,
            }
        }
    }

    /// Drops every cached block of one table (after deletion/compaction).
    pub fn invalidate_table(&self, table: &str) {
        let mut inner = self.inner.lock();
        let keys: Vec<_> = inner
            .map
            .keys()
            .filter(|(t, _)| t == table)
            .cloned()
            .collect();
        for k in keys {
            if let Some(e) = inner.map.remove(&k) {
                inner.used -= e.charge;
            }
        }
    }

    /// Drops every cached block (benchmarks measure cold-data-block
    /// latencies with warm table metadata).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.used = 0;
    }

    pub fn used_bytes(&self) -> usize {
        self.inner.lock().used
    }

    pub fn hit_count(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn miss_count(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    pub fn eviction_count(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blk(n: usize) -> Block {
        Arc::new(vec![(vec![n as u8], vec![0u8; 4])])
    }

    #[test]
    fn hit_and_miss_counting() {
        let c = BlockCache::new(1024);
        assert!(c.get("t", 0).is_none());
        c.insert("t", 0, blk(1), 100);
        assert!(c.get("t", 0).is_some());
        assert_eq!(c.hit_count(), 1);
        assert_eq!(c.miss_count(), 1);
        assert_eq!(c.used_bytes(), 100);
    }

    #[test]
    fn lru_evicts_stalest_first() {
        let c = BlockCache::new(300);
        c.insert("t", 0, blk(0), 100);
        c.insert("t", 1, blk(1), 100);
        c.insert("t", 2, blk(2), 100);
        // Touch 0 so 1 becomes stalest.
        assert!(c.get("t", 0).is_some());
        c.insert("t", 3, blk(3), 100);
        assert!(c.get("t", 1).is_none(), "stalest entry evicted");
        assert!(c.get("t", 0).is_some());
        assert!(c.get("t", 3).is_some());
        assert_eq!(c.eviction_count(), 1);
        assert!(c.used_bytes() <= 300);
    }

    #[test]
    fn oversized_entries_are_not_cached() {
        let c = BlockCache::new(100);
        c.insert("t", 0, blk(0), 500);
        assert!(c.get("t", 0).is_none());
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn reinsert_updates_charge() {
        let c = BlockCache::new(1000);
        c.insert("t", 0, blk(0), 400);
        c.insert("t", 0, blk(0), 100);
        assert_eq!(c.used_bytes(), 100);
    }

    #[test]
    fn invalidate_table_drops_only_that_table() {
        let c = BlockCache::new(1000);
        c.insert("a", 0, blk(0), 100);
        c.insert("a", 1, blk(1), 100);
        c.insert("b", 0, blk(2), 100);
        c.invalidate_table("a");
        assert!(c.get("a", 0).is_none());
        assert!(c.get("b", 0).is_some());
        assert_eq!(c.used_bytes(), 100);
    }
}
