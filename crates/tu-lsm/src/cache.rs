//! Sharded block LRU cache for SSTable data blocks.
//!
//! The evaluation equips every system with a 1 GiB in-memory LRU cache for
//! data segments fetched from S3 (§4.1). Entries are parsed blocks keyed by
//! `(table, offset)`; the charged size is the on-disk block length.
//!
//! The cache is hash-partitioned into independent shards so parallel query
//! workers stop serializing on a single mutex: each `(table, offset)` key
//! maps to exactly one shard, the global byte budget is split across shards
//! (shard 0 absorbs the remainder, so the sum is exactly the configured
//! budget), and hit/miss/eviction counters stay global — one hit *or* one
//! miss per `get`, one eviction per dropped entry, exactly as before
//! sharding. LRU order is maintained per shard, which is also per key,
//! so single-key recency behaviour is unchanged.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use tu_common::lockdep::{self, Mutex};

type Block = Arc<Vec<(Vec<u8>, Vec<u8>)>>;

/// Default shard count: enough that 8 query threads rarely collide, small
/// enough that splitting the byte budget is immaterial for 4 KiB blocks.
pub const DEFAULT_SHARDS: usize = 8;

struct Entry {
    block: Block,
    charge: usize,
    /// Monotonic access stamp for LRU ordering (per shard).
    stamp: u64,
}

struct Inner {
    map: HashMap<(String, u64), Entry>,
    used: usize,
    tick: u64,
}

struct Shard {
    inner: Mutex<Inner>,
    budget: usize,
}

/// A byte-budgeted, hash-sharded LRU cache of parsed SSTable blocks.
///
/// Hit/miss/eviction counts are kept both locally (per cache instance, for
/// the experiment harness) and mirrored into the global `tu-obs` registry
/// under `lsm.cache.*` (aggregated across every cache in the process).
pub struct BlockCache {
    shards: Vec<Shard>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    obs_hits: tu_obs::TracedCounter,
    obs_misses: tu_obs::TracedCounter,
    obs_evictions: tu_obs::TracedCounter,
}

impl BlockCache {
    /// A cache with the default shard count.
    pub fn new(budget_bytes: usize) -> Self {
        BlockCache::with_shards(budget_bytes, DEFAULT_SHARDS)
    }

    /// A cache with an explicit shard count (clamped to at least 1). The
    /// per-shard budget is `budget / shards`; shard 0 takes the remainder
    /// so the shard budgets sum to exactly `budget_bytes`.
    pub fn with_shards(budget_bytes: usize, shards: usize) -> Self {
        let n = shards.max(1);
        let base = budget_bytes / n;
        let shards: Vec<Shard> = (0..n)
            .map(|i| Shard {
                inner: Mutex::new(
                    &lockdep::LSM_CACHE_SHARD,
                    Inner {
                        map: HashMap::new(),
                        used: 0,
                        tick: 0,
                    },
                ),
                budget: if i == 0 {
                    base + budget_bytes % n
                } else {
                    base
                },
            })
            .collect();
        tu_obs::gauge("cache.shard.count").set(n as i64);
        tu_obs::gauge("cache.shard.budget_bytes").set(budget_bytes as i64);
        BlockCache {
            shards,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            obs_hits: tu_obs::traced("lsm.cache.hits"),
            obs_misses: tu_obs::traced("lsm.cache.misses"),
            obs_evictions: tu_obs::traced("lsm.cache.evictions"),
        }
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, table: &str, offset: u64) -> &Shard {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        table.hash(&mut h);
        offset.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Looks up a block.
    pub fn get(&self, table: &str, offset: u64) -> Option<Block> {
        let shard = self.shard_of(table, offset);
        let mut inner = shard.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&(table.to_string(), offset)) {
            Some(e) => {
                e.stamp = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.obs_hits.inc();
                Some(e.block.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.obs_misses.inc();
                None
            }
        }
    }

    /// Inserts a block, evicting least-recently-used entries of its shard
    /// to fit that shard's budget. Entries larger than the shard budget are
    /// not cached.
    pub fn insert(&self, table: &str, offset: u64, block: Block, charge: usize) {
        let shard = self.shard_of(table, offset);
        if charge > shard.budget {
            return;
        }
        let mut inner = shard.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let key = (table.to_string(), offset);
        if let Some(old) = inner.map.insert(
            key,
            Entry {
                block,
                charge,
                stamp: tick,
            },
        ) {
            inner.used -= old.charge;
        }
        inner.used += charge;
        while inner.used > shard.budget {
            // Evict the stalest entry. Linear scan is acceptable: blocks
            // are ~4 KiB, so even a 1 GiB cache holds ~256k entries split
            // across shards, and eviction is amortized over block loads
            // from slow storage.
            let victim = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone());
            let Some(e) = victim.and_then(|k| inner.map.remove(&k)) else {
                break;
            };
            inner.used -= e.charge;
            self.evictions.fetch_add(1, Ordering::Relaxed);
            self.obs_evictions.inc();
        }
    }

    /// Drops every cached block of one table (after deletion/compaction).
    pub fn invalidate_table(&self, table: &str) {
        for shard in &self.shards {
            let mut inner = shard.inner.lock();
            let keys: Vec<_> = inner
                .map
                .keys()
                .filter(|(t, _)| t == table)
                .cloned()
                .collect();
            for k in keys {
                if let Some(e) = inner.map.remove(&k) {
                    inner.used -= e.charge;
                }
            }
        }
    }

    /// Drops every cached block (benchmarks measure cold-data-block
    /// latencies with warm table metadata).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut inner = shard.inner.lock();
            inner.map.clear();
            inner.used = 0;
        }
    }

    pub fn used_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.inner.lock().used).sum()
    }

    pub fn hit_count(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn miss_count(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    pub fn eviction_count(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blk(n: usize) -> Block {
        Arc::new(vec![(vec![n as u8], vec![0u8; 4])])
    }

    #[test]
    fn hit_and_miss_counting() {
        let c = BlockCache::new(1024);
        assert!(c.get("t", 0).is_none());
        c.insert("t", 0, blk(1), 100);
        assert!(c.get("t", 0).is_some());
        assert_eq!(c.hit_count(), 1);
        assert_eq!(c.miss_count(), 1);
        assert_eq!(c.used_bytes(), 100);
    }

    #[test]
    fn lru_evicts_stalest_first() {
        // One shard: eviction order across keys is only defined within a
        // shard, and this test pins the classic global-LRU behaviour.
        let c = BlockCache::with_shards(300, 1);
        c.insert("t", 0, blk(0), 100);
        c.insert("t", 1, blk(1), 100);
        c.insert("t", 2, blk(2), 100);
        // Touch 0 so 1 becomes stalest.
        assert!(c.get("t", 0).is_some());
        c.insert("t", 3, blk(3), 100);
        assert!(c.get("t", 1).is_none(), "stalest entry evicted");
        assert!(c.get("t", 0).is_some());
        assert!(c.get("t", 3).is_some());
        assert_eq!(c.eviction_count(), 1);
        assert!(c.used_bytes() <= 300);
    }

    #[test]
    fn oversized_entries_are_not_cached() {
        let c = BlockCache::with_shards(100, 1);
        c.insert("t", 0, blk(0), 500);
        assert!(c.get("t", 0).is_none());
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn reinsert_updates_charge() {
        let c = BlockCache::with_shards(1000, 1);
        c.insert("t", 0, blk(0), 400);
        c.insert("t", 0, blk(0), 100);
        assert_eq!(c.used_bytes(), 100);
    }

    #[test]
    fn invalidate_table_drops_only_that_table() {
        let c = BlockCache::new(8000);
        c.insert("a", 0, blk(0), 100);
        c.insert("a", 1, blk(1), 100);
        c.insert("b", 0, blk(2), 100);
        c.invalidate_table("a");
        assert!(c.get("a", 0).is_none());
        assert!(c.get("b", 0).is_some());
        assert_eq!(c.used_bytes(), 100);
    }

    #[test]
    fn shard_budgets_sum_to_total() {
        for (budget, n) in [(1000, 8), (1001, 8), (7, 8), (300, 1)] {
            let c = BlockCache::with_shards(budget, n);
            assert_eq!(c.shards.iter().map(|s| s.budget).sum::<usize>(), budget);
            assert_eq!(c.shard_count(), n.max(1));
        }
    }

    #[test]
    fn sharded_budget_never_exceeded_under_concurrency() {
        // Multi-threaded stress: hammer a sharded cache from 8 threads and
        // check the invariants that must survive sharding — the global
        // budget is never exceeded, and hits + misses equals the exact
        // number of get() calls (each get is one hit or one miss).
        let c = BlockCache::with_shards(64 * 100, 8);
        let gets = AtomicU64::new(0);
        let pool = tu_common::pool::WorkerPool::new(8);
        pool.run(8, |w| {
            for i in 0..500u64 {
                let off = (w as u64 * 131 + i * 7) % 256;
                if c.get("t", off).is_none() {
                    c.insert("t", off, blk(off as usize), 100);
                }
                gets.fetch_add(1, Ordering::Relaxed);
                assert!(
                    c.used_bytes() <= 64 * 100,
                    "budget exceeded: {}",
                    c.used_bytes()
                );
            }
        });
        assert_eq!(
            c.hit_count() + c.miss_count(),
            gets.load(Ordering::Relaxed),
            "every get is exactly one hit or one miss"
        );
        assert!(c.hit_count() > 0 && c.miss_count() > 0);
        assert!(c.used_bytes() <= 64 * 100);
    }
}
