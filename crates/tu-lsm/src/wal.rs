//! Write-ahead log with sequence-ID checkpoints (§3.3 "Logging").
//!
//! The paper disables LevelDB's log and keeps its own: every inserted data
//! sample is logged under its series/group sequence ID; when a chunk
//! reaches the LSM-tree a *checkpoint* record declares all earlier records
//! of that series obsolete, and a background purge rewrites the log
//! dropping them.
//!
//! Record framing: `[u32 LE length][u32 LE masked crc32c][payload]`. The
//! payload encoding is the caller's business; this module provides the
//! framing, replay, and checkpoint-driven purging over generic records
//! tagged with `(stream id, sequence)`.
//!
//! # Group commit
//!
//! Concurrent writers enqueue records into one shared buffer; each append
//! hands back a monotonically increasing *ticket*. Durability is a wave:
//! [`Wal::flush`] elects the first arriving thread as the **leader**, which
//! swaps the whole buffer out and performs one physical append to the fast
//! tier while followers park on a condvar until the wave that covers their
//! ticket lands. One fsync therefore pays for every record enqueued by
//! every concurrent writer since the previous wave — the classic group
//! commit amortisation. [`Wal::nudge`] is the opportunistic variant used by
//! the engine's batching threshold: if a leader is already in flight it
//! returns immediately instead of parking, so background flushing never
//! stalls the ingest workers.

use std::sync::Arc;

use tu_common::lockdep::{self, Condvar, Mutex, MutexGuard};

use tu_cloud::block::BlockStore;
use tu_common::{Error, Result};
use tu_compress::crc;

/// A parsed WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Series or group the record belongs to.
    pub stream: u64,
    /// Per-stream sequence number, increasing.
    pub seq: u64,
    /// True for checkpoint records: all records of `stream` with
    /// `seq <= this.seq` are obsolete.
    pub checkpoint: bool,
    /// Opaque payload (empty for checkpoints).
    pub payload: Vec<u8>,
}

impl WalRecord {
    fn encode(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(17 + self.payload.len());
        body.push(self.checkpoint as u8);
        body.extend_from_slice(&self.stream.to_le_bytes());
        body.extend_from_slice(&self.seq.to_le_bytes());
        body.extend_from_slice(&self.payload);
        let mut out = Vec::with_capacity(8 + body.len());
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc::mask(crc::crc32c(&body)).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    fn decode(body: &[u8]) -> Result<Self> {
        if body.len() < 17 {
            return Err(Error::corruption("wal record body truncated"));
        }
        Ok(WalRecord {
            checkpoint: body[0] != 0,
            stream: tu_common::bytes::u64_le(&body[1..9]),
            seq: tu_common::bytes::u64_le(&body[9..17]),
            payload: body[17..].to_vec(),
        })
    }
}

/// Queued records waiting for the next group-commit wave.
#[derive(Default)]
struct PendingBuf {
    buf: Vec<u8>,
    records: u64,
    /// Ticket of the newest queued record; monotonically increasing.
    ticket: u64,
}

/// Shared commit state guarded by a std mutex so followers can park on
/// the companion [`Condvar`].
#[derive(Default)]
struct CommitState {
    /// Highest ticket consumed by a finished wave (durable on success).
    durable: u64,
    /// Highest ticket consumed by a *failed* wave — those records are
    /// gone from the buffer and will never become durable, so waiters
    /// covering them must see an error rather than a false success.
    lost: u64,
    /// True while a leader (or the purge rewrite) owns the log file.
    leader: bool,
}

/// A write-ahead log stored as one append-only file on the fast tier.
pub struct Wal {
    store: Arc<BlockStore>,
    name: String,
    /// Buffered records waiting for the next append; batching keeps the
    /// per-sample logging cost off the insert path.
    pending: Mutex<PendingBuf>,
    /// Group-commit wave state, with the [`Condvar`] followers park on.
    commit: Mutex<CommitState>,
    wave_done: Condvar,
    obs_appends: tu_obs::TracedCounter,
    obs_flushed_bytes: tu_obs::TracedCounter,
    obs_gc_batches: tu_obs::TracedCounter,
    obs_gc_records: tu_obs::TracedCounter,
    obs_gc_fsyncs: tu_obs::TracedCounter,
}

impl Wal {
    /// Opens (or creates) the log file `name` on `store`.
    pub fn open(store: Arc<BlockStore>, name: impl Into<String>) -> Self {
        Wal {
            store,
            name: name.into(),
            pending: Mutex::new(&lockdep::LSM_WAL_PENDING, PendingBuf::default()),
            commit: Mutex::new(&lockdep::LSM_WAL_COMMIT, CommitState::default()),
            wave_done: Condvar::new(),
            obs_appends: tu_obs::traced("lsm.wal.append_records"),
            obs_flushed_bytes: tu_obs::traced("lsm.wal.flushed_bytes"),
            obs_gc_batches: tu_obs::traced("lsm.wal.group_commit.batches"),
            obs_gc_records: tu_obs::traced("lsm.wal.group_commit.records"),
            obs_gc_fsyncs: tu_obs::traced("lsm.wal.group_commit.fsyncs"),
        }
    }

    /// Queues a record and returns its commit ticket; pass it to
    /// [`Wal::commit_up_to`] (or just call [`Wal::flush`]) to persist.
    pub fn append(&self, record: &WalRecord) -> u64 {
        self.obs_appends.inc();
        // Encode outside the lock — writers contend only on the memcpy.
        let encoded = record.encode();
        let mut pending = self.pending.lock();
        pending.buf.extend_from_slice(&encoded);
        pending.records += 1;
        pending.ticket += 1;
        pending.ticket
    }

    /// The wave-state guard; poisoning is swallowed by the lockdep
    /// wrapper (the state itself, three plain integers, is always
    /// coherent), so this is now just a named acquisition point.
    fn lock_commit(&self) -> MutexGuard<'_, CommitState> {
        self.commit.lock()
    }

    /// Runs one group-commit wave: swaps out everything queued so far,
    /// appends it to the log with a single store write, and publishes the
    /// new durable watermark. The caller must hold leadership.
    fn wave(&self) -> Result<()> {
        let (batch, records, upto) = {
            let mut pending = self.pending.lock();
            let batch = std::mem::take(&mut pending.buf);
            let records = std::mem::take(&mut pending.records);
            (batch, records, pending.ticket)
        };
        let result = if batch.is_empty() {
            Ok(())
        } else {
            self.obs_gc_batches.inc();
            self.obs_gc_records.add(records);
            self.obs_flushed_bytes.add(batch.len() as u64);
            let r = self.store.append(&self.name, &batch).map(|_| ());
            if r.is_ok() {
                self.obs_gc_fsyncs.inc();
            }
            r
        };
        let mut commit = self.lock_commit();
        commit.durable = commit.durable.max(upto);
        if result.is_err() {
            // The batch was consumed but never landed; make waiters fail.
            commit.lost = commit.lost.max(upto);
        }
        result
    }

    /// Persists all queued records. Safe to call from many threads at
    /// once: one becomes the leader and writes the whole batch, the rest
    /// wait for the wave covering their records.
    pub fn flush(&self) -> Result<()> {
        let target = self.pending.lock().ticket;
        self.commit_up_to(target)
    }

    /// Blocks until every record ticketed `<= target` is durable (or was
    /// consumed by a failed wave, which surfaces as an error).
    pub fn commit_up_to(&self, target: u64) -> Result<()> {
        let mut commit = self.lock_commit();
        loop {
            if commit.durable >= target {
                if commit.lost >= target && target > 0 {
                    return Err(Error::Closed(
                        "wal records were dropped by a failed group commit".into(),
                    ));
                }
                return Ok(());
            }
            if commit.leader {
                commit = self.wave_done.wait(commit);
                continue;
            }
            commit.leader = true;
            drop(commit);
            let result = self.wave();
            commit = self.lock_commit();
            commit.leader = false;
            self.wave_done.notify_all();
            result?;
        }
    }

    /// Opportunistic flush for the engine's batching threshold: if a
    /// leader is already writing, returns immediately — the queued records
    /// ride one of the next waves. Never parks the calling writer.
    pub fn nudge(&self) -> Result<()> {
        {
            let mut commit = self.lock_commit();
            if commit.leader {
                return Ok(());
            }
            commit.leader = true;
        }
        let result = self.wave();
        let mut commit = self.lock_commit();
        commit.leader = false;
        self.wave_done.notify_all();
        drop(commit);
        result
    }

    /// Claims wave leadership, waiting out any wave in flight. Used by
    /// [`Wal::purge`] so the rewrite cannot race a concurrent append to
    /// the log file.
    fn claim_leadership(&self) {
        let mut commit = self.lock_commit();
        while commit.leader {
            commit = self.wave_done.wait(commit);
        }
        commit.leader = true;
    }

    fn release_leadership(&self) {
        let mut commit = self.lock_commit();
        commit.leader = false;
        self.wave_done.notify_all();
    }

    /// Replays every intact record, oldest first. A torn tail (partial
    /// final record, e.g. from a crash mid-append) ends the replay without
    /// an error; a corrupt record in the middle is an error.
    pub fn replay(&self) -> Result<Vec<WalRecord>> {
        let bytes = match self.store.read_file(&self.name) {
            Ok(b) => b,
            Err(e) if e.is_not_found() => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let mut out = Vec::new();
        let mut off = 0usize;
        let torn = |off: usize| {
            tu_obs::log::warn(
                "lsm.wal",
                "torn WAL tail dropped during replay",
                &[
                    ("offset", off.into()),
                    ("lost_bytes", (bytes.len() - off).into()),
                ],
            );
        };
        while off < bytes.len() {
            if off + 8 > bytes.len() {
                torn(off);
                break;
            }
            let len = tu_common::bytes::u32_le(&bytes[off..off + 4]) as usize;
            let stored = crc::unmask(tu_common::bytes::u32_le(&bytes[off + 4..off + 8]));
            let body_start = off + 8;
            if body_start + len > bytes.len() {
                torn(off);
                break;
            }
            let body = &bytes[body_start..body_start + len];
            if crc::crc32c(body) != stored {
                // A checksum mismatch that is not at the torn tail means
                // real corruption.
                if body_start + len == bytes.len() {
                    torn(off);
                    break;
                }
                return Err(Error::corruption("wal record checksum mismatch"));
            }
            out.push(WalRecord::decode(body)?);
            off = body_start + len;
        }
        Ok(out)
    }

    /// Rewrites the log keeping only records newer than their stream's
    /// checkpoint (the background purge of §3.3). Returns how many records
    /// were dropped.
    pub fn purge(&self) -> Result<usize> {
        // Hold wave leadership across the whole rewrite: a concurrent
        // group-commit append between our replay and the rewrite below
        // would be silently overwritten. Appends keep queueing while we
        // run; they land in the first wave after we release.
        self.claim_leadership();
        let result = self.purge_locked();
        self.release_leadership();
        result
    }

    fn purge_locked(&self) -> Result<usize> {
        self.wave()?;
        let records = self.replay()?;
        use std::collections::HashMap;
        let mut watermark: HashMap<u64, u64> = HashMap::new();
        for r in &records {
            if r.checkpoint {
                let w = watermark.entry(r.stream).or_insert(0);
                *w = (*w).max(r.seq);
            }
        }
        let mut kept = Vec::new();
        let mut dropped = 0usize;
        for r in &records {
            let obsolete = !r.checkpoint && watermark.get(&r.stream).is_some_and(|&w| r.seq <= w);
            // Checkpoints themselves are kept only if still useful (some
            // live record may follow with a later checkpoint superseding
            // them; keeping the max per stream is enough).
            let stale_checkpoint =
                r.checkpoint && watermark.get(&r.stream).is_some_and(|&w| r.seq < w);
            if obsolete || stale_checkpoint {
                dropped += 1;
            } else {
                kept.extend_from_slice(&r.encode());
            }
        }
        if dropped > 0 {
            // Atomic replace: write the compacted log under a temp name.
            let tmp = format!("{}.tmp", self.name);
            self.store.write_file(&tmp, &kept)?;
            let data = self.store.read_file(&tmp)?;
            self.store.write_file(&self.name, &data)?;
            self.store.delete(&tmp)?;
            tu_obs::log::info(
                "lsm.wal",
                "WAL purged",
                &[
                    ("dropped_records", dropped.into()),
                    ("kept_bytes", kept.len().into()),
                ],
            );
        }
        Ok(dropped)
    }

    /// Current log size in bytes (excluding unflushed records).
    pub fn len(&self) -> u64 {
        self.store.len(&self.name).unwrap_or(0)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tu_cloud::cost::{CostClock, LatencyMode, LatencyModel};

    fn wal() -> (tempfile::TempDir, Wal) {
        let dir = tempfile::tempdir().unwrap();
        let store = Arc::new(
            BlockStore::open(
                dir.path().join("b"),
                LatencyModel::ebs(),
                CostClock::new(LatencyMode::Off),
            )
            .unwrap(),
        );
        (dir, Wal::open(store, "wal/log"))
    }

    fn rec(stream: u64, seq: u64, payload: &[u8]) -> WalRecord {
        WalRecord {
            stream,
            seq,
            checkpoint: false,
            payload: payload.to_vec(),
        }
    }

    fn ckpt(stream: u64, seq: u64) -> WalRecord {
        WalRecord {
            stream,
            seq,
            checkpoint: true,
            payload: Vec::new(),
        }
    }

    #[test]
    fn append_flush_replay_round_trip() {
        let (_d, w) = wal();
        let records = vec![rec(1, 1, b"a"), rec(2, 1, b"bb"), rec(1, 2, b"ccc")];
        for r in &records {
            w.append(r);
        }
        w.flush().unwrap();
        assert_eq!(w.replay().unwrap(), records);
    }

    #[test]
    fn replay_of_missing_log_is_empty() {
        let (_d, w) = wal();
        assert!(w.replay().unwrap().is_empty());
    }

    #[test]
    fn unflushed_records_are_not_replayed() {
        let (_d, w) = wal();
        w.append(&rec(1, 1, b"x"));
        assert!(w.replay().unwrap().is_empty());
        w.flush().unwrap();
        assert_eq!(w.replay().unwrap().len(), 1);
    }

    #[test]
    fn torn_tail_is_tolerated() {
        let (_d, w) = wal();
        w.append(&rec(1, 1, b"keep"));
        w.flush().unwrap();
        // Simulate a crash mid-append of a second record.
        let partial = &rec(1, 2, b"lost").encode()[..7];
        w.store.append("wal/log", partial).unwrap();
        let got = w.replay().unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].payload, b"keep");
    }

    #[test]
    fn mid_log_corruption_is_an_error() {
        let (_d, w) = wal();
        w.append(&rec(1, 1, b"first"));
        w.append(&rec(1, 2, b"second"));
        w.flush().unwrap();
        let mut bytes = w.store.read_file("wal/log").unwrap();
        bytes[10] ^= 0xff; // inside the first record's body
        w.store.write_file("wal/log", &bytes).unwrap();
        assert!(w.replay().is_err());
    }

    #[test]
    fn purge_drops_checkpointed_records() {
        let (_d, w) = wal();
        w.append(&rec(1, 1, b"s1-old"));
        w.append(&rec(1, 2, b"s1-old2"));
        w.append(&rec(2, 1, b"s2-live"));
        w.append(&ckpt(1, 2));
        w.append(&rec(1, 3, b"s1-live"));
        let dropped = w.purge().unwrap();
        assert_eq!(dropped, 2);
        let got = w.replay().unwrap();
        let payloads: Vec<&[u8]> = got.iter().map(|r| r.payload.as_slice()).collect();
        assert!(payloads.contains(&b"s2-live".as_slice()));
        assert!(payloads.contains(&b"s1-live".as_slice()));
        assert!(!payloads.contains(&b"s1-old".as_slice()));
        // The surviving checkpoint still guards stream 1.
        assert!(got
            .iter()
            .any(|r| r.checkpoint && r.stream == 1 && r.seq == 2));
    }

    #[test]
    fn purge_keeps_only_newest_checkpoint_per_stream() {
        let (_d, w) = wal();
        w.append(&ckpt(1, 1));
        w.append(&ckpt(1, 5));
        w.append(&ckpt(1, 3));
        w.purge().unwrap();
        let got = w.replay().unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].seq, 5);
    }

    #[test]
    fn group_commit_amortises_fsyncs() {
        let (_d, w) = wal();
        let ctx = tu_obs::TraceContext::start("wal-group-commit");
        for seq in 1..=16 {
            w.append(&rec(1, seq, b"payload"));
        }
        w.flush().unwrap();
        let summary = ctx.finish();
        // 16 records enqueued, one leader wave, one physical append.
        assert_eq!(summary.counter("lsm.wal.group_commit.records"), 16);
        assert_eq!(summary.counter("lsm.wal.group_commit.batches"), 1);
        assert_eq!(summary.counter("lsm.wal.group_commit.fsyncs"), 1);
        assert_eq!(w.replay().unwrap().len(), 16);
    }

    #[test]
    fn concurrent_writers_all_become_durable() {
        let (_d, w) = wal();
        let ctx = tu_obs::TraceContext::start("wal-concurrent");
        let pool = tu_common::pool::WorkerPool::new(8);
        pool.run(32, |i| {
            let ticket = w.append(&rec(i as u64, 1, format!("w{i}").as_bytes()));
            w.flush().unwrap();
            // The wave covering our ticket has landed by the time flush
            // returns, whether we led it or followed.
            w.commit_up_to(ticket).unwrap();
        });
        let summary = ctx.finish();
        let got = w.replay().unwrap();
        assert_eq!(got.len(), 32);
        assert_eq!(summary.counter("lsm.wal.group_commit.records"), 32);
        // Waves never outnumber flush calls; under contention they merge.
        assert!(summary.counter("lsm.wal.group_commit.fsyncs") <= 32);
    }

    #[test]
    fn nudge_flushes_when_idle() {
        let (_d, w) = wal();
        w.append(&rec(9, 1, b"bg"));
        w.nudge().unwrap();
        assert_eq!(w.replay().unwrap().len(), 1);
        // Nudging an empty buffer is a no-op.
        w.nudge().unwrap();
        assert_eq!(w.replay().unwrap().len(), 1);
    }

    #[test]
    fn commit_up_to_zero_is_trivially_durable() {
        let (_d, w) = wal();
        w.commit_up_to(0).unwrap();
    }

    #[test]
    fn purge_excludes_concurrent_waves() {
        let (_d, w) = wal();
        w.append(&rec(1, 1, b"old"));
        w.append(&ckpt(1, 1));
        // Concurrent appends during the purge must survive it.
        let pool = tu_common::pool::WorkerPool::new(4);
        pool.run(4, |i| {
            if i == 0 {
                w.purge().unwrap();
            } else {
                w.append(&rec(2, i as u64, b"live"));
                w.flush().unwrap();
            }
        });
        w.flush().unwrap();
        let got = w.replay().unwrap();
        let live = got.iter().filter(|r| r.stream == 2).count();
        assert_eq!(live, 3, "appends raced away by purge: {got:?}");
    }

    #[test]
    fn purge_shrinks_the_file() {
        let (_d, w) = wal();
        for seq in 1..=100 {
            w.append(&rec(7, seq, &[0u8; 64]));
        }
        w.append(&ckpt(7, 90));
        w.flush().unwrap();
        let before = w.len();
        w.purge().unwrap();
        assert!(w.len() < before / 2, "{} -> {}", before, w.len());
    }
}
