//! Write-ahead log with sequence-ID checkpoints (§3.3 "Logging").
//!
//! The paper disables LevelDB's log and keeps its own: every inserted data
//! sample is logged under its series/group sequence ID; when a chunk
//! reaches the LSM-tree a *checkpoint* record declares all earlier records
//! of that series obsolete, and a background purge rewrites the log
//! dropping them.
//!
//! Record framing: `[u32 LE length][u32 LE masked crc32c][payload]`. The
//! payload encoding is the caller's business; this module provides the
//! framing, replay, and checkpoint-driven purging over generic records
//! tagged with `(stream id, sequence)`.

use std::sync::Arc;

use parking_lot::Mutex;

use tu_cloud::block::BlockStore;
use tu_common::{Error, Result};
use tu_compress::crc;

/// A parsed WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Series or group the record belongs to.
    pub stream: u64,
    /// Per-stream sequence number, increasing.
    pub seq: u64,
    /// True for checkpoint records: all records of `stream` with
    /// `seq <= this.seq` are obsolete.
    pub checkpoint: bool,
    /// Opaque payload (empty for checkpoints).
    pub payload: Vec<u8>,
}

impl WalRecord {
    fn encode(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(17 + self.payload.len());
        body.push(self.checkpoint as u8);
        body.extend_from_slice(&self.stream.to_le_bytes());
        body.extend_from_slice(&self.seq.to_le_bytes());
        body.extend_from_slice(&self.payload);
        let mut out = Vec::with_capacity(8 + body.len());
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc::mask(crc::crc32c(&body)).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    fn decode(body: &[u8]) -> Result<Self> {
        if body.len() < 17 {
            return Err(Error::corruption("wal record body truncated"));
        }
        Ok(WalRecord {
            checkpoint: body[0] != 0,
            stream: tu_common::bytes::u64_le(&body[1..9]),
            seq: tu_common::bytes::u64_le(&body[9..17]),
            payload: body[17..].to_vec(),
        })
    }
}

/// A write-ahead log stored as one append-only file on the fast tier.
pub struct Wal {
    store: Arc<BlockStore>,
    name: String,
    /// Buffered records waiting for the next append; batching keeps the
    /// per-sample logging cost off the insert path.
    pending: Mutex<Vec<u8>>,
    obs_appends: tu_obs::TracedCounter,
    obs_flushed_bytes: tu_obs::TracedCounter,
}

impl Wal {
    /// Opens (or creates) the log file `name` on `store`.
    pub fn open(store: Arc<BlockStore>, name: impl Into<String>) -> Self {
        Wal {
            store,
            name: name.into(),
            pending: Mutex::new(Vec::new()),
            obs_appends: tu_obs::traced("lsm.wal.append_records"),
            obs_flushed_bytes: tu_obs::traced("lsm.wal.flushed_bytes"),
        }
    }

    /// Queues a record; call [`Wal::flush`] to persist the batch.
    pub fn append(&self, record: &WalRecord) {
        self.obs_appends.inc();
        self.pending.lock().extend_from_slice(&record.encode());
    }

    /// Persists all queued records.
    pub fn flush(&self) -> Result<()> {
        let mut pending = self.pending.lock();
        if pending.is_empty() {
            return Ok(());
        }
        let batch = std::mem::take(&mut *pending);
        self.obs_flushed_bytes.add(batch.len() as u64);
        self.store.append(&self.name, &batch)?;
        Ok(())
    }

    /// Replays every intact record, oldest first. A torn tail (partial
    /// final record, e.g. from a crash mid-append) ends the replay without
    /// an error; a corrupt record in the middle is an error.
    pub fn replay(&self) -> Result<Vec<WalRecord>> {
        let bytes = match self.store.read_file(&self.name) {
            Ok(b) => b,
            Err(e) if e.is_not_found() => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let mut out = Vec::new();
        let mut off = 0usize;
        let torn = |off: usize| {
            tu_obs::log::warn(
                "lsm.wal",
                "torn WAL tail dropped during replay",
                &[
                    ("offset", off.into()),
                    ("lost_bytes", (bytes.len() - off).into()),
                ],
            );
        };
        while off < bytes.len() {
            if off + 8 > bytes.len() {
                torn(off);
                break;
            }
            let len = tu_common::bytes::u32_le(&bytes[off..off + 4]) as usize;
            let stored = crc::unmask(tu_common::bytes::u32_le(&bytes[off + 4..off + 8]));
            let body_start = off + 8;
            if body_start + len > bytes.len() {
                torn(off);
                break;
            }
            let body = &bytes[body_start..body_start + len];
            if crc::crc32c(body) != stored {
                // A checksum mismatch that is not at the torn tail means
                // real corruption.
                if body_start + len == bytes.len() {
                    torn(off);
                    break;
                }
                return Err(Error::corruption("wal record checksum mismatch"));
            }
            out.push(WalRecord::decode(body)?);
            off = body_start + len;
        }
        Ok(out)
    }

    /// Rewrites the log keeping only records newer than their stream's
    /// checkpoint (the background purge of §3.3). Returns how many records
    /// were dropped.
    pub fn purge(&self) -> Result<usize> {
        self.flush()?;
        let records = self.replay()?;
        use std::collections::HashMap;
        let mut watermark: HashMap<u64, u64> = HashMap::new();
        for r in &records {
            if r.checkpoint {
                let w = watermark.entry(r.stream).or_insert(0);
                *w = (*w).max(r.seq);
            }
        }
        let mut kept = Vec::new();
        let mut dropped = 0usize;
        for r in &records {
            let obsolete = !r.checkpoint && watermark.get(&r.stream).is_some_and(|&w| r.seq <= w);
            // Checkpoints themselves are kept only if still useful (some
            // live record may follow with a later checkpoint superseding
            // them; keeping the max per stream is enough).
            let stale_checkpoint =
                r.checkpoint && watermark.get(&r.stream).is_some_and(|&w| r.seq < w);
            if obsolete || stale_checkpoint {
                dropped += 1;
            } else {
                kept.extend_from_slice(&r.encode());
            }
        }
        if dropped > 0 {
            // Atomic replace: write the compacted log under a temp name.
            let tmp = format!("{}.tmp", self.name);
            self.store.write_file(&tmp, &kept)?;
            let data = self.store.read_file(&tmp)?;
            self.store.write_file(&self.name, &data)?;
            self.store.delete(&tmp)?;
            tu_obs::log::info(
                "lsm.wal",
                "WAL purged",
                &[
                    ("dropped_records", dropped.into()),
                    ("kept_bytes", kept.len().into()),
                ],
            );
        }
        Ok(dropped)
    }

    /// Current log size in bytes (excluding unflushed records).
    pub fn len(&self) -> u64 {
        self.store.len(&self.name).unwrap_or(0)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tu_cloud::cost::{CostClock, LatencyMode, LatencyModel};

    fn wal() -> (tempfile::TempDir, Wal) {
        let dir = tempfile::tempdir().unwrap();
        let store = Arc::new(
            BlockStore::open(
                dir.path().join("b"),
                LatencyModel::ebs(),
                CostClock::new(LatencyMode::Off),
            )
            .unwrap(),
        );
        (dir, Wal::open(store, "wal/log"))
    }

    fn rec(stream: u64, seq: u64, payload: &[u8]) -> WalRecord {
        WalRecord {
            stream,
            seq,
            checkpoint: false,
            payload: payload.to_vec(),
        }
    }

    fn ckpt(stream: u64, seq: u64) -> WalRecord {
        WalRecord {
            stream,
            seq,
            checkpoint: true,
            payload: Vec::new(),
        }
    }

    #[test]
    fn append_flush_replay_round_trip() {
        let (_d, w) = wal();
        let records = vec![rec(1, 1, b"a"), rec(2, 1, b"bb"), rec(1, 2, b"ccc")];
        for r in &records {
            w.append(r);
        }
        w.flush().unwrap();
        assert_eq!(w.replay().unwrap(), records);
    }

    #[test]
    fn replay_of_missing_log_is_empty() {
        let (_d, w) = wal();
        assert!(w.replay().unwrap().is_empty());
    }

    #[test]
    fn unflushed_records_are_not_replayed() {
        let (_d, w) = wal();
        w.append(&rec(1, 1, b"x"));
        assert!(w.replay().unwrap().is_empty());
        w.flush().unwrap();
        assert_eq!(w.replay().unwrap().len(), 1);
    }

    #[test]
    fn torn_tail_is_tolerated() {
        let (_d, w) = wal();
        w.append(&rec(1, 1, b"keep"));
        w.flush().unwrap();
        // Simulate a crash mid-append of a second record.
        let partial = &rec(1, 2, b"lost").encode()[..7];
        w.store.append("wal/log", partial).unwrap();
        let got = w.replay().unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].payload, b"keep");
    }

    #[test]
    fn mid_log_corruption_is_an_error() {
        let (_d, w) = wal();
        w.append(&rec(1, 1, b"first"));
        w.append(&rec(1, 2, b"second"));
        w.flush().unwrap();
        let mut bytes = w.store.read_file("wal/log").unwrap();
        bytes[10] ^= 0xff; // inside the first record's body
        w.store.write_file("wal/log", &bytes).unwrap();
        assert!(w.replay().is_err());
    }

    #[test]
    fn purge_drops_checkpointed_records() {
        let (_d, w) = wal();
        w.append(&rec(1, 1, b"s1-old"));
        w.append(&rec(1, 2, b"s1-old2"));
        w.append(&rec(2, 1, b"s2-live"));
        w.append(&ckpt(1, 2));
        w.append(&rec(1, 3, b"s1-live"));
        let dropped = w.purge().unwrap();
        assert_eq!(dropped, 2);
        let got = w.replay().unwrap();
        let payloads: Vec<&[u8]> = got.iter().map(|r| r.payload.as_slice()).collect();
        assert!(payloads.contains(&b"s2-live".as_slice()));
        assert!(payloads.contains(&b"s1-live".as_slice()));
        assert!(!payloads.contains(&b"s1-old".as_slice()));
        // The surviving checkpoint still guards stream 1.
        assert!(got
            .iter()
            .any(|r| r.checkpoint && r.stream == 1 && r.seq == 2));
    }

    #[test]
    fn purge_keeps_only_newest_checkpoint_per_stream() {
        let (_d, w) = wal();
        w.append(&ckpt(1, 1));
        w.append(&ckpt(1, 5));
        w.append(&ckpt(1, 3));
        w.purge().unwrap();
        let got = w.replay().unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].seq, 5);
    }

    #[test]
    fn purge_shrinks_the_file() {
        let (_d, w) = wal();
        for seq in 1..=100 {
            w.append(&rec(7, seq, &[0u8; 64]));
        }
        w.append(&ckpt(7, 90));
        w.flush().unwrap();
        let before = w.len();
        w.purge().unwrap();
        assert!(w.len() < before / 2, "{} -> {}", before, w.len());
    }
}
