//! Bloom filter for SSTable point lookups.
//!
//! Double hashing over a 64-bit seed hash, as in LevelDB's filter policy:
//! `k` probe positions derived from one hash and its rotation.

/// An immutable bloom filter over a set of keys.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: Vec<u8>,
    k: u32,
}

fn base_hash(key: &[u8]) -> u64 {
    // FNV-1a, then a finalizing mix for better bit diffusion.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h
}

impl BloomFilter {
    /// Builds a filter over `keys` with `bits_per_key` bits of budget per
    /// key (10 gives ~1% false positives).
    pub fn build<'a>(keys: impl ExactSizeIterator<Item = &'a [u8]>, bits_per_key: usize) -> Self {
        let n = keys.len().max(1);
        let nbits = (n * bits_per_key).max(64);
        let nbytes = nbits.div_ceil(8);
        let nbits = nbytes * 8;
        // Optimal k ≈ bits_per_key * ln 2.
        let k = ((bits_per_key as f64 * 0.69) as u32).clamp(1, 30);
        let mut bits = vec![0u8; nbytes];
        for key in keys {
            let h = base_hash(key);
            let delta = h.rotate_left(17) | 1;
            let mut pos = h;
            for _ in 0..k {
                let bit = (pos % nbits as u64) as usize;
                bits[bit / 8] |= 1 << (bit % 8);
                pos = pos.wrapping_add(delta);
            }
        }
        BloomFilter { bits, k }
    }

    /// True if `key` may be in the set; false means definitely absent.
    pub fn may_contain(&self, key: &[u8]) -> bool {
        let nbits = self.bits.len() * 8;
        if nbits == 0 {
            return true;
        }
        let h = base_hash(key);
        let delta = h.rotate_left(17) | 1;
        let mut pos = h;
        for _ in 0..self.k {
            let bit = (pos % nbits as u64) as usize;
            if self.bits[bit / 8] & (1 << (bit % 8)) == 0 {
                return false;
            }
            pos = pos.wrapping_add(delta);
        }
        true
    }

    /// Serializes to `bits || k (1 byte)`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = self.bits.clone();
        out.push(self.k as u8);
        out
    }

    /// Deserializes a filter produced by [`BloomFilter::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let (&k, bits) = bytes.split_last()?;
        Some(BloomFilter {
            bits: bits.to_vec(),
            k: k as u32,
        })
    }

    /// Size of the serialized filter.
    pub fn byte_len(&self) -> usize {
        self.bits.len() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("key-{i:08}").into_bytes()).collect()
    }

    #[test]
    fn no_false_negatives() {
        let ks = keys(10_000);
        let f = BloomFilter::build(ks.iter().map(|k| k.as_slice()), 10);
        for k in &ks {
            assert!(f.may_contain(k));
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let ks = keys(10_000);
        let f = BloomFilter::build(ks.iter().map(|k| k.as_slice()), 10);
        let mut fp = 0;
        let probes = 10_000;
        for i in 0..probes {
            if f.may_contain(format!("absent-{i}").as_bytes()) {
                fp += 1;
            }
        }
        let rate = fp as f64 / probes as f64;
        assert!(rate < 0.03, "false positive rate {rate}");
    }

    #[test]
    fn empty_filter_is_valid() {
        let f = BloomFilter::build(std::iter::empty(), 10);
        // An empty set may report anything, but must not panic; with no
        // bits set it reports absent.
        assert!(!f.may_contain(b"anything"));
    }

    #[test]
    fn serialization_round_trip() {
        let ks = keys(100);
        let f = BloomFilter::build(ks.iter().map(|k| k.as_slice()), 10);
        let bytes = f.to_bytes();
        assert_eq!(bytes.len(), f.byte_len());
        let g = BloomFilter::from_bytes(&bytes).unwrap();
        for k in &ks {
            assert!(g.may_contain(k));
        }
        assert!(BloomFilter::from_bytes(&[]).is_none());
    }

    #[test]
    fn binary_keys_work() {
        let ks: Vec<Vec<u8>> = (0..1000u64)
            .map(|i| {
                let mut k = i.to_be_bytes().to_vec();
                k.extend_from_slice(&(i * 31).to_be_bytes());
                k
            })
            .collect();
        let f = BloomFilter::build(ks.iter().map(|k| k.as_slice()), 10);
        for k in &ks {
            assert!(f.may_contain(k));
        }
    }
}
