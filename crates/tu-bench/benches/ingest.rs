//! Ingestion path benchmarks: slow path, fast path, and grouped inserts
//! into the TimeUnion engine (latency modelling off — pure CPU path).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use tu_bench::BenchConfig;
use tu_cloud::cost::LatencyMode;
use tu_common::Labels;
use tu_core::engine::TimeUnion;

fn engine(dir: &std::path::Path, name: &str) -> TimeUnion {
    let mut opts = BenchConfig::default().tu_options();
    opts.latency = LatencyMode::Off;
    TimeUnion::open(dir.join(name), opts).unwrap()
}

fn bench_series_ingest(c: &mut Criterion) {
    let dir = tempfile::tempdir().unwrap();
    let mut g = c.benchmark_group("ingest");
    g.throughput(Throughput::Elements(1));

    let db = engine(dir.path(), "slow");
    let labels: Vec<Labels> = (0..512)
        .map(|i| {
            Labels::from_pairs([
                ("metric", format!("m{}", i % 101)),
                ("hostname", format!("host_{}", i / 101)),
            ])
        })
        .collect();
    let mut t = 0i64;
    let mut i = 0usize;
    g.bench_function("slow_path_put", |b| {
        b.iter(|| {
            i = (i + 1) % labels.len();
            if i == 0 {
                t += 1000;
            }
            db.put(std::hint::black_box(&labels[i]), t, 1.0).unwrap()
        })
    });

    let db = engine(dir.path(), "fast");
    let ids: Vec<u64> = labels.iter().map(|l| db.put(l, 0, 0.0).unwrap()).collect();
    let mut t = 0i64;
    let mut i = 0usize;
    g.bench_function("fast_path_put_by_id", |b| {
        b.iter(|| {
            i = (i + 1) % ids.len();
            if i == 0 {
                t += 1000;
            }
            db.put_by_id(std::hint::black_box(ids[i]), t, 1.0).unwrap()
        })
    });
    g.finish();
}

fn bench_group_ingest(c: &mut Criterion) {
    let dir = tempfile::tempdir().unwrap();
    let db = engine(dir.path(), "group");
    let member_tags: Vec<Labels> = (0..101)
        .map(|i| Labels::from_pairs([("metric", format!("m{i}"))]))
        .collect();
    let (gid, refs) = db
        .put_group(
            &Labels::from_pairs([("hostname", "host_0")]),
            &member_tags,
            0,
            &vec![0.0; 101],
        )
        .unwrap();
    let values = vec![1.5f64; 101];
    let mut t = 0i64;
    let mut g = c.benchmark_group("ingest");
    // One row carries 101 samples.
    g.throughput(Throughput::Elements(101));
    g.bench_function("group_row_put_fast", |b| {
        b.iter(|| {
            t += 1000;
            db.put_group_fast(gid, std::hint::black_box(&refs), t, &values)
                .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_series_ingest, bench_group_ingest);
criterion_main!(benches);
