//! Micro-benchmarks of the SSTable format: build, point get, range scan.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use tu_cloud::block::BlockStore;
use tu_cloud::cost::{CostClock, LatencyMode, LatencyModel};
use tu_common::keys::encode_key;
use tu_lsm::cache::BlockCache;
use tu_lsm::sstable::{Table, TableBuilder, TableSource};

fn build_bytes(entries: u64) -> Vec<u8> {
    let mut b = TableBuilder::new();
    for i in 0..entries {
        let key = encode_key(i / 32, (i % 32) as i64 * 60_000);
        b.add(&key, &[0xAB; 48]).unwrap();
    }
    b.finish().unwrap().0
}

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("sstable_build");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("build_10k_entries", |b| b.iter(|| build_bytes(10_000)));
    g.finish();
}

fn bench_read(c: &mut Criterion) {
    let dir = tempfile::tempdir().unwrap();
    let store = Arc::new(
        BlockStore::open(
            dir.path().join("b"),
            LatencyModel::ebs(),
            CostClock::new(LatencyMode::Off),
        )
        .unwrap(),
    );
    store.write_file("sst", &build_bytes(10_000)).unwrap();
    let cache = Arc::new(BlockCache::new(16 << 20));
    let table = Table::open(TableSource::Block(store.clone(), "sst".into()), Some(cache)).unwrap();
    let mut g = c.benchmark_group("sstable_read");
    g.bench_function("open", |b| {
        b.iter(|| Table::open(TableSource::Block(store.clone(), "sst".into()), None).unwrap())
    });
    g.bench_function("point_get_warm", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 10_000;
            table
                .get(&encode_key(i / 32, (i % 32) as i64 * 60_000))
                .unwrap()
        })
    });
    g.bench_function("range_one_series", |b| {
        let mut id = 0u64;
        b.iter(|| {
            id = (id + 1) % 312;
            table
                .range(&encode_key(id, 0), &encode_key(id + 1, 0))
                .unwrap()
        })
    });
    g.bench_function("scan_all", |b| b.iter(|| table.scan_all().unwrap()));
    g.finish();
}

criterion_group!(benches, bench_build, bench_read);
criterion_main!(benches);
