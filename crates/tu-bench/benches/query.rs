//! Query path benchmarks against a pre-loaded TimeUnion instance:
//! selector resolution plus chunk merging for recent and long ranges.

use criterion::{criterion_group, criterion_main, Criterion};
use tu_bench::BenchConfig;
use tu_cloud::cost::LatencyMode;
use tu_common::Labels;
use tu_core::engine::TimeUnion;
use tu_index::Selector;

fn loaded_engine(dir: &std::path::Path) -> TimeUnion {
    let mut opts = BenchConfig::default().tu_options();
    opts.latency = LatencyMode::Off;
    let db = TimeUnion::open(dir.join("db"), opts).unwrap();
    // 404 series, 4 hours at 60 s.
    let mut ids = Vec::new();
    for host in 0..4 {
        for metric in 0..101 {
            ids.push(
                db.put(
                    &Labels::from_pairs([
                        ("metric", format!("m{metric}")),
                        ("hostname", format!("host_{host}")),
                    ]),
                    0,
                    0.0,
                )
                .unwrap(),
            );
        }
    }
    for step in 1..240i64 {
        for id in &ids {
            db.put_by_id(*id, step * 60_000, step as f64).unwrap();
        }
    }
    db.flush_all().unwrap();
    db
}

fn bench_queries(c: &mut Criterion) {
    let dir = tempfile::tempdir().unwrap();
    let db = loaded_engine(dir.path());
    let end = 240 * 60_000;
    let mut g = c.benchmark_group("query");
    g.bench_function("recent_one_series", |b| {
        let sel = [
            Selector::exact("hostname", "host_1"),
            Selector::exact("metric", "m5"),
        ];
        b.iter(|| db.query(&sel, end - 3_600_000, end).unwrap())
    });
    g.bench_function("full_range_one_series", |b| {
        let sel = [
            Selector::exact("hostname", "host_1"),
            Selector::exact("metric", "m5"),
        ];
        b.iter(|| db.query(&sel, 0, end).unwrap())
    });
    g.bench_function("regex_fanout_101_series", |b| {
        let sel = [Selector::exact("hostname", "host_2")];
        b.iter(|| db.query(&sel, end - 3_600_000, end).unwrap())
    });
    g.bench_function("selector_miss", |b| {
        let sel = [Selector::exact("hostname", "host_99")];
        b.iter(|| db.query(&sel, 0, end).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
