//! Micro-benchmarks of the simulated cloud tiers (real file I/O path,
//! latency model disabled so the code path itself is measured).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use tu_cloud::cost::LatencyMode;
use tu_cloud::StorageEnv;

fn bench_block_store(c: &mut Criterion) {
    let dir = tempfile::tempdir().unwrap();
    let env = StorageEnv::open(dir.path(), LatencyMode::Off).unwrap();
    let data = vec![7u8; 64 << 10];
    env.block.write_file("warm", &data).unwrap();
    let mut g = c.benchmark_group("block_store");
    g.throughput(Throughput::Bytes(data.len() as u64));
    let mut i = 0u64;
    g.bench_function("write_64k", |b| {
        b.iter(|| {
            i += 1;
            env.block
                .write_file(&format!("w-{}", i % 8), std::hint::black_box(&data))
                .unwrap();
        })
    });
    g.bench_function("read_64k", |b| {
        b.iter(|| env.block.read_file(std::hint::black_box("warm")).unwrap())
    });
    g.bench_function("read_range_4k", |b| {
        b.iter(|| env.block.read_range("warm", 4096, 4096).unwrap())
    });
    g.finish();
}

fn bench_object_store(c: &mut Criterion) {
    let dir = tempfile::tempdir().unwrap();
    let env = StorageEnv::open(dir.path(), LatencyMode::Off).unwrap();
    let data = vec![3u8; 256 << 10];
    env.object.put("warm", &data).unwrap();
    let mut g = c.benchmark_group("object_store");
    g.throughput(Throughput::Bytes(data.len() as u64));
    let mut i = 0u64;
    g.bench_function("put_256k", |b| {
        b.iter(|| {
            i += 1;
            env.object
                .put(&format!("p-{}", i % 8), std::hint::black_box(&data))
                .unwrap();
        })
    });
    g.bench_function("get_256k", |b| {
        b.iter(|| env.object.get(std::hint::black_box("warm")).unwrap())
    });
    g.bench_function("get_range_4k", |b| {
        b.iter(|| env.object.get_range("warm", 8192, 4096).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_block_store, bench_object_store);
criterion_main!(benches);
