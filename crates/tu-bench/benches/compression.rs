//! Micro-benchmarks for the chunk codecs: Gorilla, the NULL-extended XOR
//! group format, and Snappy.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use tu_common::Sample;
use tu_compress::nullxor::{GroupChunkDecoder, GroupChunkEncoder};
use tu_compress::{gorilla, snappy};

fn samples(n: usize) -> Vec<Sample> {
    (0..n)
        .map(|i| {
            Sample::new(
                i as i64 * 30_000 + (i % 7) as i64,
                40.0 + (i % 13) as f64 * 0.5,
            )
        })
        .collect()
}

fn bench_gorilla(c: &mut Criterion) {
    let data = samples(120);
    let encoded = gorilla::compress_chunk(&data).unwrap();
    let mut g = c.benchmark_group("gorilla");
    g.throughput(Throughput::Elements(data.len() as u64));
    g.bench_function("compress_120", |b| {
        b.iter(|| gorilla::compress_chunk(std::hint::black_box(&data)).unwrap())
    });
    g.bench_function("decompress_120", |b| {
        b.iter(|| gorilla::decompress_chunk(std::hint::black_box(&encoded)).unwrap())
    });
    g.finish();
}

fn bench_group_chunk(c: &mut Criterion) {
    let cols = 101usize;
    let rows = 32usize;
    let build = || {
        let mut enc = GroupChunkEncoder::new(cols);
        for r in 0..rows {
            let values: Vec<Option<f64>> = (0..cols)
                .map(|m| (m % 10 != 0).then(|| m as f64 + r as f64 * 0.1))
                .collect();
            enc.append_row(r as i64 * 30_000, &values).unwrap();
        }
        enc.finish()
    };
    let encoded = build();
    let mut g = c.benchmark_group("group_chunk");
    g.throughput(Throughput::Elements((cols * rows) as u64));
    g.bench_function("encode_101x32", |b| b.iter(build));
    g.bench_function("decode_all_101x32", |b| {
        b.iter(|| {
            GroupChunkDecoder::new(std::hint::black_box(&encoded))
                .unwrap()
                .decode_all()
                .unwrap()
        })
    });
    g.bench_function("decode_one_column", |b| {
        b.iter(|| {
            let d = GroupChunkDecoder::new(std::hint::black_box(&encoded)).unwrap();
            (d.decode_timestamps().unwrap(), d.decode_column(50).unwrap())
        })
    });
    g.finish();
}

fn bench_snappy(c: &mut Criterion) {
    let block: Vec<u8> = (0..4096u32)
        .flat_map(|i| ((i / 16) as u16).to_le_bytes())
        .collect();
    let compressed = snappy::compress(&block);
    let mut g = c.benchmark_group("snappy");
    g.throughput(Throughput::Bytes(block.len() as u64));
    g.bench_function("compress_4k_block", |b| {
        b.iter(|| snappy::compress(std::hint::black_box(&block)))
    });
    g.bench_function("decompress_4k_block", |b| {
        b.iter_batched(
            || compressed.clone(),
            |c| snappy::decompress(&c).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_gorilla, bench_group_chunk, bench_snappy);
criterion_main!(benches);
