//! Micro-benchmarks for the chunk codecs: Gorilla, the NULL-extended XOR
//! group format, and Snappy.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use tu_common::Sample;
use tu_compress::agg::AggKind;
use tu_compress::nullxor::{GroupChunkDecoder, GroupChunkEncoder};
use tu_compress::{gorilla, snappy};

fn samples(n: usize) -> Vec<Sample> {
    (0..n)
        .map(|i| {
            Sample::new(
                i as i64 * 30_000 + (i % 7) as i64,
                40.0 + (i % 13) as f64 * 0.5,
            )
        })
        .collect()
}

fn bench_gorilla(c: &mut Criterion) {
    let data = samples(120);
    let encoded = gorilla::compress_chunk(&data).unwrap();
    let mut g = c.benchmark_group("gorilla");
    g.throughput(Throughput::Elements(data.len() as u64));
    g.bench_function("compress_120", |b| {
        b.iter(|| gorilla::compress_chunk(std::hint::black_box(&data)).unwrap())
    });
    g.bench_function("decompress_120", |b| {
        b.iter(|| gorilla::decompress_chunk(std::hint::black_box(&encoded)).unwrap())
    });
    g.finish();
}

fn bench_group_chunk(c: &mut Criterion) {
    let cols = 101usize;
    let rows = 32usize;
    let build = || {
        let mut enc = GroupChunkEncoder::new(cols);
        for r in 0..rows {
            let values: Vec<Option<f64>> = (0..cols)
                .map(|m| (m % 10 != 0).then(|| m as f64 + r as f64 * 0.1))
                .collect();
            enc.append_row(r as i64 * 30_000, &values).unwrap();
        }
        enc.finish()
    };
    let encoded = build();
    let mut g = c.benchmark_group("group_chunk");
    g.throughput(Throughput::Elements((cols * rows) as u64));
    g.bench_function("encode_101x32", |b| b.iter(build));
    g.bench_function("decode_all_101x32", |b| {
        b.iter(|| {
            GroupChunkDecoder::new(std::hint::black_box(&encoded))
                .unwrap()
                .decode_all()
                .unwrap()
        })
    });
    g.bench_function("decode_one_column", |b| {
        b.iter(|| {
            let d = GroupChunkDecoder::new(std::hint::black_box(&encoded)).unwrap();
            (d.decode_timestamps().unwrap(), d.decode_column(50).unwrap())
        })
    });
    g.finish();
}

/// Decode throughput (samples/sec): the streaming fold and reusable
/// columnar-buffer paths the aggregation pushdown rides, against the
/// materializing `decode_all` baseline.
fn bench_decode_throughput(c: &mut Criterion) {
    let data = samples(120);
    let encoded = gorilla::compress_chunk_framed(&data).unwrap();
    let mut g = c.benchmark_group("decode_throughput");
    g.throughput(Throughput::Elements(data.len() as u64));
    g.bench_function("materialize_decode_all_120", |b| {
        b.iter(|| {
            gorilla::ChunkDecoder::new(std::hint::black_box(&encoded))
                .unwrap()
                .decode_all()
                .unwrap()
        })
    });
    g.bench_function("streaming_fold_sum_120", |b| {
        b.iter(|| {
            gorilla::ChunkDecoder::new(std::hint::black_box(&encoded))
                .unwrap()
                .fold(AggKind::Sum)
                .unwrap()
        })
    });
    g.bench_function("streaming_for_each_120", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            gorilla::ChunkDecoder::new(std::hint::black_box(&encoded))
                .unwrap()
                .for_each(|_, v| acc += v)
                .unwrap();
            acc
        })
    });
    g.bench_function("columnar_decode_into_120", |b| {
        let mut ts = Vec::new();
        let mut vs = Vec::new();
        b.iter(|| {
            gorilla::ChunkDecoder::new(std::hint::black_box(&encoded))
                .unwrap()
                .decode_into(&mut ts, &mut vs)
                .unwrap();
            ts.len() + vs.len()
        })
    });
    g.finish();

    // Same comparison for one NULL-XOR group column.
    let cols = 101usize;
    let rows = 32usize;
    let mut enc = GroupChunkEncoder::new(cols);
    for r in 0..rows {
        let values: Vec<Option<f64>> = (0..cols)
            .map(|m| (m % 10 != 0).then(|| m as f64 + r as f64 * 0.1))
            .collect();
        enc.append_row(r as i64 * 30_000, &values).unwrap();
    }
    let group = enc.finish_framed();
    let mut g = c.benchmark_group("decode_throughput_group");
    g.throughput(Throughput::Elements(rows as u64));
    g.bench_function("materialize_one_column", |b| {
        b.iter(|| {
            let d = GroupChunkDecoder::new(std::hint::black_box(&group)).unwrap();
            (d.decode_timestamps().unwrap(), d.decode_column(50).unwrap())
        })
    });
    g.bench_function("streaming_fold_one_column", |b| {
        let mut ts = Vec::new();
        b.iter(|| {
            let d = GroupChunkDecoder::new(std::hint::black_box(&group)).unwrap();
            d.decode_timestamps_into(&mut ts).unwrap();
            d.fold_column(50, AggKind::Max, &ts).unwrap()
        })
    });
    g.finish();
}

fn bench_snappy(c: &mut Criterion) {
    let block: Vec<u8> = (0..4096u32)
        .flat_map(|i| ((i / 16) as u16).to_le_bytes())
        .collect();
    let compressed = snappy::compress(&block);
    let mut g = c.benchmark_group("snappy");
    g.throughput(Throughput::Bytes(block.len() as u64));
    g.bench_function("compress_4k_block", |b| {
        b.iter(|| snappy::compress(std::hint::black_box(&block)))
    });
    g.bench_function("decompress_4k_block", |b| {
        b.iter_batched(
            || compressed.clone(),
            |c| snappy::decompress(&c).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_gorilla,
    bench_group_chunk,
    bench_decode_throughput,
    bench_snappy
);
criterion_main!(benches);
