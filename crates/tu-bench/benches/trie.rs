//! Micro-benchmarks of the double-array trie and the inverted index.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use tu_common::Labels;
use tu_index::{DoubleArrayTrie, InvertedIndex, Selector};
use tu_mmap::pagecache::{PageCache, PAGE_SIZE};

fn bench_trie(c: &mut Criterion) {
    let dir = tempfile::tempdir().unwrap();
    let cache = PageCache::new(4096 * PAGE_SIZE);
    let trie = DoubleArrayTrie::open(cache, dir.path().join("t"), 1 << 16).unwrap();
    for i in 0..10_000u64 {
        trie.insert(format!("metric\x01m{i}").as_bytes(), i)
            .unwrap();
    }
    let mut g = c.benchmark_group("trie");
    g.throughput(Throughput::Elements(1));
    g.bench_function("get_hit", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 10_000;
            trie.get(format!("metric\x01m{i}").as_bytes()).unwrap()
        })
    });
    g.bench_function("get_miss", |b| {
        b.iter(|| trie.get(b"metric\x01missing-key").unwrap())
    });
    let mut next = 10_000u64;
    g.bench_function("insert_new", |b| {
        b.iter(|| {
            next += 1;
            trie.insert(format!("metric\x01n{next}").as_bytes(), next)
                .unwrap()
        })
    });
    g.finish();
}

fn bench_inverted_index(c: &mut Criterion) {
    let dir = tempfile::tempdir().unwrap();
    let cache = PageCache::new(4096 * PAGE_SIZE);
    let idx = InvertedIndex::open(cache, dir.path().join("i"), 1 << 16).unwrap();
    for i in 0..5_000u64 {
        idx.add(
            &Labels::from_pairs([
                ("metric", format!("m{}", i % 100)),
                ("hostname", format!("host_{}", i / 100)),
                ("dc", format!("dc{}", i % 4)),
            ]),
            i,
        )
        .unwrap();
    }
    let mut g = c.benchmark_group("inverted_index");
    g.bench_function("select_exact_pair", |b| {
        let sel = [
            Selector::exact("metric", "m42"),
            Selector::exact("dc", "dc2"),
        ];
        b.iter(|| idx.select(std::hint::black_box(&sel)).unwrap())
    });
    g.bench_function("select_regex", |b| {
        let sel = [Selector::regex("hostname", "host_1[0-9]").unwrap()];
        b.iter(|| idx.select(std::hint::black_box(&sel)).unwrap())
    });
    g.bench_function("add_series", |b| {
        let mut i = 1_000_000u64;
        b.iter(|| {
            i += 1;
            idx.add(
                &Labels::from_pairs([
                    ("metric", format!("m{}", i % 100)),
                    ("hostname", format!("host_{i}")),
                ]),
                i,
            )
            .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_trie, bench_inverted_index);
criterion_main!(benches);
