//! Table rendering for the figure harness: fixed-width text tables that
//! read like the paper's figures, plus CSV emission for plotting.

/// A simple column-aligned table.
#[derive(Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n## {}\n", self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&line(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Emits CSV (for plotting scripts).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float compactly (3 significant-ish digits).
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Formats a rate like "1.2M/s".
pub fn fmt_rate(per_sec: f64) -> String {
    if per_sec >= 1e6 {
        format!("{:.2}M/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.1}k/s", per_sec / 1e3)
    } else {
        format!("{per_sec:.0}/s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "12345".into()]);
        let s = t.render();
        assert!(s.contains("## Demo"));
        assert!(s.contains("long-name"));
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("name,value"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        Table::new("x", &["a", "b"]).row(vec!["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(12345.6), "12346");
        assert_eq!(fmt(42.42), "42.4");
        assert_eq!(fmt(1.2345), "1.234");
        assert_eq!(fmt_rate(2_500_000.0), "2.50M/s");
        assert_eq!(fmt_rate(2_500.0), "2.5k/s");
        assert_eq!(fmt_rate(25.0), "25/s");
    }
}
