//! Self-monitoring overhead benchmark: the same TSBS DevOps sample stream
//! batched through `TimeUnion::put_batch`, once bare and once with a
//! `SelfMonitor` ticking against the live registry, reported as
//! `BENCH_selfmon_overhead.json`.
//!
//! ```text
//! cargo run -p tu-bench --release --bin selfmon_overhead [-- --quick] [--out PATH]
//! ```
//!
//! The monitor is driven at the production cadence of one vitals sample
//! per second. Each tick snapshots the whole registry,
//! converts it into samples (counters, gauges, histogram buckets), and
//! ingests them into the embedded telemetry engine, whose own storage
//! traffic is diverted by the recursion guard rather than charged to the
//! primary counters. Configurations are interleaved and the minimum wall
//! time per configuration is compared, which strips scheduler noise from
//! the difference.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use tu_cloud::cost::LatencyMode;
use tu_cloud::ledger::CostLedger;
use tu_common::clock::system_clock;
use tu_common::Result;
use tu_core::engine::{Options, TimeUnion};
use tu_core::selfmon::{SelfMonitor, SelfmonOptions};
use tu_lsm::TreeOptions;
use tu_tsbs::devops::{DevOpsGenerator, DevOpsOptions};

/// Self-monitoring tick cadence — the production vitals default.
const TICK_MS: u64 = 1_000;

/// Samples per `put_batch` call (per series: `BATCH_STEPS` consecutive
/// generator steps, all series in one batch).
const BATCH_STEPS: usize = 40;

/// Interleaved repetitions per configuration; the minimum wall time wins.
const ITERS: usize = 5;

struct Run {
    wall_ms: f64,
    samples: usize,
    ticks: u64,
    diverted_requests: u64,
    diverted_bytes: u64,
}

fn main() {
    if let Err(e) = run() {
        eprintln!("selfmon_overhead failed: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
        .unwrap_or("BENCH_selfmon_overhead.json")
        .to_string();

    let hosts = 6usize;
    let minutes: i64 = if quick { 12 } else { 360 };
    let interval_s: i64 = 10;
    let gen = DevOpsGenerator::new(DevOpsOptions {
        hosts,
        interval_ms: interval_s * 1000,
        duration_ms: minutes * 60_000,
        ..DevOpsOptions::default()
    });
    let metrics = gen.metric_names().len();

    // Unmeasured warmup: the first run of the process pays allocator and
    // page-cache cold-start costs that would otherwise bias whichever
    // configuration happens to go first.
    let warmup = DevOpsGenerator::new(DevOpsOptions {
        hosts,
        interval_ms: interval_s * 1000,
        duration_ms: 12 * 60_000,
        ..DevOpsOptions::default()
    });
    run_once(&warmup, false).map(drop)?;

    let mut off: Vec<Run> = Vec::new();
    let mut on: Vec<Run> = Vec::new();
    for iter in 0..ITERS {
        // Alternate which configuration leads so residual warmth from the
        // preceding run cancels out across the sweep.
        let order = if iter % 2 == 0 {
            [false, true]
        } else {
            [true, false]
        };
        for selfmon in order {
            let r = run_once(&gen, selfmon)?;
            eprintln!(
                "iter={iter} selfmon={selfmon}: {:.0}ms for {} samples ({:.0} samples/s, {} ticks)",
                r.wall_ms,
                r.samples,
                r.samples as f64 / (r.wall_ms / 1e3),
                r.ticks
            );
            if selfmon {
                on.push(r)
            } else {
                off.push(r)
            }
        }
    }

    let best =
        |runs: &[Run]| -> f64 { runs.iter().map(|r| r.wall_ms).fold(f64::INFINITY, f64::min) };
    let off_ms = best(&off);
    let on_ms = best(&on);
    let overhead_pct = (on_ms - off_ms) / off_ms * 100.0;
    let ticks: u64 = on.iter().map(|r| r.ticks).sum();
    let diverted_requests: u64 = on.iter().map(|r| r.diverted_requests).sum();
    let diverted_bytes: u64 = on.iter().map(|r| r.diverted_bytes).sum();

    let fmt_runs = |runs: &[Run]| -> String {
        runs.iter()
            .map(|r| format!("{:.1}", r.wall_ms))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"selfmon_overhead\",\n");
    json.push_str(&format!(
        "  \"workload\": {{\"hosts\": {hosts}, \"metrics_per_host\": {metrics}, \"interval_s\": {interval_s}, \"minutes\": {minutes}, \"total_samples\": {}, \"batch_steps\": {BATCH_STEPS}}},\n",
        gen.total_samples()
    ));
    json.push_str(&format!(
        "  \"tick_interval_ms\": {TICK_MS},\n  \"iters\": {ITERS},\n"
    ));
    json.push_str(&format!(
        "  \"selfmon_off\": {{\"wall_ms\": [{}], \"best_ms\": {off_ms:.1}, \"samples_per_s\": {:.0}}},\n",
        fmt_runs(&off),
        off[0].samples as f64 / (off_ms / 1e3)
    ));
    json.push_str(&format!(
        "  \"selfmon_on\": {{\"wall_ms\": [{}], \"best_ms\": {on_ms:.1}, \"samples_per_s\": {:.0}, \"ticks\": {ticks}, \"diverted_requests\": {diverted_requests}, \"diverted_bytes\": {diverted_bytes}}},\n",
        fmt_runs(&on),
        on[0].samples as f64 / (on_ms / 1e3)
    ));
    json.push_str(&format!("  \"overhead_pct\": {overhead_pct:.2}\n}}\n"));
    std::fs::write(&out_path, &json)?;

    println!("{json}");
    println!(
        "self-monitoring ingest overhead: {overhead_pct:.2}% (at the production {TICK_MS} ms tick)"
    );
    println!("report written to {out_path}");
    Ok(())
}

/// One fresh engine, the full generator stream batched; with `selfmon` a
/// ticker thread feeds a `SelfMonitor` registry snapshots at `TICK_MS`.
fn run_once(gen: &DevOpsGenerator, selfmon: bool) -> Result<Run> {
    let dir = tempfile::tempdir()?;
    let opts = Options {
        chunk_samples: 32,
        wal_batch_records: 64,
        index_slots_per_segment: 1 << 16,
        latency: LatencyMode::Off,
        tree: TreeOptions {
            // Keep the memtable out of the measured window so the runs
            // isolate the WAL/ingest path; flushing runs after the timer.
            memtable_bytes: 64 << 20,
            ..TreeOptions::default()
        },
        ..Options::default()
    };
    let db = TimeUnion::open(dir.path().join("tu"), opts)?;

    let diverted0 = tu_obs::counter("obs.selfmon.diverted.requests").get();
    let diverted_bytes0 = tu_obs::counter("obs.selfmon.diverted.bytes").get();
    let stop = Arc::new(AtomicBool::new(false));
    let mut ticks = 0u64;
    let ticker = if selfmon {
        let clock = system_clock();
        let ledger = CostLedger::new(64);
        let sm = SelfMonitor::open(
            &dir.path().join("tu"),
            clock.clone(),
            ledger,
            SelfmonOptions::default(),
        )?;
        let stop = Arc::clone(&stop);
        Some(std::thread::spawn(move || {
            let mut n = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let snap = tu_obs::global().snapshot();
                sm.record(clock.now_ms(), &snap);
                n += 1;
                std::thread::sleep(std::time::Duration::from_millis(TICK_MS));
            }
            n
        }))
    } else {
        None
    };

    // Setup (unmeasured): create every series sequentially, seeding step 0.
    let metrics = gen.metric_names().len();
    let hosts = gen.options().hosts;
    let mut ids: Vec<Vec<u64>> = Vec::new();
    for host in 0..hosts {
        let mut row = Vec::with_capacity(metrics);
        for metric in 0..metrics {
            row.push(db.put(
                &gen.series_labels(host, metric),
                gen.ts_of(0),
                gen.value(host, metric, 0),
            )?);
        }
        ids.push(row);
    }
    db.sync_wal()?;

    // Measured: the remaining steps in multi-series batches.
    let mut samples = 0usize;
    let t = Instant::now();
    let steps = gen.steps();
    let mut step = 1i64;
    while step < steps {
        let upto = (step + BATCH_STEPS as i64).min(steps);
        let mut batch = Vec::with_capacity((upto - step) as usize * hosts * metrics);
        for (host, row) in ids.iter().enumerate() {
            for (metric, id) in row.iter().enumerate() {
                for s in step..upto {
                    batch.push((*id, gen.ts_of(s), gen.value(host, metric, s)));
                }
            }
        }
        samples += batch.len();
        db.put_batch(&batch)?;
        step = upto;
    }
    let wall_ms = t.elapsed().as_secs_f64() * 1e3;

    stop.store(true, Ordering::Relaxed);
    if let Some(h) = ticker {
        ticks = h.join().expect("ticker thread panicked");
    }
    db.flush_all()?;
    Ok(Run {
        wall_ms,
        samples,
        ticks,
        diverted_requests: tu_obs::counter("obs.selfmon.diverted.requests").get() - diverted0,
        diverted_bytes: tu_obs::counter("obs.selfmon.diverted.bytes").get() - diverted_bytes0,
    })
}
