//! Query-scaling benchmark: the same TSBS DevOps query batch at 1/2/4/8
//! query threads, reported as `BENCH_query_scaling.json`.
//!
//! ```text
//! cargo run -p tu-bench --release --bin query_scaling [-- --quick] [--out PATH]
//! ```
//!
//! Ingest runs under [`LatencyMode::Virtual`] (sleeping through a million
//! WAL appends measures nothing), then the engine is reopened under
//! [`LatencyMode::Sleep`] so every modelled storage latency is a *real*
//! scaled sleep. That is the regime where query fan-out pays off the way
//! it does on actual cloud storage: parallel workers overlap their S3/EBS
//! waits, which no single-core CPU parallelism could fake. Each measured
//! batch runs with warm object state and table metadata but cold data
//! blocks, so every run pays the identical per-block Get traffic of
//! Equations 3-6 — minus what coalesced readahead saves, which the report
//! also records.

use std::time::Instant;

use tu_cloud::cost::LatencyMode;
use tu_common::Result;
use tu_core::engine::{Options, TimeUnion};
use tu_index::Selector;
use tu_lsm::TreeOptions;
use tu_tsbs::devops::{DevOpsGenerator, DevOpsOptions};

/// Real-sleep scale factor: an S3 Get (20 ms modelled) sleeps 1 ms, an EBS
/// read (100 µs) sleeps 5 µs. Large enough to dominate per-series CPU
/// work, small enough to keep the bench under a minute.
const SLEEP_SCALE: f64 = 0.05;

const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

struct Run {
    threads: usize,
    wall_ms: f64,
    qps: f64,
    series: usize,
    samples: usize,
    object_gets: u64,
    coalesced_requests: u64,
    coalesced_blocks: u64,
}

fn main() {
    if let Err(e) = run() {
        eprintln!("query_scaling failed: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
        .unwrap_or("BENCH_query_scaling.json")
        .to_string();

    let hosts = 8usize;
    let hours: i64 = if quick { 1 } else { 4 };
    let interval_s: i64 = 10;
    let duration_ms = hours * 3_600_000;
    let gen = DevOpsGenerator::new(DevOpsOptions {
        hosts,
        interval_ms: interval_s * 1000,
        duration_ms,
        ..DevOpsOptions::default()
    });

    // One L2 partition spanning the whole run keeps each series' chunks in
    // one long adjacent key run per table — the shape readahead exists for.
    let tree = TreeOptions {
        memtable_bytes: 1 << 20,
        max_sstable_bytes: 1 << 20,
        l0_partition_ms: duration_ms / 4,
        l2_partition_ms: duration_ms,
        ..TreeOptions::default()
    };
    let opts_with = |latency: LatencyMode| Options {
        chunk_samples: 32,
        index_slots_per_segment: 1 << 16,
        tree: tree.clone(),
        latency,
        ..Options::default()
    };

    let dir = tempfile::tempdir()?;
    let tu_dir = dir.path().join("tu");

    // Phase 1: ingest + flush under virtual latency, then close.
    eprintln!(
        "ingesting {} samples ({hosts} hosts x {} metrics x {} steps)...",
        gen.total_samples(),
        gen.metric_names().len(),
        gen.steps()
    );
    let t0 = Instant::now();
    {
        let db = TimeUnion::open(&tu_dir, opts_with(LatencyMode::Virtual))?;
        let mut ids: Vec<Vec<u64>> = Vec::new();
        for host in 0..hosts {
            let mut row = Vec::with_capacity(gen.metric_names().len());
            for metric in 0..gen.metric_names().len() {
                row.push(db.put(
                    &gen.series_labels(host, metric),
                    gen.ts_of(0),
                    gen.value(host, metric, 0),
                )?);
            }
            ids.push(row);
        }
        for step in 1..gen.steps() {
            let t = gen.ts_of(step);
            for (host, row) in ids.iter().enumerate() {
                for (metric, id) in row.iter().enumerate() {
                    db.put_by_id(*id, t, gen.value(host, metric, step))?;
                }
            }
        }
        db.flush_all()?;
        db.sync()?;
    }
    eprintln!("ingest done in {:.1}s", t0.elapsed().as_secs_f64());

    // Phase 2: reopen with scaled real-sleep latencies and sweep threads.
    let db = TimeUnion::open(&tu_dir, opts_with(LatencyMode::Sleep(SLEEP_SCALE)))?;
    let queries: Vec<Vec<Selector>> = (0..hosts)
        .map(|h| vec![Selector::exact("hostname", format!("host_{h}"))])
        .collect();
    // Warm-up: loads table metadata and absorbs every first-read (cold
    // object) penalty once, so each measured run sees identical storage.
    for sel in &queries {
        db.query(sel, 0, gen.end_ms())?;
    }

    let mut runs: Vec<Run> = Vec::new();
    for &threads in &THREAD_SWEEP {
        db.set_query_threads(threads);
        db.clear_block_cache();
        let gets0 = db.storage().object.stats().get_requests;
        let ra_req0 = tu_obs::counter("lsm.readahead.coalesced_requests").get();
        let ra_blk0 = tu_obs::counter("lsm.readahead.coalesced_blocks").get();
        let t = Instant::now();
        let mut series = 0usize;
        let mut samples = 0usize;
        for sel in &queries {
            let r = db.query(sel, 0, gen.end_ms())?;
            series += r.len();
            samples += r.iter().map(|s| s.samples.len()).sum::<usize>();
        }
        let wall_ms = t.elapsed().as_secs_f64() * 1e3;
        runs.push(Run {
            threads,
            wall_ms,
            qps: queries.len() as f64 / (wall_ms / 1e3),
            series,
            samples,
            object_gets: db.storage().object.stats().get_requests - gets0,
            coalesced_requests: tu_obs::counter("lsm.readahead.coalesced_requests").get() - ra_req0,
            coalesced_blocks: tu_obs::counter("lsm.readahead.coalesced_blocks").get() - ra_blk0,
        });
        eprintln!(
            "threads={threads}: {wall_ms:.0}ms for {} queries ({series} series, {samples} samples)",
            queries.len()
        );
    }

    // Every run must return the same data regardless of thread count.
    for r in &runs[1..] {
        assert_eq!(
            (r.series, r.samples),
            (runs[0].series, runs[0].samples),
            "thread count changed query results"
        );
    }

    let base_ms = runs[0].wall_ms;
    let shards = tu_obs::gauge("cache.shard.count").get();
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"query_scaling\",\n");
    json.push_str(&format!(
        "  \"workload\": {{\"hosts\": {hosts}, \"metrics_per_host\": {}, \"interval_s\": {interval_s}, \"hours\": {hours}, \"total_samples\": {}}},\n",
        gen.metric_names().len(),
        gen.total_samples()
    ));
    json.push_str(&format!(
        "  \"latency\": {{\"mode\": \"sleep\", \"scale\": {SLEEP_SCALE}}},\n"
    ));
    json.push_str(&format!("  \"cache_shards\": {shards},\n"));
    json.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"threads\": {}, \"wall_ms\": {:.1}, \"qps\": {:.2}, \"speedup\": {:.2}, \"queries\": {}, \"series\": {}, \"samples\": {}, \"object_get_requests\": {}, \"readahead_coalesced_requests\": {}, \"readahead_coalesced_blocks\": {}}}{}\n",
            r.threads,
            r.wall_ms,
            r.qps,
            base_ms / r.wall_ms,
            queries.len(),
            r.series,
            r.samples,
            r.object_gets,
            r.coalesced_requests,
            r.coalesced_blocks,
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json)?;

    println!("{json}");
    let last = runs.last().expect("sweep is non-empty");
    println!(
        "speedup at {} threads: {:.2}x; coalesced readahead requests/batch: {} (for {} blocks)",
        last.threads,
        base_ms / last.wall_ms,
        last.coalesced_requests,
        last.coalesced_blocks
    );
    println!("report written to {out_path}");
    Ok(())
}
