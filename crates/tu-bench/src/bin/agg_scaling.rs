//! Aggregation-pushdown benchmark: step-windowed MAX and SUM over the
//! TSBS DevOps workload, the materialize-then-fold baseline against
//! `TimeUnion::query_aggregate`, at 1/2/8 query threads. Reported as
//! `BENCH_agg_pushdown.json`.
//!
//! ```text
//! cargo run -p tu-bench --release --bin agg_scaling [-- --quick] [--out PATH]
//! ```
//!
//! The measured quantity is the `fanout` stage of the query profile —
//! where every per-series select + decode happens. The baseline runs
//! `query_profiled` (materializing every sample through the merge path)
//! and folds with `aggregate_step`; the pushdown runs
//! `query_aggregate_profiled`, which answers fully-covered chunks from
//! their stats footers, skips value-disqualified chunks, and
//! stream-folds the rest without building sample vectors. Each run also
//! pins a digest over `(labels, window_ts, value_bits)` so every
//! (path, thread-count) pair is proven bit-identical.

use std::time::Instant;

use tu_cloud::cost::LatencyMode;
use tu_common::{Labels, Result, Sample};
use tu_core::engine::{Options, TimeUnion};
use tu_core::{aggregate_step, AggKind};
use tu_index::Selector;
use tu_lsm::TreeOptions;
use tu_tsbs::devops::{DevOpsGenerator, DevOpsOptions};

const THREAD_SWEEP: [usize; 3] = [1, 2, 8];
const KINDS: [AggKind; 2] = [AggKind::Max, AggKind::Sum];

struct Run {
    kind: AggKind,
    threads: usize,
    baseline_fanout_ms: f64,
    pushdown_fanout_ms: f64,
    baseline_wall_ms: f64,
    pushdown_wall_ms: f64,
    pushdown_chunks: u64,
    meta_answered: u64,
    skipped_chunks: u64,
    series: usize,
    windows: usize,
    digest: String,
}

fn main() {
    if let Err(e) = run() {
        eprintln!("agg_scaling failed: {e}");
        std::process::exit(1);
    }
}

/// FNV-1a over the aggregate rows: labels bytes, window timestamp, and
/// the value's raw bits — bit-identity, not approximate equality.
fn digest_rows(rows: &[(Labels, Vec<Sample>)]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for b in bytes {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for (labels, samples) in rows {
        eat(&labels.to_bytes());
        for s in samples {
            eat(&s.t.to_le_bytes());
            eat(&s.v.to_bits().to_le_bytes());
        }
    }
    format!("{h:016x}")
}

fn run() -> Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
        .unwrap_or("BENCH_agg_pushdown.json")
        .to_string();

    let hosts = 8usize;
    let hours: i64 = if quick { 1 } else { 4 };
    let interval_s: i64 = 10;
    let duration_ms = hours * 3_600_000;
    let chunk_samples = 64usize;
    let step_ms: i64 = 1_800_000; // 30 min windows ≫ the ~640 s chunk span
    let gen = DevOpsGenerator::new(DevOpsOptions {
        hosts,
        interval_ms: interval_s * 1000,
        duration_ms,
        ..DevOpsOptions::default()
    });

    let opts = Options {
        chunk_samples,
        index_slots_per_segment: 1 << 16,
        latency: LatencyMode::Virtual,
        tree: TreeOptions {
            memtable_bytes: 1 << 20,
            max_sstable_bytes: 1 << 20,
            l0_partition_ms: duration_ms / 4,
            l2_partition_ms: duration_ms,
            ..TreeOptions::default()
        },
        ..Options::default()
    };

    let dir = tempfile::tempdir()?;
    let db = TimeUnion::open(dir.path().join("tu"), opts)?;

    eprintln!(
        "ingesting {} samples ({hosts} hosts x {} metrics x {} steps)...",
        gen.total_samples(),
        gen.metric_names().len(),
        gen.steps()
    );
    let metrics = gen.metric_names().len();
    let mut ids: Vec<Vec<u64>> = Vec::new();
    for host in 0..hosts {
        let mut row = Vec::with_capacity(metrics);
        for metric in 0..metrics {
            row.push(db.put(
                &gen.series_labels(host, metric),
                gen.ts_of(0),
                gen.value(host, metric, 0),
            )?);
        }
        ids.push(row);
    }
    // Everything but a short tail lands in stats-framed SSTable chunks;
    // the tail stays in live head chunks so the pushdown must splice both.
    let steps = gen.steps();
    let tail = 16.min(steps - 1);
    for step in 1..steps - tail {
        let t = gen.ts_of(step);
        for (host, row) in ids.iter().enumerate() {
            for (metric, id) in row.iter().enumerate() {
                db.put_by_id(*id, t, gen.value(host, metric, step))?;
            }
        }
    }
    db.flush_all()?;
    for step in steps - tail..steps {
        let t = gen.ts_of(step);
        for (host, row) in ids.iter().enumerate() {
            for (metric, id) in row.iter().enumerate() {
                db.put_by_id(*id, t, gen.value(host, metric, step))?;
            }
        }
    }

    let queries: Vec<Vec<Selector>> = (0..hosts)
        .map(|h| vec![Selector::exact("hostname", format!("host_{h}"))])
        .collect();
    // Warm-up so every measured run sees identical cache/table state.
    for sel in &queries {
        db.query(sel, 0, gen.end_ms())?;
    }

    let fanout_ns = |profile: &tu_core::profile::QueryProfile| {
        profile
            .stages
            .iter()
            .find(|s| s.name == "fanout")
            .map(|s| s.total_ns)
            .unwrap_or(0)
    };

    let reps: usize = if quick { 3 } else { 5 };
    let mut runs: Vec<Run> = Vec::new();
    for kind in KINDS {
        for threads in THREAD_SWEEP {
            db.set_query_threads(threads);

            // Baseline: materialize every sample, then fold. Best-of-reps
            // keeps scheduler noise out of the stage timing.
            let mut base_fanout = u64::MAX;
            let mut baseline_wall_ms = f64::MAX;
            let mut base_rows: Vec<(Labels, Vec<Sample>)> = Vec::new();
            for _ in 0..reps {
                let t0 = Instant::now();
                let mut fanout = 0u64;
                base_rows.clear();
                for sel in &queries {
                    let (res, profile) = db.query_profiled(sel, 0, gen.end_ms())?;
                    fanout += fanout_ns(&profile);
                    for s in res {
                        let agg = aggregate_step(kind, &s.samples, 0, gen.end_ms(), step_ms);
                        if !agg.is_empty() {
                            base_rows.push((s.labels, agg));
                        }
                    }
                }
                base_fanout = base_fanout.min(fanout);
                baseline_wall_ms = baseline_wall_ms.min(t0.elapsed().as_secs_f64() * 1e3);
            }

            // Pushdown: the same aggregate straight off chunk stats +
            // streaming decode.
            let mut push_fanout = u64::MAX;
            let mut pushdown_wall_ms = f64::MAX;
            let (mut chunks, mut meta, mut skipped) = (0u64, 0u64, 0u64);
            let mut push_rows: Vec<(Labels, Vec<Sample>)> = Vec::new();
            for rep in 0..reps {
                let t1 = Instant::now();
                let mut fanout = 0u64;
                push_rows.clear();
                for sel in &queries {
                    let (res, profile) =
                        db.query_aggregate_profiled(sel, kind, 0, gen.end_ms(), step_ms)?;
                    fanout += fanout_ns(&profile);
                    if rep == 0 {
                        let c = |name: &str| profile.counters.get(name).copied().unwrap_or(0);
                        chunks += c("core.query.agg.pushdown_chunks");
                        meta += c("core.query.agg.meta_answered");
                        skipped += c("core.query.agg.skipped_chunks");
                    }
                    push_rows.extend(res.into_iter().map(|s| (s.labels, s.samples)));
                }
                push_fanout = push_fanout.min(fanout);
                pushdown_wall_ms = pushdown_wall_ms.min(t1.elapsed().as_secs_f64() * 1e3);
            }

            let digest = digest_rows(&push_rows);
            assert_eq!(
                digest,
                digest_rows(&base_rows),
                "{kind:?} @ {threads} threads: pushdown diverged from reference fold"
            );

            let run = Run {
                kind,
                threads,
                baseline_fanout_ms: base_fanout as f64 / 1e6,
                pushdown_fanout_ms: push_fanout as f64 / 1e6,
                baseline_wall_ms,
                pushdown_wall_ms,
                pushdown_chunks: chunks,
                meta_answered: meta,
                skipped_chunks: skipped,
                series: push_rows.len(),
                windows: push_rows.iter().map(|(_, s)| s.len()).sum(),
                digest,
            };
            eprintln!(
                "{} @ {} threads: fanout {:.1}ms -> {:.1}ms ({:.1}x); {} meta-answered, {} skipped, {} decoded",
                kind.name(),
                threads,
                run.baseline_fanout_ms,
                run.pushdown_fanout_ms,
                run.baseline_fanout_ms / run.pushdown_fanout_ms.max(1e-9),
                meta,
                skipped,
                chunks
            );
            runs.push(run);
        }
    }

    // Bit-identity across thread counts, per kind.
    for kind in KINDS {
        let of_kind: Vec<&Run> = runs.iter().filter(|r| r.kind == kind).collect();
        for r in &of_kind[1..] {
            assert_eq!(
                r.digest, of_kind[0].digest,
                "{kind:?}: thread count {} changed the aggregate",
                r.threads
            );
        }
    }

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"agg_pushdown\",\n");
    json.push_str(&format!(
        "  \"workload\": {{\"hosts\": {hosts}, \"metrics_per_host\": {metrics}, \"interval_s\": {interval_s}, \"hours\": {hours}, \"total_samples\": {}, \"chunk_samples\": {chunk_samples}, \"step_ms\": {step_ms}}},\n",
        gen.total_samples()
    ));
    json.push_str("  \"digests_match\": true,\n");
    json.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"kind\": \"{}\", \"threads\": {}, \"baseline_fanout_ms\": {:.2}, \"pushdown_fanout_ms\": {:.2}, \"decode_speedup\": {:.2}, \"baseline_wall_ms\": {:.2}, \"pushdown_wall_ms\": {:.2}, \"pushdown_chunks\": {}, \"meta_answered\": {}, \"skipped_chunks\": {}, \"series\": {}, \"windows\": {}, \"digest\": \"{}\"}}{}\n",
            r.kind.name(),
            r.threads,
            r.baseline_fanout_ms,
            r.pushdown_fanout_ms,
            r.baseline_fanout_ms / r.pushdown_fanout_ms.max(1e-9),
            r.baseline_wall_ms,
            r.pushdown_wall_ms,
            r.pushdown_chunks,
            r.meta_answered,
            r.skipped_chunks,
            r.series,
            r.windows,
            r.digest,
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json)?;

    println!("{json}");
    for kind in KINDS {
        let r = runs
            .iter()
            .filter(|r| r.kind == kind)
            .max_by_key(|r| r.threads)
            .expect("sweep is non-empty");
        println!(
            "{} @ {} threads: select/decode stage {:.1}ms -> {:.1}ms ({:.1}x)",
            kind.name(),
            r.threads,
            r.baseline_fanout_ms,
            r.pushdown_fanout_ms,
            r.baseline_fanout_ms / r.pushdown_fanout_ms.max(1e-9)
        );
    }
    println!("report written to {out_path}");
    Ok(())
}
