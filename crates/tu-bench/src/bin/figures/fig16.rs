//! Figure 16: memory usage monitoring — average memory per engine across
//! series counts (16a) and a memory timeline over one run (16b), plus a
//! per-phase storage cost decomposition: each 16b phase (insert quartiles,
//! flush, query) runs under its own `tu-obs` trace context, so the table
//! attributes every tier's Get/Put requests and bytes to the phase that
//! caused them — the per-operation reading of the paper's Eq. 3–6 that
//! the Figure 16 monetary breakdown is built from.

use crate::Scale;
use tu_bench::report::Table;
use tu_bench::{
    build_engine, engine_clock, fresh_env, ingest_fast, ingest_grouped, BenchConfig, Engine,
};
use tu_common::alloc::fmt_bytes;
use tu_common::Result;
use tu_obs::{TraceContext, TraceSummary};
use tu_tsbs::devops::{DevOpsGenerator, DevOpsOptions};

/// One row of the per-phase cost decomposition: the `cloud.<tier>.*`
/// charges a phase's trace context collected.
fn cost_row(phase: &str, s: &TraceSummary) -> Vec<String> {
    let c = |name: &str| s.counter(name).to_string();
    vec![
        phase.to_string(),
        c("cloud.block.get_requests"),
        c("cloud.block.put_requests"),
        fmt_bytes(s.counter("cloud.block.bytes_written") as usize),
        c("cloud.object.get_requests"),
        c("cloud.object.put_requests"),
        fmt_bytes(s.counter("cloud.object.bytes_read") as usize),
    ]
}

pub fn run(scale: Scale) -> Result<()> {
    let dir = tempfile::tempdir()?;
    let cfg = BenchConfig::default();

    // --- 16a: average memory vs series count ------------------------------------
    let mut t = Table::new(
        "Figure 16a: memory vs series count",
        &["series", "tsdb", "TU", "TU-Group"],
    );
    for (si, &hosts) in scale.host_sweep.iter().enumerate() {
        let gen = DevOpsGenerator::new(DevOpsOptions {
            hosts,
            start_ms: 0,
            interval_ms: scale.interval_s * 1000,
            duration_ms: scale.hours * 3_600_000,
            seed: 16,
        });
        let mut cells = vec![format!("{}", hosts * 101)];
        for kind in ["tsdb", "TU", "TU-Group"] {
            let env = fresh_env(dir.path(), &format!("{kind}-m{si}"))?;
            let build_kind = if kind == "TU-Group" { "TU" } else { kind };
            let engine = build_engine(
                build_kind,
                &dir.path().join(format!("{kind}-m{si}-dir")),
                &cfg,
                env.clone(),
            )?;
            let clock = engine_clock(&engine, &env);
            if kind == "TU-Group" {
                if let Engine::TimeUnion(e) = &engine {
                    ingest_grouped(e, &gen, &clock)?;
                }
            } else {
                ingest_fast(&engine, &gen, &clock)?;
            }
            cells.push(fmt_bytes(engine.memory_bytes()));
        }
        t.row(cells);
    }
    t.print();
    println!("(paper: tsdb ~2.6x TU and ~3.6x TU-Group on average; tsdb hits the 16GB cap at 2.2M series while TU stays flat)");

    // --- 16b: memory timeline during insert -> flush -> query ---------------------
    let hosts = scale.host_sweep[1];
    let gen = DevOpsGenerator::new(DevOpsOptions {
        hosts,
        start_ms: 0,
        interval_ms: scale.interval_s * 1000,
        duration_ms: scale.hours * 3_600_000,
        seed: 61,
    });
    let mut t = Table::new(
        format!("Figure 16b: memory timeline ({} series)", hosts * 101),
        &["phase", "tsdb", "TU"],
    );
    let tsdb_env = fresh_env(dir.path(), "tl-tsdb")?;
    let tsdb = build_engine(
        "tsdb",
        &dir.path().join("tl-tsdb-dir"),
        &cfg,
        tsdb_env.clone(),
    )?;
    let tu_env = fresh_env(dir.path(), "tl-tu")?;
    let tu = build_engine("TU", &dir.path().join("tl-tu-dir"), &cfg, tu_env.clone())?;
    // Sample at quartiles of the insert phase, then after flush and query.
    let quarters = 4;
    let mut ids_tsdb: Vec<Vec<u64>> = Vec::new();
    let mut ids_tu: Vec<Vec<u64>> = Vec::new();
    for host in 0..hosts {
        ids_tsdb.push(
            (0..gen.metric_names().len())
                .map(|m| {
                    tsdb.put(
                        &gen.series_labels(host, m),
                        gen.ts_of(0),
                        gen.value(host, m, 0),
                    )
                    .unwrap()
                })
                .collect(),
        );
        ids_tu.push(
            (0..gen.metric_names().len())
                .map(|m| {
                    tu.put(
                        &gen.series_labels(host, m),
                        gen.ts_of(0),
                        gen.value(host, m, 0),
                    )
                    .unwrap()
                })
                .collect(),
        );
    }
    let steps = gen.steps();
    // Each phase runs under its own trace context so its storage charges
    // (TU's and tsdb's combined — both engines run inside the phase) can
    // be decomposed per phase below.
    let mut phases: Vec<(String, TraceSummary)> = Vec::new();
    for q in 0..quarters {
        let label = format!("insert {}%", (q + 1) * 100 / quarters);
        let ctx = TraceContext::start(label.clone());
        let lo = 1 + q * (steps - 1) / quarters;
        let hi = 1 + (q + 1) * (steps - 1) / quarters;
        for step in lo..hi {
            let ts = gen.ts_of(step);
            for host in 0..hosts {
                for m in 0..gen.metric_names().len() {
                    let v = gen.value(host, m, step);
                    tsdb.put_by_id(ids_tsdb[host][m], ts, v)?;
                    tu.put_by_id(ids_tu[host][m], ts, v)?;
                }
            }
        }
        phases.push((label.clone(), ctx.finish()));
        t.row(vec![
            label,
            fmt_bytes(tsdb.memory_bytes()),
            fmt_bytes(tu.memory_bytes()),
        ]);
    }
    let ctx = TraceContext::start("flush");
    tsdb.flush()?;
    tu.flush()?;
    phases.push(("flush".into(), ctx.finish()));
    t.row(vec![
        "after flush".into(),
        fmt_bytes(tsdb.memory_bytes()),
        fmt_bytes(tu.memory_bytes()),
    ]);
    let sel = vec![
        tu_index::Selector::exact("hostname", "host_0"),
        tu_index::Selector::regex("metric", "cpu_.*").unwrap(),
    ];
    let ctx = TraceContext::start("query");
    tsdb.query(&sel, 0, gen.end_ms())?;
    let tu_profile = match &tu {
        Engine::TimeUnion(e) => {
            let (_, profile) = e.query_profiled(&sel, 0, gen.end_ms())?;
            Some(profile)
        }
        _ => {
            tu.query(&sel, 0, gen.end_ms())?;
            None
        }
    };
    phases.push(("query".into(), ctx.finish()));
    t.row(vec![
        "after query".into(),
        fmt_bytes(tsdb.memory_bytes()),
        fmt_bytes(tu.memory_bytes()),
    ]);
    t.print();
    println!("(paper: tsdb climbs throughout insertion; TU stays ~flat because head chunks are file-backed and sealed chunks leave memory)");

    // --- 16b cost decomposition: which phase paid which tier ---------------------
    let mut t = Table::new(
        "Figure 16b: per-phase storage cost decomposition (both engines)",
        &[
            "phase",
            "blk gets",
            "blk puts",
            "blk written",
            "obj gets",
            "obj puts",
            "obj read",
        ],
    );
    for (label, summary) in &phases {
        t.row(cost_row(label, summary));
    }
    t.print();
    println!("(Eq. 3-6 denominated per phase: inserts charge the fast tier's log/arena Puts, flush pays object Puts, the query pays object Gets)");
    if let Some(profile) = tu_profile {
        println!("\nTU query cost profile (explain analyze):");
        print!("{profile}");
    }
    Ok(())
}
