//! Figure 13: end-to-end evaluation — TU (slow path) vs TU-fast vs
//! TU-Group vs the Cortex simulator: insertion throughput, the 5-1-24 and
//! 5-8-1 query latencies, and memory usage.

use crate::Scale;
use tu_bench::report::{fmt, fmt_rate, Table};
use tu_bench::{build_cortex, measure, BenchConfig};
use tu_cloud::cost::LatencyMode;
use tu_common::alloc::fmt_bytes;
use tu_common::{Labels, Result};
use tu_core::engine::TimeUnion;
use tu_tsbs::devops::{DevOpsGenerator, DevOpsOptions};
use tu_tsbs::queries::QueryPattern;

struct Row {
    name: &'static str,
    tput: f64,
    q5_1_24_ms: f64,
    q5_8_1_ms: f64,
    memory: usize,
}

pub fn run(scale: Scale) -> Result<()> {
    let dir = tempfile::tempdir()?;
    let cfg = BenchConfig::default();
    let gen = DevOpsGenerator::new(DevOpsOptions {
        hosts: scale.host_sweep[1],
        start_ms: 0,
        interval_ms: scale.interval_s * 1000,
        duration_ms: scale.hours * 3_600_000,
        seed: 13,
    });
    println!(
        "end-to-end workload: {} series, {} samples",
        gen.options().hosts * 101,
        gen.total_samples()
    );
    let mut rows = Vec::new();

    // --- TU: slow-path insertion (tags on every sample) ----------------------
    {
        let mut opts = cfg.tu_options();
        opts.latency = LatencyMode::Virtual;
        let db = TimeUnion::open(dir.path().join("tu-slow"), opts)?;
        let clock = db.storage().clock.clone();
        let (res, ingest) = measure(&clock, || -> Result<()> {
            for step in 0..gen.steps() {
                let t = gen.ts_of(step);
                for host in 0..gen.options().hosts {
                    for m in 0..gen.metric_names().len() {
                        db.put(&gen.series_labels(host, m), t, gen.value(host, m, step))?;
                    }
                }
            }
            Ok(())
        });
        res?;
        rows.push(finish("TU", db, ingest, &gen)?);
    }

    // --- TU-fast: ID-based fast path ------------------------------------------
    {
        let mut opts = cfg.tu_options();
        opts.latency = LatencyMode::Virtual;
        let db = TimeUnion::open(dir.path().join("tu-fast"), opts)?;
        let clock = db.storage().clock.clone();
        let (res, ingest) = measure(&clock, || -> Result<()> {
            let mut ids = Vec::new();
            for host in 0..gen.options().hosts {
                let row: Vec<u64> = (0..gen.metric_names().len())
                    .map(|m| {
                        db.put(
                            &gen.series_labels(host, m),
                            gen.ts_of(0),
                            gen.value(host, m, 0),
                        )
                        .unwrap()
                    })
                    .collect();
                ids.push(row);
            }
            for step in 1..gen.steps() {
                let t = gen.ts_of(step);
                for (host, row) in ids.iter().enumerate() {
                    for (m, id) in row.iter().enumerate() {
                        db.put_by_id(*id, t, gen.value(host, m, step))?;
                    }
                }
            }
            Ok(())
        });
        res?;
        rows.push(finish("TU-fast", db, ingest, &gen)?);
    }

    // --- TU-Group: grouped fast path -------------------------------------------
    {
        let mut opts = cfg.tu_options();
        opts.latency = LatencyMode::Virtual;
        let db = TimeUnion::open(dir.path().join("tu-group"), opts)?;
        let clock = db.storage().clock.clone();
        let member_tags: Vec<Labels> = gen
            .metric_names()
            .iter()
            .map(|m| Labels::from_pairs([("metric", m.as_str())]))
            .collect();
        let (res, ingest) = measure(&clock, || -> Result<()> {
            let mut handles = Vec::new();
            for host in 0..gen.options().hosts {
                handles.push(db.put_group(
                    &gen.host_labels(host),
                    &member_tags,
                    gen.ts_of(0),
                    &gen.host_row(host, 0),
                )?);
            }
            for step in 1..gen.steps() {
                let t = gen.ts_of(step);
                for (host, (gid, refs)) in handles.iter().enumerate() {
                    db.put_group_fast(*gid, refs, t, &gen.host_row(host, step))?;
                }
            }
            Ok(())
        });
        res?;
        rows.push(finish("TU-Group", db, ingest, &gen)?);
    }

    // --- Cortex simulator ----------------------------------------------------------
    {
        let cortex = build_cortex(dir.path(), &cfg)?;
        let clock = cortex.storage().clock.clone();
        let (res, ingest) = measure(&clock, || -> Result<()> {
            // Remote-write batches of 10,000 samples, like the paper.
            let mut batch = Vec::with_capacity(10_000);
            for step in 0..gen.steps() {
                let t = gen.ts_of(step);
                for host in 0..gen.options().hosts {
                    for m in 0..gen.metric_names().len() {
                        batch.push((gen.series_labels(host, m), t, gen.value(host, m, step)));
                        if batch.len() == 10_000 {
                            cortex.remote_write(&batch)?;
                            batch.clear();
                        }
                    }
                }
            }
            cortex.remote_write(&batch)
        });
        res?;
        let q24 = QueryPattern::P5x1x24.spec(&gen, 2);
        cortex.query(&q24.selectors, q24.start, q24.end)?;
        cortex.engine().clear_block_cache();
        let (_, m24) = measure(&clock, || cortex.query(&q24.selectors, q24.start, q24.end));
        let q81 = QueryPattern::P5x8x1.spec(&gen, 9);
        cortex.query(&q81.selectors, q81.start, q81.end)?;
        cortex.engine().clear_block_cache();
        let (_, m81) = measure(&clock, || cortex.query(&q81.selectors, q81.start, q81.end));
        rows.push(Row {
            name: "Cortex",
            tput: gen.total_samples() as f64 / ingest.total_secs(),
            q5_1_24_ms: m24.total_ms(),
            q5_8_1_ms: m81.total_ms(),
            memory: cortex.engine().memory().total(),
        });
    }

    let mut t = Table::new(
        "Figure 13: end-to-end comparison",
        &[
            "system",
            "insert tput",
            "5-1-24 (ms)",
            "5-8-1 (ms)",
            "memory",
        ],
    );
    for r in &rows {
        t.row(vec![
            r.name.to_string(),
            fmt_rate(r.tput),
            fmt(r.q5_1_24_ms),
            fmt(r.q5_8_1_ms),
            fmt_bytes(r.memory),
        ]);
    }
    t.print();
    println!(
        "(paper: TU > Cortex by ~27%, TU-fast ~6.6x TU, TU-Group ~2.9x TU-fast;\n\
         Cortex ~30x slower on 5-1-24 and ~2x on 5-8-1; Cortex memory ~2-3x TU)"
    );
    Ok(())
}

fn finish(
    name: &'static str,
    db: TimeUnion,
    ingest: tu_bench::Measured,
    gen: &DevOpsGenerator,
) -> Result<Row> {
    db.sync()?;
    let clock = db.storage().clock.clone();
    // Warm metadata, then measure with cold data blocks (see
    // tu_bench::measure_query for the rationale).
    let q24 = QueryPattern::P5x1x24.spec(gen, 2);
    db.query(&q24.selectors, q24.start, q24.end)?;
    db.clear_block_cache();
    let (r, m24) = measure(&clock, || db.query(&q24.selectors, q24.start, q24.end));
    r?;
    let q81 = QueryPattern::P5x8x1.spec(gen, 9);
    db.query(&q81.selectors, q81.start, q81.end)?;
    db.clear_block_cache();
    let (r, m81) = measure(&clock, || db.query(&q81.selectors, q81.start, q81.end));
    r?;
    Ok(Row {
        name,
        tput: gen.total_samples() as f64 / ingest.total_secs(),
        q5_1_24_ms: m24.total_ms(),
        q5_8_1_ms: m81.total_ms(),
        memory: db.memory_stats().total(),
    })
}
