//! Figure 3: resource usage of the Prometheus-tsdb architecture — memory
//! against series count (3a) and the breakdown into inverted index /
//! block metadata / data samples (3b).
//!
//! Matches the paper's setup: synthetic timeseries with 20 tags each
//! (high-cardinality tag pairs), not the DevOps set — cardinality is what
//! makes the nested-hash-map index expensive.

use crate::Scale;
use tu_bench::report::Table;
use tu_bench::BenchConfig;
use tu_cloud::cost::LatencyMode;
use tu_cloud::StorageEnv;
use tu_common::alloc::fmt_bytes;
use tu_common::{Labels, Result};
use tu_tsdb::Tsdb;

/// A series with 20 tags: 10 from small shared pools, 10 unique to the
/// series (high cardinality), as in production monitoring.
fn series_labels(i: usize) -> Labels {
    let mut pairs: Vec<(String, String)> = Vec::with_capacity(20);
    for j in 0..10 {
        pairs.push((format!("tag{j}"), format!("shared-{}", (i / 100 + j) % 20)));
    }
    for j in 10..20 {
        pairs.push((format!("tag{j}"), format!("value-{i}-{j}")));
    }
    Labels::from_pairs(pairs)
}

fn load_tsdb(
    dir: &std::path::Path,
    name: &str,
    series: usize,
    interval_s: i64,
    hours: i64,
) -> Result<Tsdb> {
    let env = StorageEnv::open(dir.join(name), LatencyMode::Off)?;
    let tsdb = Tsdb::open(env, BenchConfig::default().tsdb_options(true))?;
    let ids: Vec<u64> = (0..series)
        .map(|i| tsdb.put(&series_labels(i), 0, 0.0).unwrap())
        .collect();
    let steps = hours * 3600 / interval_s;
    for step in 1..steps {
        let t = step * interval_s * 1000;
        for (i, id) in ids.iter().enumerate() {
            tsdb.put_by_id(*id, t, (i as i64 + step) as f64)?;
        }
    }
    Ok(tsdb)
}

pub fn run(scale: Scale) -> Result<()> {
    let dir = tempfile::tempdir()?;
    let counts: Vec<usize> = scale.host_sweep.iter().map(|h| h * 101).collect();
    let mut t = Table::new(
        "Figure 3a: tsdb memory vs series count (20 tags per series)",
        &["series", "index only", "2h @10s", "2h @60s", "12h @60s"],
    );
    let spans: &[(&str, i64, i64)] = &[
        ("index", 60, 0), // a single sample each: index-dominated
        ("2h10s", 10, 2),
        ("2h60s", 60, 2),
        ("12h60s", 60, 12),
    ];
    for &n in &counts {
        let mut cells = vec![n.to_string()];
        for (tag, interval, hours) in spans {
            let tsdb = load_tsdb(dir.path(), &format!("tsdb-{n}-{tag}"), n, *interval, *hours)?;
            cells.push(fmt_bytes(tsdb.memory().total()));
        }
        t.row(cells);
    }
    t.print();
    println!("(shape check: linear in series count; paper: +51%/+31% for 10s/60s samples over index-only)");

    // Figure 3b: breakdown of the 12h @60s configuration.
    let tsdb = load_tsdb(
        dir.path(),
        "tsdb-breakdown",
        counts[counts.len() - 1],
        60,
        12,
    )?;
    let m = tsdb.memory();
    let total = m.total().max(1);
    let mut t = Table::new(
        "Figure 3b: tsdb memory breakdown (12h @60s)",
        &["component", "bytes", "share"],
    );
    for (name, v) in [
        ("inverted index (all partitions)", m.index_bytes),
        ("block metadata", m.block_meta_bytes),
        ("data samples", m.samples_bytes),
    ] {
        t.row(vec![
            name.to_string(),
            fmt_bytes(v),
            format!("{:.0}%", v as f64 / total as f64 * 100.0),
        ]);
    }
    t.print();
    println!("(paper: index 51%, block metadata 34%, samples 15%)");
    Ok(())
}
