//! Figure 1: cloud storage characteristics — pricing, write latency vs
//! size, and read latency vs size (first vs subsequent reads).

use tu_bench::report::{fmt, Table};
use tu_cloud::cost::{CostClock, LatencyMode, LatencyModel};
use tu_cloud::pricing;
use tu_cloud::StorageEnv;
use tu_common::Result;

/// Figure 1a: price per GB-month of RAM, block, and object storage.
pub fn fig1a() {
    let mut t = Table::new(
        "Figure 1a: storage pricing (USD per GB-month)",
        &["tier", "price", "vs object"],
    );
    let object = pricing::usd_per_gb_month(pricing::Tier::Object);
    for (_, label, price) in pricing::price_sheet() {
        t.row(vec![
            label.to_string(),
            format!("${price:.3}"),
            format!("{:.0}x", price / object),
        ]);
    }
    t.print();
}

const SIZES: &[usize] = &[
    4,
    256,
    4 << 10,
    16 << 10,
    64 << 10,
    1 << 20,
    8 << 20,
    32 << 20,
];

fn size_label(s: usize) -> String {
    if s >= 1 << 20 {
        format!("{}MiB", s >> 20)
    } else if s >= 1 << 10 {
        format!("{}KiB", s >> 10)
    } else {
        format!("{s}B")
    }
}

/// Figure 1b: write latency against write size, per tier.
pub fn fig1b() -> Result<()> {
    let dir = tempfile::tempdir()?;
    let env = StorageEnv::open(dir.path(), LatencyMode::Virtual)?;
    let mut t = Table::new(
        "Figure 1b: write latency vs size (modelled ms)",
        &["size", "EBS write", "S3 put", "gap"],
    );
    for &size in SIZES {
        let data = vec![7u8; size];
        let name = format!("w-{size}");
        let c0 = env.clock.virtual_ns();
        env.block.write_file(&name, &data)?;
        let ebs = env.clock.virtual_ns() - c0;
        let c0 = env.clock.virtual_ns();
        env.object.put(&name, &data)?;
        let s3 = env.clock.virtual_ns() - c0;
        t.row(vec![
            size_label(size),
            fmt(ebs as f64 / 1e6),
            fmt(s3 as f64 / 1e6),
            format!("{:.0}x", s3 as f64 / ebs as f64),
        ]);
    }
    t.print();
    println!("(shape check: ~3 orders of magnitude at small sizes, ~3x at 32 MiB)");
    Ok(())
}

/// Figure 1c: read latency against read size, first vs subsequent reads.
pub fn fig1c() -> Result<()> {
    let dir = tempfile::tempdir()?;
    let env = StorageEnv::open(dir.path(), LatencyMode::Virtual)?;
    let mut t = Table::new(
        "Figure 1c: read latency vs size (modelled ms)",
        &["size", "EBS 1st", "EBS next", "S3 1st", "S3 next", "S3/EBS"],
    );
    for &size in SIZES {
        let data = vec![3u8; size];
        let name = format!("r-{size}");
        env.block.write_file(&name, &data)?;
        env.object.put(&name, &data)?;
        let read = |first: bool| -> Result<(u64, u64)> {
            let _ = first;
            let c0 = env.clock.virtual_ns();
            env.block.read_file(&name)?;
            let ebs = env.clock.virtual_ns() - c0;
            let c0 = env.clock.virtual_ns();
            env.object.get(&name)?;
            Ok((ebs, env.clock.virtual_ns() - c0))
        };
        let (ebs1, s31) = read(true)?;
        let (ebs2, s32) = read(false)?;
        t.row(vec![
            size_label(size),
            fmt(ebs1 as f64 / 1e6),
            fmt(ebs2 as f64 / 1e6),
            fmt(s31 as f64 / 1e6),
            fmt(s32 as f64 / 1e6),
            format!("{:.0}x", s32 as f64 / ebs2 as f64),
        ]);
    }
    t.print();
    println!("(shape check: flat below 16 KiB; first reads slower; S3 ~30x EBS on average)");
    // Mirror the paper's calibration sentence with measured numbers.
    let m = LatencyModel::ebs();
    println!(
        "EBS first-read penalty: {:.2}x; S3 first-read penalty: {:.2}x",
        m.first_read_factor,
        LatencyModel::s3().first_read_factor
    );
    let _ = CostClock::new(LatencyMode::Off);
    Ok(())
}
