//! Table 3: persisted index and data sizes for tsdb, TU, and TU-Group.

use crate::Scale;
use tu_bench::report::Table;
use tu_bench::{
    build_engine, engine_clock, fresh_env, ingest_fast, ingest_grouped, BenchConfig, Engine,
};
use tu_common::alloc::fmt_bytes;
use tu_common::Result;
use tu_tsbs::devops::{DevOpsGenerator, DevOpsOptions};

pub fn run(scale: Scale) -> Result<()> {
    let dir = tempfile::tempdir()?;
    let cfg = BenchConfig::default();
    let gen = DevOpsGenerator::new(DevOpsOptions {
        hosts: scale.host_sweep[2],
        start_ms: 0,
        interval_ms: scale.interval_s * 1000,
        duration_ms: scale.hours * 3_600_000,
        seed: 33,
    });
    let mut t = Table::new(
        format!(
            "Table 3: index and data sizes ({} series, {}h @{}s)",
            gen.options().hosts * 101,
            scale.hours,
            scale.interval_s
        ),
        &["system", "index", "data"],
    );
    for kind in ["tsdb", "TU", "TU-Group"] {
        let env = fresh_env(dir.path(), &format!("t3-{kind}"))?;
        let build_kind = if kind == "TU-Group" { "TU" } else { kind };
        let engine = build_engine(
            build_kind,
            &dir.path().join(format!("t3-{kind}-dir")),
            &cfg,
            env.clone(),
        )?;
        let clock = engine_clock(&engine, &env);
        if kind == "TU-Group" {
            if let Engine::TimeUnion(e) = &engine {
                ingest_grouped(e, &gen, &clock)?;
            }
        } else {
            ingest_fast(&engine, &gen, &clock)?;
        }
        engine.flush()?;
        let (index, data) = match &engine {
            Engine::Tsdb(e) => e.disk_sizes(),
            Engine::TimeUnion(e) => {
                // Index: the trie's segment files + postings sidecar.
                e.sync()?;
                let index = dir_size(&e.dir().join("index"));
                let s = e.tree_stats();
                (index, s.fast_bytes + s.slow_bytes)
            }
            _ => unreachable!(),
        };
        t.row(vec![
            kind.to_string(),
            fmt_bytes(index as usize),
            fmt_bytes(data as usize),
        ]);
    }
    t.print();
    println!(
        "(paper, 2M series: index — tsdb 3.27 GB > TU 2.70 GB > TU-Group 2.20 GB;\n\
         data — tsdb 20.28 GB > TU 8.61 GB > TU-Group 2.42 GB)"
    );
    Ok(())
}

fn dir_size(path: &std::path::Path) -> u64 {
    let mut total = 0;
    let mut stack = vec![path.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let p = entry.path();
            if p.is_dir() {
                stack.push(p);
            } else if let Ok(meta) = entry.metadata() {
                total += meta.len();
            }
        }
    }
    total
}
