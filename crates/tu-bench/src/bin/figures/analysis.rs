//! Table 1 / Equations 1–6 (grouping analysis) and Equations 7–10
//! (compaction cost), each cross-checked against measured quantities from
//! the simulator.

use crate::Scale;
use tu_bench::report::{fmt, Table};
use tu_bench::{fresh_env, ingest_fast, ingest_grouped, BenchConfig, Engine};
use tu_common::alloc::fmt_bytes;
use tu_common::Result;
use tu_core::analysis::GroupingModel;
use tu_lsm::analysis::{CostModel, GB, MB};
use tu_tsbs::devops::{DevOpsGenerator, DevOpsOptions};

/// Equations 1–2 with the TSBS DevOps constants, validated against the
/// engine's measured index footprint with and without grouping.
pub fn grouping(scale: Scale) -> Result<()> {
    let mut t = Table::new(
        "Grouping analysis (Equations 1-2, TSBS DevOps constants)",
        &["series", "Cost_s1 (flat)", "Cost_s2 (grouped)", "saving"],
    );
    for n in [1e5, 1e6, 1e7] {
        let m = GroupingModel::tsbs_devops(n);
        let c1 = m.cost_without_grouping();
        let c2 = m.cost_with_grouping();
        t.row(vec![
            format!("{}", n as u64),
            fmt_bytes(c1 as usize),
            fmt_bytes(c2 as usize),
            format!("{:.0}%", (1.0 - c2 / c1) * 100.0),
        ]);
    }
    t.print();
    let m = GroupingModel::tsbs_devops(1e6);
    println!(
        "break-even S_g = {:.2} (DevOps groups have S_g = {:.0} -> grouping pays off)",
        m.break_even_group_size(),
        m.s_g
    );

    // Measured: ingest the same fleet flat and grouped, compare the index.
    let dir = tempfile::tempdir()?;
    let cfg = BenchConfig::default();
    let gen = DevOpsGenerator::new(DevOpsOptions {
        hosts: scale.host_sweep[1],
        start_ms: 0,
        interval_ms: 60_000,
        duration_ms: 3_600_000,
        seed: 9,
    });
    let flat_env = fresh_env(dir.path(), "flat")?;
    let flat = tu_bench::build_engine("TU", &dir.path().join("flat-dir"), &cfg, flat_env.clone())?;
    let clock = tu_bench::engine_clock(&flat, &flat_env);
    ingest_fast(&flat, &gen, &clock)?;
    let grouped_env = fresh_env(dir.path(), "grp")?;
    let grouped =
        tu_bench::build_engine("TU", &dir.path().join("grp-dir"), &cfg, grouped_env.clone())?;
    if let Engine::TimeUnion(e) = &grouped {
        let clock = tu_bench::engine_clock(&grouped, &grouped_env);
        ingest_grouped(e, &gen, &clock)?;
    }
    let (flat_pairs, flat_postings) = match &flat {
        Engine::TimeUnion(e) => {
            let m = e.memory_stats();
            let _ = m;
            (0u64, e.memory_stats().postings_bytes)
        }
        _ => unreachable!(),
    };
    let _ = flat_pairs;
    let grouped_postings = match &grouped {
        Engine::TimeUnion(e) => e.memory_stats().postings_bytes,
        _ => unreachable!(),
    };
    println!(
        "measured postings heap: flat {} vs grouped {} ({} hosts x 101 series)",
        fmt_bytes(flat_postings),
        fmt_bytes(grouped_postings),
        gen.options().hosts
    );
    Ok(())
}

/// Equations 7–10 plus a measured cross-check: the same chunk stream
/// through the time-partitioned tree and the classic leveled tree, with
/// slow-tier Put bytes compared against the closed forms' ordering.
pub fn compaction(scale: Scale) -> Result<()> {
    let mut t = Table::new(
        "Compaction cost model (Equations 7-10, Sb=64MB, M=10, Sfast=1GB)",
        &[
            "data",
            "L",
            "L_fast",
            "classic slow writes",
            "one-level",
            "saving",
        ],
    );
    for data_gb in [10.0, 100.0, 1000.0] {
        let m = CostModel {
            data_size: data_gb * GB,
            ..CostModel::paper_example()
        };
        t.row(vec![
            format!("{data_gb} GB"),
            fmt(m.total_levels()),
            fmt(m.fast_levels()),
            format!("{:.1} GB", m.traditional_slow_write_bytes() / GB),
            format!("{:.1} GB", m.single_level_slow_write_bytes() / GB),
            format!("{:.1} GB", m.saving_bytes() / GB),
        ]);
    }
    t.print();
    let example = CostModel::paper_example();
    println!(
        "paper example: save {:.1} GB (= 1000 x Sb = {:.0} MB)",
        example.saving_bytes() / GB,
        example.top_level_size / MB
    );

    // Measured: identical chunk streams through both trees; report bytes
    // PUT to the object store.
    let dir = tempfile::tempdir()?;
    let hosts = scale.host_sweep[0];
    let gen = DevOpsGenerator::new(DevOpsOptions {
        hosts,
        start_ms: 0,
        interval_ms: 30_000,
        duration_ms: scale.hours * 3_600_000,
        seed: 11,
    });
    let cfg = BenchConfig {
        memtable_bytes: 128 << 10,
        max_sstable_bytes: 128 << 10,
        ..BenchConfig::default()
    };

    let tt_env = fresh_env(dir.path(), "tt")?;
    let tt = tu_lsm::TimeTree::open(tt_env.clone(), cfg.tree_options())?;
    let lv_env = fresh_env(dir.path(), "lv")?;
    let lv = tu_lsm::LeveledTree::open(lv_env.clone(), cfg.leveled_options(1))?;
    // Feed both trees the identical pre-compressed chunk stream.
    let chunk_span = 32i64 * gen.options().interval_ms;
    for host in 0..hosts {
        for metric in 0..gen.metric_names().len() {
            let id = (host * 101 + metric) as u64;
            let mut step = 0i64;
            while step < gen.steps() {
                let samples: Vec<tu_common::Sample> = (step..(step + 32).min(gen.steps()))
                    .map(|s| tu_common::Sample::new(gen.ts_of(s), gen.value(host, metric, s)))
                    .collect();
                let chunk = tu_compress::gorilla::compress_chunk(&samples).unwrap();
                let t0 = samples[0].t;
                if tt.put(id, t0, chunk.clone()) {
                    tt.maintain()?;
                }
                if lv.put(id, t0, chunk) {
                    lv.maintain()?;
                }
                step += 32;
            }
        }
    }
    let _ = chunk_span;
    tt.flush_all_to_slow()?;
    lv.seal();
    lv.maintain()?;
    let tt_puts = tt_env.object.stats();
    let lv_puts = lv_env.object.stats();
    let mut t = Table::new(
        "Measured slow-tier traffic for the same chunk stream",
        &[
            "tree",
            "put requests",
            "bytes written",
            "get requests",
            "bytes read",
        ],
    );
    t.row(vec![
        "time-partitioned (1 slow level)".into(),
        tt_puts.put_requests.to_string(),
        fmt_bytes(tt_puts.bytes_written as usize),
        tt_puts.get_requests.to_string(),
        fmt_bytes(tt_puts.bytes_read as usize),
    ]);
    t.row(vec![
        "classic leveled (levels 1+ slow)".into(),
        lv_puts.put_requests.to_string(),
        fmt_bytes(lv_puts.bytes_written as usize),
        lv_puts.get_requests.to_string(),
        fmt_bytes(lv_puts.bytes_read as usize),
    ]);
    t.print();
    println!("(shape check: the classic tree rewrites slow data repeatedly and reads it back during compaction; the one-level tree writes each byte once and reads nothing back)");
    Ok(())
}
