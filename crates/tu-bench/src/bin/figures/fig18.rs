//! Figure 18: TimeUnion under different EBS usage constraints (18a) and
//! different out-of-order data volumes (18b).

use crate::Scale;
use tu_bench::report::{fmt, Table};
use tu_bench::{measure, BenchConfig};
use tu_cloud::cost::LatencyMode;
use tu_common::Result;
use tu_core::engine::TimeUnion;
use tu_tsbs::devops::{DevOpsGenerator, DevOpsOptions};
use tu_tsbs::ooo::late_samples;
use tu_tsbs::queries::QueryPattern;

fn ingest(db: &TimeUnion, gen: &DevOpsGenerator) -> Result<Vec<Vec<u64>>> {
    let mut ids = Vec::new();
    for host in 0..gen.options().hosts {
        ids.push(
            (0..gen.metric_names().len())
                .map(|m| {
                    db.put(
                        &gen.series_labels(host, m),
                        gen.ts_of(0),
                        gen.value(host, m, 0),
                    )
                    .unwrap()
                })
                .collect::<Vec<u64>>(),
        );
    }
    for step in 1..gen.steps() {
        let t = gen.ts_of(step);
        for (host, row) in ids.iter().enumerate() {
            for (m, id) in row.iter().enumerate() {
                db.put_by_id(*id, t, gen.value(host, m, step))?;
            }
        }
    }
    Ok(ids)
}

/// Figure 18a: sweep the fast-storage limit; report normalized insertion
/// throughput and query latencies.
pub fn run(scale: Scale) -> Result<()> {
    let dir = tempfile::tempdir()?;
    let cfg = BenchConfig::default();
    let gen = DevOpsGenerator::new(DevOpsOptions {
        hosts: scale.host_sweep[0],
        start_ms: 0,
        interval_ms: 10_000,
        duration_ms: scale.hours * 3_600_000,
        seed: 18,
    });

    let limits: &[(&str, u64)] = &[
        ("256KiB", 256 << 10),
        ("1MiB", 1 << 20),
        ("4MiB", 4 << 20),
        ("16MiB", 16 << 20),
    ];
    let mut t = Table::new(
        format!(
            "Figure 18a: different EBS limits ({} series, 10s interval)",
            gen.options().hosts * 101
        ),
        &[
            "EBS limit",
            "insert tput",
            "1-1-1 (ms)",
            "5-1-24 (ms)",
            "final R1 (min)",
            "fast bytes",
        ],
    );
    for (label, limit) in limits {
        let mut opts = cfg.tu_options();
        opts.latency = LatencyMode::Virtual;
        opts.tree.fast_limit_bytes = Some(*limit);
        opts.tree.partition_min_ms = 60_000; // let tiny limits bite
        let db = TimeUnion::open(dir.path().join(format!("lim-{label}")), opts)?;
        let clock = db.storage().clock.clone();
        let (res, ingest_m) = measure(&clock, || ingest(&db, &gen));
        res?;
        db.sync()?;
        let q1 = QueryPattern::P1x1x1.spec(&gen, 1);
        db.query(&q1.selectors, q1.start, q1.end)?;
        db.clear_block_cache();
        let (r, m1) = measure(&clock, || db.query(&q1.selectors, q1.start, q1.end));
        r?;
        let q24 = QueryPattern::P5x1x24.spec(&gen, 8);
        db.query(&q24.selectors, q24.start, q24.end)?;
        db.clear_block_cache();
        let (r, m24) = measure(&clock, || db.query(&q24.selectors, q24.start, q24.end));
        r?;
        let stats = db.tree_stats();
        t.row(vec![
            label.to_string(),
            tu_bench::report::fmt_rate(gen.total_samples() as f64 / ingest_m.total_secs()),
            fmt(m1.total_ms()),
            fmt(m24.total_ms()),
            fmt(stats.r1_ms as f64 / 60_000.0),
            tu_common::alloc::fmt_bytes(stats.fast_bytes as usize),
        ]);
    }
    t.print();
    println!(
        "(paper: insertion stays flat; short-range latency is worst at tiny limits,\n\
         dips, then creeps up as partitions lengthen; long-range latency falls as the limit grows)"
    );

    run_ooo(scale)
}

/// Figure 18b: different volumes of out-of-order data.
fn run_ooo(scale: Scale) -> Result<()> {
    let dir = tempfile::tempdir()?;
    let cfg = BenchConfig::default();
    let gen = DevOpsGenerator::new(DevOpsOptions {
        hosts: scale.host_sweep[0],
        start_ms: 0,
        interval_ms: 10_000,
        duration_ms: scale.hours * 3_600_000,
        seed: 81,
    });
    let mut t = Table::new(
        "Figure 18b: out-of-order data volumes",
        &[
            "volume",
            "ooo insert tput",
            "1-1-1 (ms)",
            "5-1-24 (ms)",
            "patches",
            "patch merges",
        ],
    );
    for fraction in [0.0, 0.05, 0.10, 0.20] {
        let mut opts = cfg.tu_options();
        opts.latency = LatencyMode::Virtual;
        let db = TimeUnion::open(
            dir.path()
                .join(format!("ooo-{}", (fraction * 100.0) as u32)),
            opts,
        )?;
        let clock = db.storage().clock.clone();
        let ids = ingest(&db, &gen)?;
        db.sync()?; // settle compactions; recent data stays on the fast tier
        let late: Vec<_> = late_samples(&gen, fraction, 182).collect();
        let (res, late_m) = measure(&clock, || -> Result<()> {
            for s in &late {
                db.put_by_id(ids[s.host][s.metric], s.t, s.v)?;
            }
            Ok(())
        });
        res?;
        db.sync()?; // settle compactions; recent data stays on the fast tier
        let q1 = QueryPattern::P1x1x1.spec(&gen, 1);
        db.query(&q1.selectors, q1.start, q1.end)?;
        db.clear_block_cache();
        let (r, m1) = measure(&clock, || db.query(&q1.selectors, q1.start, q1.end));
        r?;
        let q24 = QueryPattern::P5x1x24.spec(&gen, 8);
        db.query(&q24.selectors, q24.start, q24.end)?;
        db.clear_block_cache();
        let (r, m24) = measure(&clock, || db.query(&q24.selectors, q24.start, q24.end));
        r?;
        let stats = db.tree_stats();
        t.row(vec![
            format!("p{}", (fraction * 100.0) as u32),
            if late.is_empty() {
                "-".into()
            } else {
                tu_bench::report::fmt_rate(late.len() as f64 / late_m.total_secs().max(1e-9))
            },
            fmt(m1.total_ms()),
            fmt(m24.total_ms()),
            stats.patches_created.to_string(),
            stats.patch_merges.to_string(),
        ]);
    }
    t.print();
    println!(
        "(paper: insertion barely affected; short-range latency ~+3%;\n\
         long-range latency grows with the out-of-order volume as more S3 tables are read)"
    );
    Ok(())
}
