//! The figure/table reproduction harness: one subcommand per experiment
//! of the TimeUnion evaluation (see DESIGN.md §3 for the index).
//!
//! ```text
//! cargo run -p tu-bench --release --bin figures -- <experiment> [--quick]
//! cargo run -p tu-bench --release --bin figures -- all
//! ```
//!
//! Experiments: fig1a fig1b fig1c fig3 fig4 grouping-analysis
//! compaction-cost fig13 fig14 fig15 fig16 fig17 fig18 fig19 table3.
//!
//! Workloads are scaled down from the paper's (millions of series on AWS)
//! to laptop scale; EXPERIMENTS.md records paper-vs-measured shape checks.
//! `--quick` shrinks them further for smoke runs.
//!
//! Every run ends with a dump of the global metrics registry (request and
//! byte counters per tier, flush/compaction spans, cache hit rates — see
//! docs/OBSERVABILITY.md). `--metrics-json` emits it as JSON instead of
//! the aligned text table.

mod analysis;
mod fig1;
mod fig13;
mod fig14;
mod fig16;
mod fig18;
mod fig19;
mod fig3;
mod fig4;
mod table3;

use tu_common::Result;

/// Scale knobs shared by the experiments.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Host counts for the sweep experiments (each host = 101 series).
    pub host_sweep: [usize; 3],
    /// Time span for the standard DevOps runs (hours).
    pub hours: i64,
    /// Sample interval for standard runs (seconds).
    pub interval_s: i64,
    /// Time span for the "big timeseries" run (hours).
    pub big_hours: i64,
}

impl Scale {
    fn normal() -> Self {
        Scale {
            host_sweep: [5, 10, 20],
            hours: 6,
            interval_s: 30,
            big_hours: 4,
        }
    }

    fn quick() -> Self {
        Scale {
            host_sweep: [2, 4, 8],
            hours: 2,
            interval_s: 60,
            big_hours: 1,
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--metrics-json");
    let scale = if quick {
        Scale::quick()
    } else {
        Scale::normal()
    };
    let cmd = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .unwrap_or("all");
    if let Err(e) = run(cmd, scale) {
        eprintln!("experiment {cmd} failed: {e}");
        std::process::exit(1);
    }
    // Dump everything the instrumented crates recorded during the run:
    // cloud request/byte totals (the Equation 4/6 inputs), LSM flush and
    // compaction spans, cache hit rates, engine ingest/query counters. See
    // docs/OBSERVABILITY.md for the metric catalog.
    let snapshot = tu_obs::global().snapshot();
    if json {
        println!("\n{}", snapshot.to_json());
    } else {
        println!("\n-------------------- metrics --------------------");
        print!("{snapshot}");
    }
}

fn run(cmd: &str, scale: Scale) -> Result<()> {
    match cmd {
        "fig1a" => fig1::fig1a(),
        "fig1b" => fig1::fig1b()?,
        "fig1c" => fig1::fig1c()?,
        "fig3" => fig3::run(scale)?,
        "fig4" => fig4::run(scale)?,
        "grouping-analysis" => analysis::grouping(scale)?,
        "compaction-cost" => analysis::compaction(scale)?,
        "fig13" => fig13::run(scale)?,
        "fig14" => fig14::run(scale, fig14::Variant::Hybrid)?,
        "fig15" => fig14::run_big(scale)?,
        "fig16" => fig16::run(scale)?,
        "fig17" => fig14::run(scale, fig14::Variant::EbsOnly)?,
        "fig18" => fig18::run(scale)?,
        "fig19" => fig19::run(scale)?,
        "table3" => table3::run(scale)?,
        "all" => {
            for c in [
                "fig1a",
                "fig1b",
                "fig1c",
                "fig3",
                "fig4",
                "grouping-analysis",
                "compaction-cost",
                "fig13",
                "fig14",
                "fig15",
                "fig16",
                "fig17",
                "fig18",
                "fig19",
                "table3",
            ] {
                println!("\n==================== {c} ====================");
                run(c, scale)?;
            }
        }
        other => {
            eprintln!("unknown experiment: {other}");
            std::process::exit(2);
        }
    }
    Ok(())
}
