//! The figure/table reproduction harness: one subcommand per experiment
//! of the TimeUnion evaluation (see DESIGN.md §3 for the index).
//!
//! ```text
//! cargo run -p tu-bench --release --bin figures -- <experiment> [--quick]
//! cargo run -p tu-bench --release --bin figures -- all
//! ```
//!
//! Experiments: fig1a fig1b fig1c fig3 fig4 grouping-analysis
//! compaction-cost fig13 fig14 fig15 fig16 fig17 fig18 fig19 table3.
//!
//! Workloads are scaled down from the paper's (millions of series on AWS)
//! to laptop scale; EXPERIMENTS.md records paper-vs-measured shape checks.
//! `--quick` shrinks them further for smoke runs.
//!
//! Every run ends with a dump of the global metrics registry (request and
//! byte counters per tier, flush/compaction spans, cache hit rates — see
//! docs/OBSERVABILITY.md). `--metrics-json` emits it as JSON instead of
//! the aligned text table.
//!
//! Exporters (docs/OBSERVABILITY.md "Tracing & profiles"):
//! `--prom-out <path>` additionally writes the final snapshot in the
//! Prometheus text exposition format, and `--trace-out <path>` enables the
//! flight recorder for the whole run and writes the drained events as a
//! chrome://tracing `trace_event` JSON array.
//!
//! `--serve <addr>` exposes the process-wide registry live over HTTP for
//! the duration of the run (`/metrics`, `/vitals`, …) — experiments create
//! and drop many engines, so health is reported as always-ok and the
//! vitals monitor samples on wall-clock.

mod analysis;
mod fig1;
mod fig13;
mod fig14;
mod fig16;
mod fig18;
mod fig19;
mod fig3;
mod fig4;
mod table3;

use tu_common::Result;

/// Scale knobs shared by the experiments.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Host counts for the sweep experiments (each host = 101 series).
    pub host_sweep: [usize; 3],
    /// Time span for the standard DevOps runs (hours).
    pub hours: i64,
    /// Sample interval for standard runs (seconds).
    pub interval_s: i64,
    /// Time span for the "big timeseries" run (hours).
    pub big_hours: i64,
}

impl Scale {
    fn normal() -> Self {
        Scale {
            host_sweep: [5, 10, 20],
            hours: 6,
            interval_s: 30,
            big_hours: 4,
        }
    }

    fn quick() -> Self {
        Scale {
            host_sweep: [2, 4, 8],
            hours: 2,
            interval_s: 60,
            big_hours: 1,
        }
    }
}

/// Events the flight recorder buffers when `--trace-out` is given: big
/// enough that a normal figure run keeps every span, bounded so a long
/// `all` run degrades to "most recent window" instead of growing.
const FLIGHT_CAPACITY: usize = 1 << 16;

/// Parses `--flag value` / `--flag=value` flags plus the experiment name.
struct Args {
    quick: bool,
    json: bool,
    trace_out: Option<String>,
    prom_out: Option<String>,
    serve: Option<String>,
    cmd: String,
}

fn parse_args(args: &[String]) -> Args {
    let mut out = Args {
        quick: false,
        json: false,
        trace_out: None,
        prom_out: None,
        serve: None,
        cmd: "all".to_string(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value_of = |flag: &str| -> Option<String> {
            a.strip_prefix(&format!("{flag}="))
                .map(|v| v.to_string())
                .or_else(|| (a.as_str() == flag).then(|| it.next().cloned()).flatten())
        };
        if a == "--quick" {
            out.quick = true;
        } else if a == "--metrics-json" {
            out.json = true;
        } else if let Some(v) = value_of("--trace-out") {
            out.trace_out = Some(v);
        } else if let Some(v) = value_of("--prom-out") {
            out.prom_out = Some(v);
        } else if let Some(v) = value_of("--serve") {
            out.serve = Some(v);
        } else if !a.starts_with("--") {
            out.cmd = a.clone();
        } else {
            eprintln!("unknown flag: {a}");
            std::process::exit(2);
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let args = parse_args(&args);
    let scale = if args.quick {
        Scale::quick()
    } else {
        Scale::normal()
    };
    if args.trace_out.is_some() {
        tu_obs::flight().enable(FLIGHT_CAPACITY);
    }
    // A process-level live plane: experiments open and close many engines,
    // so the server carries always-ok health and a wall-clock monitor
    // rather than any single engine's state.
    let server = args.serve.as_ref().map(|addr| {
        let monitor = std::sync::Arc::new(tu_obs::Monitor::new(tu_obs::MonitorOptions::default()));
        monitor.start();
        let server = tu_obs::ObsServer::bind(
            addr.as_str(),
            tu_obs::ServeSources {
                health: std::sync::Arc::new(tu_obs::HealthReport::ok),
                monitor: Some(std::sync::Arc::clone(&monitor)),
                extra: Vec::new(),
            },
        )
        .unwrap_or_else(|e| {
            eprintln!("failed to bind {addr}: {e}");
            std::process::exit(1);
        });
        println!("live endpoints on http://{}", server.local_addr());
        (server, monitor)
    });
    if let Err(e) = run(&args.cmd, scale) {
        eprintln!("experiment {} failed: {e}", args.cmd);
        std::process::exit(1);
    }
    // Dump everything the instrumented crates recorded during the run:
    // cloud request/byte totals (the Equation 4/6 inputs), LSM flush and
    // compaction spans, cache hit rates, engine ingest/query counters. See
    // docs/OBSERVABILITY.md for the metric catalog.
    let snapshot = tu_obs::global().snapshot();
    if args.json {
        println!("\n{}", snapshot.to_json());
    } else {
        println!("\n-------------------- metrics --------------------");
        print!("{snapshot}");
    }
    if let Some(path) = &args.prom_out {
        let text = tu_obs::prometheus_text(&snapshot);
        // Round-trip through the format checker before writing, so a bad
        // exposition fails the run instead of the scrape.
        if let Err(e) = tu_obs::parse_prometheus_text(&text) {
            eprintln!("invalid prometheus exposition: {e}");
            std::process::exit(1);
        }
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("prometheus snapshot written to {path}");
    }
    if let Some(path) = &args.trace_out {
        let recorder = tu_obs::flight();
        let dropped = recorder.dropped();
        let events = recorder.drain();
        recorder.disable();
        if let Err(e) = std::fs::write(path, tu_obs::chrome_trace_json(&events)) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!(
            "chrome trace written to {path} ({} events, {dropped} dropped)",
            events.len()
        );
    }
    if let Some((server, monitor)) = server {
        server.shutdown();
        monitor.stop();
    }
}

fn run(cmd: &str, scale: Scale) -> Result<()> {
    match cmd {
        "fig1a" => fig1::fig1a(),
        "fig1b" => fig1::fig1b()?,
        "fig1c" => fig1::fig1c()?,
        "fig3" => fig3::run(scale)?,
        "fig4" => fig4::run(scale)?,
        "grouping-analysis" => analysis::grouping(scale)?,
        "compaction-cost" => analysis::compaction(scale)?,
        "fig13" => fig13::run(scale)?,
        "fig14" => fig14::run(scale, fig14::Variant::Hybrid)?,
        "fig15" => fig14::run_big(scale)?,
        "fig16" => fig16::run(scale)?,
        "fig17" => fig14::run(scale, fig14::Variant::EbsOnly)?,
        "fig18" => fig18::run(scale)?,
        "fig19" => fig19::run(scale)?,
        "table3" => table3::run(scale)?,
        "all" => {
            for c in [
                "fig1a",
                "fig1b",
                "fig1c",
                "fig3",
                "fig4",
                "grouping-analysis",
                "compaction-cost",
                "fig13",
                "fig14",
                "fig15",
                "fig16",
                "fig17",
                "fig18",
                "fig19",
                "table3",
            ] {
                println!("\n==================== {c} ====================");
                run(c, scale)?;
            }
        }
        other => {
            eprintln!("unknown experiment: {other}");
            std::process::exit(2);
        }
    }
    Ok(())
}
