//! Figure 19: the dynamic size control algorithm in action — partition
//! length and fast-storage usage over time as the sample density changes
//! (dense -> sparse -> dense), under a fixed EBS limit.

use crate::Scale;
use tu_bench::report::Table;
use tu_bench::BenchConfig;
use tu_cloud::cost::LatencyMode;
use tu_common::alloc::fmt_bytes;
use tu_common::Result;
use tu_core::engine::TimeUnion;
use tu_tsbs::devops::{DevOpsGenerator, DevOpsOptions};

pub fn run(scale: Scale) -> Result<()> {
    let dir = tempfile::tempdir()?;
    let cfg = BenchConfig::default();
    let limit: u64 = 384 << 10;
    let mut opts = cfg.tu_options();
    opts.latency = LatencyMode::Virtual;
    opts.tree.fast_limit_bytes = Some(limit);
    opts.tree.l0_partition_ms = 30 * 60_000; // paper: start at 30 minutes
    opts.tree.l2_partition_ms = 4 * 3_600_000; // data lingers on the fast tier
    opts.tree.partition_min_ms = 60_000;
    opts.tree.partition_max_ms = 4 * 3_600_000;
    let db = TimeUnion::open(dir.path().join("db"), opts)?;

    let hosts = scale.host_sweep[0];
    let phases: &[(&str, i64, i64)] = &[
        ("dense @10s", 10_000, scale.hours * 3_600_000),
        ("sparse @60s", 60_000, scale.hours * 3_600_000),
        ("dense @10s", 10_000, scale.hours * 3_600_000),
    ];
    let mut t = Table::new(
        format!(
            "Figure 19: dynamic size control ({} series, {} EBS limit)",
            hosts * 101,
            fmt_bytes(limit as usize)
        ),
        &[
            "phase",
            "progress",
            "R1 (min)",
            "R2 (min)",
            "EBS usage",
            "within limit",
        ],
    );
    let mut start_ms = 0i64;
    let mut ids: Option<Vec<Vec<u64>>> = None;
    for (label, interval, span) in phases {
        let gen = DevOpsGenerator::new(DevOpsOptions {
            hosts,
            start_ms,
            interval_ms: *interval,
            duration_ms: *span,
            seed: 19,
        });
        if ids.is_none() {
            let mut all = Vec::new();
            for host in 0..hosts {
                all.push(
                    (0..gen.metric_names().len())
                        .map(|m| {
                            db.put(
                                &gen.series_labels(host, m),
                                gen.ts_of(0),
                                gen.value(host, m, 0),
                            )
                            .unwrap()
                        })
                        .collect::<Vec<u64>>(),
                );
            }
            ids = Some(all);
        }
        let ids = ids.as_ref().expect("initialized above");
        let steps = gen.steps();
        let checkpoints = 3i64;
        for c in 0..checkpoints {
            let lo = 1 + c * (steps - 1) / checkpoints;
            let hi = 1 + (c + 1) * (steps - 1) / checkpoints;
            for step in lo..hi {
                let ts = gen.ts_of(step);
                for (host, row) in ids.iter().enumerate() {
                    for (m, id) in row.iter().enumerate() {
                        db.put_by_id(*id, ts, gen.value(host, m, step))?;
                    }
                }
            }
            db.sync()?; // runs maintenance incl. Algorithm 1
            let s = db.tree_stats();
            t.row(vec![
                label.to_string(),
                format!("{}%", (c + 1) * 100 / checkpoints),
                format!("{:.1}", s.r1_ms as f64 / 60_000.0),
                format!("{:.1}", s.r2_ms as f64 / 60_000.0),
                fmt_bytes(s.fast_bytes as usize),
                if s.fast_bytes <= limit * 2 {
                    "yes"
                } else {
                    "OVER"
                }
                .to_string(),
            ]);
        }
        start_ms += span;
    }
    t.print();
    println!(
        "(paper: the partition length halves under the dense phase, grows to 120 min\n\
         in the sparse phase, and shrinks again when density returns; EBS usage stays near the limit)"
    );
    Ok(())
}
