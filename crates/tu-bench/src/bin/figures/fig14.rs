//! Figures 14, 15, and 17: the storage-engine evaluation — insertion
//! throughput against series count plus the Table 2 query-pattern
//! latencies, for tsdb / tsdb-LDB / TU-LDB / TU / TU-Group.
//!
//! Figure 15 is the same harness with denser samples, a longer span, and
//! the extra `*-all` patterns; Figure 17 is the same harness with the
//! object tier swapped to block-storage latencies (EBS-only).

use crate::Scale;
use tu_bench::report::{fmt, fmt_rate, Table};
use tu_bench::{
    build_engine, engine_clock, ingest_fast, ingest_grouped, measure_query, BenchConfig, Engine,
};
use tu_cloud::cost::{LatencyMode, LatencyModel};
use tu_cloud::StorageEnv;
use tu_common::Result;
use tu_tsbs::devops::{DevOpsGenerator, DevOpsOptions};
use tu_tsbs::queries::QueryPattern;

#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Variant {
    /// EBS + S3 (Figure 14).
    Hybrid,
    /// Everything on EBS-class latency (Figure 17).
    EbsOnly,
}

const ENGINES: &[&str] = &["tsdb", "tsdb-LDB", "TU-LDB", "TU", "TU-Group"];

fn make_env(dir: &std::path::Path, name: &str, variant: Variant) -> Result<StorageEnv> {
    match variant {
        Variant::Hybrid => StorageEnv::open(dir.join(name), LatencyMode::Virtual),
        Variant::EbsOnly => StorageEnv::open_with_models(
            dir.join(name),
            LatencyMode::Virtual,
            LatencyModel::ebs(),
            LatencyModel::ebs(),
        ),
    }
}

fn build(
    kind: &str,
    dir: &std::path::Path,
    cfg: &BenchConfig,
    variant: Variant,
    tag: &str,
) -> Result<(Engine, StorageEnv)> {
    let env = make_env(dir, &format!("{kind}-{tag}"), variant)?;
    // "TU-Group" shares the TimeUnion engine; only ingestion differs.
    let build_kind = if kind == "TU-Group" { "TU" } else { kind };
    if build_kind == "TU" {
        // TimeUnion owns its storage environment; propagate the variant's
        // latency models (EBS-only swaps the slow tier's model).
        let mut opts = cfg.tu_options();
        opts.latency = LatencyMode::Virtual;
        if variant == Variant::EbsOnly {
            opts.object_model = LatencyModel::ebs();
        }
        let engine = Engine::TimeUnion(tu_core::engine::TimeUnion::open(
            dir.join(format!("{kind}-{tag}-dir")).join("tu"),
            opts,
        )?);
        return Ok((engine, env));
    }
    let engine = build_engine(
        build_kind,
        &dir.join(format!("{kind}-{tag}-dir")),
        cfg,
        env.clone(),
    )?;
    Ok((engine, env))
}

fn ingest(
    kind: &str,
    engine: &Engine,
    env: &StorageEnv,
    gen: &DevOpsGenerator,
) -> Result<tu_bench::Measured> {
    let clock = engine_clock(engine, env);
    if kind == "TU-Group" {
        if let Engine::TimeUnion(e) = engine {
            return ingest_grouped(e, gen, &clock);
        }
        unreachable!("TU-Group is a TimeUnion engine");
    }
    Ok(ingest_fast(engine, gen, &clock)?.1)
}

pub fn run(scale: Scale, variant: Variant) -> Result<()> {
    let dir = tempfile::tempdir()?;
    let cfg = BenchConfig::default();
    let (fig, patterns): (&str, &[QueryPattern]) = match variant {
        Variant::Hybrid => ("Figure 14", QueryPattern::table2()),
        Variant::EbsOnly => ("Figure 17", QueryPattern::table2()),
    };

    // --- insertion throughput sweep --------------------------------------------
    let mut t = Table::new(
        format!(
            "{fig}a: insertion throughput vs series count ({}h @{}s)",
            scale.hours, scale.interval_s
        ),
        &["series", "tsdb", "tsdb-LDB", "TU-LDB", "TU", "TU-Group"],
    );
    let mut kept: Vec<(String, Engine, StorageEnv, DevOpsGenerator)> = Vec::new();
    for (si, &hosts) in scale.host_sweep.iter().enumerate() {
        let gen = DevOpsGenerator::new(DevOpsOptions {
            hosts,
            start_ms: 0,
            interval_ms: scale.interval_s * 1000,
            duration_ms: scale.hours * 3_600_000,
            seed: 14,
        });
        let mut cells = vec![format!("{}", hosts * 101)];
        for kind in ENGINES {
            let tag = format!("s{si}");
            let (engine, env) = build(kind, dir.path(), &cfg, variant, &tag)?;
            let m = ingest(kind, &engine, &env, &gen)?;
            cells.push(fmt_rate(gen.total_samples() as f64 / m.total_secs()));
            // Keep the largest round's engines for the query phase.
            if si == scale.host_sweep.len() - 1 {
                kept.push((kind.to_string(), engine, env, gen.clone()));
            }
        }
        t.row(cells);
    }
    t.print();
    println!("(paper: TU ~25%/13% over tsdb/tsdb-LDB; TU-Group ~2.4x TU; TU-LDB slowest)");

    // --- query latencies on the largest round ------------------------------------
    let mut t = Table::new(
        format!("{fig}b-h: query latency (ms), largest round, after full flush"),
        &{
            let mut h = vec!["pattern"];
            h.extend(ENGINES);
            h
        },
    );
    for (_, engine, _, _) in &kept {
        engine.settle()?;
    }
    for (pi, pattern) in patterns.iter().enumerate() {
        let mut cells = vec![pattern.name().to_string()];
        for (_, engine, env, gen) in &kept {
            let clock = engine_clock(engine, env);
            // Distinct picks per pattern so one pattern's reads do not
            // pre-warm the next pattern's blocks.
            let spec = pattern.spec(gen, 3 + 7 * pi as u64);
            let (_, m) = measure_query(engine, &clock, &spec.selectors, spec.start, spec.end)?;
            cells.push(fmt(m.total_ms()));
        }
        t.row(cells);
    }
    t.print();
    match variant {
        Variant::Hybrid => println!(
            "(paper: recent patterns — TU ~30-40% under tsdb/tsdb-LDB, TU-LDB worst;\n\
             long-range 1-1-24/5-1-24 — TU orders of magnitude under tsdb; 5-1-24 favours TU-Group)"
        ),
        Variant::EbsOnly => println!(
            "(paper: recent patterns converge; 1-1-24/5-1-24 still favour TU ~5x/56%;\n\
             TU-LDB only ~19% behind TU because compaction on EBS is cheap)"
        ),
    }
    Ok(())
}

/// Figure 15: big DevOps timeseries (denser interval, longer span, plus
/// the 1-1-all and 5-1-all patterns).
pub fn run_big(scale: Scale) -> Result<()> {
    let dir = tempfile::tempdir()?;
    let cfg = BenchConfig::default();
    let gen = DevOpsGenerator::new(DevOpsOptions {
        hosts: scale.host_sweep[0],
        start_ms: 0,
        interval_ms: 10_000,
        duration_ms: scale.big_hours * 3_600_000,
        seed: 15,
    });
    println!(
        "big timeseries: {} series, 10s interval, {}h span, {} samples",
        gen.options().hosts * 101,
        scale.big_hours,
        gen.total_samples()
    );
    let mut ingest_row = vec!["insert tput".to_string()];
    let mut engines = Vec::new();
    for kind in ENGINES {
        let (engine, env) = build(kind, dir.path(), &cfg, Variant::Hybrid, "big")?;
        let m = ingest(kind, &engine, &env, &gen)?;
        ingest_row.push(fmt_rate(gen.total_samples() as f64 / m.total_secs()));
        engine.flush()?;
        engines.push((engine, env));
    }
    let mut t = Table::new("Figure 15: big DevOps timeseries", &{
        let mut h = vec!["metric"];
        h.extend(ENGINES);
        h
    });
    t.row(ingest_row);
    for (pi, pattern) in QueryPattern::all().iter().enumerate() {
        let mut cells = vec![format!("{} (ms)", pattern.name())];
        for (engine, env) in &engines {
            let clock = engine_clock(engine, env);
            let spec = pattern.spec(&gen, 1 + 5 * pi as u64);
            let (_, m) = measure_query(engine, &clock, &spec.selectors, spec.start, spec.end)?;
            cells.push(fmt(m.total_ms()));
        }
        t.row(cells);
    }
    t.print();
    println!(
        "(paper: TU ~21%/9% over tsdb/tsdb-LDB and ~12x over TU-LDB on insert;\n\
         1-1-all: tsdb 1000x, tsdb-LDB ~10x, TU-Group ~2x over TU; 5-1-all favours TU-Group)"
    );
    Ok(())
}
