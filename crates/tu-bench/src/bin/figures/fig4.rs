//! Figure 4: integrating a leveled LSM under the tsdb architecture
//! (tsdb-LDB vs plain tsdb) — insertion throughput, compaction time,
//! bytes written, and SSTables read per compaction.
//!
//! This is the paper's §2.4 *motivation* experiment, run on a local
//! machine — so both engines place all files on the fast tier here
//! (the cloud-placement comparison is Figures 13/14).

use crate::Scale;
use tu_bench::report::{fmt, fmt_rate, Table};
use tu_bench::{ingest_fast, measure, BenchConfig, Engine};
use tu_cloud::cost::LatencyMode;
use tu_cloud::StorageEnv;
use tu_common::alloc::fmt_bytes;
use tu_common::Result;
use tu_tsbs::devops::{DevOpsGenerator, DevOpsOptions};
use tu_tsdb::{Tsdb, TsdbLdb};

pub fn run(scale: Scale) -> Result<()> {
    let dir = tempfile::tempdir()?;
    let cfg = BenchConfig::default();
    let gen = DevOpsGenerator::new(DevOpsOptions {
        hosts: scale.host_sweep[1],
        start_ms: 0,
        interval_ms: 60_000,
        duration_ms: scale.hours * 2 * 3_600_000,
        seed: 4,
    });
    let mut t = Table::new(
        format!(
            "Figure 4: tsdb vs tsdb-LDB on local disk ({} series, {}h @60s)",
            gen.options().hosts * 101,
            scale.hours * 2
        ),
        &[
            "engine",
            "insert tput",
            "drain time",
            "bytes written",
            "compactions",
            "tables/compaction",
        ],
    );
    for kind in ["tsdb", "tsdb-LDB"] {
        let env = StorageEnv::open(dir.path().join(kind), LatencyMode::Virtual)?;
        let engine = match kind {
            // All files on the fast tier (local-disk setting).
            "tsdb" => Engine::Tsdb(Tsdb::open(env.clone(), cfg.tsdb_options(false))?),
            _ => Engine::TsdbLdb(TsdbLdb::open(env.clone(), cfg.chunk_samples, {
                let mut o = cfg.leveled_options(u8::MAX);
                o.l0_table_trigger = 2;
                o
            })?),
        };
        let clock = env.clock.clone();
        let (_ids, ingest) = ingest_fast(&engine, &gen, &clock)?;
        // "Time until all compactions finish" after the load stops.
        let (res, drain) = measure(&clock, || engine.flush());
        res?;
        let (bytes_written, compactions, tables_read) = match &engine {
            Engine::TsdbLdb(e) => {
                let s = e.lsm_stats();
                (s.bytes_written, s.compactions, s.compaction_tables_read)
            }
            Engine::Tsdb(_) => (env.block.stats().bytes_written, 0, 0),
            _ => unreachable!(),
        };
        t.row(vec![
            kind.to_string(),
            fmt_rate(gen.total_samples() as f64 / ingest.total_secs()),
            format!("{}s", fmt(drain.total_secs())),
            fmt_bytes(bytes_written as usize),
            compactions.to_string(),
            if compactions > 0 {
                fmt(tables_read as f64 / compactions as f64)
            } else {
                "-".into()
            },
        ]);
    }
    t.print();
    println!(
        "(paper: tsdb-LDB ingests within ~2% of tsdb, writes ~2% more bytes,\n\
         spends ~18% longer compacting, and reads >1 overlapping table per compaction)"
    );
    Ok(())
}
