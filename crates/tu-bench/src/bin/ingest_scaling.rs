//! Ingest-scaling benchmark: the same TSBS DevOps sample stream batched
//! through `TimeUnion::put_batch` at 1/2/4/8 ingest threads, reported as
//! `BENCH_ingest_scaling.json`.
//!
//! ```text
//! cargo run -p tu-bench --release --bin ingest_scaling [-- --quick] [--out PATH]
//! ```
//!
//! The engine runs under [`LatencyMode::Sleep`] so every modelled storage
//! latency is a *real* scaled sleep. That is the regime where parallel
//! ingest pays off the way it does on actual cloud storage: while one
//! writer leads a WAL group-commit wave (a durable fast-tier append), the
//! other workers keep encoding samples and queueing records, so the next
//! wave carries everything that accumulated — more threads means the same
//! records ride fewer fsyncs. The sweep measures exactly that: wall time
//! shrinks as `group_commit.fsyncs` collapses, while the per-run state
//! digest pins that every thread count produced the identical engine
//! state (same chunks, same bytes) as the sequential run.

use std::time::Instant;

use tu_cloud::cost::LatencyMode;
use tu_common::Result;
use tu_core::engine::{Options, TimeUnion};
use tu_lsm::TreeOptions;
use tu_tsbs::devops::{DevOpsGenerator, DevOpsOptions};

/// Real-sleep scale factor. The model's 120 µs EBS write is a raw request
/// without a durability flush; scaled 10× a group-commit wave costs
/// ~1.2 ms — what an fsync-backed append on network block storage costs —
/// which is the latency group commit exists to amortise.
const SLEEP_SCALE: f64 = 10.0;

const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Samples per `put_batch` call (per series: `BATCH_STEPS` consecutive
/// generator steps, all series in one batch).
const BATCH_STEPS: usize = 40;

struct Run {
    threads: usize,
    wall_ms: f64,
    samples_per_s: f64,
    batches: usize,
    samples: usize,
    gc_waves: u64,
    gc_records: u64,
    gc_fsyncs: u64,
    digest: String,
}

fn main() {
    if let Err(e) = run() {
        eprintln!("ingest_scaling failed: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
        .unwrap_or("BENCH_ingest_scaling.json")
        .to_string();

    let hosts = 4usize;
    let minutes: i64 = if quick { 6 } else { 60 };
    let interval_s: i64 = 10;
    let gen = DevOpsGenerator::new(DevOpsOptions {
        hosts,
        interval_ms: interval_s * 1000,
        duration_ms: minutes * 60_000,
        ..DevOpsOptions::default()
    });
    let metrics = gen.metric_names().len();

    let mut runs: Vec<Run> = Vec::new();
    for &threads in &THREAD_SWEEP {
        runs.push(run_once(&gen, threads)?);
        let r = runs.last().expect("just pushed");
        eprintln!(
            "threads={}: {:.0}ms for {} samples ({:.0} samples/s, {} fsyncs for {} records)",
            r.threads, r.wall_ms, r.samples, r.samples_per_s, r.gc_fsyncs, r.gc_records
        );
    }

    // The tentpole guarantee: thread count never changes the engine state.
    for r in &runs[1..] {
        assert_eq!(
            r.digest, runs[0].digest,
            "ingest width {} changed the engine state",
            r.threads
        );
    }

    let base_ms = runs[0].wall_ms;
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"ingest_scaling\",\n");
    json.push_str(&format!(
        "  \"workload\": {{\"hosts\": {hosts}, \"metrics_per_host\": {metrics}, \"interval_s\": {interval_s}, \"minutes\": {minutes}, \"total_samples\": {}, \"batch_steps\": {BATCH_STEPS}}},\n",
        gen.total_samples()
    ));
    json.push_str(&format!(
        "  \"latency\": {{\"mode\": \"sleep\", \"scale\": {SLEEP_SCALE}}},\n"
    ));
    json.push_str(&format!(
        "  \"state_digest\": \"{}\",\n  \"digests_match\": true,\n",
        runs[0].digest
    ));
    json.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"threads\": {}, \"wall_ms\": {:.1}, \"samples_per_s\": {:.0}, \"speedup\": {:.2}, \"batches\": {}, \"samples\": {}, \"group_commit_waves\": {}, \"group_commit_records\": {}, \"group_commit_fsyncs\": {}, \"state_digest\": \"{}\"}}{}\n",
            r.threads,
            r.wall_ms,
            r.samples_per_s,
            base_ms / r.wall_ms,
            r.batches,
            r.samples,
            r.gc_waves,
            r.gc_records,
            r.gc_fsyncs,
            r.digest,
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json)?;

    println!("{json}");
    let last = runs.last().expect("sweep is non-empty");
    println!(
        "speedup at {} threads: {:.2}x; fsyncs: {} -> {} for the same {} records",
        last.threads,
        base_ms / last.wall_ms,
        runs[0].gc_fsyncs,
        last.gc_fsyncs,
        last.gc_records
    );
    println!("report written to {out_path}");
    Ok(())
}

/// One fresh engine, the full generator stream batched at `threads`.
fn run_once(gen: &DevOpsGenerator, threads: usize) -> Result<Run> {
    let dir = tempfile::tempdir()?;
    let opts = Options {
        chunk_samples: 32,
        wal_batch_records: 64,
        index_slots_per_segment: 1 << 16,
        ingest_threads: threads,
        latency: LatencyMode::Sleep(SLEEP_SCALE),
        tree: TreeOptions {
            // Keep the memtable out of the measured window so the sweep
            // isolates the WAL/ingest path; flushing runs after the timer.
            memtable_bytes: 64 << 20,
            ..TreeOptions::default()
        },
        ..Options::default()
    };
    let db = TimeUnion::open(dir.path().join("tu"), opts)?;
    db.set_ingest_threads(threads);

    // Setup (unmeasured): create every series sequentially so IDs are
    // deterministic, seeding step 0.
    let metrics = gen.metric_names().len();
    let hosts = gen.options().hosts;
    let mut ids: Vec<Vec<u64>> = Vec::new();
    for host in 0..hosts {
        let mut row = Vec::with_capacity(metrics);
        for metric in 0..metrics {
            row.push(db.put(
                &gen.series_labels(host, metric),
                gen.ts_of(0),
                gen.value(host, metric, 0),
            )?);
        }
        ids.push(row);
    }
    db.sync_wal()?;

    // Measured: the remaining steps in multi-series batches. Each
    // `put_batch` returns only once its records are durable in the WAL.
    let waves0 = tu_obs::counter("lsm.wal.group_commit.batches").get();
    let recs0 = tu_obs::counter("lsm.wal.group_commit.records").get();
    let fsyncs0 = tu_obs::counter("lsm.wal.group_commit.fsyncs").get();
    let mut batches = 0usize;
    let mut samples = 0usize;
    let t = Instant::now();
    let steps = gen.steps();
    let mut step = 1i64;
    while step < steps {
        let upto = (step + BATCH_STEPS as i64).min(steps);
        let mut batch = Vec::with_capacity((upto - step) as usize * hosts * metrics);
        for (host, row) in ids.iter().enumerate() {
            for (metric, id) in row.iter().enumerate() {
                for s in step..upto {
                    batch.push((*id, gen.ts_of(s), gen.value(host, metric, s)));
                }
            }
        }
        samples += batch.len();
        batches += 1;
        db.put_batch(&batch)?;
        step = upto;
    }
    let wall_ms = t.elapsed().as_secs_f64() * 1e3;

    // Post-measurement: drain everything to the tree, then digest.
    db.flush_all()?;
    let digest = db.state_digest()?;
    Ok(Run {
        threads,
        wall_ms,
        samples_per_s: samples as f64 / (wall_ms / 1e3),
        batches,
        samples,
        gc_waves: tu_obs::counter("lsm.wal.group_commit.batches").get() - waves0,
        gc_records: tu_obs::counter("lsm.wal.group_commit.records").get() - recs0,
        gc_fsyncs: tu_obs::counter("lsm.wal.group_commit.fsyncs").get() - fsyncs0,
        digest,
    })
}
