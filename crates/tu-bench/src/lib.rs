//! Shared harness for the figure/table reproduction binary and the
//! criterion micro-benchmarks.
//!
//! ## Time accounting
//!
//! Experiments run with [`LatencyMode::Virtual`]: storage operations do
//! not sleep, they *charge* modelled nanoseconds on the environment's
//! [`CostClock`]. A measured quantity is therefore reported as
//! `wall-clock CPU time + modelled storage time`, which is deterministic
//! run-to-run and preserves the paper's cost ordering between fast and
//! slow tiers (see DESIGN.md §1).

use std::time::{Duration, Instant};

use tu_cloud::cost::{CostClock, LatencyMode};
use tu_cloud::StorageEnv;
use tu_common::{Labels, Result};
use tu_core::engine::{Options, TimeUnion};
use tu_lsm::leveled::LeveledOptions;
use tu_lsm::TreeOptions;
use tu_tsbs::devops::DevOpsGenerator;
use tu_tsdb::cortex::{CortexCosts, CortexSim};
use tu_tsdb::{Tsdb, TsdbLdb, TsdbOptions, TuLdb};

pub mod report;

/// Wall + modelled time of one measured section.
#[derive(Debug, Clone, Copy, Default)]
pub struct Measured {
    pub wall: Duration,
    pub storage_ns: u64,
}

impl Measured {
    /// Combined modelled duration.
    pub fn total(&self) -> Duration {
        self.wall + Duration::from_nanos(self.storage_ns)
    }

    pub fn total_secs(&self) -> f64 {
        self.total().as_secs_f64()
    }

    pub fn total_ms(&self) -> f64 {
        self.total_secs() * 1e3
    }
}

/// Runs `f`, measuring wall time plus storage time charged on `clock`.
pub fn measure<R>(clock: &CostClock, f: impl FnOnce() -> R) -> (R, Measured) {
    let v0 = clock.virtual_ns();
    let t0 = Instant::now();
    let out = f();
    let m = Measured {
        wall: t0.elapsed(),
        storage_ns: clock.virtual_ns() - v0,
    };
    (out, m)
}

/// Bench-scaled engine configurations, shared by every experiment so the
/// engines face identical storage parameters.
pub struct BenchConfig {
    pub chunk_samples: usize,
    pub memtable_bytes: usize,
    pub max_sstable_bytes: usize,
    pub block_cache_bytes: usize,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            chunk_samples: 32,
            memtable_bytes: 1 << 20,
            max_sstable_bytes: 1 << 20,
            block_cache_bytes: 32 << 20,
        }
    }
}

impl BenchConfig {
    pub fn tree_options(&self) -> TreeOptions {
        TreeOptions {
            memtable_bytes: self.memtable_bytes,
            max_sstable_bytes: self.max_sstable_bytes,
            block_cache_bytes: self.block_cache_bytes,
            ..TreeOptions::default()
        }
    }

    pub fn leveled_options(&self, slow_level_start: u8) -> LeveledOptions {
        LeveledOptions {
            memtable_bytes: self.memtable_bytes,
            max_sstable_bytes: self.max_sstable_bytes,
            block_cache_bytes: self.block_cache_bytes,
            base_level_bytes: (self.memtable_bytes * 4) as u64,
            slow_level_start,
            ..LeveledOptions::default()
        }
    }

    pub fn tu_options(&self) -> Options {
        Options {
            chunk_samples: self.chunk_samples,
            index_slots_per_segment: 1 << 16,
            tree: self.tree_options(),
            latency: LatencyMode::Virtual,
            ..Options::default()
        }
    }

    pub fn tsdb_options(&self, slow: bool) -> TsdbOptions {
        TsdbOptions {
            chunk_samples: 120,
            slow_storage: slow,
            chunk_cache_bytes: self.block_cache_bytes,
            ..TsdbOptions::default()
        }
    }
}

/// The engines of the storage-engine evaluation (§4.3).
pub enum Engine {
    TimeUnion(TimeUnion),
    TuLdb(TuLdb),
    Tsdb(Tsdb),
    TsdbLdb(TsdbLdb),
}

impl Engine {
    pub fn name(&self) -> &'static str {
        match self {
            Engine::TimeUnion(_) => "TU",
            Engine::TuLdb(_) => "TU-LDB",
            Engine::Tsdb(_) => "tsdb",
            Engine::TsdbLdb(_) => "tsdb-LDB",
        }
    }

    pub fn put(&self, labels: &Labels, t: i64, v: f64) -> Result<u64> {
        match self {
            Engine::TimeUnion(e) => e.put(labels, t, v),
            Engine::TuLdb(e) => e.put(labels, t, v),
            Engine::Tsdb(e) => e.put(labels, t, v),
            Engine::TsdbLdb(e) => e.put(labels, t, v),
        }
    }

    pub fn put_by_id(&self, id: u64, t: i64, v: f64) -> Result<()> {
        match self {
            Engine::TimeUnion(e) => e.put_by_id(id, t, v),
            Engine::TuLdb(e) => e.put_by_id(id, t, v),
            Engine::Tsdb(e) => e.put_by_id(id, t, v),
            Engine::TsdbLdb(e) => e.put_by_id(id, t, v),
        }
    }

    /// Returns the number of matched series and total samples.
    pub fn query(
        &self,
        selectors: &[tu_index::Selector],
        start: i64,
        end: i64,
    ) -> Result<(usize, usize)> {
        Ok(match self {
            Engine::TimeUnion(e) => {
                let r = e.query(selectors, start, end)?;
                (r.len(), r.iter().map(|s| s.samples.len()).sum())
            }
            Engine::TuLdb(e) => {
                let r = e.query(selectors, start, end)?;
                (r.len(), r.iter().map(|(_, s)| s.len()).sum())
            }
            Engine::Tsdb(e) => {
                let r = e.query(selectors, start, end)?;
                (r.len(), r.iter().map(|(_, s)| s.len()).sum())
            }
            Engine::TsdbLdb(e) => {
                let r = e.query(selectors, start, end)?;
                (r.len(), r.iter().map(|(_, s)| s.len()).sum())
            }
        })
    }

    /// Finishes background work (compactions) without sealing in-memory
    /// heads — the natural steady state the paper's §4.3 queries run
    /// against (recent data in memory/fast tier, old data on S3).
    pub fn settle(&self) -> Result<()> {
        match self {
            Engine::TimeUnion(e) => e.maintain(),
            Engine::TuLdb(e) => e.settle(),
            Engine::Tsdb(_) => Ok(()),
            Engine::TsdbLdb(e) => e.settle(),
        }
    }

    /// Drains all pending data to its terminal tier (the paper queries
    /// "after all pending samples are flushed" for Figure 15).
    pub fn flush(&self) -> Result<()> {
        match self {
            Engine::TimeUnion(e) => e.flush_all(),
            Engine::TuLdb(e) => e.flush_all(),
            Engine::Tsdb(e) => e.flush_head(),
            Engine::TsdbLdb(e) => e.flush_all(),
        }
    }

    /// Drops cached data blocks across the engine (keeps table handles
    /// and index metadata warm).
    pub fn clear_block_caches(&self) {
        match self {
            Engine::TimeUnion(e) => e.clear_block_cache(),
            Engine::TuLdb(e) => e.clear_block_cache(),
            Engine::Tsdb(e) => e.clear_block_cache(),
            Engine::TsdbLdb(e) => e.clear_block_cache(),
        }
    }

    /// Structural memory estimate in bytes.
    pub fn memory_bytes(&self) -> usize {
        match self {
            Engine::TimeUnion(e) => e.memory_stats().total(),
            Engine::TuLdb(e) => e.memory_bytes(),
            Engine::Tsdb(e) => e.memory().total(),
            Engine::TsdbLdb(e) => e.memory_bytes(),
        }
    }
}

/// Measures one query with warm metadata but cold data blocks: a warm-up
/// run populates table handles and indexes, then data-block caches are
/// cleared so the measured run pays exactly the per-block storage reads of
/// Equations 3-6 (the regime the paper operates in, where data is far
/// larger than the 1 GiB cache).
pub fn measure_query(
    engine: &Engine,
    clock: &CostClock,
    selectors: &[tu_index::Selector],
    start: i64,
    end: i64,
) -> Result<((usize, usize), Measured)> {
    engine.query(selectors, start, end)?; // warm metadata
    engine.clear_block_caches();
    let (r, m) = measure(clock, || engine.query(selectors, start, end));
    Ok((r?, m))
}

/// Builds one engine over a fresh storage environment under `dir`.
pub fn build_engine(
    kind: &str,
    dir: &std::path::Path,
    cfg: &BenchConfig,
    env: StorageEnv,
) -> Result<Engine> {
    Ok(match kind {
        "TU" => {
            // TimeUnion owns its storage environment; mirror the caller's
            // latency mode so costs are comparable.
            let mut opts = cfg.tu_options();
            opts.latency = env.clock.mode();
            Engine::TimeUnion(TimeUnion::open(dir.join("tu"), opts)?)
        }
        "TU-LDB" => Engine::TuLdb(TuLdb::open(
            dir.join("tuldb-mem"),
            env,
            cfg.chunk_samples,
            64 << 20,
            cfg.leveled_options(2),
        )?),
        "tsdb" => Engine::Tsdb(Tsdb::open(env, cfg.tsdb_options(true))?),
        "tsdb-LDB" => Engine::TsdbLdb(TsdbLdb::open(
            env,
            cfg.chunk_samples,
            cfg.leveled_options(0),
        )?),
        other => return Err(tu_common::Error::invalid(format!("unknown engine {other}"))),
    })
}

/// The cost clock an engine charges (TimeUnion owns its own env).
pub fn engine_clock(engine: &Engine, env: &StorageEnv) -> CostClock {
    match engine {
        Engine::TimeUnion(e) => e.storage().clock.clone(),
        _ => env.clock.clone(),
    }
}

/// Ingests the DevOps workload via the fast path. Returns ids and the
/// measured ingest cost.
pub fn ingest_fast(
    engine: &Engine,
    gen: &DevOpsGenerator,
    clock: &CostClock,
) -> Result<(Vec<Vec<u64>>, Measured)> {
    let mut ids: Vec<Vec<u64>> = Vec::new();
    let (res, m) = measure(clock, || -> Result<()> {
        for host in 0..gen.options().hosts {
            let mut row = Vec::with_capacity(gen.metric_names().len());
            for metric in 0..gen.metric_names().len() {
                row.push(engine.put(
                    &gen.series_labels(host, metric),
                    gen.ts_of(0),
                    gen.value(host, metric, 0),
                )?);
            }
            ids.push(row);
        }
        for step in 1..gen.steps() {
            let t = gen.ts_of(step);
            for (host, row) in ids.iter().enumerate() {
                for (metric, id) in row.iter().enumerate() {
                    engine.put_by_id(*id, t, gen.value(host, metric, step))?;
                }
            }
        }
        Ok(())
    });
    res?;
    Ok((ids, m))
}

/// Ingests the DevOps workload into TimeUnion in group mode (one group
/// per host, the paper's TU-Group configuration).
pub fn ingest_grouped(
    engine: &TimeUnion,
    gen: &DevOpsGenerator,
    clock: &CostClock,
) -> Result<Measured> {
    let member_tags: Vec<Labels> = gen
        .metric_names()
        .iter()
        .map(|m| Labels::from_pairs([("metric", m.as_str())]))
        .collect();
    let (res, m) = measure(clock, || -> Result<()> {
        let mut handles = Vec::new();
        for host in 0..gen.options().hosts {
            handles.push(engine.put_group(
                &gen.host_labels(host),
                &member_tags,
                gen.ts_of(0),
                &gen.host_row(host, 0),
            )?);
        }
        for step in 1..gen.steps() {
            let t = gen.ts_of(step);
            for (host, (gid, refs)) in handles.iter().enumerate() {
                engine.put_group_fast(*gid, refs, t, &gen.host_row(host, step))?;
            }
        }
        Ok(())
    });
    res?;
    Ok(m)
}

/// Convenience: a fresh virtual-latency environment under `dir/name`.
pub fn fresh_env(dir: &std::path::Path, name: &str) -> Result<StorageEnv> {
    StorageEnv::open(dir.join(name), LatencyMode::Virtual)
}

/// A Cortex simulator over a fresh environment.
pub fn build_cortex(dir: &std::path::Path, cfg: &BenchConfig) -> Result<CortexSim> {
    let env = StorageEnv::open(dir.join("cortex"), LatencyMode::Virtual)?;
    CortexSim::open(env, cfg.tsdb_options(true), CortexCosts::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tu_tsbs::devops::DevOpsOptions;

    #[test]
    fn measure_captures_storage_charges() {
        let clock = CostClock::new(LatencyMode::Virtual);
        let (v, m) = measure(&clock, || {
            clock.charge(5_000_000);
            42
        });
        assert_eq!(v, 42);
        assert_eq!(m.storage_ns, 5_000_000);
        assert!(m.total() >= Duration::from_millis(5));
    }

    #[test]
    fn engines_build_and_ingest() {
        let dir = tempfile::tempdir().unwrap();
        let cfg = BenchConfig::default();
        let gen = DevOpsGenerator::new(DevOpsOptions {
            hosts: 2,
            duration_ms: 600_000,
            ..DevOpsOptions::default()
        });
        for kind in ["TU", "TU-LDB", "tsdb", "tsdb-LDB"] {
            let env = fresh_env(dir.path(), kind).unwrap();
            let engine = build_engine(kind, dir.path(), &cfg, env.clone()).unwrap();
            let clock = engine_clock(&engine, &env);
            let (_ids, m) = ingest_fast(&engine, &gen, &clock).unwrap();
            assert!(m.total() > Duration::ZERO, "{kind}");
            engine.flush().unwrap();
            let sel = vec![
                tu_index::Selector::exact("hostname", "host_0"),
                tu_index::Selector::exact("metric", gen.metric_names()[0].clone()),
            ];
            let (series, samples) = engine.query(&sel, 0, gen.end_ms()).unwrap();
            assert_eq!(series, 1, "{kind}");
            assert_eq!(samples as i64, gen.steps(), "{kind}");
            assert!(engine.memory_bytes() > 0, "{kind}");
        }
    }
}
