//! Timeseries codecs for TimeUnion.
//!
//! * [`bitstream`] — bit-granular writer/reader the chunk codecs build on.
//! * [`gorilla`] — Facebook Gorilla compression (delta-of-delta timestamps,
//!   XOR'd float values) for individual-timeseries chunks (§2.2).
//! * [`nullxor`] — the paper's extension of Gorilla XOR with an extra
//!   control bit for NULL values, used by group value columns, plus the
//!   group chunk format with one shared timestamp column (§3.1, Figure 7).
//! * [`snappy`] — a from-scratch implementation of the Snappy block format
//!   used to compress SSTable data blocks (Table 3 attributes part of
//!   TimeUnion's data-size win to it).
//! * [`crc`] — CRC32C checksums guarding every persisted block.
//! * [`agg`] — aggregation pushdown primitives: the shared [`agg::AggState`]
//!   fold, the per-chunk [`agg::ChunkStats`] footer, and the versioned
//!   stats envelope framing sealed chunks.

pub mod agg;
pub mod bitstream;
pub mod crc;
pub mod gorilla;
pub mod nullxor;
pub mod snappy;
