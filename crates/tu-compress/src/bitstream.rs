//! Bit-granular writer and reader.
//!
//! Bits are packed most-significant-bit first within each byte, matching
//! the layout used by the Gorilla paper and the Prometheus XOR chunk.

use tu_common::{Error, Result};

/// Appends bits to a growable byte buffer.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Number of valid bits in the final byte (0 means byte-aligned).
    tail_bits: u8,
}

impl BitWriter {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(bytes: usize) -> Self {
        BitWriter {
            buf: Vec::with_capacity(bytes),
            tail_bits: 0,
        }
    }

    /// Total bits written so far.
    pub fn len_bits(&self) -> usize {
        if self.tail_bits == 0 {
            self.buf.len() * 8
        } else {
            (self.buf.len() - 1) * 8 + self.tail_bits as usize
        }
    }

    /// Writes a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        if self.tail_bits == 0 {
            self.buf.push(0);
            self.tail_bits = 0;
        }
        let last = self.buf.last_mut().expect("pushed above or existing");
        if bit {
            *last |= 1 << (7 - self.tail_bits);
        }
        self.tail_bits = (self.tail_bits + 1) % 8;
    }

    /// Writes the low `n` bits of `value`, most significant first.
    #[inline]
    pub fn write_bits(&mut self, value: u64, n: u8) {
        debug_assert!(n <= 64);
        for i in (0..n).rev() {
            self.write_bit((value >> i) & 1 == 1);
        }
    }

    /// Consumes the writer, returning the packed bytes (final byte padded
    /// with zero bits).
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Borrowed view of the bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }
}

/// Reads bits from a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    /// Next bit to read, as an absolute bit index.
    pos: usize,
}

impl<'a> BitReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        BitReader { buf, pos: 0 }
    }

    /// Bits remaining in the stream (including padding bits of the final
    /// byte — framing is the caller's job, via sample counts).
    pub fn remaining_bits(&self) -> usize {
        self.buf.len() * 8 - self.pos
    }

    /// Reads one bit.
    #[inline]
    pub fn read_bit(&mut self) -> Result<bool> {
        let byte = self.pos / 8;
        if byte >= self.buf.len() {
            return Err(Error::corruption("bitstream exhausted"));
        }
        let bit = (self.buf[byte] >> (7 - (self.pos % 8))) & 1;
        self.pos += 1;
        Ok(bit == 1)
    }

    /// Reads `n` bits into the low bits of a u64, most significant first.
    ///
    /// One bounds check up front covers the whole read, and bits are
    /// extracted a byte at a time instead of via `n` `read_bit` calls —
    /// this is the decode hot loop for every codec in the crate.
    #[inline]
    pub fn read_bits(&mut self, n: u8) -> Result<u64> {
        debug_assert!(n <= 64);
        let mut pos = self.pos;
        let mut left = n as usize;
        if pos + left > self.buf.len() * 8 {
            return Err(Error::corruption("bitstream exhausted"));
        }
        let byte = pos / 8;
        let off = pos % 8;
        // Fast path: one unaligned big-endian word load covers any read
        // of up to 56 bits at any bit offset (off + n <= 63).
        if left >= 1 && left <= 56 && byte + 8 <= self.buf.len() {
            let word = u64::from_be_bytes(self.buf[byte..byte + 8].try_into().expect("8 bytes"));
            self.pos = pos + left;
            return Ok((word << off) >> (64 - left));
        }
        let mut out = 0u64;
        while left > 0 {
            let bit_off = pos % 8;
            let take = (8 - bit_off).min(left);
            // Shift consumed high bits out, then keep the top `take` bits.
            let chunk = (self.buf[pos / 8] << bit_off) >> (8 - take);
            out = (out << take) | u64::from(chunk);
            pos += take;
            left -= take;
        }
        self.pos = pos;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_bits_round_trip() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, false, true, true];
        for &b in &pattern {
            w.write_bit(b);
        }
        assert_eq!(w.len_bits(), 9);
        let bytes = w.finish();
        assert_eq!(bytes.len(), 2);
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit().unwrap(), b);
        }
    }

    #[test]
    fn multibit_values_round_trip() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xDEADBEEF, 32);
        w.write_bits(u64::MAX, 64);
        w.write_bits(0, 1);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(32).unwrap(), 0xDEADBEEF);
        assert_eq!(r.read_bits(64).unwrap(), u64::MAX);
        assert_eq!(r.read_bits(1).unwrap(), 0);
    }

    #[test]
    fn reading_past_end_errors() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.read_bits(8).unwrap(), 0xFF);
        assert!(r.read_bit().is_err());
    }

    #[test]
    fn zero_width_read_is_zero() {
        let mut r = BitReader::new(&[]);
        assert_eq!(r.read_bits(0).unwrap(), 0);
    }

    proptest! {
        #[test]
        fn prop_values_round_trip(values in proptest::collection::vec((any::<u64>(), 1u8..=64), 0..50)) {
            let mut w = BitWriter::new();
            for &(v, n) in &values {
                let masked = if n == 64 { v } else { v & ((1u64 << n) - 1) };
                w.write_bits(masked, n);
            }
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            for &(v, n) in &values {
                let masked = if n == 64 { v } else { v & ((1u64 << n) - 1) };
                prop_assert_eq!(r.read_bits(n).unwrap(), masked);
            }
        }
    }
}
