//! Gorilla compression for timeseries chunks (§2.2 of the paper).
//!
//! Timestamps are delta-of-delta coded with the Prometheus bucket widths;
//! values are XOR coded against the previous value with leading/trailing
//! zero-window reuse, exactly as in Facebook Gorilla. The streaming
//! [`TsCodec`]/[`XorEncoder`] pieces are reused by the group chunk format in
//! [`crate::nullxor`]; [`ChunkEncoder`]/[`ChunkDecoder`] wrap them into the
//! self-contained chunk bytes stored for individual timeseries.

use crate::agg::{self, AggKind, AggState, ChunkStats};
use crate::bitstream::{BitReader, BitWriter};
use tu_common::varint;
use tu_common::{Error, Result, Sample, Timestamp, Value};

// Delta-of-delta buckets, as in Prometheus XOR chunks:
//   '0'                       -> dod == 0
//   '10'   + 14 bits          -> dod in [-8191, 8192)
//   '110'  + 17 bits          -> dod in [-65535, 65536)
//   '1110' + 20 bits          -> dod in [-524287, 524288)
//   '1111' + 64 bits          -> anything else
const DOD_BUCKETS: [(u8, u8, i64); 3] = [
    (0b10, 2, 1 << 13),
    (0b110, 3, 1 << 16),
    (0b1110, 4, 1 << 19),
];
const DOD_BITS: [u8; 3] = [14, 17, 20];

/// Streaming delta-of-delta timestamp codec state.
///
/// The same struct drives encoding and decoding; it holds the previous
/// timestamp and delta.
#[derive(Debug, Default, Clone)]
pub struct TsCodec {
    count: usize,
    prev_ts: Timestamp,
    prev_delta: i64,
}

impl TsCodec {
    pub fn new() -> Self {
        Self::default()
    }

    /// Encodes the next timestamp into `w`.
    ///
    /// The first timestamp is written as a zigzag varint bit-aligned into
    /// the stream; the second as a zigzag-varint delta; the rest as
    /// bucketed delta-of-deltas.
    pub fn encode(&mut self, w: &mut BitWriter, t: Timestamp) {
        match self.count {
            0 => {
                write_varint_bits(w, varint::zigzag_encode(t));
                self.prev_ts = t;
            }
            1 => {
                let delta = t - self.prev_ts;
                write_varint_bits(w, varint::zigzag_encode(delta));
                self.prev_delta = delta;
                self.prev_ts = t;
            }
            _ => {
                let delta = t - self.prev_ts;
                let dod = delta - self.prev_delta;
                if dod == 0 {
                    w.write_bit(false);
                } else {
                    let mut written = false;
                    for (i, &(prefix, prefix_bits, half_range)) in DOD_BUCKETS.iter().enumerate() {
                        if dod >= -half_range + 1 && dod <= half_range {
                            w.write_bits(prefix as u64, prefix_bits);
                            w.write_bits((dod + half_range - 1) as u64, DOD_BITS[i]);
                            written = true;
                            break;
                        }
                    }
                    if !written {
                        w.write_bits(0b1111, 4);
                        w.write_bits(dod as u64, 64);
                    }
                }
                self.prev_delta = delta;
                self.prev_ts = t;
            }
        }
        self.count += 1;
    }

    /// Decodes the next timestamp from `r`.
    pub fn decode(&mut self, r: &mut BitReader<'_>) -> Result<Timestamp> {
        let t = match self.count {
            0 => {
                let raw = read_varint_bits(r)?;
                varint::zigzag_decode(raw)
            }
            1 => {
                let raw = read_varint_bits(r)?;
                let delta = varint::zigzag_decode(raw);
                self.prev_delta = delta;
                self.prev_ts + delta
            }
            _ => {
                let dod = if !r.read_bit()? {
                    0
                } else if !r.read_bit()? {
                    read_bucket(r, DOD_BITS[0], DOD_BUCKETS[0].2)?
                } else if !r.read_bit()? {
                    read_bucket(r, DOD_BITS[1], DOD_BUCKETS[1].2)?
                } else if !r.read_bit()? {
                    read_bucket(r, DOD_BITS[2], DOD_BUCKETS[2].2)?
                } else {
                    r.read_bits(64)? as i64
                };
                self.prev_delta += dod;
                self.prev_ts + self.prev_delta
            }
        };
        self.prev_ts = t;
        self.count += 1;
        Ok(t)
    }
}

fn read_bucket(r: &mut BitReader<'_>, bits: u8, half_range: i64) -> Result<i64> {
    Ok(r.read_bits(bits)? as i64 - half_range + 1)
}

/// Writes a LEB128 varint bit-aligned into the bitstream.
fn write_varint_bits(w: &mut BitWriter, v: u64) {
    let mut buf = Vec::with_capacity(varint::MAX_VARINT_LEN);
    varint::write_u64(&mut buf, v);
    for b in buf {
        w.write_bits(b as u64, 8);
    }
}

fn read_varint_bits(r: &mut BitReader<'_>) -> Result<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = r.read_bits(8)? as u8;
        if shift >= 63 && byte > 1 {
            return Err(Error::corruption("varint in bitstream overflows u64"));
        }
        value |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(Error::corruption("varint in bitstream too long"));
        }
    }
}

/// Streaming Gorilla XOR value encoder.
#[derive(Debug, Default, Clone)]
pub struct XorEncoder {
    first: bool,
    prev_bits: u64,
    leading: u8,
    trailing: u8,
}

impl XorEncoder {
    pub fn new() -> Self {
        XorEncoder {
            first: true,
            prev_bits: 0,
            leading: 0xff, // sentinel: no window established yet
            trailing: 0,
        }
    }

    /// Encodes the next value into `w`.
    pub fn encode(&mut self, w: &mut BitWriter, v: Value) {
        let bits = v.to_bits();
        if self.first {
            w.write_bits(bits, 64);
            self.prev_bits = bits;
            self.first = false;
            return;
        }
        let xor = bits ^ self.prev_bits;
        self.prev_bits = bits;
        if xor == 0 {
            w.write_bit(false);
            return;
        }
        w.write_bit(true);
        let mut leading = xor.leading_zeros() as u8;
        let trailing = xor.trailing_zeros() as u8;
        // The leading-zero field is 5 bits wide; clamp like Gorilla does.
        if leading > 31 {
            leading = 31;
        }
        if self.leading != 0xff && leading >= self.leading && trailing >= self.trailing {
            // Fits the previous window: '0' + meaningful bits in that window.
            w.write_bit(false);
            let sig = 64 - self.leading - self.trailing;
            w.write_bits(xor >> self.trailing, sig);
        } else {
            // New window: '1' + 5 bits leading + 6 bits sig-length + bits.
            self.leading = leading;
            self.trailing = trailing;
            let sig = 64 - leading - trailing;
            w.write_bit(true);
            w.write_bits(leading as u64, 5);
            // sig is in 1..=64; store sig-1 in 6 bits.
            w.write_bits((sig - 1) as u64, 6);
            w.write_bits(xor >> trailing, sig);
        }
    }
}

/// Streaming Gorilla XOR value decoder.
#[derive(Debug, Default, Clone)]
pub struct XorDecoder {
    first: bool,
    prev_bits: u64,
    leading: u8,
    trailing: u8,
}

impl XorDecoder {
    pub fn new() -> Self {
        XorDecoder {
            first: true,
            prev_bits: 0,
            leading: 0,
            trailing: 0,
        }
    }

    /// Decodes the next value from `r`.
    pub fn decode(&mut self, r: &mut BitReader<'_>) -> Result<Value> {
        if self.first {
            self.prev_bits = r.read_bits(64)?;
            self.first = false;
            return Ok(Value::from_bits(self.prev_bits));
        }
        if !r.read_bit()? {
            return Ok(Value::from_bits(self.prev_bits));
        }
        if r.read_bit()? {
            self.leading = r.read_bits(5)? as u8;
            let sig = r.read_bits(6)? as u8 + 1;
            self.trailing = 64 - self.leading - sig;
        }
        let sig = 64 - self.leading - self.trailing;
        let xor = r.read_bits(sig)? << self.trailing;
        self.prev_bits ^= xor;
        Ok(Value::from_bits(self.prev_bits))
    }
}

/// Encoder for a self-contained individual-timeseries chunk.
///
/// Timestamps and values are interleaved in one bitstream, as in the
/// Gorilla paper. Samples must be appended in ascending timestamp order;
/// the engine handles out-of-order samples before they reach the encoder
/// (see §3.1 case 4 and the head-chunk logic in `tu-core`).
#[derive(Debug, Clone)]
pub struct ChunkEncoder {
    w: BitWriter,
    ts: TsCodec,
    xor: XorEncoder,
    count: u16,
    first_ts: Timestamp,
    last_ts: Timestamp,
    stats: AggState,
}

impl Default for ChunkEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl ChunkEncoder {
    pub fn new() -> Self {
        ChunkEncoder {
            w: BitWriter::with_capacity(64),
            ts: TsCodec::new(),
            xor: XorEncoder::new(),
            count: 0,
            first_ts: 0,
            last_ts: i64::MIN,
            stats: AggState::new(),
        }
    }

    /// Appends one sample. Returns an error on non-increasing timestamps.
    pub fn append(&mut self, t: Timestamp, v: Value) -> Result<()> {
        if self.count > 0 && t <= self.last_ts {
            return Err(Error::invalid(format!(
                "chunk samples must be strictly increasing: {t} after {}",
                self.last_ts
            )));
        }
        if self.count == 0 {
            self.first_ts = t;
        }
        self.ts.encode(&mut self.w, t);
        self.xor.encode(&mut self.w, v);
        self.stats.observe(t, v);
        self.last_ts = t;
        self.count += 1;
        Ok(())
    }

    /// Stats footer for the samples appended so far (`None` when empty).
    pub fn stats(&self) -> Option<ChunkStats> {
        ChunkStats::from_fold(&self.stats)
    }

    pub fn count(&self) -> u16 {
        self.count
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Timestamp of the first sample (only meaningful when non-empty).
    pub fn first_ts(&self) -> Timestamp {
        self.first_ts
    }

    /// Timestamp of the last appended sample.
    pub fn last_ts(&self) -> Timestamp {
        self.last_ts
    }

    /// Current encoded size in bytes (including the 2-byte count header).
    pub fn encoded_len(&self) -> usize {
        2 + self.w.as_bytes().len()
    }

    /// Serializes the chunk: `u16 LE sample count` followed by the
    /// bitstream.
    pub fn finish(self) -> Vec<u8> {
        let body = self.w.finish();
        let mut out = Vec::with_capacity(2 + body.len());
        out.extend_from_slice(&self.count.to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Serializes the chunk inside a stats envelope
    /// ([`crate::agg::frame_with_stats`]). Empty chunks are emitted in
    /// the legacy layout (there is nothing to summarize).
    pub fn finish_framed(self) -> Vec<u8> {
        let stats = self.stats();
        let inner = self.finish();
        match stats {
            Some(stats) => agg::frame_with_stats(&stats, &inner),
            None => inner,
        }
    }
}

/// Decoder for chunks produced by [`ChunkEncoder`].
///
/// Accepts both stats-framed (version 1) and legacy pre-stats bytes;
/// [`ChunkDecoder::stats`] exposes the footer when one was present.
pub struct ChunkDecoder<'a> {
    r: BitReader<'a>,
    ts: TsCodec,
    xor: XorDecoder,
    remaining: u16,
    stats: Option<ChunkStats>,
}

impl<'a> ChunkDecoder<'a> {
    pub fn new(bytes: &'a [u8]) -> Result<Self> {
        let (stats, inner) = agg::split_envelope(bytes);
        if inner.len() < 2 {
            return Err(Error::corruption("chunk shorter than its header"));
        }
        let count = u16::from_le_bytes([inner[0], inner[1]]);
        Ok(ChunkDecoder {
            r: BitReader::new(&inner[2..]),
            ts: TsCodec::new(),
            xor: XorDecoder::new(),
            remaining: count,
            stats,
        })
    }

    /// The per-chunk stats footer, when the chunk was stats-framed.
    pub fn stats(&self) -> Option<&ChunkStats> {
        self.stats.as_ref()
    }

    /// Number of samples not yet decoded.
    pub fn remaining(&self) -> u16 {
        self.remaining
    }

    /// Decodes the next sample, or `None` at end of chunk.
    pub fn next_sample(&mut self) -> Result<Option<Sample>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let t = self.ts.decode(&mut self.r)?;
        let v = self.xor.decode(&mut self.r)?;
        self.remaining -= 1;
        Ok(Some(Sample::new(t, v)))
    }

    /// Streams every remaining sample through `f` without materializing
    /// a sample vector; the inner loop carries no per-sample `Option` or
    /// `Result` wrapping.
    pub fn for_each(mut self, mut f: impl FnMut(Timestamp, Value)) -> Result<()> {
        for _ in 0..self.remaining {
            let t = self.ts.decode(&mut self.r)?;
            let v = self.xor.decode(&mut self.r)?;
            f(t, v);
        }
        self.remaining = 0;
        Ok(())
    }

    /// Streaming fold: computes one [`AggKind`] over the remaining
    /// samples in a single pass, without materializing them. `None`
    /// means the aggregate is undefined (empty chunk; rate over fewer
    /// than two samples).
    pub fn fold(self, kind: AggKind) -> Result<Option<Value>> {
        let mut st = AggState::new();
        self.for_each(|t, v| st.observe(t, v))?;
        Ok(st.value(kind))
    }

    /// Batch decode into reusable columnar buffers. The buffers are
    /// cleared first, so callers can recycle them across chunks.
    pub fn decode_into(mut self, ts: &mut Vec<Timestamp>, vs: &mut Vec<Value>) -> Result<()> {
        ts.clear();
        vs.clear();
        ts.reserve(self.remaining as usize);
        vs.reserve(self.remaining as usize);
        for _ in 0..self.remaining {
            ts.push(self.ts.decode(&mut self.r)?);
            vs.push(self.xor.decode(&mut self.r)?);
        }
        self.remaining = 0;
        Ok(())
    }

    /// Decodes all remaining samples.
    pub fn decode_all(mut self) -> Result<Vec<Sample>> {
        let mut out = Vec::with_capacity(self.remaining as usize);
        for _ in 0..self.remaining {
            let t = self.ts.decode(&mut self.r)?;
            let v = self.xor.decode(&mut self.r)?;
            out.push(Sample::new(t, v));
        }
        self.remaining = 0;
        Ok(out)
    }
}

/// Convenience: compresses a sorted slice of samples into chunk bytes
/// (legacy layout, no stats envelope).
pub fn compress_chunk(samples: &[Sample]) -> Result<Vec<u8>> {
    let mut enc = ChunkEncoder::new();
    for s in samples {
        enc.append(s.t, s.v)?;
    }
    Ok(enc.finish())
}

/// Convenience: compresses a sorted slice of samples into stats-framed
/// chunk bytes. This is what the engine seal paths write.
pub fn compress_chunk_framed(samples: &[Sample]) -> Result<Vec<u8>> {
    let mut enc = ChunkEncoder::new();
    for s in samples {
        enc.append(s.t, s.v)?;
    }
    Ok(enc.finish_framed())
}

/// Convenience: decompresses chunk bytes (framed or legacy) into samples.
pub fn decompress_chunk(bytes: &[u8]) -> Result<Vec<Sample>> {
    ChunkDecoder::new(bytes)?.decode_all()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn round_trip(samples: &[Sample]) {
        let bytes = compress_chunk(samples).unwrap();
        let back = decompress_chunk(&bytes).unwrap();
        assert_eq!(back.len(), samples.len());
        for (a, b) in samples.iter().zip(&back) {
            assert_eq!(a.t, b.t);
            assert!(a.v == b.v || (a.v.is_nan() && b.v.is_nan()));
        }
    }

    #[test]
    fn empty_chunk() {
        round_trip(&[]);
    }

    #[test]
    fn single_sample() {
        round_trip(&[Sample::new(1_600_000_000_000, 3.25)]);
    }

    #[test]
    fn regular_interval_compresses_well() {
        // 10s scrape interval with a gauge that changes every tenth scrape:
        // a typical monitoring series. Raw storage is 16 B/sample; Gorilla
        // should land well under 4 B/sample here.
        let samples: Vec<Sample> = (0..120)
            .map(|i| Sample::new(1_600_000_000_000 + i * 10_000, (i / 10) as f64))
            .collect();
        let bytes = compress_chunk(&samples).unwrap();
        round_trip(&samples);
        assert!(
            bytes.len() < samples.len() * 4,
            "expected <4 B/sample, got {} B for {} samples",
            bytes.len(),
            samples.len()
        );

        // A noisy gauge (mantissa changes every sample) still beats raw.
        let noisy: Vec<Sample> = (0..120)
            .map(|i| Sample::new(1_600_000_000_000 + i * 10_000, 0.5 + (i % 7) as f64 * 0.001))
            .collect();
        let noisy_bytes = compress_chunk(&noisy).unwrap();
        round_trip(&noisy);
        assert!(
            noisy_bytes.len() < noisy.len() * 9,
            "noisy gauge should stay under 9 B/sample, got {} B",
            noisy_bytes.len()
        );
    }

    #[test]
    fn constant_values_are_one_bit_each() {
        let samples: Vec<Sample> = (0..100).map(|i| Sample::new(i * 60_000, 42.0)).collect();
        let bytes = compress_chunk(&samples).unwrap();
        // ~2 bits/sample after the header: 1 dod bit + 1 xor bit.
        assert!(bytes.len() < 64, "got {} bytes", bytes.len());
        round_trip(&samples);
    }

    #[test]
    fn irregular_timestamps_and_values() {
        let samples = vec![
            Sample::new(-5_000, f64::MIN),
            Sample::new(-1, 0.0),
            Sample::new(0, -0.0),
            Sample::new(1, f64::MAX),
            Sample::new(1_000_000_007, f64::NAN),
            Sample::new(i64::MAX / 2, 1e-300),
        ];
        round_trip(&samples);
    }

    #[test]
    fn framed_chunk_round_trips_and_exposes_stats() {
        let samples = vec![
            Sample::new(1_000, 4.0),
            Sample::new(2_000, -2.5),
            Sample::new(3_000, f64::NAN),
            Sample::new(4_000, 9.0),
        ];
        let framed = compress_chunk_framed(&samples).unwrap();
        let legacy = compress_chunk(&samples).unwrap();
        assert_eq!(framed.len(), legacy.len() + agg::ENVELOPE_HEADER_LEN);

        let dec = ChunkDecoder::new(&framed).unwrap();
        let stats = *dec.stats().expect("framed chunk carries stats");
        assert_eq!(stats.min_ts, 1_000);
        assert_eq!(stats.max_ts, 4_000);
        assert_eq!(stats.count, 4);
        assert_eq!(stats.min_v, -2.5);
        assert_eq!(stats.max_v, 9.0);
        // Sum folds in order and keeps NaN (4.0 + -2.5 + NaN + 9.0).
        assert!(stats.sum.is_nan());
        let back = dec.decode_all().unwrap();
        assert_eq!(back.len(), samples.len());

        // Legacy bytes decode with no stats.
        let dec = ChunkDecoder::new(&legacy).unwrap();
        assert!(dec.stats().is_none());
        assert_eq!(dec.decode_all().unwrap().len(), samples.len());
    }

    #[test]
    fn streaming_paths_match_decode_all() {
        let samples: Vec<Sample> = (0..200)
            .map(|i| Sample::new(i * 5_000 + (i % 3), ((i * 37) % 11) as f64 - 4.5))
            .collect();
        let bytes = compress_chunk_framed(&samples).unwrap();

        let mut streamed = Vec::new();
        ChunkDecoder::new(&bytes)
            .unwrap()
            .for_each(|t, v| streamed.push(Sample::new(t, v)))
            .unwrap();
        assert_eq!(streamed, samples);

        let (mut ts, mut vs) = (Vec::new(), Vec::new());
        ChunkDecoder::new(&bytes)
            .unwrap()
            .decode_into(&mut ts, &mut vs)
            .unwrap();
        assert_eq!(ts.len(), samples.len());
        assert!(ts
            .iter()
            .zip(&vs)
            .zip(&samples)
            .all(|((t, v), s)| *t == s.t && v.to_bits() == s.v.to_bits()));

        // Fold agrees with materialize-then-fold for every kind.
        for kind in AggKind::ALL {
            let folded = ChunkDecoder::new(&bytes).unwrap().fold(kind).unwrap();
            let mut st = AggState::new();
            for s in &samples {
                st.observe(s.t, s.v);
            }
            assert_eq!(
                folded.map(Value::to_bits),
                st.value(kind).map(Value::to_bits),
                "{kind:?}"
            );
        }
    }

    #[test]
    fn rejects_non_increasing_timestamps() {
        let mut enc = ChunkEncoder::new();
        enc.append(10, 1.0).unwrap();
        assert!(enc.append(10, 2.0).is_err());
        assert!(enc.append(5, 2.0).is_err());
        enc.append(11, 2.0).unwrap();
    }

    #[test]
    fn decoder_rejects_truncation() {
        let samples: Vec<Sample> = (0..32).map(|i| Sample::new(i, i as f64 * 1.7)).collect();
        let bytes = compress_chunk(&samples).unwrap();
        let cut = &bytes[..bytes.len() / 2];
        // Either an explicit error or fewer samples — never a panic.
        match ChunkDecoder::new(cut) {
            Ok(d) => {
                let _ = d.decode_all(); // must not panic
            }
            Err(_) => {}
        }
    }

    #[test]
    fn chunk_metadata_tracks_bounds() {
        let mut enc = ChunkEncoder::new();
        enc.append(100, 1.0).unwrap();
        enc.append(200, 2.0).unwrap();
        assert_eq!(enc.first_ts(), 100);
        assert_eq!(enc.last_ts(), 200);
        assert_eq!(enc.count(), 2);
        assert!(enc.encoded_len() >= 2);
    }

    proptest! {
        #[test]
        fn prop_round_trip(raw in proptest::collection::vec((0i64..1i64<<40, any::<f64>()), 0..200)) {
            let mut samples: Vec<Sample> = raw.into_iter().map(|(t, v)| Sample::new(t, v)).collect();
            samples.sort_by_key(|s| s.t);
            samples.dedup_by_key(|s| s.t);
            round_trip(&samples);
        }

        #[test]
        fn prop_extreme_deltas(deltas in proptest::collection::vec(0i64..1i64<<35, 1..50)) {
            let mut t = 0i64;
            let mut samples = Vec::new();
            for (i, d) in deltas.iter().enumerate() {
                t += d + 1; // strictly increasing
                samples.push(Sample::new(t, i as f64));
            }
            round_trip(&samples);
        }
    }
}
