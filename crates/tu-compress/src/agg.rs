//! Aggregation pushdown primitives shared by the codecs and the engine.
//!
//! Three pieces live here:
//!
//! * [`AggKind`] / [`AggState`] — the fold every aggregate path uses. The
//!   engine's reference path (materialize samples, then fold), the codec
//!   streaming folds, and the per-chunk stats footer all run the *same*
//!   fold so pushdown results are bit-identical to the reference.
//! * [`ChunkStats`] — the compact per-chunk footer
//!   (`min_ts/max_ts/count/min_v/max_v/sum`) emitted at encode time.
//! * The versioned stats envelope ([`frame_with_stats`] /
//!   [`split_envelope`]) that carries a [`ChunkStats`] in front of the
//!   legacy chunk bytes. Chunk values stay opaque to tu-lsm, so framed
//!   chunks flow through SSTables and memtables with zero tree-format
//!   changes, and pre-stats chunks remain readable: the decoders strip
//!   the envelope when present and fall back to the legacy layout when
//!   not.
//!
//! # Envelope layout (version 1)
//!
//! ```text
//! [u16 0x0000] [u8 version = 1] [44-byte ChunkStats, LE] [legacy chunk bytes]
//! ```
//!
//! The leading zero `u16` is the discriminator: legacy gorilla chunks
//! start with a nonzero sample count and legacy group chunks with a
//! nonzero row count (sealed chunks are never empty), while the legacy
//! empty gorilla chunk is exactly the two bytes `[0, 0]` — shorter than
//! any envelope — so `split_envelope` never misreads old bytes.

use tu_common::{bytes, Timestamp, Value};

/// The aggregate functions the pushdown layer can compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggKind {
    Sum,
    Min,
    Max,
    Count,
    Avg,
    Rate,
}

impl AggKind {
    /// All kinds, for exhaustive tests and benches.
    pub const ALL: [AggKind; 6] = [
        AggKind::Sum,
        AggKind::Min,
        AggKind::Max,
        AggKind::Count,
        AggKind::Avg,
        AggKind::Rate,
    ];

    /// Stable lowercase name (`sum`, `min`, ...).
    pub fn name(self) -> &'static str {
        match self {
            AggKind::Sum => "sum",
            AggKind::Min => "min",
            AggKind::Max => "max",
            AggKind::Count => "count",
            AggKind::Avg => "avg",
            AggKind::Rate => "rate",
        }
    }

    /// Parses the lowercase name back into a kind.
    pub fn parse(s: &str) -> Option<AggKind> {
        AggKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

/// Maximum of two values under a total order: NaN is the identity
/// (ignored unless both sides are NaN) and `+0.0 > -0.0`, so the fold is
/// associative and a chunk footer can be merged into a running window
/// with a bit-identical result to folding the samples one by one.
#[inline]
pub fn value_max(a: Value, b: Value) -> Value {
    if a.is_nan() {
        b
    } else if b.is_nan() || a > b {
        a
    } else if b > a {
        b
    } else if a.to_bits() == b.to_bits() {
        a
    } else {
        // Equal but different bits: only ±0.0. +0.0 wins for max.
        if a.is_sign_positive() {
            a
        } else {
            b
        }
    }
}

/// Minimum counterpart of [`value_max`]: NaN-ignoring, `-0.0 < +0.0`.
#[inline]
pub fn value_min(a: Value, b: Value) -> Value {
    if a.is_nan() {
        b
    } else if b.is_nan() || a < b {
        a
    } else if b < a {
        b
    } else if a.to_bits() == b.to_bits() {
        a
    } else if a.is_sign_negative() {
        a
    } else {
        b
    }
}

/// Running state of one aggregation window.
///
/// [`AggState::observe`] folds samples in timestamp order; `sum` is
/// seeded from the first value (not `0.0`), which both avoids the
/// `0.0 + (-0.0)` sign flip and makes a chunk footer's `sum` bitwise
/// equal to the fold of that chunk's samples.
#[derive(Debug, Clone, Copy)]
pub struct AggState {
    pub count: u64,
    pub sum: Value,
    pub min: Value,
    pub max: Value,
    pub first_t: Timestamp,
    pub first_v: Value,
    pub last_t: Timestamp,
    pub last_v: Value,
}

impl Default for AggState {
    fn default() -> Self {
        Self::new()
    }
}

impl AggState {
    pub fn new() -> Self {
        AggState {
            count: 0,
            sum: 0.0,
            min: Value::NAN,
            max: Value::NAN,
            first_t: 0,
            first_v: 0.0,
            last_t: 0,
            last_v: 0.0,
        }
    }

    /// Folds one sample. Samples must arrive in timestamp order for
    /// `first`/`last` (and therefore `rate`) to be meaningful.
    #[inline]
    pub fn observe(&mut self, t: Timestamp, v: Value) {
        if self.count == 0 {
            self.sum = v;
            self.min = v;
            self.max = v;
            self.first_t = t;
            self.first_v = v;
        } else {
            self.sum += v;
            self.min = value_min(self.min, v);
            self.max = value_max(self.max, v);
        }
        self.last_t = t;
        self.last_v = v;
        self.count += 1;
    }

    /// Merges a whole chunk's footer into this window without decoding.
    ///
    /// Only sound when the chunk lies entirely inside this window's time
    /// range. `min`/`max`/`count` merge associatively and are always
    /// exact; `sum` is bit-exact only when this state is still empty
    /// (float addition is not associative), and `first`/`last` are *not*
    /// updated — the engine never meta-answers `Sum`/`Avg` into a
    /// non-empty window and never meta-answers `Rate` at all.
    #[inline]
    pub fn merge_stats(&mut self, s: &ChunkStats) {
        if self.count == 0 {
            self.sum = s.sum;
            self.min = s.min_v;
            self.max = s.max_v;
        } else {
            self.sum += s.sum;
            self.min = value_min(self.min, s.min_v);
            self.max = value_max(self.max, s.max_v);
        }
        self.count += u64::from(s.count);
    }

    /// The window's aggregate value, or `None` when the window should be
    /// omitted (no samples; rate over fewer than two samples or a zero
    /// time span).
    pub fn value(&self, kind: AggKind) -> Option<Value> {
        if self.count == 0 {
            return None;
        }
        match kind {
            AggKind::Sum => Some(self.sum),
            AggKind::Min => Some(self.min),
            AggKind::Max => Some(self.max),
            AggKind::Count => Some(self.count as Value),
            AggKind::Avg => Some(self.sum / self.count as Value),
            AggKind::Rate => {
                if self.count < 2 || self.last_t <= self.first_t {
                    None
                } else {
                    let span_s = (self.last_t - self.first_t) as Value / 1000.0;
                    Some((self.last_v - self.first_v) / span_s)
                }
            }
        }
    }
}

/// Per-chunk statistics footer persisted in the stats envelope.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkStats {
    pub min_ts: Timestamp,
    pub max_ts: Timestamp,
    pub count: u32,
    pub min_v: Value,
    pub max_v: Value,
    pub sum: Value,
}

impl ChunkStats {
    /// Encoded size: `i64 + i64 + u32 + f64 + f64 + f64`, little-endian.
    pub const ENCODED_LEN: usize = 44;

    /// Builds stats by folding samples in order with the shared
    /// [`AggState`] fold (so `sum` is seeded from the first value).
    pub fn from_fold(st: &AggState) -> Option<ChunkStats> {
        if st.count == 0 {
            return None;
        }
        Some(ChunkStats {
            min_ts: st.first_t,
            max_ts: st.last_t,
            count: st.count.min(u64::from(u32::MAX)) as u32,
            min_v: st.min,
            max_v: st.max,
            sum: st.sum,
        })
    }

    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.min_ts.to_le_bytes());
        out.extend_from_slice(&self.max_ts.to_le_bytes());
        out.extend_from_slice(&self.count.to_le_bytes());
        out.extend_from_slice(&self.min_v.to_le_bytes());
        out.extend_from_slice(&self.max_v.to_le_bytes());
        out.extend_from_slice(&self.sum.to_le_bytes());
    }

    /// Decodes a footer from exactly [`Self::ENCODED_LEN`] bytes.
    pub fn decode(b: &[u8]) -> Option<ChunkStats> {
        if b.len() < Self::ENCODED_LEN {
            return None;
        }
        Some(ChunkStats {
            min_ts: bytes::i64_le(&b[0..]),
            max_ts: bytes::i64_le(&b[8..]),
            count: bytes::u32_le(&b[16..]),
            min_v: bytes::f64_le(&b[20..]),
            max_v: bytes::f64_le(&b[28..]),
            sum: bytes::f64_le(&b[36..]),
        })
    }
}

/// Current stats-envelope format version.
pub const ENVELOPE_VERSION: u8 = 1;

/// Bytes the envelope prepends: discriminator (2) + version (1) + stats.
pub const ENVELOPE_HEADER_LEN: usize = 3 + ChunkStats::ENCODED_LEN;

/// Wraps legacy chunk bytes in a version-1 stats envelope.
pub fn frame_with_stats(stats: &ChunkStats, inner: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(ENVELOPE_HEADER_LEN + inner.len());
    out.extend_from_slice(&[0, 0, ENVELOPE_VERSION]);
    stats.encode_into(&mut out);
    out.extend_from_slice(inner);
    out
}

/// Splits chunk bytes into their optional stats footer and the inner
/// legacy chunk. Legacy (pre-stats) bytes pass through unchanged with
/// `None` stats; unknown future envelope versions also fall back to the
/// legacy interpretation so the decoder reports a clean corruption error
/// rather than misreading the header here.
pub fn split_envelope(b: &[u8]) -> (Option<ChunkStats>, &[u8]) {
    if b.len() >= ENVELOPE_HEADER_LEN && b[0] == 0 && b[1] == 0 && b[2] == ENVELOPE_VERSION {
        if let Some(stats) = ChunkStats::decode(&b[3..3 + ChunkStats::ENCODED_LEN]) {
            return (Some(stats), &b[ENVELOPE_HEADER_LEN..]);
        }
    }
    (None, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_round_trip_through_envelope() {
        let stats = ChunkStats {
            min_ts: -5,
            max_ts: 12_345,
            count: 7,
            min_v: -0.0,
            max_v: f64::INFINITY,
            sum: 41.5,
        };
        let inner = vec![3u8, 0, 0xAB, 0xCD];
        let framed = frame_with_stats(&stats, &inner);
        assert_eq!(framed.len(), ENVELOPE_HEADER_LEN + inner.len());
        let (got, rest) = split_envelope(&framed);
        let got = got.expect("stats present");
        assert_eq!(got.min_ts, stats.min_ts);
        assert_eq!(got.max_ts, stats.max_ts);
        assert_eq!(got.count, stats.count);
        assert_eq!(got.min_v.to_bits(), stats.min_v.to_bits());
        assert_eq!(got.max_v.to_bits(), stats.max_v.to_bits());
        assert_eq!(got.sum.to_bits(), stats.sum.to_bits());
        assert_eq!(rest, &inner[..]);
    }

    #[test]
    fn legacy_bytes_pass_through() {
        // A legacy gorilla chunk starts with its nonzero u16 count.
        let legacy = vec![3u8, 0, 1, 2, 3];
        let (stats, rest) = split_envelope(&legacy);
        assert!(stats.is_none());
        assert_eq!(rest, &legacy[..]);
        // The legacy empty chunk is exactly [0, 0]: too short to be an
        // envelope, still legacy.
        let empty = vec![0u8, 0];
        let (stats, rest) = split_envelope(&empty);
        assert!(stats.is_none());
        assert_eq!(rest, &empty[..]);
    }

    #[test]
    fn unknown_version_is_left_alone() {
        let stats = ChunkStats {
            min_ts: 0,
            max_ts: 1,
            count: 1,
            min_v: 0.0,
            max_v: 0.0,
            sum: 0.0,
        };
        let mut framed = frame_with_stats(&stats, &[9, 9]);
        framed[2] = 2; // future version
        let (got, rest) = split_envelope(&framed);
        assert!(got.is_none());
        assert_eq!(rest, &framed[..]);
    }

    #[test]
    fn value_bounds_use_a_total_order() {
        assert_eq!(value_max(0.0, -0.0).to_bits(), 0.0f64.to_bits());
        assert_eq!(value_max(-0.0, 0.0).to_bits(), 0.0f64.to_bits());
        assert_eq!(value_min(0.0, -0.0).to_bits(), (-0.0f64).to_bits());
        assert_eq!(value_min(-0.0, 0.0).to_bits(), (-0.0f64).to_bits());
        assert_eq!(value_max(f64::NAN, 2.0), 2.0);
        assert_eq!(value_max(2.0, f64::NAN), 2.0);
        assert!(value_max(f64::NAN, f64::NAN).is_nan());
        assert_eq!(value_min(f64::NAN, 2.0), 2.0);
        assert_eq!(value_max(1.0, 2.0), 2.0);
        assert_eq!(value_min(1.0, 2.0), 1.0);
    }

    #[test]
    fn fold_matches_meta_merge_for_min_max_count() {
        let samples = [(10, 2.0), (20, f64::NAN), (30, -7.5), (40, 2.0)];
        let mut chunk = AggState::new();
        for (t, v) in samples {
            chunk.observe(t, v);
        }
        let stats = ChunkStats::from_fold(&chunk).expect("non-empty");

        // Window that already holds a sample: meta-merge vs per-sample fold.
        let mut by_meta = AggState::new();
        by_meta.observe(5, 1.0);
        by_meta.merge_stats(&stats);
        let mut by_fold = AggState::new();
        by_fold.observe(5, 1.0);
        for (t, v) in samples {
            by_fold.observe(t, v);
        }
        for kind in [AggKind::Min, AggKind::Max, AggKind::Count] {
            assert_eq!(
                by_meta.value(kind).map(Value::to_bits),
                by_fold.value(kind).map(Value::to_bits),
                "{kind:?}"
            );
        }

        // Empty window: Sum/Avg are bit-exact too.
        let mut empty_meta = AggState::new();
        empty_meta.merge_stats(&stats);
        for kind in [
            AggKind::Sum,
            AggKind::Avg,
            AggKind::Min,
            AggKind::Max,
            AggKind::Count,
        ] {
            assert_eq!(
                empty_meta.value(kind).map(Value::to_bits),
                chunk.value(kind).map(Value::to_bits),
                "{kind:?}"
            );
        }
    }

    #[test]
    fn rate_needs_two_samples_and_a_span() {
        let mut st = AggState::new();
        assert_eq!(st.value(AggKind::Rate), None);
        st.observe(1_000, 10.0);
        assert_eq!(st.value(AggKind::Rate), None);
        st.observe(3_000, 14.0);
        // 4.0 over 2 seconds.
        assert_eq!(st.value(AggKind::Rate), Some(2.0));
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in AggKind::ALL {
            assert_eq!(AggKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(AggKind::parse("median"), None);
    }
}
