//! The group chunk format: one shared timestamp column plus one
//! NULL-capable XOR value column per member series (§3.1, Figure 7).
//!
//! The paper extends the Gorilla XOR algorithm with an extra control bit so
//! a column can record NULL for rows where its series reported no sample
//! (new series joining mid-chunk, or series missing from an insertion
//! round). Each column is an independent bitstream, so queries that touch a
//! subset of a group's series decode only those columns plus the shared
//! timestamps.
//!
//! Serialized layout:
//!
//! ```text
//! u16 LE row count | u16 LE column count
//! varint len | timestamp bitstream (delta-of-delta)
//! repeat per column: varint len | column bitstream
//! ```

use crate::agg::{self, AggKind, AggState, ChunkStats};
use crate::bitstream::{BitReader, BitWriter};
use crate::gorilla::{TsCodec, XorDecoder, XorEncoder};
use tu_common::varint;
use tu_common::{Error, Result, Timestamp, Value};

/// One NULL-capable XOR value column under construction.
#[derive(Debug, Clone)]
struct ColEncoder {
    w: BitWriter,
    xor: XorEncoder,
}

impl ColEncoder {
    fn new() -> Self {
        ColEncoder {
            w: BitWriter::new(),
            xor: XorEncoder::new(),
        }
    }

    fn push(&mut self, v: Option<Value>) {
        match v {
            None => self.w.write_bit(false),
            Some(v) => {
                self.w.write_bit(true);
                self.xor.encode(&mut self.w, v);
            }
        }
    }
}

/// Encoder for a group chunk.
///
/// Rows must be appended in strictly increasing timestamp order; columns
/// may be added at any point (earlier rows are backfilled with NULL, §3.1
/// case 2).
#[derive(Debug, Clone)]
pub struct GroupChunkEncoder {
    ts_w: BitWriter,
    ts: TsCodec,
    cols: Vec<ColEncoder>,
    rows: u16,
    first_ts: Timestamp,
    last_ts: Timestamp,
    vstats: AggState,
}

impl Default for GroupChunkEncoder {
    fn default() -> Self {
        Self::new(0)
    }
}

impl GroupChunkEncoder {
    /// Creates an encoder with `columns` initial value columns.
    pub fn new(columns: usize) -> Self {
        GroupChunkEncoder {
            ts_w: BitWriter::new(),
            ts: TsCodec::new(),
            cols: (0..columns).map(|_| ColEncoder::new()).collect(),
            rows: 0,
            first_ts: 0,
            last_ts: i64::MIN,
            vstats: AggState::new(),
        }
    }

    /// Number of value columns.
    pub fn columns(&self) -> usize {
        self.cols.len()
    }

    /// Number of rows appended.
    pub fn rows(&self) -> u16 {
        self.rows
    }

    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    pub fn first_ts(&self) -> Timestamp {
        self.first_ts
    }

    pub fn last_ts(&self) -> Timestamp {
        self.last_ts
    }

    /// Adds a new column (a series joining the group), backfilling NULLs
    /// for all rows already encoded. Returns the new column index.
    pub fn add_column(&mut self) -> usize {
        let mut col = ColEncoder::new();
        for _ in 0..self.rows {
            col.push(None);
        }
        self.cols.push(col);
        self.cols.len() - 1
    }

    /// Appends one row: a shared timestamp plus one optional value per
    /// column (`None` marks a missing series, §3.1 case 3).
    pub fn append_row(&mut self, t: Timestamp, values: &[Option<Value>]) -> Result<()> {
        if values.len() != self.cols.len() {
            return Err(Error::invalid(format!(
                "row has {} values but the group has {} columns",
                values.len(),
                self.cols.len()
            )));
        }
        if self.rows > 0 && t <= self.last_ts {
            return Err(Error::invalid(format!(
                "group rows must be strictly increasing: {t} after {}",
                self.last_ts
            )));
        }
        if self.rows == 0 {
            self.first_ts = t;
        }
        self.ts.encode(&mut self.ts_w, t);
        for (col, v) in self.cols.iter_mut().zip(values) {
            col.push(*v);
            if let Some(v) = *v {
                self.vstats.observe(t, v);
            }
        }
        self.last_ts = t;
        self.rows += 1;
        Ok(())
    }

    /// Stats footer over the chunk: time bounds from the shared timestamp
    /// column, value bounds/sum/count folded across the present (non-NULL)
    /// values of every column. `None` when the chunk has no rows.
    pub fn stats(&self) -> Option<ChunkStats> {
        if self.rows == 0 {
            return None;
        }
        Some(ChunkStats {
            min_ts: self.first_ts,
            max_ts: self.last_ts,
            count: self.vstats.count.min(u64::from(u32::MAX)) as u32,
            min_v: self.vstats.min,
            max_v: self.vstats.max,
            sum: self.vstats.sum,
        })
    }

    /// Approximate serialized size in bytes.
    pub fn encoded_len(&self) -> usize {
        4 + self.ts_w.as_bytes().len()
            + self
                .cols
                .iter()
                .map(|c| c.w.as_bytes().len() + 2)
                .sum::<usize>()
    }

    /// Serializes the chunk.
    pub fn finish(self) -> Vec<u8> {
        let ts_bytes = self.ts_w.finish();
        let mut out = Vec::with_capacity(8 + ts_bytes.len());
        out.extend_from_slice(&self.rows.to_le_bytes());
        out.extend_from_slice(&(self.cols.len() as u16).to_le_bytes());
        varint::write_u64(&mut out, ts_bytes.len() as u64);
        out.extend_from_slice(&ts_bytes);
        for col in self.cols {
            let bytes = col.w.finish();
            varint::write_u64(&mut out, bytes.len() as u64);
            out.extend_from_slice(&bytes);
        }
        out
    }

    /// Serializes the chunk inside a stats envelope; chunks with no rows
    /// fall back to the legacy layout.
    pub fn finish_framed(self) -> Vec<u8> {
        let stats = self.stats();
        let inner = self.finish();
        match stats {
            Some(stats) => agg::frame_with_stats(&stats, &inner),
            None => inner,
        }
    }
}

/// Decoder for group chunks.
///
/// Accepts both stats-framed (version 1) and legacy pre-stats bytes;
/// [`GroupChunkDecoder::stats`] exposes the footer when present.
pub struct GroupChunkDecoder<'a> {
    rows: u16,
    ts_bytes: &'a [u8],
    col_bytes: Vec<&'a [u8]>,
    stats: Option<ChunkStats>,
}

impl<'a> GroupChunkDecoder<'a> {
    pub fn new(outer: &'a [u8]) -> Result<Self> {
        let (stats, bytes) = agg::split_envelope(outer);
        if bytes.len() < 4 {
            return Err(Error::corruption("group chunk shorter than its header"));
        }
        let rows = u16::from_le_bytes([bytes[0], bytes[1]]);
        let cols = u16::from_le_bytes([bytes[2], bytes[3]]) as usize;
        let mut off = 4;
        let (ts_len, n) = varint::read_u64(&bytes[off..])?;
        off += n;
        let ts_end = off + ts_len as usize;
        if ts_end > bytes.len() {
            return Err(Error::corruption("group chunk timestamp column truncated"));
        }
        let ts_bytes = &bytes[off..ts_end];
        off = ts_end;
        let mut col_bytes = Vec::with_capacity(cols);
        for i in 0..cols {
            let (len, n) = varint::read_u64(&bytes[off..])?;
            off += n;
            let end = off + len as usize;
            if end > bytes.len() {
                return Err(Error::corruption(format!(
                    "group chunk column {i} truncated"
                )));
            }
            col_bytes.push(&bytes[off..end]);
            off = end;
        }
        Ok(GroupChunkDecoder {
            rows,
            ts_bytes,
            col_bytes,
            stats,
        })
    }

    pub fn rows(&self) -> u16 {
        self.rows
    }

    pub fn columns(&self) -> usize {
        self.col_bytes.len()
    }

    /// The per-chunk stats footer, when the chunk was stats-framed.
    pub fn stats(&self) -> Option<&ChunkStats> {
        self.stats.as_ref()
    }

    /// Decodes the shared timestamp column.
    pub fn decode_timestamps(&self) -> Result<Vec<Timestamp>> {
        let mut out = Vec::new();
        self.decode_timestamps_into(&mut out)?;
        Ok(out)
    }

    /// Decodes the shared timestamp column into a reusable buffer
    /// (cleared first).
    pub fn decode_timestamps_into(&self, out: &mut Vec<Timestamp>) -> Result<()> {
        let mut r = BitReader::new(self.ts_bytes);
        let mut codec = TsCodec::new();
        out.clear();
        out.reserve(self.rows as usize);
        for _ in 0..self.rows {
            out.push(codec.decode(&mut r)?);
        }
        Ok(())
    }

    /// Streams the present (non-NULL) samples of one column through `f`,
    /// pairing each with the already-decoded shared timestamps, without
    /// materializing an `Option<Value>` vector.
    pub fn for_each_in_column(
        &self,
        idx: usize,
        ts: &[Timestamp],
        mut f: impl FnMut(Timestamp, Value),
    ) -> Result<()> {
        let bytes = self
            .col_bytes
            .get(idx)
            .ok_or_else(|| Error::invalid(format!("column {idx} out of range")))?;
        if ts.len() != self.rows as usize {
            return Err(Error::invalid(format!(
                "timestamp buffer has {} rows but the chunk has {}",
                ts.len(),
                self.rows
            )));
        }
        let mut r = BitReader::new(bytes);
        let mut xor = XorDecoder::new();
        for &t in ts {
            if r.read_bit()? {
                f(t, xor.decode(&mut r)?);
            }
        }
        Ok(())
    }

    /// Streaming fold: computes one [`AggKind`] over the present samples
    /// of one column in a single pass. `None` means the aggregate is
    /// undefined for the column (all NULL; rate over fewer than two
    /// samples).
    pub fn fold_column(
        &self,
        idx: usize,
        kind: AggKind,
        ts: &[Timestamp],
    ) -> Result<Option<Value>> {
        let mut st = AggState::new();
        self.for_each_in_column(idx, ts, |t, v| st.observe(t, v))?;
        Ok(st.value(kind))
    }

    /// Batch decode of one column into reusable columnar buffers holding
    /// only the present samples (buffers are cleared first).
    pub fn decode_column_into(
        &self,
        idx: usize,
        ts: &[Timestamp],
        out_ts: &mut Vec<Timestamp>,
        out_vs: &mut Vec<Value>,
    ) -> Result<()> {
        out_ts.clear();
        out_vs.clear();
        self.for_each_in_column(idx, ts, |t, v| {
            out_ts.push(t);
            out_vs.push(v);
        })
    }

    /// Decodes one value column; `None` entries are NULL rows.
    pub fn decode_column(&self, idx: usize) -> Result<Vec<Option<Value>>> {
        let bytes = self
            .col_bytes
            .get(idx)
            .ok_or_else(|| Error::invalid(format!("column {idx} out of range")))?;
        let mut r = BitReader::new(bytes);
        let mut xor = XorDecoder::new();
        let mut out = Vec::with_capacity(self.rows as usize);
        for _ in 0..self.rows {
            if r.read_bit()? {
                out.push(Some(xor.decode(&mut r)?));
            } else {
                out.push(None);
            }
        }
        Ok(out)
    }

    /// Decodes the whole chunk into rows of `(timestamp, values)`.
    pub fn decode_all(&self) -> Result<(Vec<Timestamp>, Vec<Vec<Option<Value>>>)> {
        let ts = self.decode_timestamps()?;
        let cols = (0..self.columns())
            .map(|i| self.decode_column(i))
            .collect::<Result<Vec<_>>>()?;
        Ok((ts, cols))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn round_trip(ts: &[Timestamp], cols: &[Vec<Option<f64>>]) {
        let mut enc = GroupChunkEncoder::new(cols.len());
        for (row, &t) in ts.iter().enumerate() {
            let values: Vec<Option<f64>> = cols.iter().map(|c| c[row]).collect();
            enc.append_row(t, &values).unwrap();
        }
        let bytes = enc.finish();
        let dec = GroupChunkDecoder::new(&bytes).unwrap();
        assert_eq!(dec.rows() as usize, ts.len());
        assert_eq!(dec.columns(), cols.len());
        assert_eq!(dec.decode_timestamps().unwrap(), ts);
        for (i, col) in cols.iter().enumerate() {
            let got = dec.decode_column(i).unwrap();
            assert_eq!(got.len(), col.len());
            for (a, b) in col.iter().zip(&got) {
                match (a, b) {
                    (Some(x), Some(y)) => assert!(x == y || (x.is_nan() && y.is_nan())),
                    (None, None) => {}
                    other => panic!("null mismatch: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn empty_group_chunk() {
        round_trip(&[], &[]);
        round_trip(&[], &[vec![], vec![]]);
    }

    #[test]
    fn dense_group_all_present() {
        let ts: Vec<i64> = (0..32).map(|i| 1_000 + i * 10_000).collect();
        let cols: Vec<Vec<Option<f64>>> = (0..5)
            .map(|c| (0..32).map(|r| Some((c * 100 + r) as f64 * 0.5)).collect())
            .collect();
        round_trip(&ts, &cols);
    }

    #[test]
    fn null_rows_round_trip() {
        let ts = vec![10, 20, 30, 40];
        let cols = vec![
            vec![Some(1.0), None, Some(3.0), None],
            vec![None, None, None, None],
            vec![None, Some(2.0), Some(2.0), Some(5.5)],
        ];
        round_trip(&ts, &cols);
    }

    #[test]
    fn add_column_backfills_nulls() {
        let mut enc = GroupChunkEncoder::new(1);
        enc.append_row(10, &[Some(1.0)]).unwrap();
        enc.append_row(20, &[Some(2.0)]).unwrap();
        let idx = enc.add_column();
        assert_eq!(idx, 1);
        enc.append_row(30, &[Some(3.0), Some(30.0)]).unwrap();
        let bytes = enc.finish();
        let dec = GroupChunkDecoder::new(&bytes).unwrap();
        assert_eq!(dec.decode_column(1).unwrap(), vec![None, None, Some(30.0)]);
        assert_eq!(
            dec.decode_column(0).unwrap(),
            vec![Some(1.0), Some(2.0), Some(3.0)]
        );
    }

    #[test]
    fn wrong_arity_and_regressing_time_are_rejected() {
        let mut enc = GroupChunkEncoder::new(2);
        assert!(enc.append_row(10, &[Some(1.0)]).is_err());
        enc.append_row(10, &[Some(1.0), None]).unwrap();
        assert!(enc.append_row(10, &[None, None]).is_err());
        assert!(enc.append_row(5, &[None, None]).is_err());
    }

    #[test]
    fn shared_timestamps_beat_per_series_storage() {
        // The Table 3 effect: a group of 20 series sharing timestamps is
        // much smaller than 20 individual chunks. Scrape timestamps jitter
        // by a few milliseconds, as they do in real deployments, so each
        // individual chunk pays delta-of-delta bits for every sample while
        // the group pays them once.
        let ts: Vec<i64> = (0..32).map(|i| i * 30_000 + (i % 7) * 13).collect();
        let mut group = GroupChunkEncoder::new(20);
        for &t in &ts {
            let vals: Vec<Option<f64>> = (0..20).map(|c| Some(c as f64)).collect();
            group.append_row(t, &vals).unwrap();
        }
        let group_bytes = group.finish().len();

        let mut individual = 0;
        for c in 0..20 {
            let samples: Vec<tu_common::Sample> = ts
                .iter()
                .map(|&t| tu_common::Sample::new(t, c as f64))
                .collect();
            individual += crate::gorilla::compress_chunk(&samples).unwrap().len();
        }
        assert!(
            (group_bytes as f64) < individual as f64 * 0.7,
            "group {group_bytes} B vs individual {individual} B"
        );
    }

    #[test]
    fn framed_group_chunk_round_trips_and_exposes_stats() {
        let mut enc = GroupChunkEncoder::new(2);
        enc.append_row(10, &[Some(1.0), None]).unwrap();
        enc.append_row(20, &[Some(-3.0), Some(8.0)]).unwrap();
        enc.append_row(30, &[None, Some(2.0)]).unwrap();
        let legacy_len = enc.clone().finish().len();
        let framed = enc.finish_framed();
        assert_eq!(framed.len(), legacy_len + agg::ENVELOPE_HEADER_LEN);

        let dec = GroupChunkDecoder::new(&framed).unwrap();
        let stats = *dec.stats().expect("framed group chunk carries stats");
        assert_eq!(stats.min_ts, 10);
        assert_eq!(stats.max_ts, 30);
        assert_eq!(stats.count, 4);
        assert_eq!(stats.min_v, -3.0);
        assert_eq!(stats.max_v, 8.0);
        assert_eq!(dec.rows(), 3);
        assert_eq!(dec.decode_timestamps().unwrap(), vec![10, 20, 30]);
        assert_eq!(
            dec.decode_column(0).unwrap(),
            vec![Some(1.0), Some(-3.0), None]
        );
    }

    #[test]
    fn streaming_column_paths_match_decode_column() {
        let ts: Vec<i64> = (0..40).map(|i| i * 15_000 + (i % 5)).collect();
        let mut enc = GroupChunkEncoder::new(3);
        for (i, &t) in ts.iter().enumerate() {
            let vals: Vec<Option<f64>> = (0..3)
                .map(|c| ((i + c) % 4 != 0).then(|| (i * 3 + c) as f64 - 17.5))
                .collect();
            enc.append_row(t, &vals).unwrap();
        }
        let bytes = enc.finish_framed();
        let dec = GroupChunkDecoder::new(&bytes).unwrap();
        let mut ts_buf = Vec::new();
        dec.decode_timestamps_into(&mut ts_buf).unwrap();
        assert_eq!(ts_buf, ts);

        for col in 0..3 {
            let reference: Vec<(i64, f64)> = dec
                .decode_column(col)
                .unwrap()
                .into_iter()
                .zip(&ts)
                .filter_map(|(v, &t)| v.map(|v| (t, v)))
                .collect();

            let mut streamed = Vec::new();
            dec.for_each_in_column(col, &ts_buf, |t, v| streamed.push((t, v)))
                .unwrap();
            assert_eq!(streamed, reference);

            let (mut out_ts, mut out_vs) = (Vec::new(), Vec::new());
            dec.decode_column_into(col, &ts_buf, &mut out_ts, &mut out_vs)
                .unwrap();
            assert_eq!(out_ts.len(), reference.len());

            for kind in AggKind::ALL {
                let mut st = AggState::new();
                for &(t, v) in &reference {
                    st.observe(t, v);
                }
                assert_eq!(
                    dec.fold_column(col, kind, &ts_buf)
                        .unwrap()
                        .map(Value::to_bits),
                    st.value(kind).map(Value::to_bits),
                    "col {col} {kind:?}"
                );
            }
        }
        // A mismatched timestamp buffer is rejected, not misread.
        assert!(dec.for_each_in_column(0, &ts_buf[..5], |_, _| {}).is_err());
    }

    #[test]
    fn decoder_rejects_truncation_and_bad_column() {
        let mut enc = GroupChunkEncoder::new(2);
        enc.append_row(1, &[Some(1.0), Some(2.0)]).unwrap();
        let bytes = enc.finish();
        assert!(GroupChunkDecoder::new(&bytes[..3]).is_err());
        assert!(GroupChunkDecoder::new(&bytes[..bytes.len() - 1]).is_err());
        let dec = GroupChunkDecoder::new(&bytes).unwrap();
        assert!(dec.decode_column(2).is_err());
    }

    proptest! {
        #[test]
        fn prop_group_round_trip(
            n_cols in 0usize..6,
            raw in proptest::collection::vec((0i64..1i64<<32, any::<u32>()), 0..60),
        ) {
            let mut ts: Vec<i64> = raw.iter().map(|&(t, _)| t).collect();
            ts.sort_unstable();
            ts.dedup();
            let cols: Vec<Vec<Option<f64>>> = (0..n_cols).map(|c| {
                ts.iter().enumerate().map(|(r, _)| {
                    let bits = raw.get(r).map(|&(_, b)| b).unwrap_or(0);
                    if (bits >> (c % 16)) & 1 == 1 {
                        Some(f64::from_bits(((bits as u64) << 20) | c as u64))
                    } else {
                        None
                    }
                }).collect()
            }).collect();
            round_trip(&ts, &cols);
        }
    }
}
