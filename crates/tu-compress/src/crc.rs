//! CRC32C (Castagnoli) checksums guarding persisted blocks.
//!
//! Every SSTable block, WAL record, and serialized chunk carries a CRC so
//! corruption surfaces as a typed error instead of garbage data. Uses the
//! same masking scheme as LevelDB so a stored CRC is never itself a valid
//! CRC of trivial data.

/// Table-driven CRC32C over the Castagnoli polynomial (reflected 0x82F63B78).
const POLY: u32 = 0x82F6_3B78;

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            j += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = {
    // const-evaluated at compile time
    make_table()
};

/// Computes the CRC32C of `data`.
pub fn crc32c(data: &[u8]) -> u32 {
    extend(0, data)
}

/// Extends a running CRC with more data.
pub fn extend(crc: u32, data: &[u8]) -> u32 {
    let mut c = !crc;
    for &b in data {
        c = TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

const MASK_DELTA: u32 = 0xa282_ead8;

/// Masks a CRC for storage (LevelDB scheme): rotate and add a constant so
/// that computing the CRC of a stored CRC does not yield a fixed point.
pub fn mask(crc: u32) -> u32 {
    ((crc >> 15) | (crc << 17)).wrapping_add(MASK_DELTA)
}

/// Inverse of [`mask`].
pub fn unmask(masked: u32) -> u32 {
    let rot = masked.wrapping_sub(MASK_DELTA);
    (rot >> 17) | (rot << 15)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_vectors() {
        // RFC 3720 test vectors for CRC32C.
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xffu8; 32]), 0x62A8_AB43);
        let ascending: Vec<u8> = (0..32).collect();
        assert_eq!(crc32c(&ascending), 0x46DD_794E);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
    }

    #[test]
    fn extend_equals_one_shot() {
        let data = b"hello world, this is timeunion";
        let (a, b) = data.split_at(10);
        assert_eq!(extend(crc32c(a), b), crc32c(data));
    }

    #[test]
    fn mask_round_trips_and_changes_value() {
        for &v in &[0u32, 1, 0xdeadbeef, u32::MAX] {
            assert_eq!(unmask(mask(v)), v);
            assert_ne!(mask(v), v);
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let base = crc32c(data);
        let mut copy = data.to_vec();
        for byte in 0..copy.len() {
            for bit in 0..8 {
                copy[byte] ^= 1 << bit;
                assert_ne!(crc32c(&copy), base);
                copy[byte] ^= 1 << bit;
            }
        }
    }

    proptest! {
        #[test]
        fn prop_mask_round_trip(v: u32) {
            prop_assert_eq!(unmask(mask(v)), v);
        }

        #[test]
        fn prop_extend_split(data in proptest::collection::vec(any::<u8>(), 0..500), split in 0usize..500) {
            let split = split.min(data.len());
            let (a, b) = data.split_at(split);
            prop_assert_eq!(extend(crc32c(a), b), crc32c(&data));
        }
    }
}
