//! A from-scratch implementation of the Snappy block format.
//!
//! SSTable data blocks are Snappy-compressed before hitting storage, which
//! Table 3 credits for part of TimeUnion's data-size advantage over
//! Prometheus tsdb. This implements the stable public format
//! (<https://github.com/google/snappy/blob/master/format_description.txt>):
//! a varint uncompressed length followed by literal and copy elements.
//!
//! The encoder uses the reference strategy: a 64 KiB sliding-window hash of
//! 4-byte sequences, greedy match extension, and 16 KiB-aligned restart of
//! the hash table. Compression is byte-exact round-trip; ratios on text and
//! repetitive data match the C++ implementation within a few percent.

use tu_common::varint;
use tu_common::{Error, Result};

const MAX_BLOCK: usize = 1 << 16; // hash table covers 64 KiB windows
const HASH_BITS: u32 = 14;
const HASH_SIZE: usize = 1 << HASH_BITS;

// Element tags (low two bits of the tag byte).
const TAG_LITERAL: u8 = 0b00;
const TAG_COPY1: u8 = 0b01; // 1-byte offset
const TAG_COPY2: u8 = 0b10; // 2-byte offset
const TAG_COPY4: u8 = 0b11; // 4-byte offset

#[inline]
fn hash(bytes: u32) -> usize {
    (bytes.wrapping_mul(0x1e35a7bd) >> (32 - HASH_BITS)) as usize
}

#[inline]
fn load32(src: &[u8], i: usize) -> u32 {
    u32::from_le_bytes(src[i..i + 4].try_into().expect("4 bytes available"))
}

/// Compresses `src` into a fresh buffer in Snappy block format.
pub fn compress(src: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(src.len() / 2 + 16);
    varint::write_u64(&mut out, src.len() as u64);
    // Process the input in independent 64 KiB blocks like the reference
    // implementation (offsets then always fit the copy encodings).
    let mut start = 0;
    while start < src.len() {
        let end = (start + MAX_BLOCK).min(src.len());
        compress_block(&src[start..end], &mut out);
        start = end;
    }
    out
}

fn compress_block(src: &[u8], out: &mut Vec<u8>) {
    if src.len() < 8 {
        emit_literal(src, out);
        return;
    }
    let mut table = [0u16; HASH_SIZE];
    let mut lit_start = 0usize; // start of the pending literal run
    let mut i = 1usize;
    let limit = src.len() - 4; // last position where a 4-byte load is valid
    while i <= limit {
        let h = hash(load32(src, i));
        let candidate = table[h] as usize;
        table[h] = i as u16;
        if candidate < i
            && i - candidate <= MAX_BLOCK - 1
            && load32(src, candidate) == load32(src, i)
        {
            // Emit the pending literal, then extend the match.
            emit_literal(&src[lit_start..i], out);
            let mut len = 4;
            while i + len < src.len() && src[candidate + len] == src[i + len] {
                len += 1;
            }
            emit_copy(i - candidate, len, out);
            i += len;
            lit_start = i;
        } else {
            i += 1;
        }
    }
    emit_literal(&src[lit_start..], out);
}

fn emit_literal(lit: &[u8], out: &mut Vec<u8>) {
    if lit.is_empty() {
        return;
    }
    let n = lit.len() - 1;
    if n < 60 {
        out.push(((n as u8) << 2) | TAG_LITERAL);
    } else if n < 1 << 8 {
        out.push((60 << 2) | TAG_LITERAL);
        out.push(n as u8);
    } else if n < 1 << 16 {
        out.push((61 << 2) | TAG_LITERAL);
        out.extend_from_slice(&(n as u16).to_le_bytes());
    } else if n < 1 << 24 {
        out.push((62 << 2) | TAG_LITERAL);
        out.extend_from_slice(&(n as u32).to_le_bytes()[..3]);
    } else {
        out.push((63 << 2) | TAG_LITERAL);
        out.extend_from_slice(&(n as u32).to_le_bytes());
    }
    out.extend_from_slice(lit);
}

fn emit_copy(offset: usize, mut len: usize, out: &mut Vec<u8>) {
    debug_assert!(offset >= 1 && offset < 1 << 16);
    // Long matches are emitted as a sequence of copies, preferring the
    // 2-byte-offset form which encodes lengths 1..=64.
    while len > 64 {
        emit_copy_chunk(offset, 64, out);
        len -= 64;
    }
    // Avoid a trailing copy shorter than 4 (COPY1 cannot encode it when
    // split): the loop above guarantees len >= 1; COPY2 encodes 1..=64.
    emit_copy_chunk(offset, len, out);
}

fn emit_copy_chunk(offset: usize, len: usize, out: &mut Vec<u8>) {
    debug_assert!((1..=64).contains(&len));
    if (4..12).contains(&len) && offset < 1 << 11 {
        // COPY1: 3 bits length-4, 3 high offset bits in the tag.
        out.push((((offset >> 8) as u8) << 5) | (((len - 4) as u8) << 2) | TAG_COPY1);
        out.push(offset as u8);
    } else {
        // COPY2: 6 bits length-1 in the tag, 16-bit LE offset.
        out.push((((len - 1) as u8) << 2) | TAG_COPY2);
        out.extend_from_slice(&(offset as u16).to_le_bytes());
    }
}

/// Returns the uncompressed length declared by a Snappy buffer.
pub fn decompressed_len(src: &[u8]) -> Result<usize> {
    let (len, _) = varint::read_u64(src)?;
    usize::try_from(len).map_err(|_| Error::corruption("snappy length overflows usize"))
}

/// Decompresses a Snappy buffer produced by [`compress`] (or any conforming
/// encoder).
pub fn decompress(src: &[u8]) -> Result<Vec<u8>> {
    let (expected, mut i) = varint::read_u64(src)?;
    let expected = usize::try_from(expected)
        .map_err(|_| Error::corruption("snappy length overflows usize"))?;
    let mut out = Vec::with_capacity(expected);
    while i < src.len() {
        let tag = src[i];
        i += 1;
        match tag & 0b11 {
            TAG_LITERAL => {
                let mut n = (tag >> 2) as usize;
                if n >= 60 {
                    let extra = n - 59;
                    if i + extra > src.len() {
                        return Err(Error::corruption("snappy literal length truncated"));
                    }
                    let mut v = 0usize;
                    for (k, &b) in src[i..i + extra].iter().enumerate() {
                        v |= (b as usize) << (8 * k);
                    }
                    n = v;
                    i += extra;
                }
                let n = n + 1;
                if i + n > src.len() {
                    return Err(Error::corruption("snappy literal body truncated"));
                }
                out.extend_from_slice(&src[i..i + n]);
                i += n;
            }
            TAG_COPY1 => {
                if i >= src.len() {
                    return Err(Error::corruption("snappy copy1 truncated"));
                }
                let len = ((tag >> 2) & 0b111) as usize + 4;
                let offset = (((tag >> 5) as usize) << 8) | src[i] as usize;
                i += 1;
                copy_within(&mut out, offset, len)?;
            }
            TAG_COPY2 => {
                if i + 2 > src.len() {
                    return Err(Error::corruption("snappy copy2 truncated"));
                }
                let len = (tag >> 2) as usize + 1;
                let offset = u16::from_le_bytes([src[i], src[i + 1]]) as usize;
                i += 2;
                copy_within(&mut out, offset, len)?;
            }
            TAG_COPY4 => {
                if i + 4 > src.len() {
                    return Err(Error::corruption("snappy copy4 truncated"));
                }
                let len = (tag >> 2) as usize + 1;
                let offset =
                    u32::from_le_bytes(src[i..i + 4].try_into().expect("4 bytes")) as usize;
                i += 4;
                copy_within(&mut out, offset, len)?;
            }
            _ => unreachable!("two-bit tag"),
        }
        if out.len() > expected {
            return Err(Error::corruption("snappy output exceeds declared length"));
        }
    }
    if out.len() != expected {
        return Err(Error::corruption(format!(
            "snappy declared {expected} bytes but produced {}",
            out.len()
        )));
    }
    Ok(out)
}

/// Back-reference copy that may overlap itself (run-length case).
fn copy_within(out: &mut Vec<u8>, offset: usize, len: usize) -> Result<()> {
    if offset == 0 || offset > out.len() {
        return Err(Error::corruption(format!(
            "snappy copy offset {offset} outside {} decoded bytes",
            out.len()
        )));
    }
    let start = out.len() - offset;
    for k in 0..len {
        let b = out[start + k];
        out.push(b);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn round_trip(data: &[u8]) -> usize {
        let c = compress(data);
        let d = decompress(&c).unwrap();
        assert_eq!(d, data);
        assert_eq!(decompressed_len(&c).unwrap(), data.len());
        c.len()
    }

    #[test]
    fn empty_and_tiny_inputs() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"abcdefg");
    }

    #[test]
    fn repetitive_data_compresses_hard() {
        let data = b"abcdabcdabcdabcdabcdabcdabcdabcd".repeat(64);
        let clen = round_trip(&data);
        assert!(clen < data.len() / 10, "{clen} vs {}", data.len());
    }

    #[test]
    fn run_length_overlapping_copies() {
        // Copies encode at most 64 bytes each (3 bytes per copy element),
        // so a pure run compresses at roughly 64:3 like reference Snappy.
        let data = vec![7u8; 100_000];
        let clen = round_trip(&data);
        assert!(clen < data.len() / 15, "got {clen}");
    }

    #[test]
    fn incompressible_data_grows_little() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let data: Vec<u8> = (0..100_000).map(|_| rng.gen()).collect();
        let clen = round_trip(&data);
        assert!(clen < data.len() + data.len() / 50 + 16);
    }

    #[test]
    fn text_like_data_gets_reasonable_ratio() {
        let data = "metric=cpu,host=host_0042,region=ap-northeast-1 usage_user=13.37 "
            .repeat(500)
            .into_bytes();
        let clen = round_trip(&data);
        assert!(clen < data.len() / 5, "{clen} vs {}", data.len());
    }

    #[test]
    fn inputs_spanning_multiple_blocks() {
        let mut data = Vec::new();
        for i in 0..200_000u32 {
            data.extend_from_slice(&(i / 7).to_le_bytes());
        }
        round_trip(&data);
    }

    #[test]
    fn corrupt_inputs_error_not_panic() {
        let good = compress(b"hello hello hello hello hello");
        assert!(decompress(&good[..good.len() - 2]).is_err());
        let mut bad_len = good.clone();
        bad_len[0] = bad_len[0].wrapping_add(1);
        assert!(decompress(&bad_len).is_err());
        // A copy reaching before the start of output.
        let mut crafted = Vec::new();
        varint::write_u64(&mut crafted, 10);
        crafted.push((4 << 2) | TAG_COPY1 as u8); // copy len 8 offset high bits 0
        crafted.push(5); // offset 5 with nothing decoded yet
        assert!(decompress(&crafted).is_err());
        assert!(decompress(&[]).is_err());
    }

    proptest! {
        #[test]
        fn prop_round_trip(data in proptest::collection::vec(any::<u8>(), 0..10_000)) {
            round_trip(&data);
        }

        #[test]
        fn prop_structured_round_trip(
            seed: u64,
            runs in proptest::collection::vec((any::<u8>(), 1usize..500), 0..50),
        ) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut data = Vec::new();
            for (b, n) in runs {
                if rng.gen_bool(0.5) {
                    data.extend(std::iter::repeat(b).take(n));
                } else {
                    data.extend((0..n).map(|_| rng.gen::<u8>()));
                }
            }
            round_trip(&data);
        }
    }
}
