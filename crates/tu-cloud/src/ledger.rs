//! The windowed cost ledger: periodic `cloud.<tier>.*` snapshots priced
//! against the Eq. 3–6 cost model.
//!
//! Each recorded window holds, per tier, the request/byte deltas since the
//! previous sample (via [`tu_obs::MetricsSnapshot::since`]) and their
//! $-decomposition:
//!
//! * **request_usd** — the per-request traffic terms of Eq. 4/6 (only
//!   object storage bills per Get/Put; the block tier's term is zero, which
//!   is the whole point of Eq. 3 vs. Eq. 4).
//! * **storage_usd** — the capacity terms of Eq. 3/5: the tier's
//!   `cloud.<tier>.used_bytes` gauge at window end, prorated from the
//!   GB-month price sheet over the window's duration.
//!
//! The ledger rides the [`tu_obs::Monitor`] sampler: [`CostLedger::observer`]
//! returns a [`tu_obs::SampleObserver`] that records one window per monitor
//! sample, so "what did the last hour cost and why" is one struct with no
//! extra threads. Tests drive [`CostLedger::record`] directly with synthetic
//! timestamps for determinism.

use std::sync::{Arc, OnceLock};

use tu_common::lockdep::{self, Mutex};

use crate::pricing::{self, Tier};
use tu_obs::MetricsSnapshot;

/// Milliseconds in the 30-day billing month the GB-month prices assume.
const MONTH_MS: f64 = 30.0 * 24.0 * 3600.0 * 1000.0;

/// The two billable storage tiers, in ledger order.
const LEDGER_TIERS: [(&str, Tier); 2] = [("block", Tier::Block), ("object", Tier::Object)];

/// One tier's activity and cost inside one window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowTier {
    /// Tier name: `"block"` or `"object"`.
    pub tier: &'static str,
    pub get_requests: u64,
    pub put_requests: u64,
    pub delete_requests: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
    /// Tier capacity at window end (the `cloud.<tier>.used_bytes` gauge).
    pub used_bytes: u64,
    /// Request-traffic cost of the window (Eq. 4/6 per-request terms).
    pub request_usd: f64,
    /// Capacity cost of the window (Eq. 3/5, prorated GB-month).
    pub storage_usd: f64,
}

impl WindowTier {
    /// Total $-cost of this tier in this window.
    pub fn total_usd(&self) -> f64 {
        self.request_usd + self.storage_usd
    }
}

/// One sampling window of the ledger.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostWindow {
    pub start_ms: i64,
    pub end_ms: i64,
    /// Per-tier decomposition, `[block, object]`.
    pub tiers: [WindowTier; 2],
}

impl CostWindow {
    /// Total $-cost of the window across both tiers.
    pub fn total_usd(&self) -> f64 {
        self.tiers.iter().map(|t| t.total_usd()).sum()
    }
}

struct Inner {
    capacity: usize,
    windows: Vec<CostWindow>,
    last: Option<(i64, MetricsSnapshot)>,
}

/// Fixed-capacity ring of [`CostWindow`]s fed by metrics snapshots.
pub struct CostLedger {
    inner: Mutex<Inner>,
}

fn windows_counter() -> tu_obs::TracedCounter {
    static C: OnceLock<tu_obs::TracedCounter> = OnceLock::new();
    *C.get_or_init(|| tu_obs::traced("ledger.windows"))
}

fn tier_counter(snap: &MetricsSnapshot, tier: &str, suffix: &str) -> u64 {
    snap.counter(&format!("cloud.{tier}.{suffix}")).unwrap_or(0)
}

impl CostLedger {
    /// Creates a ledger retaining the most recent `capacity` windows
    /// (minimum 1).
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(CostLedger {
            inner: Mutex::new(
                &lockdep::CLOUD_LEDGER_INNER,
                Inner {
                    capacity: capacity.max(1),
                    windows: Vec::new(),
                    last: None,
                },
            ),
        })
    }

    /// Records one sample. The first call only establishes the baseline;
    /// every subsequent call closes a window `[last_at, at_ms)` from the
    /// counter deltas and prices it.
    pub fn record(&self, at_ms: i64, snap: &MetricsSnapshot) {
        let mut inner = self.inner.lock();
        if let Some((last_at, last_snap)) = inner.last.take() {
            let delta = snap.since(&last_snap);
            let dur_ms = (at_ms - last_at).max(0);
            let tiers = LEDGER_TIERS.map(|(name, tier)| {
                let gets = tier_counter(&delta, name, "get_requests");
                let puts = tier_counter(&delta, name, "put_requests");
                let used = snap
                    .gauge(&format!("cloud.{name}.used_bytes"))
                    .unwrap_or(0)
                    .max(0) as u64;
                WindowTier {
                    tier: name,
                    get_requests: gets,
                    put_requests: puts,
                    delete_requests: tier_counter(&delta, name, "delete_requests"),
                    bytes_read: tier_counter(&delta, name, "bytes_read"),
                    bytes_written: tier_counter(&delta, name, "bytes_written"),
                    used_bytes: used,
                    request_usd: pricing::request_cost_usd(tier, gets, puts),
                    storage_usd: pricing::monthly_cost_usd(tier, used) * dur_ms as f64 / MONTH_MS,
                }
            });
            let window = CostWindow {
                start_ms: last_at,
                end_ms: at_ms,
                tiers,
            };
            if inner.windows.len() == inner.capacity {
                inner.windows.remove(0);
            }
            inner.windows.push(window);
            windows_counter().inc();
        }
        inner.last = Some((at_ms, snap.clone()));
    }

    /// Returns a [`tu_obs::SampleObserver`] that feeds this ledger from the
    /// monitor's sampling cadence.
    pub fn observer(self: &Arc<Self>) -> tu_obs::SampleObserver {
        let ledger = Arc::clone(self);
        Arc::new(move |at_ms, snap| ledger.record(at_ms, snap))
    }

    /// The retained windows, oldest first.
    pub fn windows(&self) -> Vec<CostWindow> {
        self.inner.lock().windows.clone()
    }

    /// Sums request/byte counts and $-costs across all retained windows,
    /// per tier. The integer counts equal the `cloud.<tier>.*` counter
    /// deltas between the first and last retained sample.
    pub fn totals(&self) -> [WindowTier; 2] {
        let windows = self.windows();
        let mut out = LEDGER_TIERS.map(|(name, _)| WindowTier {
            tier: name,
            get_requests: 0,
            put_requests: 0,
            delete_requests: 0,
            bytes_read: 0,
            bytes_written: 0,
            used_bytes: 0,
            request_usd: 0.0,
            storage_usd: 0.0,
        });
        for w in &windows {
            for (acc, t) in out.iter_mut().zip(w.tiers.iter()) {
                acc.get_requests += t.get_requests;
                acc.put_requests += t.put_requests;
                acc.delete_requests += t.delete_requests;
                acc.bytes_read += t.bytes_read;
                acc.bytes_written += t.bytes_written;
                acc.used_bytes = t.used_bytes; // level, not a delta: keep latest
                acc.request_usd += t.request_usd;
                acc.storage_usd += t.storage_usd;
            }
        }
        out
    }

    /// Stable JSON rendering: `{"windows":[...],"totals":{...}}`.
    pub fn to_json(&self) -> String {
        fn tier_json(t: &WindowTier) -> String {
            format!(
                "{{\"get_requests\":{},\"put_requests\":{},\"delete_requests\":{},\
                 \"bytes_read\":{},\"bytes_written\":{},\"used_bytes\":{},\
                 \"request_usd\":{:.9},\"storage_usd\":{:.9},\"total_usd\":{:.9}}}",
                t.get_requests,
                t.put_requests,
                t.delete_requests,
                t.bytes_read,
                t.bytes_written,
                t.used_bytes,
                t.request_usd,
                t.storage_usd,
                t.total_usd()
            )
        }
        let windows = self.windows();
        let mut out = String::from("{\"windows\":[");
        for (i, w) in windows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"start_ms\":{},\"end_ms\":{},\"total_usd\":{:.9},\"tiers\":{{",
                w.start_ms,
                w.end_ms,
                w.total_usd()
            ));
            for (j, t) in w.tiers.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":{}", t.tier, tier_json(t)));
            }
            out.push_str("}}");
        }
        out.push_str("],\"totals\":{");
        for (j, t) in self.totals().iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", t.tier, tier_json(t)));
        }
        out.push_str("}}");
        out
    }

    /// Human-readable text table, one row per (window, tier).
    pub fn text_table(&self) -> String {
        let mut out = String::from(
            "start_ms     end_ms       tier    gets     puts     bytes_read   bytes_written  request_usd    storage_usd\n",
        );
        for w in self.windows() {
            for t in &w.tiers {
                out.push_str(&format!(
                    "{:<12} {:<12} {:<7} {:<8} {:<8} {:<12} {:<14} {:<14.9} {:<14.9}\n",
                    w.start_ms,
                    w.end_ms,
                    t.tier,
                    t.get_requests,
                    t.put_requests,
                    t.bytes_read,
                    t.bytes_written,
                    t.request_usd,
                    t.storage_usd
                ));
            }
        }
        let totals = self.totals();
        out.push_str(&format!(
            "TOTAL usd: block={:.9} object={:.9} all={:.9}\n",
            totals[0].total_usd(),
            totals[1].total_usd(),
            totals[0].total_usd() + totals[1].total_usd()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap_with(counters: &[(&str, u64)], gauges: &[(&str, i64)]) -> MetricsSnapshot {
        let mut s = MetricsSnapshot::default();
        for &(k, v) in counters {
            s.counters.insert(k.to_string(), v);
        }
        for &(k, v) in gauges {
            s.gauges.insert(k.to_string(), v);
        }
        s
    }

    #[test]
    fn first_record_is_baseline_only() {
        let ledger = CostLedger::new(4);
        ledger.record(1_000, &snap_with(&[("cloud.object.get_requests", 5)], &[]));
        assert!(ledger.windows().is_empty());
    }

    #[test]
    fn windows_hold_deltas_and_prices() {
        let ledger = CostLedger::new(4);
        ledger.record(0, &snap_with(&[("cloud.object.get_requests", 10)], &[]));
        ledger.record(
            60_000,
            &snap_with(
                &[
                    ("cloud.object.get_requests", 1_010),
                    ("cloud.object.put_requests", 200),
                    ("cloud.block.get_requests", 7),
                ],
                &[("cloud.object.used_bytes", 1 << 30)],
            ),
        );
        let w = ledger.windows();
        assert_eq!(w.len(), 1);
        let obj = &w[0].tiers[1];
        assert_eq!(obj.get_requests, 1_000);
        assert_eq!(obj.put_requests, 200);
        let expect_req = pricing::request_cost_usd(Tier::Object, 1_000, 200);
        assert!((obj.request_usd - expect_req).abs() < 1e-12);
        // 1 GiB for one minute of a 30-day month.
        let expect_store =
            pricing::monthly_cost_usd(Tier::Object, 1 << 30) * 60_000.0 / super::MONTH_MS;
        assert!((obj.storage_usd - expect_store).abs() < 1e-12);
        // Block tier bills no per-request cost (Eq. 3).
        let blk = &w[0].tiers[0];
        assert_eq!(blk.get_requests, 7);
        assert_eq!(blk.request_usd, 0.0);
    }

    #[test]
    fn ring_evicts_oldest_and_totals_accumulate() {
        let ledger = CostLedger::new(2);
        for i in 0..5u64 {
            ledger.record(
                i as i64 * 1_000,
                &snap_with(&[("cloud.block.get_requests", i * 10)], &[]),
            );
        }
        let w = ledger.windows();
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].start_ms, 2_000);
        assert_eq!(w[1].end_ms, 4_000);
        let totals = ledger.totals();
        assert_eq!(totals[0].get_requests, 20, "two retained windows of 10");
    }

    #[test]
    fn json_is_balanced_and_mentions_tiers() {
        let ledger = CostLedger::new(2);
        ledger.record(0, &MetricsSnapshot::default());
        ledger.record(1_000, &MetricsSnapshot::default());
        let json = ledger.to_json();
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes, "balanced braces in {json}");
        assert!(json.contains("\"windows\""));
        assert!(json.contains("\"totals\""));
        assert!(json.contains("\"block\""));
        assert!(json.contains("\"object\""));
        assert!(!ledger.text_table().is_empty());
    }

    #[test]
    fn observer_feeds_ledger() {
        let ledger = CostLedger::new(4);
        let obs = ledger.observer();
        obs(0, &MetricsSnapshot::default());
        obs(500, &MetricsSnapshot::default());
        assert_eq!(ledger.windows().len(), 1);
    }
}
