//! The Figure 1a price sheet: cost per GB-month of RAM, cloud block
//! storage, and cloud object storage.
//!
//! Prices follow the paper's ap-northeast-1 (Tokyo) survey: EBS is ~4×
//! more expensive than S3, and RAM (estimated from the price deltas of t3
//! instances with different memory volumes) is at least two orders of
//! magnitude more expensive than EBS.

/// A storage tier with a price.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Instance memory (estimated from EC2/ElastiCache instance deltas).
    Ram,
    /// Cloud block storage (AWS EBS gp2).
    Block,
    /// Cloud object storage (AWS S3 standard).
    Object,
}

/// USD per GB-month for a tier.
pub fn usd_per_gb_month(tier: Tier) -> f64 {
    match tier {
        Tier::Ram => 14.50,
        Tier::Block => 0.12,
        Tier::Object => 0.025,
    }
}

/// Monthly cost in USD of holding `bytes` on `tier`.
pub fn monthly_cost_usd(tier: Tier, bytes: u64) -> f64 {
    usd_per_gb_month(tier) * bytes as f64 / (1024.0 * 1024.0 * 1024.0)
}

/// USD per GET/read request. Only object storage bills per request (S3
/// standard: $0.0004 per 1000 GETs); EBS and RAM charge capacity only —
/// exactly the asymmetry Eq. 3–6 are built on.
pub fn usd_per_get(tier: Tier) -> f64 {
    match tier {
        Tier::Object => 0.0004 / 1000.0,
        Tier::Ram | Tier::Block => 0.0,
    }
}

/// USD per PUT/write request (S3 standard: $0.005 per 1000 PUTs). Deletes
/// are free on S3 and are priced as such.
pub fn usd_per_put(tier: Tier) -> f64 {
    match tier {
        Tier::Object => 0.005 / 1000.0,
        Tier::Ram | Tier::Block => 0.0,
    }
}

/// Request-traffic cost of a window: Eq. 4/6's per-request terms applied to
/// observed Get/Put counts. Zero for capacity-only tiers.
pub fn request_cost_usd(tier: Tier, gets: u64, puts: u64) -> f64 {
    gets as f64 * usd_per_get(tier) + puts as f64 * usd_per_put(tier)
}

/// The full price sheet, for the Figure 1a report.
pub fn price_sheet() -> Vec<(Tier, &'static str, f64)> {
    vec![
        (
            Tier::Ram,
            "RAM (EC2/ElastiCache estimate)",
            usd_per_gb_month(Tier::Ram),
        ),
        (
            Tier::Block,
            "Block storage (EBS gp2)",
            usd_per_gb_month(Tier::Block),
        ),
        (
            Tier::Object,
            "Object storage (S3 standard)",
            usd_per_gb_month(Tier::Object),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_is_roughly_4x_object() {
        let ratio = usd_per_gb_month(Tier::Block) / usd_per_gb_month(Tier::Object);
        assert!(ratio >= 4.0 && ratio <= 6.0, "EBS/S3 ratio {ratio}");
    }

    #[test]
    fn ram_is_two_orders_over_block() {
        let ratio = usd_per_gb_month(Tier::Ram) / usd_per_gb_month(Tier::Block);
        assert!(ratio >= 100.0, "RAM/EBS ratio {ratio}");
    }

    #[test]
    fn monthly_cost_scales_linearly() {
        let one_gb = monthly_cost_usd(Tier::Object, 1 << 30);
        let ten_gb = monthly_cost_usd(Tier::Object, 10 << 30);
        assert!((ten_gb - 10.0 * one_gb).abs() < 1e-9);
        assert!((one_gb - 0.025).abs() < 1e-9);
    }
}
