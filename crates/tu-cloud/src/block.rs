//! The fast tier: a directory-backed block store modelling AWS EBS.
//!
//! Files are byte-addressable (random-access reads, appends) and charged
//! per-request against the EBS latency model. The store tracks its total
//! occupied bytes because the dynamic-size-control experiments (Figures 18a
//! and 19) constrain exactly this number.

use std::collections::{HashMap, HashSet};
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use tu_common::lockdep::{self, Mutex};

use crate::cost::{CostClock, LatencyModel, StorageStats, TierCounters};
use tu_common::{Error, Result};

/// Directory-backed fast block storage with an EBS-like cost model.
pub struct BlockStore {
    root: PathBuf,
    model: LatencyModel,
    clock: CostClock,
    used_bytes: AtomicU64,
    stats: Stats,
    obs: TierCounters,
    /// Mirrors `used_bytes` into the registry so the cost ledger can price
    /// the capacity term of Eq. 3 from a snapshot alone.
    used_gauge: &'static tu_obs::Gauge,
    /// Files that have been read at least once (first-read penalty applies
    /// to the others), plus the set of known files and their sizes.
    state: Mutex<State>,
}

#[derive(Default)]
struct State {
    sizes: HashMap<String, u64>,
    read_before: HashSet<String>,
}

#[derive(Default)]
struct Stats {
    gets: AtomicU64,
    puts: AtomicU64,
    deletes: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
}

impl BlockStore {
    /// Opens the store rooted at `root`, creating the directory and indexing
    /// any files already present (recovery path).
    pub fn open(root: impl Into<PathBuf>, model: LatencyModel, clock: CostClock) -> Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        let store = BlockStore {
            root,
            model,
            clock,
            used_bytes: AtomicU64::new(0),
            stats: Stats::default(),
            obs: TierCounters::for_tier("block"),
            used_gauge: tu_obs::gauge("cloud.block.used_bytes"),
            state: Mutex::new(&lockdep::CLOUD_BLOCK_STATE, State::default()),
        };
        store.reindex()?;
        Ok(store)
    }

    fn sync_used_gauge(&self) {
        self.used_gauge
            .set(self.used_bytes.load(Ordering::Relaxed) as i64);
    }

    fn reindex(&self) -> Result<()> {
        // Walk the tree before taking the lock: directory I/O under
        // `state` would stall every concurrent reader/writer for the
        // duration of the scan.
        let mut sizes = HashMap::new();
        let mut total = 0;
        let mut stack = vec![self.root.clone()];
        while let Some(dir) = stack.pop() {
            for entry in fs::read_dir(&dir)? {
                let entry = entry?;
                let path = entry.path();
                if path.is_dir() {
                    stack.push(path);
                } else {
                    let len = entry.metadata()?.len();
                    total += len;
                    sizes.insert(self.rel_name(&path), len);
                }
            }
        }
        self.state.lock().sizes = sizes;
        self.used_bytes.store(total, Ordering::Relaxed);
        self.sync_used_gauge();
        Ok(())
    }

    fn rel_name(&self, path: &Path) -> String {
        // Paths reaching here come from walking `self.root`, so the strip
        // always succeeds; fall back to the full path rather than panic.
        path.strip_prefix(&self.root)
            .unwrap_or(path)
            .to_string_lossy()
            .into_owned()
    }

    fn path_of(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    /// Writes (or replaces) an entire file.
    pub fn write_file(&self, name: &str, data: &[u8]) -> Result<()> {
        let path = self.path_of(name);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(&path, data)?;
        let mut state = self.state.lock();
        let old = state.sizes.insert(name.to_string(), data.len() as u64);
        // Rewriting a file invalidates its warm-read state: the next read
        // pays the first-read penalty again, as it would on a fresh EBS
        // block. Without this an overwrite-then-read workload under-counts
        // modelled latency (no request/byte counters are affected).
        state.read_before.remove(name);
        drop(state);
        if let Some(old) = old {
            self.used_bytes.fetch_sub(old, Ordering::Relaxed);
        }
        self.used_bytes
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        self.sync_used_gauge();
        self.stats.puts.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_written
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        self.obs.record_write(data.len() as u64);
        self.clock.charge(self.model.write_ns(data.len() as u64));
        Ok(())
    }

    /// Appends to a file, creating it if absent. Returns the offset at which
    /// the data was written. Used by the write-ahead log.
    pub fn append(&self, name: &str, data: &[u8]) -> Result<u64> {
        let path = self.path_of(name);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let mut f = OpenOptions::new().create(true).append(true).open(&path)?;
        let offset = f.seek(SeekFrom::End(0))?;
        f.write_all(data)?;
        let mut state = self.state.lock();
        *state.sizes.entry(name.to_string()).or_insert(0) += data.len() as u64;
        drop(state);
        self.used_bytes
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        self.sync_used_gauge();
        self.stats.puts.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_written
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        self.obs.record_write(data.len() as u64);
        self.clock.charge(self.model.write_ns(data.len() as u64));
        Ok(offset)
    }

    /// Reads an entire file.
    pub fn read_file(&self, name: &str) -> Result<Vec<u8>> {
        let data = fs::read(self.path_of(name)).map_err(|e| self.map_nf(e, name))?;
        self.charge_read(name, data.len() as u64);
        Ok(data)
    }

    /// Reads `len` bytes at `offset`. Short reads at end-of-file return the
    /// available prefix (callers that require exact lengths check).
    pub fn read_range(&self, name: &str, offset: u64, len: usize) -> Result<Vec<u8>> {
        let mut f = File::open(self.path_of(name)).map_err(|e| self.map_nf(e, name))?;
        f.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len];
        let mut filled = 0;
        while filled < len {
            let n = f.read(&mut buf[filled..])?;
            if n == 0 {
                break;
            }
            filled += n;
        }
        buf.truncate(filled);
        self.charge_read(name, filled as u64);
        Ok(buf)
    }

    /// Reads several `(offset, len)` ranges with a single billable request:
    /// the covering span is fetched once and sliced per range. The SSTable
    /// readahead path uses this to turn a run of adjacent block fetches
    /// into one Get. Ranges past end-of-file yield their available prefix;
    /// an empty range list issues no request at all.
    pub fn read_multi_range(&self, name: &str, ranges: &[(u64, usize)]) -> Result<Vec<Vec<u8>>> {
        let Some(span_start) = ranges.iter().map(|&(o, _)| o).min() else {
            return Ok(Vec::new());
        };
        let span_end = ranges
            .iter()
            .map(|&(o, l)| o + l as u64)
            .max()
            .unwrap_or(span_start);
        let mut f = File::open(self.path_of(name)).map_err(|e| self.map_nf(e, name))?;
        f.seek(SeekFrom::Start(span_start))?;
        let want = (span_end - span_start) as usize;
        let mut buf = vec![0u8; want];
        let mut filled = 0;
        while filled < want {
            let n = f.read(&mut buf[filled..])?;
            if n == 0 {
                break;
            }
            filled += n;
        }
        buf.truncate(filled);
        self.charge_read(name, filled as u64);
        Ok(slice_ranges(&buf, span_start, ranges))
    }

    fn charge_read(&self, name: &str, len: u64) {
        let first = {
            let mut state = self.state.lock();
            state.read_before.insert(name.to_string())
        };
        self.stats.gets.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes_read.fetch_add(len, Ordering::Relaxed);
        self.obs.record_read(len, first);
        self.clock.charge(self.model.read_ns(len, first));
    }

    fn map_nf(&self, e: std::io::Error, name: &str) -> Error {
        if e.kind() == std::io::ErrorKind::NotFound {
            Error::not_found(format!("block file {name}"))
        } else {
            Error::Io(e)
        }
    }

    /// Deletes a file. Deleting a missing file is an error.
    pub fn delete(&self, name: &str) -> Result<()> {
        fs::remove_file(self.path_of(name)).map_err(|e| self.map_nf(e, name))?;
        let mut state = self.state.lock();
        if let Some(len) = state.sizes.remove(name) {
            self.used_bytes.fetch_sub(len, Ordering::Relaxed);
        }
        state.read_before.remove(name);
        drop(state);
        self.sync_used_gauge();
        self.stats.deletes.fetch_add(1, Ordering::Relaxed);
        self.obs.record_delete();
        Ok(())
    }

    /// Size of one file in bytes.
    pub fn len(&self, name: &str) -> Result<u64> {
        self.state
            .lock()
            .sizes
            .get(name)
            .copied()
            .ok_or_else(|| Error::not_found(format!("block file {name}")))
    }

    /// True if the file exists.
    pub fn exists(&self, name: &str) -> bool {
        self.state.lock().sizes.contains_key(name)
    }

    /// All file names with the given prefix, sorted.
    pub fn list_prefix(&self, prefix: &str) -> Vec<String> {
        let state = self.state.lock();
        let mut out: Vec<String> = state
            .sizes
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect();
        out.sort();
        out
    }

    /// Total bytes currently stored — the "EBS usage" the dynamic size
    /// controller constrains.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes.load(Ordering::Relaxed)
    }

    /// Snapshot of the operation counters.
    pub fn stats(&self) -> StorageStats {
        StorageStats {
            get_requests: self.stats.gets.load(Ordering::Relaxed),
            put_requests: self.stats.puts.load(Ordering::Relaxed),
            delete_requests: self.stats.deletes.load(Ordering::Relaxed),
            bytes_read: self.stats.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.stats.bytes_written.load(Ordering::Relaxed),
        }
    }
}

/// Cuts each requested `(offset, len)` range out of a covering-span buffer
/// that starts at absolute offset `span_start`. Shared by the multi-range
/// readers of both tiers.
pub(crate) fn slice_ranges(buf: &[u8], span_start: u64, ranges: &[(u64, usize)]) -> Vec<Vec<u8>> {
    ranges
        .iter()
        .map(|&(o, l)| {
            let rel = (o - span_start) as usize;
            if rel >= buf.len() {
                Vec::new()
            } else {
                buf[rel..(rel + l).min(buf.len())].to_vec()
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::LatencyMode;

    fn store() -> (tempfile::TempDir, BlockStore) {
        let dir = tempfile::tempdir().unwrap();
        let s = BlockStore::open(
            dir.path().join("blk"),
            LatencyModel::ebs(),
            CostClock::new(LatencyMode::Virtual),
        )
        .unwrap();
        (dir, s)
    }

    #[test]
    fn write_read_round_trip() {
        let (_d, s) = store();
        s.write_file("part/sst-1", b"abcdef").unwrap();
        assert_eq!(s.read_file("part/sst-1").unwrap(), b"abcdef");
        assert_eq!(s.len("part/sst-1").unwrap(), 6);
        assert!(s.exists("part/sst-1"));
        assert_eq!(s.used_bytes(), 6);
    }

    #[test]
    fn read_range_handles_offsets_and_eof() {
        let (_d, s) = store();
        s.write_file("f", b"0123456789").unwrap();
        assert_eq!(s.read_range("f", 2, 3).unwrap(), b"234");
        assert_eq!(s.read_range("f", 8, 10).unwrap(), b"89");
        assert_eq!(s.read_range("f", 20, 4).unwrap(), b"");
    }

    #[test]
    fn multi_range_read_bills_one_request() {
        let (_d, s) = store();
        s.write_file("f", b"0123456789abcdef").unwrap();
        let before = s.stats();
        let parts = s.read_multi_range("f", &[(0, 4), (4, 4), (8, 4)]).unwrap();
        assert_eq!(
            parts,
            vec![b"0123".to_vec(), b"4567".to_vec(), b"89ab".to_vec()]
        );
        let d = s.stats().since(&before);
        assert_eq!(d.get_requests, 1, "coalesced ranges share one request");
        assert_eq!(d.bytes_read, 12);
        // Past-EOF ranges degrade to their available prefix, empty input is free.
        let tail = s.read_multi_range("f", &[(14, 8), (30, 4)]).unwrap();
        assert_eq!(tail, vec![b"ef".to_vec(), Vec::new()]);
        assert!(s.read_multi_range("f", &[]).unwrap().is_empty());
        assert_eq!(s.stats().since(&before).get_requests, 2);
    }

    #[test]
    fn append_accumulates_and_returns_offset() {
        let (_d, s) = store();
        assert_eq!(s.append("wal", b"aaa").unwrap(), 0);
        assert_eq!(s.append("wal", b"bb").unwrap(), 3);
        assert_eq!(s.read_file("wal").unwrap(), b"aaabb");
        assert_eq!(s.used_bytes(), 5);
    }

    #[test]
    fn overwrite_updates_usage() {
        let (_d, s) = store();
        s.write_file("f", &[0u8; 100]).unwrap();
        s.write_file("f", &[0u8; 40]).unwrap();
        assert_eq!(s.used_bytes(), 40);
    }

    #[test]
    fn delete_frees_usage_and_missing_is_not_found() {
        let (_d, s) = store();
        s.write_file("f", b"xyz").unwrap();
        s.delete("f").unwrap();
        assert_eq!(s.used_bytes(), 0);
        assert!(!s.exists("f"));
        assert!(s.read_file("f").unwrap_err().is_not_found());
        assert!(s.delete("f").unwrap_err().is_not_found());
    }

    #[test]
    fn list_prefix_is_sorted_and_filtered() {
        let (_d, s) = store();
        for n in ["l0/b", "l0/a", "l1/c"] {
            s.write_file(n, b"x").unwrap();
        }
        assert_eq!(s.list_prefix("l0/"), vec!["l0/a", "l0/b"]);
        assert_eq!(s.list_prefix(""), vec!["l0/a", "l0/b", "l1/c"]);
    }

    #[test]
    fn reopen_reindexes_existing_files() {
        let dir = tempfile::tempdir().unwrap();
        let clock = CostClock::new(LatencyMode::Off);
        {
            let s = BlockStore::open(dir.path().join("blk"), LatencyModel::ebs(), clock.clone())
                .unwrap();
            s.write_file("sub/keep", b"abcd").unwrap();
        }
        let s = BlockStore::open(dir.path().join("blk"), LatencyModel::ebs(), clock).unwrap();
        assert_eq!(s.used_bytes(), 4);
        assert_eq!(s.read_file("sub/keep").unwrap(), b"abcd");
    }

    #[test]
    fn first_read_charges_more_than_second() {
        let (_d, s) = store();
        s.write_file("f", &[1u8; 1024]).unwrap();
        let before = s.stats();
        let t0 = {
            let start = clock_of(&s);
            s.read_file("f").unwrap();
            clock_of(&s) - start
        };
        let t1 = {
            let start = clock_of(&s);
            s.read_file("f").unwrap();
            clock_of(&s) - start
        };
        assert!(t0 > t1, "first read {t0}ns should exceed second {t1}ns");
        let delta = s.stats().since(&before);
        assert_eq!(delta.get_requests, 2);
        assert_eq!(delta.bytes_read, 2048);
    }

    fn clock_of(s: &BlockStore) -> u64 {
        s.clock.virtual_ns()
    }

    #[test]
    fn overwrite_resets_first_read_penalty() {
        // Regression: rewriting a file must drop its warm-read state so the
        // next read is charged as a first (cold) read again.
        let (_d, s) = store();
        s.write_file("f", &[0u8; 512]).unwrap();
        s.read_file("f").unwrap();
        let t0 = clock_of(&s);
        s.read_file("f").unwrap();
        let warm = clock_of(&s) - t0;
        s.write_file("f", &[1u8; 512]).unwrap();
        let t1 = clock_of(&s);
        s.read_file("f").unwrap();
        let cold = clock_of(&s) - t1;
        assert!(cold > warm, "cold {cold}ns must exceed warm {warm}ns");
    }

    #[test]
    fn append_keeps_warm_read_state() {
        // Appending extends the file without rewriting the already-read
        // prefix, so warm-read state is retained (the WAL append path must
        // not re-trigger the penalty on every replay read).
        let (_d, s) = store();
        s.append("wal", &[0u8; 256]).unwrap();
        s.read_file("wal").unwrap(); // cold
        s.append("wal", &[0u8; 256]).unwrap();
        let t0 = clock_of(&s);
        s.read_file("wal").unwrap();
        let after_append = clock_of(&s) - t0;
        assert_eq!(after_append, LatencyModel::ebs().read_ns(512, false));
    }
}
