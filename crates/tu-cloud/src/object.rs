//! The slow tier: a directory-backed object store modelling AWS S3.
//!
//! Objects are written and deleted whole; reads are whole-object GETs or
//! range GETs (S3 supports `Range:` headers — the paper charges one Get
//! request per SSTable data block fetched, Equations 4/6). Every operation
//! pays the S3 latency model, and Get/Put counters are exposed because
//! request traffic is the quantity the time-partitioned tree is designed to
//! minimize (§3.3 "Compaction cost analysis").

use std::collections::HashMap;
use std::fs::{self, File};
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use tu_common::lockdep::{self, Mutex};

use crate::cost::{CostClock, LatencyModel, StorageStats, TierCounters};
use tu_common::{Error, Result};

/// Directory-backed slow object storage with an S3-like cost model.
pub struct ObjectStore {
    root: PathBuf,
    model: LatencyModel,
    clock: CostClock,
    stats: Stats,
    obs: TierCounters,
    used_bytes: AtomicU64,
    /// Mirrors `used_bytes` into the registry so the cost ledger can price
    /// the capacity term of Eq. 4 from a snapshot alone.
    used_gauge: &'static tu_obs::Gauge,
    state: Mutex<State>,
}

#[derive(Default)]
struct State {
    sizes: HashMap<String, u64>,
    read_before: std::collections::HashSet<String>,
}

#[derive(Default)]
struct Stats {
    gets: AtomicU64,
    puts: AtomicU64,
    deletes: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
}

impl ObjectStore {
    /// Opens the store rooted at `root`, indexing existing objects.
    pub fn open(root: impl Into<PathBuf>, model: LatencyModel, clock: CostClock) -> Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        let store = ObjectStore {
            root,
            model,
            clock,
            stats: Stats::default(),
            obs: TierCounters::for_tier("object"),
            used_bytes: AtomicU64::new(0),
            used_gauge: tu_obs::gauge("cloud.object.used_bytes"),
            state: Mutex::new(&lockdep::CLOUD_OBJECT_STATE, State::default()),
        };
        store.reindex()?;
        Ok(store)
    }

    fn sync_used_gauge(&self) {
        self.used_gauge
            .set(self.used_bytes.load(Ordering::Relaxed) as i64);
    }

    fn reindex(&self) -> Result<()> {
        // Walk the tree before taking the lock: directory I/O under
        // `state` would stall every concurrent reader/writer for the
        // duration of the scan.
        let mut sizes = HashMap::new();
        let mut total = 0;
        let mut stack = vec![self.root.clone()];
        while let Some(dir) = stack.pop() {
            for entry in fs::read_dir(&dir)? {
                let entry = entry?;
                let path = entry.path();
                if path.is_dir() {
                    stack.push(path);
                } else {
                    let len = entry.metadata()?.len();
                    total += len;
                    sizes.insert(self.rel_name(&path), len);
                }
            }
        }
        self.state.lock().sizes = sizes;
        self.used_bytes.store(total, Ordering::Relaxed);
        self.sync_used_gauge();
        Ok(())
    }

    fn rel_name(&self, path: &Path) -> String {
        // Paths reaching here come from walking `self.root`, so the strip
        // always succeeds; fall back to the full path rather than panic.
        path.strip_prefix(&self.root)
            .unwrap_or(path)
            .to_string_lossy()
            .into_owned()
    }

    fn path_of(&self, key: &str) -> PathBuf {
        self.root.join(key)
    }

    /// Uploads an object (PUT). Replaces any existing object at `key`.
    pub fn put(&self, key: &str, data: &[u8]) -> Result<()> {
        let path = self.path_of(key);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(&path, data)?;
        let old = {
            let mut state = self.state.lock();
            let old = state.sizes.insert(key.to_string(), data.len() as u64);
            // A PUT replaces the object's content, so the next read is a
            // first read again (cold fetch); leaving the key in
            // `read_before` would skip the first-read penalty and
            // under-charge Figure 1c's model on overwrite-heavy workloads.
            state.read_before.remove(key);
            old
        };
        if let Some(old) = old {
            self.used_bytes.fetch_sub(old, Ordering::Relaxed);
        }
        self.used_bytes
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        self.sync_used_gauge();
        self.stats.puts.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_written
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        self.obs.record_write(data.len() as u64);
        self.clock.charge(self.model.write_ns(data.len() as u64));
        Ok(())
    }

    /// Downloads a whole object (GET).
    pub fn get(&self, key: &str) -> Result<Vec<u8>> {
        let data = fs::read(self.path_of(key)).map_err(|e| self.map_nf(e, key))?;
        self.charge_get(key, data.len() as u64);
        Ok(data)
    }

    /// Range GET: `len` bytes starting at `offset`. One billable Get
    /// request, regardless of length. Short reads at end-of-object return
    /// the available prefix.
    pub fn get_range(&self, key: &str, offset: u64, len: usize) -> Result<Vec<u8>> {
        let mut f = File::open(self.path_of(key)).map_err(|e| self.map_nf(e, key))?;
        f.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len];
        let mut filled = 0;
        while filled < len {
            let n = f.read(&mut buf[filled..])?;
            if n == 0 {
                break;
            }
            filled += n;
        }
        buf.truncate(filled);
        self.charge_get(key, filled as u64);
        Ok(buf)
    }

    /// Multi-range GET: several `(offset, len)` ranges served by one
    /// billable request — the covering span is fetched once and sliced per
    /// range, the way an HTTP multipart range GET is billed. This is what
    /// makes coalesced SSTable readahead cheaper under Equations 4/6: a run
    /// of adjacent blocks costs one Get instead of one per block. Ranges
    /// past end-of-object yield their available prefix; an empty range list
    /// issues no request.
    pub fn get_multi_range(&self, key: &str, ranges: &[(u64, usize)]) -> Result<Vec<Vec<u8>>> {
        let Some(span_start) = ranges.iter().map(|&(o, _)| o).min() else {
            return Ok(Vec::new());
        };
        let span_end = ranges
            .iter()
            .map(|&(o, l)| o + l as u64)
            .max()
            .unwrap_or(span_start);
        let mut f = File::open(self.path_of(key)).map_err(|e| self.map_nf(e, key))?;
        f.seek(SeekFrom::Start(span_start))?;
        let want = (span_end - span_start) as usize;
        let mut buf = vec![0u8; want];
        let mut filled = 0;
        while filled < want {
            let n = f.read(&mut buf[filled..])?;
            if n == 0 {
                break;
            }
            filled += n;
        }
        buf.truncate(filled);
        self.charge_get(key, filled as u64);
        Ok(crate::block::slice_ranges(&buf, span_start, ranges))
    }

    fn charge_get(&self, key: &str, len: u64) {
        let first = {
            let mut state = self.state.lock();
            state.read_before.insert(key.to_string())
        };
        self.stats.gets.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes_read.fetch_add(len, Ordering::Relaxed);
        self.obs.record_read(len, first);
        self.clock.charge(self.model.read_ns(len, first));
    }

    fn map_nf(&self, e: std::io::Error, key: &str) -> Error {
        if e.kind() == std::io::ErrorKind::NotFound {
            Error::not_found(format!("object {key}"))
        } else {
            Error::Io(e)
        }
    }

    /// Deletes an object. Idempotent like S3: deleting a missing key is OK.
    pub fn delete(&self, key: &str) -> Result<()> {
        match fs::remove_file(self.path_of(key)) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        let mut state = self.state.lock();
        let old = state.sizes.remove(key);
        state.read_before.remove(key);
        drop(state);
        if let Some(old) = old {
            self.used_bytes.fetch_sub(old, Ordering::Relaxed);
        }
        self.sync_used_gauge();
        self.stats.deletes.fetch_add(1, Ordering::Relaxed);
        self.obs.record_delete();
        Ok(())
    }

    /// Size of an object in bytes.
    pub fn len(&self, key: &str) -> Result<u64> {
        self.state
            .lock()
            .sizes
            .get(key)
            .copied()
            .ok_or_else(|| Error::not_found(format!("object {key}")))
    }

    /// True if the object exists.
    pub fn exists(&self, key: &str) -> bool {
        self.state.lock().sizes.contains_key(key)
    }

    /// All keys with the given prefix, sorted (LIST, uncharged — the paper's
    /// cost model only counts data traffic).
    pub fn list_prefix(&self, prefix: &str) -> Vec<String> {
        let state = self.state.lock();
        let mut out: Vec<String> = state
            .sizes
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect();
        out.sort();
        out
    }

    /// Total bytes stored across all objects.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes.load(Ordering::Relaxed)
    }

    /// Snapshot of the operation counters.
    pub fn stats(&self) -> StorageStats {
        StorageStats {
            get_requests: self.stats.gets.load(Ordering::Relaxed),
            put_requests: self.stats.puts.load(Ordering::Relaxed),
            delete_requests: self.stats.deletes.load(Ordering::Relaxed),
            bytes_read: self.stats.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.stats.bytes_written.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::LatencyMode;

    fn store() -> (tempfile::TempDir, ObjectStore) {
        let dir = tempfile::tempdir().unwrap();
        let s = ObjectStore::open(
            dir.path().join("obj"),
            LatencyModel::s3(),
            CostClock::new(LatencyMode::Virtual),
        )
        .unwrap();
        (dir, s)
    }

    #[test]
    fn put_get_round_trip() {
        let (_d, s) = store();
        s.put("l2/part-0/sst-3", b"payload").unwrap();
        assert_eq!(s.get("l2/part-0/sst-3").unwrap(), b"payload");
        assert_eq!(s.len("l2/part-0/sst-3").unwrap(), 7);
        assert_eq!(s.used_bytes(), 7);
    }

    #[test]
    fn range_get_counts_one_request() {
        let (_d, s) = store();
        s.put("k", b"0123456789").unwrap();
        let before = s.stats();
        assert_eq!(s.get_range("k", 4, 3).unwrap(), b"456");
        let d = s.stats().since(&before);
        assert_eq!(d.get_requests, 1);
        assert_eq!(d.bytes_read, 3);
    }

    #[test]
    fn multi_range_get_counts_one_request() {
        let (_d, s) = store();
        s.put("k", b"0123456789").unwrap();
        let before = s.stats();
        let parts = s.get_multi_range("k", &[(2, 3), (5, 3)]).unwrap();
        assert_eq!(parts, vec![b"234".to_vec(), b"567".to_vec()]);
        let d = s.stats().since(&before);
        assert_eq!(d.get_requests, 1, "coalesced ranges share one request");
        assert_eq!(d.bytes_read, 6);
        assert!(s.get_multi_range("k", &[]).unwrap().is_empty());
        assert_eq!(s.stats().since(&before).get_requests, 1);
    }

    #[test]
    fn missing_object_is_not_found_but_delete_is_idempotent() {
        let (_d, s) = store();
        assert!(s.get("nope").unwrap_err().is_not_found());
        s.delete("nope").unwrap();
        assert_eq!(s.stats().delete_requests, 1);
    }

    #[test]
    fn list_prefix_sorted() {
        let (_d, s) = store();
        for k in ["p/2", "p/1", "q/3"] {
            s.put(k, b"x").unwrap();
        }
        assert_eq!(s.list_prefix("p/"), vec!["p/1", "p/2"]);
    }

    #[test]
    fn per_request_cost_dominates_for_small_objects() {
        // Two small GETs should cost roughly twice one GET: latency is
        // per-request, not per-byte, below the 16 KiB knee.
        let (_d, s) = store();
        s.put("a", &[0u8; 64]).unwrap();
        s.put("b", &[0u8; 8192]).unwrap();
        s.get("a").unwrap(); // absorb first-read penalties
        s.get("b").unwrap();
        let t0 = s.clock.virtual_ns();
        s.get("a").unwrap();
        let small = s.clock.virtual_ns() - t0;
        let t1 = s.clock.virtual_ns();
        s.get("b").unwrap();
        let large = s.clock.virtual_ns() - t1;
        assert_eq!(small, large, "flat latency below the knee");
    }

    #[test]
    fn overwrite_resets_first_read_penalty() {
        // Regression: a PUT over an existing key replaces its content, so
        // the next GET must pay the first-read penalty again. Before the
        // fix, `read_before` survived overwrites and the re-read was
        // charged as warm.
        let (_d, s) = store();
        s.put("k", &[0u8; 256]).unwrap();
        s.get("k").unwrap(); // first read: cold
        let t0 = s.clock.virtual_ns();
        s.get("k").unwrap(); // warm
        let warm = s.clock.virtual_ns() - t0;
        s.put("k", &[1u8; 256]).unwrap(); // overwrite invalidates warmth
        let t1 = s.clock.virtual_ns();
        s.get("k").unwrap();
        let after_overwrite = s.clock.virtual_ns() - t1;
        assert!(
            after_overwrite > warm,
            "re-read after overwrite must be cold: {after_overwrite}ns vs warm {warm}ns"
        );
    }

    #[test]
    fn range_reads_of_same_object_pay_penalty_once() {
        // Multiple ranged GETs of one (unmodified) object are billed one
        // request each, but only the first is a cold read.
        let (_d, s) = store();
        s.put("k", &[0u8; 8192]).unwrap();
        let before = s.stats();
        s.get_range("k", 0, 1024).unwrap();
        let t0 = s.clock.virtual_ns();
        s.get_range("k", 1024, 1024).unwrap();
        s.get_range("k", 2048, 1024).unwrap();
        let warm_pair = s.clock.virtual_ns() - t0;
        let d = s.stats().since(&before);
        assert_eq!(d.get_requests, 3, "one billable Get per range");
        assert_eq!(d.bytes_read, 3 * 1024);
        // Two warm requests together cost less than cold + warm.
        let m = LatencyModel::s3();
        assert_eq!(warm_pair, 2 * m.read_ns(1024, false));
    }

    #[test]
    fn reopen_reindexes() {
        let dir = tempfile::tempdir().unwrap();
        let clock = CostClock::new(LatencyMode::Off);
        {
            let s =
                ObjectStore::open(dir.path().join("o"), LatencyModel::s3(), clock.clone()).unwrap();
            s.put("x/y", b"abc").unwrap();
        }
        let s = ObjectStore::open(dir.path().join("o"), LatencyModel::s3(), clock).unwrap();
        assert!(s.exists("x/y"));
        assert_eq!(s.used_bytes(), 3);
    }
}
