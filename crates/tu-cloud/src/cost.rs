//! Latency models and the virtual cost clock.
//!
//! Each storage tier charges requests according to a [`LatencyModel`]
//! calibrated to the paper's §2.1 measurements. Charges are accumulated on a
//! shared [`CostClock`], which either (a) only tracks *virtual* nanoseconds
//! (deterministic, the default for the figure harness), (b) additionally
//! sleeps a scaled-down real duration (for end-to-end throughput runs where
//! background threads must actually contend), or (c) is disabled.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How modelled latency is applied.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LatencyMode {
    /// No accounting at all (pure-correctness tests).
    Off,
    /// Accumulate virtual nanoseconds only. Deterministic and fast.
    Virtual,
    /// Accumulate virtual nanoseconds *and* sleep `scale` × the modelled
    /// duration (e.g. `0.01` compresses a 30 ms S3 GET to 300 µs).
    Sleep(f64),
}

/// Per-tier latency/bandwidth parameters.
///
/// The modelled duration of a request of `size` bytes is
/// `base + max(0, size - free_bytes) / bandwidth`, where `free_bytes`
/// captures the paper's observation that read latency is flat below 16 KiB.
/// The first read of an object multiplies `base` by `first_read_factor`
/// (Figure 1c: 1.8× for EBS, 1.71× for S3).
#[derive(Debug, Clone, Copy)]
pub struct LatencyModel {
    /// Fixed per-request latency for reads, in nanoseconds.
    pub read_base_ns: u64,
    /// Fixed per-request latency for writes, in nanoseconds.
    pub write_base_ns: u64,
    /// Sustained throughput in bytes per second.
    pub bandwidth_bps: u64,
    /// Bytes included in the base latency (the flat-latency knee).
    pub free_bytes: u64,
    /// Multiplier on `read_base_ns` for the first read of an object.
    pub first_read_factor: f64,
}

impl LatencyModel {
    /// EBS gp2-like parameters (Figure 1b/1c): ~100 µs request latency,
    /// ~250 MB/s, flat below 16 KiB, first read 1.8× slower.
    pub fn ebs() -> Self {
        LatencyModel {
            read_base_ns: 100_000,
            write_base_ns: 120_000,
            bandwidth_bps: 250 * 1024 * 1024,
            free_bytes: 16 * 1024,
            first_read_factor: 1.8,
        }
    }

    /// Same-region S3-like parameters: ~20 ms GET / ~40 ms PUT request
    /// latency, ~100 MB/s per stream, flat below 16 KiB, first read 1.71×.
    pub fn s3() -> Self {
        LatencyModel {
            read_base_ns: 20_000_000,
            write_base_ns: 40_000_000,
            bandwidth_bps: 100 * 1024 * 1024,
            free_bytes: 16 * 1024,
            first_read_factor: 1.71,
        }
    }

    /// Modelled duration of a read of `size` bytes.
    pub fn read_ns(&self, size: u64, first_read: bool) -> u64 {
        let base = if first_read {
            (self.read_base_ns as f64 * self.first_read_factor) as u64
        } else {
            self.read_base_ns
        };
        base + self.transfer_ns(size)
    }

    /// Modelled duration of a write of `size` bytes.
    pub fn write_ns(&self, size: u64) -> u64 {
        self.write_base_ns + self.transfer_ns(size)
    }

    fn transfer_ns(&self, size: u64) -> u64 {
        let billed = size.saturating_sub(self.free_bytes);
        // ns = bytes / (bytes/s) * 1e9, computed in u128 to avoid overflow.
        ((billed as u128 * 1_000_000_000) / self.bandwidth_bps as u128) as u64
    }
}

/// The per-tier request/byte counters of one store, mirrored into the
/// global `tu-obs` registry under `cloud.<tier>.*` names so experiment
/// harnesses can read one [`tu_obs::MetricsSnapshot`] for everything.
///
/// Each store keeps its own local [`StorageStats`] too: the local stats
/// isolate one store instance, while the registry aggregates across every
/// store in the process (in single-store runs the two agree exactly —
/// `tests/obs_matches_stats.rs` pins that equality).
///
/// The counters are [`tu_obs::TracedCounter`]s: every charge also lands on
/// the active trace context, so a profiled query knows exactly how many
/// billable Gets and bytes each tier charged it (Eq. 4/6 per operation).
///
/// Every charge is also mirrored into the partition heat registry
/// ([`tu_obs::heat`]) through the same call, so per-partition heat totals
/// equal the `cloud.<tier>.*` counter deltas *exactly* — the invariant
/// `tests/introspection.rs` pins. Charges made while no partition guard is
/// installed (WAL, manifest, catalog IO) land in the heat registry's
/// unattributed bucket, keeping the totals balanced either way.
pub(crate) struct TierCounters {
    tier: &'static str,
    gets: tu_obs::TracedCounter,
    puts: tu_obs::TracedCounter,
    deletes: tu_obs::TracedCounter,
    bytes_read: tu_obs::TracedCounter,
    bytes_written: tu_obs::TracedCounter,
    first_reads: tu_obs::TracedCounter,
}

/// Attribution-quality counters: how much cloud traffic carried a partition
/// attribution versus fell through to the heat catch-all bucket. These let
/// dashboards (and the lint self-test) verify attribution coverage without
/// walking the heat map.
struct HeatObs {
    attributed_requests: tu_obs::TracedCounter,
    attributed_bytes: tu_obs::TracedCounter,
    unattributed_requests: tu_obs::TracedCounter,
    unattributed_bytes: tu_obs::TracedCounter,
}

fn heat_obs() -> &'static HeatObs {
    static OBS: std::sync::OnceLock<HeatObs> = std::sync::OnceLock::new();
    OBS.get_or_init(|| HeatObs {
        attributed_requests: tu_obs::traced("heat.attributed.requests"),
        attributed_bytes: tu_obs::traced("heat.attributed.bytes"),
        unattributed_requests: tu_obs::traced("heat.unattributed.requests"),
        unattributed_bytes: tu_obs::traced("heat.unattributed.bytes"),
    })
}

fn charge_heat_quality(attributed: bool, requests: u64, bytes: u64) {
    let obs = heat_obs();
    if attributed {
        obs.attributed_requests.add(requests);
        obs.attributed_bytes.add(bytes);
    } else {
        obs.unattributed_requests.add(requests);
        obs.unattributed_bytes.add(bytes);
    }
}

impl TierCounters {
    /// Resolves the `cloud.<tier>.*` counters from the global registry.
    pub fn for_tier(tier: &str) -> Self {
        // The heat registry keys tiers by `&'static str`; both stores use
        // one of the two canonical names.
        let tier_name: &'static str = if tier == "block" { "block" } else { "object" };
        TierCounters {
            tier: tier_name,
            gets: tu_obs::traced(&format!("cloud.{tier}.get_requests")),
            puts: tu_obs::traced(&format!("cloud.{tier}.put_requests")),
            deletes: tu_obs::traced(&format!("cloud.{tier}.delete_requests")),
            bytes_read: tu_obs::traced(&format!("cloud.{tier}.bytes_read")),
            bytes_written: tu_obs::traced(&format!("cloud.{tier}.bytes_written")),
            first_reads: tu_obs::traced(&format!("cloud.{tier}.first_reads")),
        }
    }

    /// Charges one read request of `bytes` (plus the first-read marker) to
    /// the registry, the active trace, and the partition heat map.
    ///
    /// Charges made inside a self-monitoring scope (the embedded telemetry
    /// engine's own I/O) are diverted to `obs.selfmon.diverted.*` instead —
    /// the primary engine's accounting must never observe the observer.
    pub fn record_read(&self, bytes: u64, first: bool) {
        if tu_obs::selfmon::active() {
            tu_obs::selfmon::note_diverted(1, bytes);
            return;
        }
        self.gets.inc();
        self.bytes_read.add(bytes);
        if first {
            self.first_reads.inc();
        }
        let attributed = tu_obs::heat::record_read(self.tier, 1, bytes, first as u64);
        charge_heat_quality(attributed, 1, bytes);
    }

    /// Charges one write request of `bytes`.
    pub fn record_write(&self, bytes: u64) {
        if tu_obs::selfmon::active() {
            tu_obs::selfmon::note_diverted(1, bytes);
            return;
        }
        self.puts.inc();
        self.bytes_written.add(bytes);
        let attributed = tu_obs::heat::record_write(self.tier, 1, bytes);
        charge_heat_quality(attributed, 1, bytes);
    }

    /// Charges one delete request.
    pub fn record_delete(&self) {
        if tu_obs::selfmon::active() {
            tu_obs::selfmon::note_diverted(1, 0);
            return;
        }
        self.deletes.inc();
        let attributed = tu_obs::heat::record_delete(self.tier, 1);
        charge_heat_quality(attributed, 1, 0);
    }
}

/// Per-tier operation counters, snapshotted by experiments.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StorageStats {
    pub get_requests: u64,
    pub put_requests: u64,
    pub delete_requests: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
}

impl StorageStats {
    /// Difference since an earlier snapshot.
    pub fn since(&self, earlier: &StorageStats) -> StorageStats {
        StorageStats {
            get_requests: self.get_requests - earlier.get_requests,
            put_requests: self.put_requests - earlier.put_requests,
            delete_requests: self.delete_requests - earlier.delete_requests,
            bytes_read: self.bytes_read - earlier.bytes_read,
            bytes_written: self.bytes_written - earlier.bytes_written,
        }
    }
}

#[derive(Default)]
struct ClockInner {
    virtual_ns: AtomicU64,
}

/// Shared accumulator of modelled storage time.
///
/// Cloning shares the accumulator; the block and object tiers of one
/// [`crate::StorageEnv`] charge the same clock so an experiment can read one
/// total. Use [`CostClock::virtual_ns`] snapshots around an operation to
/// attribute cost to it (single-threaded measurement sections).
#[derive(Clone)]
pub struct CostClock {
    inner: Arc<ClockInner>,
    mode: LatencyMode,
}

impl CostClock {
    pub fn new(mode: LatencyMode) -> Self {
        CostClock {
            inner: Arc::new(ClockInner::default()),
            mode,
        }
    }

    pub fn mode(&self) -> LatencyMode {
        self.mode
    }

    /// Charges `ns` of modelled time (and sleeps if in sleep mode).
    pub fn charge(&self, ns: u64) {
        match self.mode {
            LatencyMode::Off => {}
            LatencyMode::Virtual => {
                self.inner.virtual_ns.fetch_add(ns, Ordering::Relaxed);
            }
            LatencyMode::Sleep(scale) => {
                self.inner.virtual_ns.fetch_add(ns, Ordering::Relaxed);
                let real = (ns as f64 * scale) as u64;
                if real > 0 {
                    std::thread::sleep(Duration::from_nanos(real));
                }
            }
        }
    }

    /// Total modelled nanoseconds charged so far.
    pub fn virtual_ns(&self) -> u64 {
        self.inner.virtual_ns.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for CostClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CostClock")
            .field("mode", &self.mode)
            .field("virtual_ns", &self.virtual_ns())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_reads_have_flat_latency() {
        let m = LatencyModel::ebs();
        assert_eq!(m.read_ns(1, false), m.read_ns(16 * 1024, false));
        assert!(m.read_ns(17 * 1024, false) > m.read_ns(16 * 1024, false));
    }

    #[test]
    fn first_read_penalty_applies() {
        let m = LatencyModel::s3();
        let first = m.read_ns(4096, true);
        let later = m.read_ns(4096, false);
        assert!(first > later);
        assert!((first as f64 / later as f64 - 1.71).abs() < 0.01);
    }

    #[test]
    fn small_write_gap_is_orders_of_magnitude() {
        // Figure 1b: for small writes EBS is ≥3 orders of magnitude faster.
        let ebs = LatencyModel::ebs().write_ns(4);
        let s3 = LatencyModel::s3().write_ns(4);
        assert!(s3 / ebs >= 100, "s3 {s3} vs ebs {ebs}");
    }

    #[test]
    fn large_write_gap_shrinks_with_size() {
        // Figure 1b: the gap narrows as write size grows (bandwidth term
        // dominates), approaching the bandwidth ratio.
        let small_gap =
            LatencyModel::s3().write_ns(4) as f64 / LatencyModel::ebs().write_ns(4) as f64;
        let sz = 32 * 1024 * 1024;
        let big_gap =
            LatencyModel::s3().write_ns(sz) as f64 / LatencyModel::ebs().write_ns(sz) as f64;
        assert!(big_gap < small_gap / 10.0);
        assert!(big_gap >= 2.0, "EBS still ~3x faster at 32MB: {big_gap}");
    }

    #[test]
    fn cost_clock_accumulates_in_virtual_mode() {
        let c = CostClock::new(LatencyMode::Virtual);
        let c2 = c.clone();
        c.charge(100);
        c2.charge(50);
        assert_eq!(c.virtual_ns(), 150);
    }

    #[test]
    fn cost_clock_off_mode_ignores_charges() {
        let c = CostClock::new(LatencyMode::Off);
        c.charge(1_000_000);
        assert_eq!(c.virtual_ns(), 0);
    }

    #[test]
    fn stats_since_subtracts() {
        let a = StorageStats {
            get_requests: 10,
            put_requests: 4,
            delete_requests: 1,
            bytes_read: 100,
            bytes_written: 50,
        };
        let b = StorageStats {
            get_requests: 3,
            put_requests: 1,
            delete_requests: 0,
            bytes_read: 20,
            bytes_written: 5,
        };
        let d = a.since(&b);
        assert_eq!(d.get_requests, 7);
        assert_eq!(d.bytes_written, 45);
    }
}
