//! Simulated hybrid cloud storage for TimeUnion.
//!
//! The paper deploys on AWS with EBS (fast block storage) and S3 (slow
//! object storage). This crate provides directory-backed stand-ins whose
//! *cost behaviour* is calibrated to the measurements in §2.1 / Figure 1 of
//! the paper:
//!
//! * [`block::BlockStore`] — byte-addressable files, microsecond-scale
//!   request latency, high bandwidth, a first-read penalty, and usage
//!   accounting (the "EBS limit" experiments need the occupied size).
//! * [`object::ObjectStore`] — whole-object / range GETs and PUTs with
//!   tens-of-milliseconds per-request latency and Get/Put request counters
//!   (Equations 4/6 charge one Get per SSTable data block).
//! * [`cost`] — the latency models and the virtual [`cost::CostClock`] that
//!   accumulates modelled storage time deterministically.
//! * [`pricing`] — the Figure 1a price sheet (RAM vs. EBS vs. S3) plus the
//!   per-request prices Eq. 4/6 charge on object storage.
//! * [`ledger`] — the windowed [`ledger::CostLedger`]: periodic counter
//!   snapshots priced into a per-window, per-tier $-decomposition.
//!
//! Data lives in real files under a root directory, so large datasets do not
//! inflate the heap-memory measurements of the engines above.

pub mod block;
pub mod cost;
pub mod ledger;
pub mod object;
pub mod pricing;

use std::path::Path;
use std::sync::Arc;

use crate::block::BlockStore;
use crate::cost::{CostClock, LatencyMode, LatencyModel};
use crate::object::ObjectStore;
use tu_common::Result;

/// A bundled hybrid storage environment: one fast tier and one slow tier
/// sharing a cost clock, as a TimeUnion deployment would attach one EBS
/// volume and one S3 bucket.
#[derive(Clone)]
pub struct StorageEnv {
    pub block: Arc<BlockStore>,
    pub object: Arc<ObjectStore>,
    pub clock: CostClock,
}

impl StorageEnv {
    /// Opens (creating if needed) a storage environment rooted at `dir`,
    /// with `block/` and `object/` subdirectories.
    pub fn open(dir: impl AsRef<Path>, mode: LatencyMode) -> Result<Self> {
        Self::open_with_models(dir, mode, LatencyModel::ebs(), LatencyModel::s3())
    }

    /// Opens an environment with explicit latency models per tier. The
    /// EBS-only evaluation (Figure 17) uses this with the EBS model on
    /// *both* tiers, emulating all data living on block storage.
    pub fn open_with_models(
        dir: impl AsRef<Path>,
        mode: LatencyMode,
        block_model: LatencyModel,
        object_model: LatencyModel,
    ) -> Result<Self> {
        let dir = dir.as_ref();
        let clock = CostClock::new(mode);
        let block = Arc::new(BlockStore::open(
            dir.join("block"),
            block_model,
            clock.clone(),
        )?);
        let object = Arc::new(ObjectStore::open(
            dir.join("object"),
            object_model,
            clock.clone(),
        )?);
        Ok(StorageEnv {
            block,
            object,
            clock,
        })
    }

    /// Opens an environment with latency modelling disabled — fastest, for
    /// tests that only care about correctness.
    pub fn open_unmetered(dir: impl AsRef<Path>) -> Result<Self> {
        Self::open(dir, LatencyMode::Off)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_opens_both_tiers_under_one_root() {
        let dir = tempfile::tempdir().unwrap();
        let env = StorageEnv::open_unmetered(dir.path()).unwrap();
        env.block.write_file("a", b"hello").unwrap();
        env.object.put("b", b"world").unwrap();
        assert_eq!(env.block.read_file("a").unwrap(), b"hello");
        assert_eq!(env.object.get("b").unwrap(), b"world");
        assert!(dir.path().join("block").is_dir());
        assert!(dir.path().join("object").is_dir());
    }
}
