//! Pins the equality promised in `cost.rs`: in a single-store-per-tier run,
//! the `cloud.<tier>.*` counters in the global `tu-obs` registry must match
//! the per-store [`StorageStats`] exactly. This lives in its own integration
//! test binary so no other test in the process touches the global registry.

use tu_cloud::cost::LatencyMode;
use tu_cloud::StorageEnv;

#[test]
fn global_obs_counters_match_storage_stats() {
    let dir = tempfile::tempdir().unwrap();
    let env = StorageEnv::open(dir.path(), LatencyMode::Virtual).unwrap();

    // Object tier: puts, whole gets, ranged gets, an overwrite, a delete.
    env.object.put("sst/0001", &[1u8; 4096]).unwrap();
    env.object.put("sst/0002", &[2u8; 1024]).unwrap();
    env.object.get("sst/0001").unwrap();
    env.object.get_range("sst/0001", 0, 512).unwrap();
    env.object.get_range("sst/0001", 512, 512).unwrap();
    env.object.put("sst/0002", &[3u8; 2048]).unwrap(); // overwrite
    env.object.get("sst/0002").unwrap();
    env.object.delete("sst/0001").unwrap();

    // Block tier: writes, appends, reads, a delete.
    env.block.write_file("wal/seg0", &[0u8; 256]).unwrap();
    env.block.append("wal/seg0", &[0u8; 128]).unwrap();
    env.block.read_file("wal/seg0").unwrap();
    env.block.read_range("wal/seg0", 0, 64).unwrap();
    env.block.delete("wal/seg0").unwrap();

    let snap = tu_obs::global().snapshot();

    let obj = env.object.stats();
    assert_eq!(
        snap.counter("cloud.object.get_requests"),
        Some(obj.get_requests)
    );
    assert_eq!(
        snap.counter("cloud.object.put_requests"),
        Some(obj.put_requests)
    );
    assert_eq!(
        snap.counter("cloud.object.delete_requests"),
        Some(obj.delete_requests)
    );
    assert_eq!(
        snap.counter("cloud.object.bytes_read"),
        Some(obj.bytes_read)
    );
    assert_eq!(
        snap.counter("cloud.object.bytes_written"),
        Some(obj.bytes_written)
    );

    let blk = env.block.stats();
    assert_eq!(
        snap.counter("cloud.block.get_requests"),
        Some(blk.get_requests)
    );
    assert_eq!(
        snap.counter("cloud.block.put_requests"),
        Some(blk.put_requests)
    );
    assert_eq!(
        snap.counter("cloud.block.delete_requests"),
        Some(blk.delete_requests)
    );
    assert_eq!(snap.counter("cloud.block.bytes_read"), Some(blk.bytes_read));
    assert_eq!(
        snap.counter("cloud.block.bytes_written"),
        Some(blk.bytes_written)
    );

    // Sanity-check the workload shape so an accounting bug can't be masked
    // by both sides drifting together in an obvious way.
    assert_eq!(obj.get_requests, 4);
    assert_eq!(obj.put_requests, 3);
    assert_eq!(obj.delete_requests, 1);
    assert_eq!(obj.bytes_read, 4096 + 512 + 512 + 2048);
    assert_eq!(obj.bytes_written, 4096 + 1024 + 2048);
    assert_eq!(blk.get_requests, 2);
    assert_eq!(blk.put_requests, 2);
    assert_eq!(blk.bytes_read, 384 + 64);
    assert_eq!(blk.bytes_written, 256 + 128);

    // First-read accounting: object "sst/0001" cold on its first get,
    // "sst/0002" cold on its only get; block "wal/seg0" cold once.
    assert_eq!(snap.counter("cloud.object.first_reads"), Some(2));
    assert_eq!(snap.counter("cloud.block.first_reads"), Some(1));
}
