//! The self-monitoring recursion guard.
//!
//! `tu-core`'s `SelfMonitor` ingests the primary engine's metrics history
//! into a *second*, embedded TimeUnion instance. That self-engine runs the
//! very same instrumented storage stack, so without a guard every WAL
//! append, SSTable write, and flush it performs would charge the primary
//! engine's `cloud.<tier>.*` counters, bleed into active trace contexts,
//! and smear the partition heat map — the telemetry would observe itself.
//!
//! The guard is a thread-local scope flag consulted at the
//! instrumentation choke points:
//!
//! * the registry write paths ([`Counter::add`](crate::Counter::add),
//!   [`Gauge`](crate::Gauge) setters, [`Histogram::record`](crate::Histogram::record)),
//! * trace charging (`trace::charge` / `trace::charge_span`),
//! * the heat registry's `record_read`/`record_write`/`record_delete`,
//! * `tu-cloud`'s `TierCounters` (which additionally reports the diverted
//!   request/byte volume here via [`note_diverted`], so the self-engine's
//!   I/O stays visible without polluting the primary accounting).
//!
//! The fast path when self-monitoring has never been used in the process
//! is a single relaxed load of a process-global `AtomicBool` — the
//! thread-local is only consulted once some thread has entered a scope.
//! The flag propagates across `tu_common::pool::WorkerPool` workers the
//! same way trace handles do, so a `put_batch` into the self-engine stays
//! guarded even when an env override widens the ingest pool.

use std::cell::Cell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, Ordering};

/// Set once the first [`enter`] happens anywhere in the process; lets the
/// never-used case stay a single relaxed load with no TLS access.
static EVER_ENTERED: AtomicBool = AtomicBool::new(false);

thread_local! {
    /// True while this thread is working on behalf of the self-engine.
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
}

/// True when the calling thread is inside a self-monitoring scope —
/// instrumentation choke points early-return when this holds.
#[inline]
pub fn active() -> bool {
    EVER_ENTERED.load(Ordering::Relaxed) && ACTIVE.with(|a| a.get())
}

/// Enters a self-monitoring scope on the calling thread. All registry,
/// trace, and heat charges are suppressed until the returned guard drops
/// (scopes nest; the guard restores the previous state).
pub fn enter() -> SelfmonScope {
    EVER_ENTERED.store(true, Ordering::Relaxed);
    let prev = ACTIVE.with(|a| a.replace(true));
    SelfmonScope {
        prev,
        _not_send: PhantomData,
    }
}

/// RAII scope returned by [`enter`]; restores the thread's previous
/// guard state on drop. `!Send` — the flag is thread-local, so the scope
/// must end on the thread that opened it.
pub struct SelfmonScope {
    prev: bool,
    _not_send: PhantomData<*const ()>,
}

impl Drop for SelfmonScope {
    fn drop(&mut self) {
        let prev = self.prev;
        ACTIVE.with(|a| a.set(prev));
    }
}

/// Captures the calling thread's guard state for hand-off to a worker
/// thread (mirrors `TraceHandle` propagation in `tu_common::pool`).
#[inline]
pub fn current() -> bool {
    active()
}

/// Re-enters a captured scope on a worker thread: no-op guard when
/// `active` is false.
pub fn reenter(active: bool) -> Option<SelfmonScope> {
    if active {
        Some(enter())
    } else {
        None
    }
}

/// Runs `f` with the guard forced *off* on this thread — used below to
/// record the plane's own visibility counters without tripping the very
/// suppression they measure.
fn exempt<R>(f: impl FnOnce() -> R) -> R {
    let prev = ACTIVE.with(|a| a.replace(false));
    let out = f();
    ACTIVE.with(|a| a.set(prev));
    out
}

/// Called by `tu-cloud`'s `TierCounters` when a storage charge was
/// diverted by the guard: keeps the self-engine's I/O volume visible as
/// `obs.selfmon.diverted.*` without touching the primary accounting.
pub fn note_diverted(requests: u64, bytes: u64) {
    exempt(|| {
        if requests > 0 {
            crate::counter("obs.selfmon.diverted.requests").add(requests);
        }
        if bytes > 0 {
            crate::counter("obs.selfmon.diverted.bytes").add(bytes);
        }
    });
}

/// Records one self-monitoring sample's ingest volume (called by the
/// `SelfMonitor` itself, outside its guarded scope).
pub fn note_sample(samples_ingested: u64) {
    exempt(|| {
        crate::counter("obs.selfmon.samples").add(samples_ingested);
        crate::counter("obs.selfmon.flushes").inc();
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_sets_and_restores_flag() {
        assert!(!active());
        {
            let _g = enter();
            assert!(active());
            {
                let _g2 = enter();
                assert!(active());
            }
            assert!(active(), "nested exit restores outer scope");
        }
        assert!(!active());
    }

    #[test]
    fn flag_is_thread_local() {
        let _g = enter();
        assert!(active());
        std::thread::spawn(|| {
            assert!(!active(), "other threads are unaffected");
            let cap = current();
            assert!(!cap);
            assert!(reenter(cap).is_none());
        })
        .join()
        .expect("no panic");
    }

    #[test]
    fn reenter_propagates_captured_state() {
        let _g = enter();
        let cap = current();
        std::thread::spawn(move || {
            assert!(!active());
            let _worker_guard = reenter(cap);
            assert!(active());
        })
        .join()
        .expect("no panic");
    }

    #[test]
    fn note_diverted_bypasses_suppression() {
        let _g = enter();
        let before = crate::counter("obs.selfmon.diverted.requests").get();
        note_diverted(3, 0);
        let after = crate::counter("obs.selfmon.diverted.requests").get();
        assert_eq!(after - before, 3);
    }
}
