//! RAII span timers.
//!
//! A span is a histogram of nanosecond durations named `span.<name>.ns`.
//! [`span`] times wall-clock; [`SpanTimer::observe_ns`] lets callers that
//! measure virtual storage time (see `tu-cloud`'s cost clock) record a
//! duration they computed themselves.
//!
//! Completing a span also charges the active [`crate::TraceContext`]s (the
//! per-operation stage timings behind `QueryProfile`) and, when the
//! [`crate::flight`] recorder is enabled, emits one complete (`ph:"X"`)
//! flight event.

use std::time::Instant;

use crate::registry::Histogram;

/// Times from construction to drop, recording into a histogram.
///
/// Dropping records exactly once; [`SpanTimer::discard`] cancels.
#[derive(Debug)]
pub struct SpanTimer {
    hist: &'static Histogram,
    name: Box<str>,
    start: Instant,
    armed: bool,
}

/// Starts a wall-clock span recording `span.<name>.ns` in the global
/// registry when the returned guard drops.
pub fn span(name: &str) -> SpanTimer {
    span_of(crate::global(), name)
}

/// Starts a span against an explicit registry.
pub fn span_of(registry: &crate::Registry, name: &str) -> SpanTimer {
    SpanTimer {
        hist: registry.histogram(&format!("span.{name}.ns")),
        name: name.into(),
        start: Instant::now(),
        armed: true,
    }
}

impl SpanTimer {
    /// Nanoseconds elapsed so far.
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// Records `ns` (e.g. virtual storage nanoseconds) instead of the
    /// wall-clock elapsed time, consuming the timer.
    pub fn observe_ns(mut self, ns: u64) {
        self.armed = false;
        self.complete(ns);
    }

    /// Consumes the timer without recording anything.
    pub fn discard(mut self) {
        self.armed = false;
    }

    fn complete(&self, ns: u64) {
        self.hist.record(ns);
        crate::trace::charge_span(&self.name, ns);
        let recorder = crate::flight::flight();
        if recorder.is_enabled() {
            recorder.complete(&self.name, self.start, ns);
        }
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if self.armed {
            self.complete(self.elapsed_ns());
        }
    }
}

/// A plain monotonic stopwatch for call sites that need an elapsed-time
/// *value* rather than a recorded span — e.g. `QueryProfile::wall_ns` or a
/// bench report's throughput line.
///
/// This is the sanctioned way for non-observability crates to measure
/// wall time: the workspace lint (`tu-lint`, rule `clock-discipline`)
/// bans direct `Instant::now()` outside tu-obs/tu-bench so simulated-time
/// code can't accidentally mix wall-clock into model time.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Stopwatch {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since [`Stopwatch::start`], saturating.
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// Elapsed seconds as a float, for human-facing rate reports.
    pub fn elapsed_secs_f64(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn dropping_records_once() {
        let r = Registry::new();
        {
            let _t = span_of(&r, "work");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let s = r.histogram("span.work.ns").snapshot();
        assert_eq!(s.count, 1);
        assert!(s.sum >= 2_000_000, "recorded {} ns", s.sum);
    }

    #[test]
    fn observe_ns_overrides_wall_clock() {
        let r = Registry::new();
        span_of(&r, "virt").observe_ns(123);
        let s = r.histogram("span.virt.ns").snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.sum, 123);
    }

    #[test]
    fn discard_records_nothing() {
        let r = Registry::new();
        span_of(&r, "cancelled").discard();
        assert_eq!(r.histogram("span.cancelled.ns").count(), 0);
    }

    #[test]
    fn global_span_macro_compiles_and_records() {
        {
            let _g = crate::span!("macro_test_span");
        }
        assert!(crate::global().histogram("span.macro_test_span.ns").count() >= 1);
    }

    #[test]
    fn stopwatch_is_monotonic() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_ns();
        std::thread::sleep(std::time::Duration::from_millis(1));
        let b = sw.elapsed_ns();
        assert!(b > a, "elapsed must advance: {a} -> {b}");
        assert!(sw.elapsed_secs_f64() >= 0.001);
    }

    #[test]
    fn spans_charge_active_trace_context() {
        let r = Registry::new();
        let ctx = crate::TraceContext::start("span-ctx");
        span_of(&r, "attributed").observe_ns(77);
        {
            let _t = span_of(&r, "attributed");
        }
        span_of(&r, "attributed").discard();
        let s = ctx.finish();
        let delta = s.span("attributed");
        assert_eq!(delta.count, 2, "discard must not charge");
        assert!(delta.total_ns >= 77);
    }
}
