//! A continuous sampler deriving windowed rates from metric snapshots.
//!
//! The registry's counters are lifetime totals; operators watching a live
//! engine want *rates* — samples ingested per second, S3 Gets per second
//! (the per-second denomination of the paper's Eq. 4/6 cost terms), cache
//! hit ratio over the last few minutes. The [`Monitor`] keeps a
//! fixed-capacity ring of timestamped [`MetricsSnapshot`]s of the global
//! registry and computes [`Vitals`] from the oldest and newest samples
//! using [`MetricsSnapshot::since`] — the same delta machinery the
//! figure harness uses per phase, so window semantics (counters delta,
//! gauges stay levels, new-in-window metrics count from zero) are
//! identical everywhere.
//!
//! Time is pluggable: by default samples are stamped with a process-local
//! monotonic millisecond clock, but an engine passes its own
//! `tu_common` virtual clock via [`MonitorOptions::now_ms`], so simulated
//! runs produce simulated-time rates and tests can pin exact windows by
//! pairing [`Monitor::sample`] with a manual clock.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

use crate::lockdep::{self, Condvar, Mutex};
use std::thread;
use std::time::Duration;

use crate::snapshot::MetricsSnapshot;

/// Sampling cadence, ring depth, and time source for a [`Monitor`].
#[derive(Clone)]
pub struct MonitorOptions {
    /// Wall-clock pause between background samples.
    pub interval: Duration,
    /// Samples kept; with the default 1 s interval, 300 ≈ a 5-minute
    /// vitals window.
    pub capacity: usize,
    /// Millisecond timestamps for samples and window widths. `None` uses
    /// a process-local monotonic clock; engines install their
    /// `tu_common` clock here so clock discipline holds end to end.
    pub now_ms: Option<Arc<dyn Fn() -> i64 + Send + Sync>>,
}

impl Default for MonitorOptions {
    fn default() -> MonitorOptions {
        MonitorOptions {
            interval: Duration::from_secs(1),
            capacity: 300,
            now_ms: None,
        }
    }
}

/// Request/byte rates for one storage tier over the vitals window.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TierRates {
    pub get_per_s: f64,
    pub put_per_s: f64,
    pub read_bytes_per_s: f64,
    pub written_bytes_per_s: f64,
}

/// Windowed latency quantiles of one `span.*` histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanQuantiles {
    /// Full histogram name (`span.<op>.ns`).
    pub name: String,
    /// Completions inside the window.
    pub count: u64,
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
}

/// A callback invoked with every sample the monitor takes, before the
/// sample enters the ring: `(at_ms, snapshot)`. Recorders that need the
/// monitor's cadence without re-sampling (the cost ledger) register one.
pub type SampleObserver = Arc<dyn Fn(i64, &MetricsSnapshot) + Send + Sync>;

/// Windowed rates over the monitor ring (oldest sample → newest).
#[derive(Debug, Clone, PartialEq)]
pub struct Vitals {
    /// Width of the window the rates are averaged over.
    pub window_ms: i64,
    /// Timestamp of the newest sample (monitor clock domain).
    pub at_ms: i64,
    /// `core.ingest.samples` per second.
    pub ingest_samples_per_s: f64,
    /// `core.query.requests` per second.
    pub queries_per_s: f64,
    /// `lsm.wal.flushed_bytes` per second.
    pub wal_flushed_bytes_per_s: f64,
    /// Memtable flushes per second (completed `span.lsm.flush.ns` spans).
    pub flushes_per_s: f64,
    /// Fast-tier (`cloud.block.*`) request and byte rates.
    pub block: TierRates,
    /// Slow-tier (`cloud.object.*`) request and byte rates.
    pub object: TierRates,
    /// `hits / (hits + misses)` within the window; `None` when the window
    /// saw no block accesses.
    pub cache_hit_ratio: Option<f64>,
    /// Windowed p50/p95/p99 of every `span.*` histogram that completed at
    /// least once inside the window, sorted by name.
    pub spans: Vec<SpanQuantiles>,
}

impl Vitals {
    /// Stable JSON with every rate rounded to 3 decimals.
    pub fn to_json(&self) -> String {
        let tier = |t: &TierRates| {
            format!(
                "{{\"get_per_s\":{:.3},\"put_per_s\":{:.3},\"read_bytes_per_s\":{:.3},\"written_bytes_per_s\":{:.3}}}",
                t.get_per_s, t.put_per_s, t.read_bytes_per_s, t.written_bytes_per_s
            )
        };
        let mut spans = String::from("{");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                spans.push(',');
            }
            spans.push_str(&format!(
                "\"{}\":{{\"count\":{},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{}}}",
                crate::snapshot::escape(&s.name),
                s.count,
                s.p50_ns,
                s.p95_ns,
                s.p99_ns
            ));
        }
        spans.push('}');
        format!(
            "{{\"window_ms\":{},\"at_ms\":{},\"ingest_samples_per_s\":{:.3},\"queries_per_s\":{:.3},\"wal_flushed_bytes_per_s\":{:.3},\"flushes_per_s\":{:.3},\"block\":{},\"object\":{},\"cache_hit_ratio\":{},\"spans\":{}}}",
            self.window_ms,
            self.at_ms,
            self.ingest_samples_per_s,
            self.queries_per_s,
            self.wal_flushed_bytes_per_s,
            self.flushes_per_s,
            tier(&self.block),
            tier(&self.object),
            match self.cache_hit_ratio {
                Some(r) => format!("{r:.4}"),
                None => "null".to_string(),
            },
            spans
        )
    }
}

impl std::fmt::Display for Vitals {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "vitals over {} ms:", self.window_ms)?;
        writeln!(
            f,
            "  ingest     {:>12.1} samples/s",
            self.ingest_samples_per_s
        )?;
        writeln!(f, "  queries    {:>12.1} /s", self.queries_per_s)?;
        writeln!(f, "  wal flush  {:>12.1} B/s", self.wal_flushed_bytes_per_s)?;
        writeln!(
            f,
            "  block tier {:>12.1} Get/s {:>10.1} Put/s",
            self.block.get_per_s, self.block.put_per_s
        )?;
        writeln!(
            f,
            "  object tier{:>12.1} Get/s {:>10.1} Put/s",
            self.object.get_per_s, self.object.put_per_s
        )?;
        match self.cache_hit_ratio {
            Some(r) => writeln!(f, "  cache hit  {:>12.1} %", r * 100.0)?,
            None => writeln!(f, "  cache hit  (no accesses)")?,
        }
        for s in &self.spans {
            writeln!(
                f,
                "  span {:<28} count={:<8} p50={}ns p95={}ns p99={}ns",
                s.name, s.count, s.p50_ns, s.p95_ns, s.p99_ns
            )?;
        }
        Ok(())
    }
}

struct SamplerState {
    stop: bool,
}

/// The sampler. Construct with [`Monitor::new`], then either call
/// [`Monitor::sample`] manually (deterministic tests) or
/// [`Monitor::start`] a background thread.
pub struct Monitor {
    ring: Mutex<VecDeque<(i64, MetricsSnapshot)>>,
    capacity: usize,
    interval: Duration,
    now_ms: Arc<dyn Fn() -> i64 + Send + Sync>,
    sampler: Mutex<Option<thread::JoinHandle<()>>>,
    state: Arc<(Mutex<SamplerState>, Condvar)>,
    running: AtomicBool,
    observers: Mutex<Vec<SampleObserver>>,
}

/// Milliseconds since an arbitrary process-local epoch — the default
/// monitor clock when no virtual clock is installed.
pub(crate) fn process_now_ms() -> i64 {
    static EPOCH: OnceLock<std::time::Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(std::time::Instant::now);
    epoch.elapsed().as_millis().min(i64::MAX as u128) as i64
}

impl Monitor {
    pub fn new(opts: MonitorOptions) -> Monitor {
        Monitor {
            ring: Mutex::new(&lockdep::OBS_MONITOR_RING, VecDeque::new()),
            capacity: opts.capacity.max(2),
            interval: opts.interval.max(Duration::from_millis(10)),
            now_ms: opts.now_ms.unwrap_or_else(|| Arc::new(process_now_ms)),
            sampler: Mutex::new(&lockdep::OBS_MONITOR_SAMPLER, None),
            state: Arc::new((
                Mutex::new(&lockdep::OBS_MONITOR_STATE, SamplerState { stop: false }),
                Condvar::new(),
            )),
            running: AtomicBool::new(false),
            observers: Mutex::new(&lockdep::OBS_MONITOR_OBSERVERS, Vec::new()),
        }
    }

    /// Registers a callback invoked with every future sample (manual or
    /// background). Observers run on the sampling thread; keep them cheap.
    pub fn add_observer(&self, obs: SampleObserver) {
        self.observers.lock().push(obs);
    }

    fn lock_ring(&self) -> lockdep::MutexGuard<'_, VecDeque<(i64, MetricsSnapshot)>> {
        self.ring.lock()
    }

    /// Takes one timestamped snapshot of the global registry now,
    /// feeding it to every registered observer before it enters the ring.
    pub fn sample(&self) {
        let at = (self.now_ms)();
        let snap = crate::global().snapshot();
        // Clone the observer list out so the callbacks run with no lock
        // held: observers like the engine's self-monitor acquire their own
        // locks (some ranking below this one), which the witness would
        // rightly flag if the observers lock were still on the stack.
        let observers: Vec<SampleObserver> = self.observers.lock().clone();
        for obs in observers.iter() {
            obs(at, &snap);
        }
        let mut ring = self.lock_ring();
        if ring.len() >= self.capacity {
            ring.pop_front();
        }
        ring.push_back((at, snap));
    }

    /// Number of samples currently buffered.
    pub fn len(&self) -> usize {
        self.lock_ring().len()
    }

    /// True when no samples are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Windowed rates from the oldest to the newest buffered sample, or
    /// `None` until two samples exist (the monitor is still warming up).
    /// The window width is the samples' timestamp difference, clamped to
    /// ≥ 1 ms so rates stay finite even under a frozen virtual clock.
    pub fn vitals(&self) -> Option<Vitals> {
        let ring = self.lock_ring();
        if ring.len() < 2 {
            return None;
        }
        let (t0, oldest) = ring.front()?;
        let (t1, newest) = ring.back()?;
        Some(Self::derive(*t0, oldest, *t1, newest))
    }

    /// Like [`Monitor::vitals`], but deltas from the newest buffered
    /// sample at least `window_ms` older than the latest one instead of
    /// the ring's front. Requests reaching further back than the ring
    /// holds clamp to the oldest sample (i.e. degrade to [`Monitor::vitals`]).
    pub fn vitals_window(&self, window_ms: i64) -> Option<Vitals> {
        let ring = self.lock_ring();
        if ring.len() < 2 {
            return None;
        }
        let (t1, newest) = ring.back()?;
        let cutoff = t1.saturating_sub(window_ms.max(1));
        let (t0, oldest) = ring
            .iter()
            .rev()
            .skip(1)
            .find(|(t, _)| *t <= cutoff)
            .or_else(|| ring.front())?;
        Some(Self::derive(*t0, oldest, *t1, newest))
    }

    /// The shared vitals computation between two ring entries.
    fn derive(t0: i64, oldest: &MetricsSnapshot, t1: i64, newest: &MetricsSnapshot) -> Vitals {
        let window_ms = (t1 - t0).max(1);
        let delta = newest.since(oldest);
        let secs = window_ms as f64 / 1_000.0;
        let rate = |name: &str| delta.counter(name).unwrap_or(0) as f64 / secs;
        let tier = |t: &str| TierRates {
            get_per_s: rate(&format!("cloud.{t}.get_requests")),
            put_per_s: rate(&format!("cloud.{t}.put_requests")),
            read_bytes_per_s: rate(&format!("cloud.{t}.bytes_read")),
            written_bytes_per_s: rate(&format!("cloud.{t}.bytes_written")),
        };
        let hits = delta.counter("lsm.cache.hits").unwrap_or(0);
        let misses = delta.counter("lsm.cache.misses").unwrap_or(0);
        let spans = delta
            .histograms
            .iter()
            .filter(|(name, h)| name.starts_with("span.") && h.count > 0)
            .map(|(name, h)| SpanQuantiles {
                name: name.clone(),
                count: h.count,
                p50_ns: h.p50().unwrap_or(0),
                p95_ns: h.p95().unwrap_or(0),
                p99_ns: h.p99().unwrap_or(0),
            })
            .collect();
        Vitals {
            window_ms,
            at_ms: t1,
            ingest_samples_per_s: rate("core.ingest.samples"),
            queries_per_s: rate("core.query.requests"),
            wal_flushed_bytes_per_s: rate("lsm.wal.flushed_bytes"),
            flushes_per_s: delta
                .histogram("span.lsm.flush.ns")
                .map_or(0.0, |h| h.count as f64 / secs),
            block: tier("block"),
            object: tier("object"),
            cache_hit_ratio: if hits + misses > 0 {
                Some(hits as f64 / (hits + misses) as f64)
            } else {
                None
            },
            spans,
        }
    }

    /// Starts the background sampler thread (idempotent). The thread
    /// takes a sample immediately, then every `interval` until
    /// [`Monitor::stop`].
    pub fn start(self: &Arc<Self>) {
        if self.running.swap(true, Ordering::SeqCst) {
            return;
        }
        {
            let (lock, _) = &*self.state;
            lock.lock().stop = false;
        }
        let me = Arc::clone(self);
        let handle = thread::Builder::new()
            .name("tu-obs-monitor".to_string())
            .spawn(move || loop {
                me.sample();
                let (lock, cvar) = &*me.state;
                let mut st = lock.lock();
                while !st.stop {
                    let (next, timeout) = cvar.wait_timeout(st, me.interval);
                    st = next;
                    if timeout.timed_out() {
                        break;
                    }
                }
                if st.stop {
                    return;
                }
            });
        match handle {
            Ok(h) => {
                *self.sampler.lock() = Some(h);
            }
            Err(_) => {
                // Spawn failure (resource exhaustion): fall back to
                // manual sampling; vitals just stay in warm-up.
                self.running.store(false, Ordering::SeqCst);
            }
        }
    }

    /// Stops and joins the sampler thread (idempotent, safe if never
    /// started).
    pub fn stop(&self) {
        if !self.running.swap(false, Ordering::SeqCst) {
            return;
        }
        {
            let (lock, cvar) = &*self.state;
            lock.lock().stop = true;
            cvar.notify_all();
        }
        if let Some(h) = self.sampler.lock().take() {
            let _ = h.join();
        }
    }
}

impl Drop for Monitor {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicI64;

    fn manual_clock() -> (Arc<AtomicI64>, Arc<dyn Fn() -> i64 + Send + Sync>) {
        let t = Arc::new(AtomicI64::new(0));
        let c = t.clone();
        (t, Arc::new(move || c.load(Ordering::Relaxed)))
    }

    #[test]
    fn warms_up_then_reports_windowed_rates() {
        let (t, now) = manual_clock();
        let m = Monitor::new(MonitorOptions {
            capacity: 8,
            now_ms: Some(now),
            ..Default::default()
        });
        assert!(m.vitals().is_none(), "no samples yet");
        m.sample();
        assert!(m.vitals().is_none(), "one sample is still warming up");

        // 2s window with unique-to-this-test counters: the global
        // registry is shared across tests, so rates for shared names are
        // only asserted > 0, while these fresh names pin exact values.
        crate::counter("montest.exact").add(10);
        t.store(2_000, Ordering::Relaxed);
        m.sample();
        let v = m.vitals().expect("two samples");
        assert_eq!(v.window_ms, 2_000);
        assert_eq!(v.at_ms, 2_000);
        // montest.exact was new-in-window at 10 → but it's not a vitals
        // field; instead verify through the same delta machinery:
        let ring = m.lock_ring();
        let delta = ring.back().unwrap().1.since(&ring.front().unwrap().1);
        assert_eq!(delta.counter("montest.exact"), Some(10));
    }

    #[test]
    fn rates_divide_by_window() {
        let (t, now) = manual_clock();
        let m = Monitor::new(MonitorOptions {
            capacity: 4,
            now_ms: Some(now),
            ..Default::default()
        });
        let before_ingest = crate::global()
            .snapshot()
            .counter("core.ingest.samples")
            .unwrap_or(0);
        m.sample();
        crate::counter("core.ingest.samples").add(500);
        crate::counter("cloud.object.put_requests").add(4);
        crate::counter("lsm.cache.hits").add(3);
        crate::counter("lsm.cache.misses").add(1);
        t.store(2_000, Ordering::Relaxed);
        m.sample();
        let v = m.vitals().expect("vitals");
        // Other tests in this binary may also bump these counters
        // concurrently, so pin lower bounds, not equality.
        assert!(
            v.ingest_samples_per_s >= 250.0,
            "500 samples / 2 s, got {}",
            v.ingest_samples_per_s
        );
        assert!(v.object.put_per_s >= 2.0, "4 puts / 2 s");
        let ratio = v.cache_hit_ratio.expect("accesses in window");
        assert!(ratio > 0.0 && ratio <= 1.0);
        let _ = before_ingest;

        // JSON shape.
        let json = v.to_json();
        assert!(json.starts_with("{\"window_ms\":2000,"));
        assert!(json.contains("\"block\":{\"get_per_s\":"));
        assert!(json.contains("\"object\":{\"get_per_s\":"));
        assert!(json.contains("\"cache_hit_ratio\":"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(v.to_string().contains("samples/s"));
    }

    #[test]
    fn ring_caps_at_capacity_and_window_tracks_survivors() {
        let (t, now) = manual_clock();
        let m = Monitor::new(MonitorOptions {
            capacity: 3,
            now_ms: Some(now),
            ..Default::default()
        });
        for i in 0..10 {
            t.store(i * 1_000, Ordering::Relaxed);
            m.sample();
        }
        assert_eq!(m.len(), 3);
        let v = m.vitals().expect("vitals");
        // Samples at 7s, 8s, 9s survive → 2s window ending at 9s.
        assert_eq!(v.window_ms, 2_000);
        assert_eq!(v.at_ms, 9_000);
    }

    #[test]
    fn vitals_window_selects_the_delta_base() {
        let (t, now) = manual_clock();
        let m = Monitor::new(MonitorOptions {
            capacity: 8,
            now_ms: Some(now),
            ..Default::default()
        });
        for i in 0..6 {
            t.store(i * 1_000, Ordering::Relaxed);
            m.sample();
            crate::counter("montest.windowed").add(10);
        }
        // Ring holds samples at 0..=5s; full window is 5s.
        assert_eq!(m.vitals().expect("vitals").window_ms, 5_000);
        // A 2s request deltas from the sample at 3s (newest ≤ 5s − 2s).
        let v = m.vitals_window(2_000).expect("windowed vitals");
        assert_eq!(v.window_ms, 2_000);
        assert_eq!(v.at_ms, 5_000);
        // Reaching past the ring clamps to the oldest sample.
        let v = m.vitals_window(60_000).expect("clamped vitals");
        assert_eq!(v.window_ms, 5_000);
        // Degenerate requests still take the adjacent sample.
        let v = m.vitals_window(0).expect("minimal window");
        assert_eq!(v.window_ms, 1_000);
    }

    #[test]
    fn frozen_clock_clamps_window() {
        let (_t, now) = manual_clock();
        let m = Monitor::new(MonitorOptions {
            capacity: 4,
            now_ms: Some(now),
            ..Default::default()
        });
        m.sample();
        m.sample();
        let v = m.vitals().expect("vitals");
        assert_eq!(v.window_ms, 1, "frozen clock still yields a finite rate");
    }

    #[test]
    fn observers_see_every_sample() {
        let (t, now) = manual_clock();
        let m = Monitor::new(MonitorOptions {
            capacity: 4,
            now_ms: Some(now),
            ..Default::default()
        });
        let seen = Arc::new(std::sync::Mutex::new(Vec::new()));
        let sink = seen.clone();
        m.add_observer(Arc::new(move |at, snap| {
            sink.lock()
                .unwrap()
                .push((at, snap.counters.contains_key("montest.observer")));
        }));
        crate::counter("montest.observer").inc();
        m.sample();
        t.store(500, Ordering::Relaxed);
        m.sample();
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0], (0, true));
        assert_eq!(seen[1], (500, true));
    }

    #[test]
    fn vitals_report_windowed_span_quantiles() {
        let (t, now) = manual_clock();
        let m = Monitor::new(MonitorOptions {
            capacity: 4,
            now_ms: Some(now),
            ..Default::default()
        });
        m.sample();
        crate::histogram("span.montest.window.ns").record(1_000);
        crate::histogram("span.montest.window.ns").record(1_000);
        t.store(1_000, Ordering::Relaxed);
        m.sample();
        let v = m.vitals().expect("vitals");
        let q = v
            .spans
            .iter()
            .find(|s| s.name == "span.montest.window.ns")
            .expect("span quantiles surfaced");
        assert_eq!(q.count, 2);
        assert!(q.p50_ns >= 1_000 && q.p99_ns >= q.p50_ns);
        let json = v.to_json();
        assert!(json.contains("\"spans\":{"));
        assert!(json.contains("\"span.montest.window.ns\":{\"count\":2,\"p50_ns\":"));
        assert!(v.to_string().contains("span span.montest.window.ns"));
        // A later window without observations drops the span again (the
        // ring caps at 4, so the pre-observation sample rotates out).
        for at in [2_000, 3_000, 4_000, 5_000] {
            t.store(at, Ordering::Relaxed);
            m.sample();
        }
        let v = m.vitals().expect("vitals");
        assert!(
            !v.spans.iter().any(|s| s.name == "span.montest.window.ns"),
            "{:?}",
            v.spans
        );
    }

    #[test]
    fn background_sampler_starts_and_stops() {
        let m = Arc::new(Monitor::new(MonitorOptions {
            interval: Duration::from_millis(10),
            capacity: 16,
            now_ms: None,
        }));
        m.start();
        m.start(); // idempotent
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while m.len() < 2 && std::time::Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
        assert!(m.len() >= 2, "sampler produced samples");
        assert!(m.vitals().is_some());
        m.stop();
        m.stop(); // idempotent
        let n = m.len();
        thread::sleep(Duration::from_millis(40));
        assert_eq!(m.len(), n, "no samples after stop");
    }
}
