//! A small health model for live endpoints.
//!
//! The engine aggregates its liveness signals (WAL writable, flush
//! backlog, memory pressure, background-thread liveness) into a
//! [`HealthReport`]; [`crate::ObsServer`] renders that report on
//! `/healthz` and `/readyz`. The model deliberately has three states:
//! `Ok` and `Degraded` still answer 200 on `/healthz` (degraded means
//! "watch me", not "restart me"), only `Unhealthy` answers 503.

use std::fmt;
use std::sync::Arc;

use crate::snapshot::escape;

/// One check's verdict, worst-wins when aggregating.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Health {
    Ok,
    /// Working, but a signal is outside its comfortable range (e.g. flush
    /// backlog growing). `/healthz` still answers 200.
    Degraded,
    /// Not working (WAL unwritable, background worker dead). `/healthz`
    /// answers 503.
    Unhealthy,
}

impl Health {
    pub fn as_str(&self) -> &'static str {
        match self {
            Health::Ok => "ok",
            Health::Degraded => "degraded",
            Health::Unhealthy => "unhealthy",
        }
    }
}

/// One named signal with a human-readable detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthCheck {
    pub name: String,
    pub health: Health,
    pub detail: String,
}

impl HealthCheck {
    pub fn new(name: &str, health: Health, detail: impl Into<String>) -> HealthCheck {
        HealthCheck {
            name: name.to_string(),
            health,
            detail: detail.into(),
        }
    }
}

/// The aggregated report: readiness (serving traffic at all) plus the
/// individual checks behind it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthReport {
    /// `/readyz`: true once the engine has finished recovery and is not
    /// shutting down. Orthogonal to health — a recovering engine is
    /// healthy but not ready.
    pub ready: bool,
    pub checks: Vec<HealthCheck>,
}

impl HealthReport {
    /// An all-ok, ready report (the trivial source for harnesses with no
    /// engine signals to aggregate).
    pub fn ok() -> HealthReport {
        HealthReport {
            ready: true,
            checks: Vec::new(),
        }
    }

    /// Worst status across checks ([`Health::Ok`] when there are none).
    pub fn status(&self) -> Health {
        self.checks
            .iter()
            .map(|c| c.health)
            .max()
            .unwrap_or(Health::Ok)
    }

    /// True unless some check is [`Health::Unhealthy`].
    pub fn healthy(&self) -> bool {
        self.status() != Health::Unhealthy
    }

    /// Stable JSON:
    /// `{"status":"ok","ready":true,"checks":[{"name":..,"status":..,"detail":..},..]}`.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"status\":\"{}\",\"ready\":{},\"checks\":[",
            self.status().as_str(),
            self.ready
        );
        for (i, c) in self.checks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"status\":\"{}\",\"detail\":\"{}\"}}",
                escape(&c.name),
                c.health.as_str(),
                escape(&c.detail)
            ));
        }
        out.push_str("]}");
        out
    }
}

impl fmt::Display for HealthReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "status={} ready={}", self.status().as_str(), self.ready)?;
        for c in &self.checks {
            writeln!(f, "  {:<24} {:<10} {}", c.name, c.health.as_str(), c.detail)?;
        }
        Ok(())
    }
}

/// What `/healthz` and `/readyz` call on every request: a closure so the
/// report always reflects the engine's *current* state, with no sampling
/// lag. Implementations must be cheap (a few atomic loads) — they run on
/// server worker threads.
pub type HealthSource = Arc<dyn Fn() -> HealthReport + Send + Sync>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worst_check_wins() {
        let mut r = HealthReport::ok();
        assert_eq!(r.status(), Health::Ok);
        assert!(r.healthy());
        r.checks
            .push(HealthCheck::new("wal", Health::Ok, "writable"));
        r.checks
            .push(HealthCheck::new("backlog", Health::Degraded, "7 pending"));
        assert_eq!(r.status(), Health::Degraded);
        assert!(r.healthy(), "degraded still passes /healthz");
        r.checks
            .push(HealthCheck::new("worker", Health::Unhealthy, "exited"));
        assert_eq!(r.status(), Health::Unhealthy);
        assert!(!r.healthy());
    }

    #[test]
    fn json_shape() {
        let r = HealthReport {
            ready: false,
            checks: vec![HealthCheck::new("wal", Health::Ok, "writable")],
        };
        let json = r.to_json();
        assert!(json.starts_with("{\"status\":\"ok\",\"ready\":false,"));
        assert!(json.contains("{\"name\":\"wal\",\"status\":\"ok\",\"detail\":\"writable\"}"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let text = r.to_string();
        assert!(text.contains("ready=false"));
        assert!(text.contains("wal"));
    }
}
