//! Process-global partition heat registry.
//!
//! The cost model measures *what* the process spent per tier; this module
//! answers *where*: which time partition's data caused each storage
//! request. Every billable charge in `tu-cloud` is mirrored here with the
//! same quantities, attributed to the partition the calling thread
//! declared via [`attribute`] (an RAII guard, like a trace context) or to
//! a catch-all unattributed bucket (WAL, manifest, catalog I/O). Because
//! the mirror happens in the same call that charges the `cloud.<tier>.*`
//! counters, the heat totals and the counter deltas are *exactly* equal —
//! the invariant `tests/introspection.rs` pins.
//!
//! Besides lifetime totals, each `(partition, tier)` cell keeps three
//! exponential-decay request rates (1m / 10m / 1h windows) so hot/cold
//! classification — the input of a placement policy (ROADMAP item 3) — is
//! O(1) to read. Time comes from an installable clock (the engine installs
//! its virtual clock), per clock-discipline.

use std::cell::Cell;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::marker::PhantomData;
use std::sync::{Arc, OnceLock};

use crate::lockdep::{self, Mutex, RwLock};

/// Storage tier names, in the order of the per-tier arrays below.
pub const HEAT_TIERS: [&str; 2] = ["block", "object"];

/// Decay windows of the three access-rate columns, in milliseconds.
pub const HEAT_WINDOWS_MS: [i64; 3] = [60_000, 600_000, 3_600_000];

/// Identity of one time partition: its `[start, end)` range in ms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PartitionKey {
    pub start_ms: i64,
    pub end_ms: i64,
}

/// Accumulated heat of one `(partition, tier)` cell.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TierHeat {
    pub get_requests: u64,
    pub put_requests: u64,
    pub delete_requests: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
    pub first_reads: u64,
    /// Clock time of the most recent charge (0 when never touched).
    pub last_access_ms: i64,
    /// Exponentially decayed request counts over [`HEAT_WINDOWS_MS`].
    pub rates: [f64; 3],
}

impl TierHeat {
    /// Total billable requests (Get + Put + Delete) of this cell.
    pub fn requests(&self) -> u64 {
        self.get_requests + self.put_requests + self.delete_requests
    }

    fn merge_totals(&mut self, other: &TierHeat) {
        self.get_requests += other.get_requests;
        self.put_requests += other.put_requests;
        self.delete_requests += other.delete_requests;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.first_reads += other.first_reads;
        self.last_access_ms = self.last_access_ms.max(other.last_access_ms);
        for (r, o) in self.rates.iter_mut().zip(other.rates.iter()) {
            *r += o;
        }
    }

    /// Decays the rate columns from `self.last_access_ms` to `now_ms`
    /// (presentation only; totals are unaffected).
    fn decayed_to(mut self, now_ms: i64) -> TierHeat {
        let dt = (now_ms - self.last_access_ms).max(0) as f64;
        for (r, w) in self.rates.iter_mut().zip(HEAT_WINDOWS_MS.iter()) {
            *r *= (-dt / *w as f64).exp();
        }
        self
    }
}

/// Hot/cold classification from the decayed rate columns: `hot` when the
/// 1-minute window still holds at least one request's worth of weight,
/// `warm` when the 10-minute or 1-hour window does, `cold` otherwise.
pub fn classify(rates: &[f64; 3]) -> &'static str {
    if rates[0] >= 1.0 {
        "hot"
    } else if rates[1] >= 1.0 || rates[2] >= 1.0 {
        "warm"
    } else {
        "cold"
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Cell2 {
    tiers: [TierHeat; 2],
}

const SHARDS: usize = 16;

struct HeatMap {
    /// Lock-sharded partition cells; the unattributed bucket lives
    /// separately so it never contends with partition traffic.
    shards: [Mutex<HashMap<PartitionKey, Cell2>>; SHARDS],
    unattributed: Mutex<Cell2>,
}

fn map() -> &'static HeatMap {
    static MAP: OnceLock<HeatMap> = OnceLock::new();
    MAP.get_or_init(|| HeatMap {
        shards: std::array::from_fn(|_| Mutex::new(&lockdep::OBS_HEAT_SHARD, HashMap::new())),
        unattributed: Mutex::new(&lockdep::OBS_HEAT_UNATTRIBUTED, Cell2::default()),
    })
}

type NowFn = Arc<dyn Fn() -> i64 + Send + Sync>;

fn clock_slot() -> &'static RwLock<Option<NowFn>> {
    static CLOCK: OnceLock<RwLock<Option<NowFn>>> = OnceLock::new();
    CLOCK.get_or_init(|| RwLock::new(&lockdep::OBS_HEAT_CLOCK, None))
}

/// Installs the clock heat timestamps and decay windows run on. The engine
/// installs its (possibly simulated) clock at open; without one, process
/// uptime is used.
pub fn install_clock(now_ms: NowFn) {
    *clock_slot().write() = Some(now_ms);
}

fn now_ms() -> i64 {
    if let Some(f) = clock_slot().read().as_ref() {
        return f();
    }
    crate::monitor::process_now_ms()
}

thread_local! {
    /// The partition this thread is currently doing storage I/O for.
    static CURRENT: Cell<Option<PartitionKey>> = const { Cell::new(None) };
}

/// RAII partition-attribution guard from [`attribute`]; restores the
/// previous attribution (if any) on drop. Not `Send`: attribution is
/// per-thread, like trace contexts.
#[derive(Debug)]
pub struct HeatGuard {
    prev: Option<PartitionKey>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for HeatGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

/// Declares that storage I/O on this thread, until the guard drops,
/// belongs to the time partition `[start_ms, end_ms)`. Nested guards
/// shadow (innermost wins) and restore on drop.
pub fn attribute(start_ms: i64, end_ms: i64) -> HeatGuard {
    let key = PartitionKey { start_ms, end_ms };
    let prev = CURRENT.with(|c| c.replace(Some(key)));
    HeatGuard {
        prev,
        _not_send: PhantomData,
    }
}

fn tier_index(tier: &str) -> Option<usize> {
    HEAT_TIERS.iter().position(|t| *t == tier)
}

fn shard_of(key: &PartitionKey) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % SHARDS
}

/// Applies `f` to the heat cell of the current attribution (or the
/// unattributed bucket) and returns true when a partition was attributed.
fn with_cell(tier: &str, f: impl FnOnce(&mut TierHeat, i64)) -> bool {
    let Some(ti) = tier_index(tier) else {
        return false;
    };
    let at = now_ms();
    let key = CURRENT.with(|c| c.get());
    let decay_add = |cell: &mut TierHeat, n: u64| {
        let dt = (at - cell.last_access_ms).max(0) as f64;
        for (r, w) in cell.rates.iter_mut().zip(HEAT_WINDOWS_MS.iter()) {
            *r = *r * (-dt / *w as f64).exp() + n as f64;
        }
        cell.last_access_ms = at;
    };
    match key {
        Some(key) => {
            let m = map();
            let mut shard = m.shards[shard_of(&key)].lock();
            let cell = &mut shard.entry(key).or_default().tiers[ti];
            let before = cell.requests();
            f(cell, at);
            decay_add(cell, cell.requests() - before);
            true
        }
        None => {
            let mut cell2 = map().unattributed.lock();
            let cell = &mut cell2.tiers[ti];
            let before = cell.requests();
            f(cell, at);
            decay_add(cell, cell.requests() - before);
            false
        }
    }
}

/// Mirrors a read charge (`requests` Gets, `bytes` read, of which
/// `first_reads` paid the first-read penalty). Returns true when the
/// charge was attributed to a partition.
pub fn record_read(tier: &str, requests: u64, bytes: u64, first_reads: u64) -> bool {
    if crate::selfmon::active() {
        return false;
    }
    with_cell(tier, |c, _| {
        c.get_requests += requests;
        c.bytes_read += bytes;
        c.first_reads += first_reads;
    })
}

/// Mirrors a write charge (`requests` Puts, `bytes` written).
pub fn record_write(tier: &str, requests: u64, bytes: u64) -> bool {
    if crate::selfmon::active() {
        return false;
    }
    with_cell(tier, |c, _| {
        c.put_requests += requests;
        c.bytes_written += bytes;
    })
}

/// Mirrors a delete charge.
pub fn record_delete(tier: &str, requests: u64) -> bool {
    if crate::selfmon::active() {
        return false;
    }
    with_cell(tier, |c, _| {
        c.delete_requests += requests;
    })
}

/// Heat of one partition across both tiers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionHeat {
    pub key: PartitionKey,
    /// Per-tier heat in [`HEAT_TIERS`] order.
    pub tiers: [TierHeat; 2],
}

impl PartitionHeat {
    /// Combined decayed rate columns across both tiers.
    pub fn rates(&self) -> [f64; 3] {
        let mut out = [0.0; 3];
        for t in &self.tiers {
            for (o, r) in out.iter_mut().zip(t.rates.iter()) {
                *o += r;
            }
        }
        out
    }
}

/// A point-in-time copy of the whole heat map, rates decayed to `at_ms`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HeatSnapshot {
    pub at_ms: i64,
    /// Partitions sorted by `(start_ms, end_ms)`.
    pub partitions: Vec<PartitionHeat>,
    /// The catch-all bucket for I/O no partition claimed.
    pub unattributed: [TierHeat; 2],
}

impl HeatSnapshot {
    /// Sum over every partition *and* the unattributed bucket for one tier
    /// — by construction equal to the `cloud.<tier>.*` counter totals.
    pub fn tier_totals(&self, tier: &str) -> TierHeat {
        let mut out = TierHeat::default();
        if let Some(ti) = tier_index(tier) {
            for p in &self.partitions {
                out.merge_totals(&p.tiers[ti]);
            }
            out.merge_totals(&self.unattributed[ti]);
        }
        out
    }

    /// The heat of one partition, when present.
    pub fn partition(&self, start_ms: i64, end_ms: i64) -> Option<&PartitionHeat> {
        self.partitions
            .iter()
            .find(|p| p.key.start_ms == start_ms && p.key.end_ms == end_ms)
    }
}

/// Snapshots the heat map (rates decayed to the current clock).
pub fn snapshot() -> HeatSnapshot {
    let at = now_ms();
    let m = map();
    let mut partitions = Vec::new();
    for shard in &m.shards {
        let shard = shard.lock();
        for (key, cell) in shard.iter() {
            partitions.push(PartitionHeat {
                key: *key,
                tiers: [cell.tiers[0].decayed_to(at), cell.tiers[1].decayed_to(at)],
            });
        }
    }
    partitions.sort_by_key(|p| (p.key.start_ms, p.key.end_ms));
    let un = *m.unattributed.lock();
    HeatSnapshot {
        at_ms: at,
        partitions,
        unattributed: [un.tiers[0].decayed_to(at), un.tiers[1].decayed_to(at)],
    }
}

/// Clears every cell (tests). Totals mirrored into `cloud.<tier>.*`
/// counters are *not* reset, so only delta-based comparisons remain valid
/// across a reset.
pub fn reset() {
    let m = map();
    for shard in &m.shards {
        shard.lock().clear();
    }
    *m.unattributed.lock() = Cell2::default();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicI64, Ordering};

    /// Serializes tests in this module: the heat map is process-global.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn manual_clock() -> Arc<AtomicI64> {
        let t = Arc::new(AtomicI64::new(1_000));
        let h = t.clone();
        install_clock(Arc::new(move || h.load(Ordering::SeqCst)));
        t
    }

    #[test]
    fn unattributed_without_guard_attributed_with() {
        let _l = LOCK.lock().unwrap();
        reset();
        let _t = manual_clock();
        assert!(!record_read("block", 1, 100, 0));
        {
            let _g = attribute(0, 60_000);
            assert!(record_read("object", 2, 300, 1));
            assert!(record_write("object", 1, 50));
        }
        assert!(!record_delete("block", 1));
        let s = snapshot();
        assert_eq!(s.partitions.len(), 1);
        let p = s.partition(0, 60_000).unwrap();
        assert_eq!(p.tiers[1].get_requests, 2);
        assert_eq!(p.tiers[1].bytes_read, 300);
        assert_eq!(p.tiers[1].first_reads, 1);
        assert_eq!(p.tiers[1].put_requests, 1);
        assert_eq!(p.tiers[1].bytes_written, 50);
        assert_eq!(s.unattributed[0].get_requests, 1);
        assert_eq!(s.unattributed[0].delete_requests, 1);
        // Totals across partitions + unattributed always balance.
        assert_eq!(s.tier_totals("block").requests(), 2);
        assert_eq!(s.tier_totals("object").requests(), 3);
        assert_eq!(s.tier_totals("object").bytes_read, 300);
    }

    #[test]
    fn guards_nest_and_restore() {
        let _l = LOCK.lock().unwrap();
        reset();
        let _t = manual_clock();
        let g1 = attribute(0, 10);
        {
            let _g2 = attribute(10, 20);
            record_read("block", 1, 1, 0);
        }
        record_read("block", 1, 1, 0);
        drop(g1);
        record_read("block", 1, 1, 0);
        let s = snapshot();
        assert_eq!(s.partition(10, 20).unwrap().tiers[0].get_requests, 1);
        assert_eq!(s.partition(0, 10).unwrap().tiers[0].get_requests, 1);
        assert_eq!(s.unattributed[0].get_requests, 1);
    }

    #[test]
    fn rates_decay_with_the_installed_clock() {
        let _l = LOCK.lock().unwrap();
        reset();
        let t = manual_clock();
        {
            let _g = attribute(0, 10);
            record_read("block", 10, 0, 0);
        }
        let r0 = snapshot().partition(0, 10).unwrap().tiers[0].rates;
        assert!((r0[0] - 10.0).abs() < 1e-9, "{r0:?}");
        // One full 1m window later the 1m column decayed to 10/e, while
        // the 1h column barely moved.
        t.fetch_add(60_000, Ordering::SeqCst);
        let r1 = snapshot().partition(0, 10).unwrap().tiers[0].rates;
        assert!((r1[0] - 10.0 / std::f64::consts::E).abs() < 1e-6, "{r1:?}");
        assert!(r1[2] > 9.8, "{r1:?}");
        // Totals never decay.
        let s = snapshot();
        assert_eq!(s.partition(0, 10).unwrap().tiers[0].get_requests, 10);
        assert_eq!(s.at_ms, 61_000);
    }

    #[test]
    fn classification_thresholds() {
        assert_eq!(classify(&[2.0, 2.0, 2.0]), "hot");
        assert_eq!(classify(&[0.5, 1.5, 2.0]), "warm");
        assert_eq!(classify(&[0.0, 0.2, 0.4]), "cold");
    }

    #[test]
    fn concurrent_records_balance() {
        let _l = LOCK.lock().unwrap();
        reset();
        let _t = manual_clock();
        std::thread::scope(|s| {
            for w in 0..8i64 {
                s.spawn(move || {
                    let _g = attribute(w * 100, w * 100 + 100);
                    for _ in 0..50 {
                        record_read("object", 1, 10, 0);
                    }
                });
            }
        });
        let s = snapshot();
        assert_eq!(s.partitions.len(), 8);
        assert_eq!(s.tier_totals("object").get_requests, 400);
        assert_eq!(s.tier_totals("object").bytes_read, 4_000);
    }
}
