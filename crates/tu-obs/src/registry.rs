//! The metric types and the name → metric registry.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::OnceLock;

use crate::lockdep::{self, RwLock};

use crate::snapshot::MetricsSnapshot;

/// A monotonically increasing counter. Incrementing is a single relaxed
/// atomic add.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        if crate::selfmon::active() {
            return;
        }
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A signed level that can move both ways (resident bytes, queue depth).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub fn set(&self, v: i64) {
        if crate::selfmon::active() {
            return;
        }
        self.value.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, delta: i64) {
        if crate::selfmon::active() {
            return;
        }
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn sub(&self, delta: i64) {
        if crate::selfmon::active() {
            return;
        }
        self.value.fetch_sub(delta, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of power-of-two buckets. Bucket `i` counts values whose
/// bit-length is `i`, i.e. `v == 0` lands in bucket 0 and otherwise
/// bucket `i` covers `[2^(i-1), 2^i)`; everything ≥ `2^62` saturates into
/// the last bucket. For nanosecond latencies that spans sub-ns to ~146
/// years, at 2× resolution per step.
pub const BUCKETS: usize = 64;

/// A fixed-bucket histogram of `u64` observations (nanoseconds by
/// convention for `span.*` metrics). Recording performs two relaxed
/// atomic adds; no locks, no allocation.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Index of the bucket covering `v`: 0 for 0, else `64 - leading_zeros`,
/// saturated to the last bucket.
pub fn bucket_index(v: u64) -> usize {
    ((u64::BITS - v.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` (the value reported for quantiles
/// that land in it).
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    pub fn record(&self, v: u64) {
        if crate::selfmon::active() {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// A consistent-enough copy for reporting (buckets are read one by
    /// one; concurrent recording can skew totals by in-flight updates).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count(),
            sum: self.sum(),
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub buckets: [u64; BUCKETS],
    pub count: u64,
    pub sum: u64,
}

impl HistogramSnapshot {
    /// The value at quantile `q` in `[0, 1]`, reported as the upper bound
    /// of the bucket containing that rank (an overestimate of at most 2×,
    /// the bucket resolution). Returns `None` for an empty histogram.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the q-quantile among `count` sorted observations.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(bucket_upper_bound(i));
            }
        }
        Some(bucket_upper_bound(BUCKETS - 1))
    }

    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    pub fn p95(&self) -> Option<u64> {
        self.quantile(0.95)
    }

    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// Mean observation, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The distribution of observations recorded since `earlier`:
    /// count, sum, and every bucket subtract (saturating, since concurrent
    /// recording can skew individual loads).
    pub fn since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].saturating_sub(earlier.buckets[i])),
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
        }
    }
}

enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

/// Names → metrics. `counter`/`gauge`/`histogram` intern a metric on
/// first use and hand back a `&'static` the caller can cache; after that
/// the hot path is purely atomic. The interior `RwLock` is taken only to
/// register or snapshot.
pub struct Registry {
    metrics: RwLock<BTreeMap<String, Metric>>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry {
            metrics: RwLock::new(&lockdep::OBS_REGISTRY, BTreeMap::new()),
        }
    }
}

/// The process-wide registry behind [`crate::global`].
pub(crate) fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::default)
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name`, registering it on first use.
    ///
    /// Panics if `name` is already registered as a different metric type.
    pub fn counter(&self, name: &str) -> &'static Counter {
        if let Some(Metric::Counter(c)) = self.metrics.read().get(name) {
            return c;
        }
        let mut metrics = self.metrics.write();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Box::leak(Box::default())))
        {
            Metric::Counter(c) => c,
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// The gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> &'static Gauge {
        if let Some(Metric::Gauge(g)) = self.metrics.read().get(name) {
            return g;
        }
        let mut metrics = self.metrics.write();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Box::leak(Box::default())))
        {
            Metric::Gauge(g) => g,
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// The histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> &'static Histogram {
        if let Some(Metric::Histogram(h)) = self.metrics.read().get(name) {
            return h;
        }
        let mut metrics = self.metrics.write();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Box::leak(Box::default())))
        {
            Metric::Histogram(h) => h,
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// A point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let metrics = self.metrics.read();
        let mut counters = BTreeMap::new();
        let mut gauges = BTreeMap::new();
        let mut histograms = BTreeMap::new();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => {
                    counters.insert(name.clone(), c.get());
                }
                Metric::Gauge(g) => {
                    gauges.insert(name.clone(), g.get());
                }
                Metric::Histogram(h) => {
                    histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Zeroes every counter and histogram (names stay registered).
    /// Benchmarks call this between phases to attribute flows to one run.
    ///
    /// Gauges are exempt: they are *levels* published when the owning
    /// component was configured (`cache.shard.count`,
    /// `core.query.parallel.threads`), not flows since a point in time —
    /// zeroing them would report a stale zero until the owner happened to
    /// republish. [`MetricsSnapshot::since`] treats gauges the same way.
    pub fn reset(&self) {
        let metrics = self.metrics.read();
        for metric in metrics.values() {
            match metric {
                Metric::Counter(c) => c.reset(),
                Metric::Gauge(_) => {}
                Metric::Histogram(h) => h.reset(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let r = Registry::new();
        let c = r.counter("c");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = r.gauge("g");
        g.set(10);
        g.sub(3);
        g.add(1);
        assert_eq!(g.get(), 8);
    }

    #[test]
    fn same_name_returns_same_metric() {
        let r = Registry::new();
        r.counter("x").add(2);
        r.counter("x").add(3);
        assert_eq!(r.counter("x").get(), 5);
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn name_collision_across_types_panics() {
        let r = Registry::new();
        r.counter("dual");
        r.gauge("dual");
    }

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        // Every bucket's upper bound maps back into that bucket.
        for i in 1..BUCKETS - 1 {
            assert_eq!(bucket_index(bucket_upper_bound(i)), i, "bucket {i}");
            assert_eq!(bucket_index(bucket_upper_bound(i) + 1), i + 1);
        }
    }

    #[test]
    fn histogram_quantiles_use_bucket_upper_bounds() {
        let h = Histogram::default();
        for v in [1u64, 2, 3, 4, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1110);
        // Sorted: 1,2,3,4,100,1000 → p50 rank 3 → value 3 → bucket [2,4) → ub 3.
        assert_eq!(s.p50(), Some(3));
        // p99 rank 6 → 1000 → bucket [512,1024) → ub 1023.
        assert_eq!(s.p99(), Some(1023));
        assert!(s.mean().unwrap() > 100.0);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::default();
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.mean(), None);
    }

    #[test]
    fn quantile_extremes() {
        let h = Histogram::default();
        for v in 0..100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        // q=0 clamps to the first occupied bucket; q=1 to the last.
        assert_eq!(s.quantile(0.0), Some(0));
        assert_eq!(s.quantile(1.0), Some(127));
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let r = std::sync::Arc::new(Registry::new());
        let threads = 8;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let r = r.clone();
                std::thread::spawn(move || {
                    let c = r.counter("shared.counter");
                    let h = r.histogram("shared.hist");
                    for i in 0..per_thread {
                        c.inc();
                        h.record(i);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(r.counter("shared.counter").get(), threads * per_thread);
        let s = r.histogram("shared.hist").snapshot();
        assert_eq!(s.count, threads * per_thread);
    }

    #[test]
    fn reset_zeroes_but_keeps_names() {
        let r = Registry::new();
        r.counter("a").add(7);
        r.histogram("h").record(42);
        r.reset();
        assert_eq!(r.counter("a").get(), 0);
        assert_eq!(r.histogram("h").count(), 0);
        let snap = r.snapshot();
        assert!(snap.counters.contains_key("a"));
    }

    #[test]
    fn reset_preserves_gauge_levels() {
        let r = Registry::new();
        r.counter("cloud.block.get_requests").add(9);
        r.gauge("cache.shard.count").set(8);
        r.gauge("core.query.parallel.threads").set(4);
        r.reset();
        // Flows zero; levels survive inter-phase resets.
        assert_eq!(r.counter("cloud.block.get_requests").get(), 0);
        assert_eq!(r.gauge("cache.shard.count").get(), 8);
        assert_eq!(r.gauge("core.query.parallel.threads").get(), 4);
    }

    #[test]
    fn histogram_snapshot_since_subtracts_buckets() {
        let h = Histogram::default();
        h.record(3);
        h.record(100);
        let before = h.snapshot();
        h.record(100);
        h.record(5000);
        let delta = h.snapshot().since(&before);
        assert_eq!(delta.count, 2);
        assert_eq!(delta.sum, 5100);
        assert_eq!(delta.buckets[bucket_index(3)], 0);
        assert_eq!(delta.buckets[bucket_index(100)], 1);
        assert_eq!(delta.buckets[bucket_index(5000)], 1);
    }
}
