//! A fixed-capacity flight recorder of structured trace events.
//!
//! The recorder is a ring buffer of begin/end/instant/complete events,
//! disabled by default. The fast path is one relaxed atomic load
//! ([`FlightRecorder::is_enabled`]); only when a harness has enabled
//! recording does an event take the ring mutex. The ring overwrites the
//! oldest events when full (counting drops), so a long run keeps the most
//! recent window — drain it on demand and feed it to
//! [`crate::export::chrome_trace_json`] for a chrome://tracing timeline.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;

use crate::lockdep::{self, Mutex};
use std::time::Instant;

use crate::registry::Gauge;

/// How an event marks time, mapping onto chrome `trace_event` phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightPhase {
    /// Start of an interval (`ph:"B"`).
    Begin,
    /// End of an interval (`ph:"E"`).
    End,
    /// A point event (`ph:"i"`).
    Instant,
    /// A complete interval with a duration (`ph:"X"`).
    Complete,
}

impl FlightPhase {
    /// The chrome `trace_event` phase character.
    pub fn chrome_ph(&self) -> char {
        match self {
            FlightPhase::Begin => 'B',
            FlightPhase::End => 'E',
            FlightPhase::Instant => 'i',
            FlightPhase::Complete => 'X',
        }
    }
}

/// One recorded event. Timestamps are microseconds since the recorder was
/// enabled (chrome traces are denominated in µs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Monotonic sequence number (total order of recording).
    pub seq: u64,
    /// Event name (span name or caller-chosen label).
    pub name: String,
    pub phase: FlightPhase,
    /// Microseconds since enable.
    pub ts_us: u64,
    /// Duration in microseconds; only meaningful for [`FlightPhase::Complete`].
    pub dur_us: u64,
    /// Innermost active trace context id at record time, 0 when none.
    pub trace_id: u64,
    /// Operation label of that context, empty when none.
    pub op: String,
    /// Small per-thread id (first-use order, not an OS tid).
    pub tid: u64,
}

struct Ring {
    buf: VecDeque<FlightEvent>,
    capacity: usize,
    dropped: u64,
    epoch: Option<Instant>,
}

/// The recorder. One global instance lives behind [`flight`].
pub struct FlightRecorder {
    enabled: AtomicBool,
    seq: AtomicU64,
    ring: Mutex<Ring>,
    /// Mirrors `Ring::dropped` into the registry as
    /// `obs.flight.dropped_events`, so ring overflow shows up in /metrics
    /// instead of only via [`FlightRecorder::dropped`]. A gauge, not a
    /// counter: it resets with each [`FlightRecorder::enable`].
    dropped_gauge: &'static Gauge,
}

/// The process-wide flight recorder.
pub fn flight() -> &'static FlightRecorder {
    static GLOBAL: OnceLock<FlightRecorder> = OnceLock::new();
    GLOBAL.get_or_init(|| FlightRecorder {
        enabled: AtomicBool::new(false),
        seq: AtomicU64::new(0),
        ring: Mutex::new(
            &lockdep::OBS_FLIGHT_RING,
            Ring {
                buf: VecDeque::new(),
                capacity: 0,
                dropped: 0,
                epoch: None,
            },
        ),
        dropped_gauge: crate::gauge("obs.flight.dropped_events"),
    })
}

/// Small dense thread ids for trace rows (chrome groups events by tid).
fn tid() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

impl FlightRecorder {
    /// Starts recording with room for `capacity` events (clamped to ≥ 16),
    /// clearing anything from a previous enablement and restarting the
    /// event clock.
    pub fn enable(&self, capacity: usize) {
        let mut ring = self.ring.lock();
        ring.buf.clear();
        ring.capacity = capacity.max(16);
        ring.dropped = 0;
        self.dropped_gauge.set(0);
        ring.epoch = Some(Instant::now());
        self.seq.store(0, Ordering::Relaxed);
        self.enabled.store(true, Ordering::Release);
    }

    /// Stops recording; buffered events stay drainable.
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Release);
    }

    /// One relaxed load — the no-op fast path every instrumentation site
    /// checks before building an event.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Acquire)
    }

    /// Records the start of an interval named `name`.
    pub fn begin(&self, name: &str) {
        self.record(name, FlightPhase::Begin, None, 0);
    }

    /// Records the end of an interval named `name`.
    pub fn end(&self, name: &str) {
        self.record(name, FlightPhase::End, None, 0);
    }

    /// Records a point event.
    pub fn instant(&self, name: &str) {
        self.record(name, FlightPhase::Instant, None, 0);
    }

    /// Records a complete interval that started at `start` and lasted
    /// `dur_ns` (span drops use this: one event instead of a B/E pair).
    pub fn complete(&self, name: &str, start: Instant, dur_ns: u64) {
        self.record(name, FlightPhase::Complete, Some(start), dur_ns / 1_000);
    }

    fn record(&self, name: &str, phase: FlightPhase, start: Option<Instant>, dur_us: u64) {
        if !self.is_enabled() || crate::selfmon::active() {
            return;
        }
        let (trace_id, op) = crate::trace::current_id_op().unwrap_or((0, String::new()));
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let tid = tid();
        let mut ring = self.ring.lock();
        let Some(epoch) = ring.epoch else { return };
        let at = start.unwrap_or_else(Instant::now);
        let ts_us = at.saturating_duration_since(epoch).as_micros() as u64;
        if ring.buf.len() >= ring.capacity {
            ring.buf.pop_front();
            ring.dropped += 1;
            self.dropped_gauge.set(ring.dropped as i64);
        }
        ring.buf.push_back(FlightEvent {
            seq,
            name: name.to_string(),
            phase,
            ts_us,
            dur_us,
            trace_id,
            op,
            tid,
        });
    }

    /// Removes and returns every buffered event, oldest first.
    pub fn drain(&self) -> Vec<FlightEvent> {
        let mut ring = self.ring.lock();
        ring.buf.drain(..).collect()
    }

    /// Copies every buffered event, oldest first, leaving the ring
    /// intact — a non-destructive read for human scrapes (`/flight?peek=1`)
    /// that must not race the exporter out of its events.
    pub fn peek(&self) -> Vec<FlightEvent> {
        let ring = self.ring.lock();
        ring.buf.iter().cloned().collect()
    }

    /// Number of events overwritten since enable (ring overflow).
    pub fn dropped(&self) -> u64 {
        self.ring.lock().dropped
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.ring.lock().buf.len()
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Serializes tests (across modules) that mutate the global recorder.
#[cfg(test)]
pub(crate) static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    // The recorder is global state shared by every test in this binary, so
    // all flight tests live in this one serialized function, under the
    // cross-module lock (the serve tests drain the recorder too).
    #[test]
    fn recorder_lifecycle() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let f = flight();

        // Disabled: recording is a no-op.
        assert!(!f.is_enabled());
        f.instant("ignored");
        assert!(f.is_empty());

        // Enabled: events buffer in order with phases and tids.
        f.enable(64);
        f.begin("op.a");
        f.instant("tick");
        f.end("op.a");
        f.complete("op.b", Instant::now(), 2_500);
        let events = f.drain();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].phase, FlightPhase::Begin);
        assert_eq!(events[1].phase, FlightPhase::Instant);
        assert_eq!(events[2].phase, FlightPhase::End);
        assert_eq!(events[3].phase, FlightPhase::Complete);
        assert_eq!(events[3].dur_us, 2);
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        assert!(events.iter().all(|e| e.tid > 0));
        // No trace context was active.
        assert!(events.iter().all(|e| e.trace_id == 0 && e.op.is_empty()));
        assert!(f.is_empty());

        // Ring overflow keeps the newest events and counts drops.
        f.enable(16);
        for i in 0..40 {
            f.instant(&format!("e{i}"));
        }
        assert_eq!(f.len(), 16);
        assert_eq!(f.dropped(), 24);
        // Overflow is mirrored into the registry so /metrics shows it.
        assert_eq!(
            crate::global()
                .snapshot()
                .gauge("obs.flight.dropped_events"),
            Some(24)
        );
        let tail = f.drain();
        assert_eq!(tail.first().unwrap().name, "e24");
        assert_eq!(tail.last().unwrap().name, "e39");

        // Events inherit the innermost trace context's id and label.
        f.enable(16);
        // Re-enabling resets the overflow gauge along with the ring.
        assert_eq!(
            crate::global()
                .snapshot()
                .gauge("obs.flight.dropped_events"),
            Some(0)
        );
        {
            let ctx = crate::trace::TraceContext::start("flight-test");
            f.instant("inside");
            let id = ctx.id();
            let events = f.drain();
            assert_eq!(events[0].trace_id, id);
            assert_eq!(events[0].op, "flight-test");
        }

        // Peek copies without draining; a following drain still sees all.
        f.enable(16);
        f.instant("peeked");
        let peeked = f.peek();
        assert_eq!(peeked.len(), 1);
        assert_eq!(peeked[0].name, "peeked");
        assert_eq!(f.len(), 1, "peek leaves the ring intact");
        assert_eq!(f.peek(), f.drain(), "peek and drain see the same events");
        assert!(f.is_empty());

        // Events recorded inside a selfmon scope are suppressed — the
        // embedded telemetry engine must not pollute the flight timeline.
        {
            let _scope = crate::selfmon::enter();
            f.instant("selfmon-noise");
        }
        assert!(f.is_empty(), "selfmon-scoped events are dropped");

        f.disable();
        f.instant("after-disable");
        assert!(f.is_empty());
    }
}
