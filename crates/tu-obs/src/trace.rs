//! Scoped per-operation trace contexts for cost attribution.
//!
//! The registry answers "what did the process spend in total"; this module
//! answers "which operation paid for it". A [`TraceContext`] carries an id,
//! an operation label, and local counter/span deltas. While a context is
//! installed on a thread, every [`TracedCounter`] charge and every span
//! recorded on that thread is *also* added to the context, so after
//! [`TraceContext::finish`] the caller holds exactly the slice of
//! `cloud.<tier>.*` requests, cache hits, and stage timings the operation
//! caused — the per-operation denominators of the paper's Eq. 3–6.
//!
//! Contexts nest (a figure-harness phase context around profiled queries):
//! charges go to every context on the thread's stack, so a parent sees the
//! sum of its children plus its own direct work. Crossing threads is
//! explicit: capture [`TraceContext::handle`] (or [`current_handle`]) on
//! the owning thread, [`TraceHandle::attach`] it on the worker, and drop
//! the guard before joining. Workers share the same interned delta maps,
//! so "merging on join" is exact and automatic.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use crate::lockdep::{self, Mutex};

use crate::registry::Counter;

/// Accumulated span time inside one context.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanDelta {
    /// Number of span completions.
    pub count: u64,
    /// Total nanoseconds across those completions.
    pub total_ns: u64,
}

#[derive(Debug)]
struct ContextInner {
    id: u64,
    op: String,
    counters: Mutex<BTreeMap<&'static str, u64>>,
    spans: Mutex<BTreeMap<String, SpanDelta>>,
}

thread_local! {
    /// Innermost-last stack of contexts active on this thread.
    static CURRENT: RefCell<Vec<Arc<ContextInner>>> = const { RefCell::new(Vec::new()) };
}

fn next_trace_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// A scoped trace context. Constructing installs it on the current thread;
/// [`TraceContext::finish`] (or drop) uninstalls it. Not `Send`: the
/// context must finish on the thread that started it — workers join via
/// [`TraceHandle`].
#[derive(Debug)]
pub struct TraceContext {
    inner: Option<Arc<ContextInner>>,
    _not_send: PhantomData<*const ()>,
}

impl TraceContext {
    /// Starts a context labelled `op` and installs it on this thread.
    pub fn start(op: impl Into<String>) -> TraceContext {
        let inner = Arc::new(ContextInner {
            id: next_trace_id(),
            op: op.into(),
            counters: Mutex::new(&lockdep::OBS_TRACE_COUNTERS, BTreeMap::new()),
            spans: Mutex::new(&lockdep::OBS_TRACE_SPANS, BTreeMap::new()),
        });
        CURRENT.with(|cur| cur.borrow_mut().push(inner.clone()));
        TraceContext {
            inner: Some(inner),
            _not_send: PhantomData,
        }
    }

    /// Unique id of this context (also stamped on flight-recorder events).
    pub fn id(&self) -> u64 {
        self.inner.as_ref().expect("context not finished").id
    }

    /// The operation label given to [`TraceContext::start`].
    pub fn op(&self) -> &str {
        &self.inner.as_ref().expect("context not finished").op
    }

    /// A cloneable handle for charging this context from other threads.
    pub fn handle(&self) -> TraceHandle {
        TraceHandle {
            stack: vec![self.inner.as_ref().expect("context not finished").clone()],
        }
    }

    /// Uninstalls the context and returns its accumulated deltas.
    pub fn finish(mut self) -> TraceSummary {
        let inner = self.inner.take().expect("context finished twice");
        detach(&inner);
        let counters = inner
            .counters
            .lock()
            .iter()
            .map(|(&k, &v)| (k.to_string(), v))
            .collect();
        let spans = inner.spans.lock().clone();
        TraceSummary {
            id: inner.id,
            op: inner.op.clone(),
            counters,
            spans,
        }
    }
}

impl Drop for TraceContext {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            detach(&inner);
        }
    }
}

/// Removes the topmost occurrence of `inner` from this thread's stack.
fn detach(inner: &Arc<ContextInner>) {
    CURRENT.with(|cur| {
        let mut stack = cur.borrow_mut();
        if let Some(pos) = stack.iter().rposition(|c| Arc::ptr_eq(c, inner)) {
            stack.remove(pos);
        }
    });
}

/// A snapshot of one thread's context stack, cloneable and `Send`, for
/// propagating attribution across worker threads.
#[derive(Debug, Clone)]
pub struct TraceHandle {
    stack: Vec<Arc<ContextInner>>,
}

impl TraceHandle {
    /// Installs the handle's contexts on the current thread until the
    /// returned guard drops. Contexts already active on this thread are
    /// skipped, so re-attaching on the owning thread never double-charges.
    pub fn attach(&self) -> AttachGuard {
        let pushed = CURRENT.with(|cur| {
            let mut stack = cur.borrow_mut();
            let mut pushed = 0;
            for ctx in &self.stack {
                if !stack.iter().any(|c| Arc::ptr_eq(c, ctx)) {
                    stack.push(ctx.clone());
                    pushed += 1;
                }
            }
            pushed
        });
        AttachGuard {
            pushed,
            _not_send: PhantomData,
        }
    }
}

/// RAII guard from [`TraceHandle::attach`]; pops the attached contexts on
/// drop. Guards must drop in LIFO order on a given thread (the natural
/// RAII shape).
#[derive(Debug)]
pub struct AttachGuard {
    pushed: usize,
    _not_send: PhantomData<*const ()>,
}

impl Drop for AttachGuard {
    fn drop(&mut self) {
        CURRENT.with(|cur| {
            let mut stack = cur.borrow_mut();
            for _ in 0..self.pushed {
                stack.pop();
            }
        });
    }
}

/// The full context stack active on this thread, `None` when empty. Thread
/// pools capture this before spawning and attach it inside each worker.
pub fn current_handle() -> Option<TraceHandle> {
    CURRENT.with(|cur| {
        let stack = cur.borrow();
        if stack.is_empty() {
            None
        } else {
            Some(TraceHandle {
                stack: stack.clone(),
            })
        }
    })
}

/// True when at least one context is active on this thread.
pub fn active() -> bool {
    CURRENT.with(|cur| !cur.borrow().is_empty())
}

/// `(id, op)` of the innermost active context, for event stamping.
pub(crate) fn current_id_op() -> Option<(u64, String)> {
    CURRENT.with(|cur| cur.borrow().last().map(|c| (c.id, c.op.clone())))
}

/// Adds `n` under `name` to every context active on this thread.
pub(crate) fn charge(name: &'static str, n: u64) {
    if crate::selfmon::active() {
        return;
    }
    CURRENT.with(|cur| {
        let stack = cur.borrow();
        for ctx in stack.iter() {
            *ctx.counters.lock().entry(name).or_insert(0) += n;
        }
    });
}

/// Adds one completion of `ns` under span `name` to every active context.
pub(crate) fn charge_span(name: &str, ns: u64) {
    if crate::selfmon::active() {
        return;
    }
    CURRENT.with(|cur| {
        let stack = cur.borrow();
        for ctx in stack.iter() {
            let mut spans = ctx.spans.lock();
            let d = spans.entry(name.to_string()).or_default();
            d.count += 1;
            d.total_ns += ns;
        }
    });
}

/// Interns `name` to a `&'static str` (leaked once per distinct name) so
/// per-call [`traced`] lookups on hot paths never accumulate allocations.
fn intern(name: &str) -> &'static str {
    static INTERNED: OnceLock<Mutex<BTreeMap<String, &'static str>>> = OnceLock::new();
    let map = INTERNED.get_or_init(|| Mutex::new(&lockdep::OBS_TRACE_COUNTERS, BTreeMap::new()));
    let mut map = map.lock();
    if let Some(&s) = map.get(name) {
        return s;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    map.insert(name.to_string(), leaked);
    leaked
}

/// A counter that charges the global registry *and* the active trace
/// contexts with one call. `Copy`, so instrumented structs can hold it by
/// value like a plain `&'static Counter`.
#[derive(Debug, Clone, Copy)]
pub struct TracedCounter {
    counter: &'static Counter,
    name: &'static str,
}

impl TracedCounter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.counter.add(n);
        charge(self.name, n);
    }

    /// Current global value (identical to the underlying registry counter).
    pub fn get(&self) -> u64 {
        self.counter.get()
    }

    /// The registered metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// The traced counter named `name` on the [`crate::global`] registry,
/// registering it on first use.
pub fn traced(name: &str) -> TracedCounter {
    let name = intern(name);
    TracedCounter {
        counter: crate::global().counter(name),
        name,
    }
}

/// Everything one finished [`TraceContext`] accumulated: counter deltas by
/// metric name and span completions by span name. Maps are sorted, so the
/// [`fmt::Display`] and [`TraceSummary::to_json`] renderings are stable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSummary {
    pub id: u64,
    pub op: String,
    pub counters: BTreeMap<String, u64>,
    pub spans: BTreeMap<String, SpanDelta>,
}

impl TraceSummary {
    /// Delta of one counter inside this context (0 when never charged).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Accumulated time of one span inside this context.
    pub fn span(&self, name: &str) -> SpanDelta {
        self.spans.get(name).copied().unwrap_or_default()
    }

    /// Stable JSON encoding mirroring [`crate::MetricsSnapshot::to_json`].
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"trace_id\":{},\"op\":\"{}\",\"counters\":{{",
            self.id,
            crate::snapshot::escape(&self.op)
        );
        let mut first = true;
        for (k, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{}\":{v}", crate::snapshot::escape(k)));
        }
        out.push_str("},\"spans\":{");
        let mut first = true;
        for (k, d) in &self.spans {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"total_ns\":{}}}",
                crate::snapshot::escape(k),
                d.count,
                d.total_ns
            ));
        }
        out.push_str("}}");
        out
    }
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "--- trace {} op={} ---", self.id, self.op)?;
        for (name, v) in &self.counters {
            writeln!(f, "{name:<44} {v:>14}")?;
        }
        for (name, d) in &self.spans {
            writeln!(
                f,
                "span {name:<39} count={:<6} total_ns={}",
                d.count, d.total_ns
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_collects_traced_charges() {
        let before = traced("trace.test.alpha").get();
        let ctx = TraceContext::start("unit");
        traced("trace.test.alpha").add(3);
        traced("trace.test.alpha").inc();
        let summary = ctx.finish();
        assert_eq!(summary.op, "unit");
        assert_eq!(summary.counter("trace.test.alpha"), 4);
        // The global registry got the same charges.
        assert_eq!(traced("trace.test.alpha").get(), before + 4);
        // Charges after finish no longer attribute anywhere.
        traced("trace.test.alpha").inc();
        assert_eq!(summary.counter("trace.test.alpha"), 4);
    }

    #[test]
    fn charges_without_context_only_hit_registry() {
        assert!(!active());
        let c = traced("trace.test.nocontext");
        c.add(2);
        assert_eq!(c.get(), 2);
    }

    #[test]
    fn nested_contexts_both_charge() {
        let outer = TraceContext::start("outer");
        traced("trace.test.nested").inc();
        {
            let inner = TraceContext::start("inner");
            traced("trace.test.nested").add(10);
            let s = inner.finish();
            assert_eq!(s.counter("trace.test.nested"), 10);
        }
        traced("trace.test.nested").inc();
        let s = outer.finish();
        // The parent saw its own 2 charges plus the child's 10.
        assert_eq!(s.counter("trace.test.nested"), 12);
    }

    #[test]
    fn handle_attaches_across_threads() {
        let ctx = TraceContext::start("fanout");
        let handle = ctx.handle();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let h = handle.clone();
                s.spawn(move || {
                    let _g = h.attach();
                    traced("trace.test.fanout").add(5);
                });
            }
        });
        let summary = ctx.finish();
        assert_eq!(summary.counter("trace.test.fanout"), 20);
    }

    #[test]
    fn reattaching_on_owner_thread_does_not_double_charge() {
        let ctx = TraceContext::start("self");
        let handle = ctx.handle();
        {
            let _g = handle.attach(); // already active here: no-op
            traced("trace.test.reattach").inc();
        }
        traced("trace.test.reattach").inc();
        assert_eq!(ctx.finish().counter("trace.test.reattach"), 2);
    }

    #[test]
    fn span_deltas_accumulate() {
        let ctx = TraceContext::start("spans");
        charge_span("stage.x", 100);
        charge_span("stage.x", 50);
        let s = ctx.finish();
        assert_eq!(
            s.span("stage.x"),
            SpanDelta {
                count: 2,
                total_ns: 150
            }
        );
        assert_eq!(s.span("stage.missing"), SpanDelta::default());
    }

    #[test]
    fn drop_without_finish_detaches() {
        {
            let _ctx = TraceContext::start("dropped");
            assert!(active());
        }
        assert!(!active());
        assert!(current_handle().is_none());
    }

    #[test]
    fn summary_render_and_json_are_stable() {
        let ctx = TraceContext::start("render");
        traced("trace.test.render").add(7);
        charge_span("stage.r", 9);
        let s = ctx.finish();
        let text = s.to_string();
        assert!(text.contains("op=render"));
        assert!(text.contains("trace.test.render"));
        let json = s.to_json();
        assert!(json.contains("\"op\":\"render\""));
        assert!(json.contains("\"trace.test.render\":7"));
        assert!(json.contains("\"stage.r\":{\"count\":1,\"total_ns\":9}"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn interning_is_stable() {
        let a = traced("trace.test.intern");
        let b = traced("trace.test.intern");
        assert!(std::ptr::eq(a.name(), b.name()));
        assert_eq!(a.name(), "trace.test.intern");
    }
}
