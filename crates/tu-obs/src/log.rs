//! A leveled, rate-limited, structured event log.
//!
//! Counters answer "how much"; events answer "what happened". This module
//! is the diagnostics channel for the engine crates: one JSON object per
//! line, written to stderr (default), a file, or an in-memory buffer for
//! tests. Events carry the innermost active [`crate::TraceContext`] id, so
//! a warning in a log file can be joined against the flight recorder's
//! timeline for the same operation.
//!
//! Design constraints, in order:
//!
//! * **Cheap when quiet.** The level check is one relaxed atomic load; a
//!   filtered-out event allocates nothing. The default level is `Warn`, so
//!   instrumented hot-ish paths (flush, compaction) cost only that load.
//! * **Bounded when loud.** Each target gets a token window
//!   (`max_per_window` events per `window_ms`); excess events are counted,
//!   not written, and the first event of the next window reports how many
//!   were suppressed. A compaction storm cannot turn the log into the
//!   bottleneck. Emission and suppression are visible as the
//!   `obs.log.emitted` / `obs.log.suppressed` counters.
//! * **Machine-first.** Output is JSON lines with a fixed envelope
//!   (`ts_ms`, `level`, `target`, `msg`, optional `trace`/`op`,
//!   `fields`); values are typed, keys are escaped.
//!
//! ```
//! use tu_obs::log::{self, Level};
//! log::log().set_sink_memory();
//! log::log().set_level(Some(Level::Info));
//! log::info("doc.example", "flushed", &[("tables", 3u64.into())]);
//! let lines = log::log().drain_memory();
//! assert!(lines.last().unwrap().contains("\"target\":\"doc.example\""));
//! ```

use std::collections::HashMap;
use std::fmt;
use std::io::Write;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};

use crate::lockdep::{self, Mutex};

use crate::registry::Counter;
use crate::snapshot::escape;

/// Event severity, ordered. `Off` disables everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3,
}

impl Level {
    pub fn as_str(&self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    /// Parses `debug|info|warn|error|off` (case-insensitive); `None` means
    /// off, and unknown strings fall back to `Warn`.
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" | "warning" => Some(Level::Warn),
            "error" => Some(Level::Error),
            "off" | "none" => None,
            _ => Some(Level::Warn),
        }
    }
}

/// A typed field value. Numbers render unquoted; strings are escaped.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
}

impl Value {
    fn render(&self, out: &mut String) {
        match self {
            Value::U64(v) => out.push_str(&v.to_string()),
            Value::I64(v) => out.push_str(&v.to_string()),
            Value::F64(v) if v.is_finite() => out.push_str(&format!("{v:.3}")),
            Value::F64(_) => out.push_str("null"),
            Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            Value::Str(s) => {
                out.push('"');
                out.push_str(escape(s).as_ref());
                out.push('"');
            }
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.render(&mut s);
        f.write_str(&s)
    }
}

/// Where emitted lines go.
enum Sink {
    Stderr,
    File(std::io::BufWriter<std::fs::File>),
    /// Test sink: lines buffer in memory and are read back with
    /// [`EventLog::drain_memory`].
    Memory(Vec<String>),
}

/// Per-target token window for rate limiting.
struct RateWindow {
    window_start_ms: i64,
    emitted_in_window: u64,
    suppressed_in_window: u64,
}

struct LogInner {
    sink: Sink,
    windows: HashMap<String, RateWindow>,
    max_per_window: u64,
    window_ms: i64,
    /// Per-target overrides of `max_per_window`: targets with their own
    /// budget (the `alert` channel) cannot starve — or be starved by —
    /// the shared default budget of unrelated targets.
    target_limits: HashMap<String, u64>,
    now_ms: Arc<dyn Fn() -> i64 + Send + Sync>,
}

/// The event log. One global instance lives behind [`log`].
pub struct EventLog {
    /// `Level as u8`, or [`LEVEL_OFF`] when disabled. The fast path is one
    /// relaxed load against this.
    min_level: AtomicU8,
    inner: Mutex<LogInner>,
    emitted: &'static Counter,
    suppressed: &'static Counter,
}

const LEVEL_OFF: u8 = u8::MAX;

/// Milliseconds since an arbitrary process-local epoch; the default event
/// timestamp and rate-limit clock when no virtual clock is installed.
fn process_ms() -> i64 {
    static EPOCH: OnceLock<std::time::Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(std::time::Instant::now);
    epoch.elapsed().as_millis().min(i64::MAX as u128) as i64
}

/// The process-wide event log.
///
/// Defaults: level `Warn` (override with the `TU_LOG` environment
/// variable: `debug|info|warn|error|off`), sink stderr (override with
/// `TU_LOG_FILE=<path>`), 32 events per target per second.
pub fn log() -> &'static EventLog {
    static GLOBAL: OnceLock<EventLog> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let level = match std::env::var("TU_LOG") {
            Ok(v) => Level::parse(&v),
            Err(_) => Some(Level::Warn),
        };
        let sink = match std::env::var("TU_LOG_FILE") {
            Ok(path) => std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .map(|f| Sink::File(std::io::BufWriter::new(f)))
                .unwrap_or(Sink::Stderr),
            Err(_) => Sink::Stderr,
        };
        EventLog {
            min_level: AtomicU8::new(level.map_or(LEVEL_OFF, |l| l as u8)),
            inner: Mutex::new(
                &lockdep::OBS_LOG_INNER,
                LogInner {
                    sink,
                    windows: HashMap::new(),
                    max_per_window: 32,
                    window_ms: 1_000,
                    target_limits: HashMap::new(),
                    now_ms: Arc::new(process_ms),
                },
            ),
            emitted: crate::counter("obs.log.emitted"),
            suppressed: crate::counter("obs.log.suppressed"),
        }
    })
}

impl EventLog {
    /// True when an event at `level` would be written (the one-atomic-load
    /// fast path; call before building expensive fields).
    pub fn enabled(&self, level: Level) -> bool {
        level as u8 >= self.min_level.load(Ordering::Relaxed)
    }

    /// Sets the minimum level; `None` disables the log entirely.
    pub fn set_level(&self, level: Option<Level>) {
        self.min_level
            .store(level.map_or(LEVEL_OFF, |l| l as u8), Ordering::Relaxed);
    }

    /// The current minimum level, `None` when off.
    pub fn level(&self) -> Option<Level> {
        match self.min_level.load(Ordering::Relaxed) {
            0 => Some(Level::Debug),
            1 => Some(Level::Info),
            2 => Some(Level::Warn),
            3 => Some(Level::Error),
            _ => None,
        }
    }

    /// Routes events to stderr (the default).
    pub fn set_sink_stderr(&self) {
        self.lock_inner().sink = Sink::Stderr;
    }

    /// Routes events to `path`, appending.
    pub fn set_sink_file(&self, path: &std::path::Path) -> std::io::Result<()> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        self.lock_inner().sink = Sink::File(std::io::BufWriter::new(file));
        Ok(())
    }

    /// Routes events to an in-memory buffer ([`EventLog::drain_memory`]).
    pub fn set_sink_memory(&self) {
        self.lock_inner().sink = Sink::Memory(Vec::new());
    }

    /// Removes and returns buffered lines (memory sink only).
    pub fn drain_memory(&self) -> Vec<String> {
        match &mut self.lock_inner().sink {
            Sink::Memory(lines) => std::mem::take(lines),
            _ => Vec::new(),
        }
    }

    /// Reconfigures rate limiting: at most `max_per_window` events per
    /// target per `window_ms` (both clamped to ≥ 1). Existing windows
    /// reset on the next event.
    pub fn set_rate_limit(&self, max_per_window: u64, window_ms: i64) {
        let mut inner = self.lock_inner();
        inner.max_per_window = max_per_window.max(1);
        inner.window_ms = window_ms.max(1);
        inner.windows.clear();
    }

    /// Gives `target` its own per-window budget, independent of the
    /// default `max_per_window`. A flapping emitter on a dedicated target
    /// (the engine's `alert` channel) then cannot consume — or lose —
    /// budget shared with unrelated targets. `None` removes the override.
    pub fn set_target_rate_limit(&self, target: &str, max_per_window: Option<u64>) {
        let mut inner = self.lock_inner();
        match max_per_window {
            Some(max) => {
                inner.target_limits.insert(target.to_string(), max.max(1));
            }
            None => {
                inner.target_limits.remove(target);
            }
        }
        inner.windows.remove(target);
    }

    /// Installs the clock used for event timestamps and rate-limit
    /// windows. Engines pass their `tu_common::clock` here so simulated
    /// runs produce simulated-time logs.
    pub fn set_time_source(&self, now_ms: Arc<dyn Fn() -> i64 + Send + Sync>) {
        self.lock_inner().now_ms = now_ms;
    }

    fn lock_inner(&self) -> lockdep::MutexGuard<'_, LogInner> {
        // Poison recovery now lives in the lockdep wrapper; a panic while
        // holding the short critical sections below cannot leave the
        // state inconsistent.
        self.inner.lock()
    }

    /// Emits one event. Prefer the level shorthands ([`info`], [`warn`],
    /// …) on the global log.
    pub fn event(&self, level: Level, target: &str, msg: &str, fields: &[(&str, Value)]) {
        if !self.enabled(level) {
            return;
        }
        let trace = crate::trace::current_id_op();
        let mut inner = self.lock_inner();
        let now = (inner.now_ms)();
        let window_ms = inner.window_ms;
        let max = inner
            .target_limits
            .get(target)
            .copied()
            .unwrap_or(inner.max_per_window);
        let window = inner
            .windows
            .entry(target.to_string())
            .or_insert(RateWindow {
                window_start_ms: now,
                emitted_in_window: 0,
                suppressed_in_window: 0,
            });
        let mut suppressed_prev = 0;
        if now.saturating_sub(window.window_start_ms) >= window_ms {
            suppressed_prev = window.suppressed_in_window;
            window.window_start_ms = now;
            window.emitted_in_window = 0;
            window.suppressed_in_window = 0;
        }
        if window.emitted_in_window >= max {
            window.suppressed_in_window += 1;
            self.suppressed.inc();
            return;
        }
        window.emitted_in_window += 1;
        self.emitted.inc();

        let mut line = String::with_capacity(128);
        line.push_str(&format!(
            "{{\"ts_ms\":{now},\"level\":\"{}\",\"target\":\"{}\",\"msg\":\"{}\"",
            level.as_str(),
            escape(target),
            escape(msg)
        ));
        if let Some((id, op)) = trace {
            line.push_str(&format!(",\"trace\":{id},\"op\":\"{}\"", escape(&op)));
        }
        if suppressed_prev > 0 {
            line.push_str(&format!(",\"suppressed\":{suppressed_prev}"));
        }
        if !fields.is_empty() {
            line.push_str(",\"fields\":{");
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                line.push('"');
                line.push_str(escape(k).as_ref());
                line.push_str("\":");
                v.render(&mut line);
            }
            line.push('}');
        }
        line.push('}');

        match &mut inner.sink {
            Sink::Stderr => {
                let _ = writeln!(std::io::stderr().lock(), "{line}");
            }
            Sink::File(f) => {
                let _ = writeln!(f, "{line}");
                let _ = f.flush();
            }
            Sink::Memory(lines) => lines.push(line),
        }
    }
}

/// Emits a debug event on the global log.
pub fn debug(target: &str, msg: &str, fields: &[(&str, Value)]) {
    log().event(Level::Debug, target, msg, fields);
}

/// Emits an info event on the global log.
pub fn info(target: &str, msg: &str, fields: &[(&str, Value)]) {
    log().event(Level::Info, target, msg, fields);
}

/// Emits a warn event on the global log.
pub fn warn(target: &str, msg: &str, fields: &[(&str, Value)]) {
    log().event(Level::Warn, target, msg, fields);
}

/// Emits an error event on the global log.
pub fn error(target: &str, msg: &str, fields: &[(&str, Value)]) {
    log().event(Level::Error, target, msg, fields);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicI64;

    // The log is global state shared by every test in this binary, so all
    // log tests live in this one serialized function (the flight recorder
    // tests use the same pattern).
    #[test]
    fn event_log_lifecycle() {
        let l = log();
        l.set_sink_memory();
        l.set_level(Some(Level::Info));

        // Shape: envelope keys, typed fields, escaping.
        info(
            "test.shape",
            "hello \"world\"",
            &[
                ("count", 7u64.into()),
                ("ratio", 0.5f64.into()),
                ("ok", true.into()),
                ("name", "a\\b".into()),
            ],
        );
        let lines = l.drain_memory();
        assert_eq!(lines.len(), 1);
        let line = &lines[0];
        assert!(line.starts_with("{\"ts_ms\":"), "{line}");
        assert!(line.contains("\"level\":\"info\""));
        assert!(line.contains("\"target\":\"test.shape\""));
        assert!(line.contains("\"msg\":\"hello \\\"world\\\"\""));
        assert!(line.contains("\"count\":7"));
        assert!(line.contains("\"ratio\":0.500"));
        assert!(line.contains("\"ok\":true"));
        assert!(line.contains("\"name\":\"a\\\\b\""));
        assert_eq!(line.matches('{').count(), line.matches('}').count());

        // Level filtering: debug is below info.
        debug("test.level", "dropped", &[]);
        assert!(l.drain_memory().is_empty());
        assert!(!l.enabled(Level::Debug));
        assert!(l.enabled(Level::Error));

        // Off drops everything.
        l.set_level(None);
        error("test.level", "dropped", &[]);
        assert!(l.drain_memory().is_empty());
        l.set_level(Some(Level::Info));

        // Trace correlation: events inside a context carry its id and op.
        {
            let ctx = crate::TraceContext::start("log-test");
            info("test.trace", "inside", &[]);
            let lines = l.drain_memory();
            assert!(lines[0].contains(&format!("\"trace\":{}", ctx.id())));
            assert!(lines[0].contains("\"op\":\"log-test\""));
        }

        // Rate limiting under a manual clock: 2 events per 1000 ms window,
        // then suppression, then a new window reporting the drops.
        let clock = Arc::new(AtomicI64::new(0));
        let c = clock.clone();
        l.set_time_source(Arc::new(move || c.load(Ordering::Relaxed)));
        l.set_rate_limit(2, 1_000);
        for _ in 0..5 {
            info("test.rate", "burst", &[]);
        }
        assert_eq!(l.drain_memory().len(), 2, "window caps at 2");
        clock.store(1_000, Ordering::Relaxed);
        info("test.rate", "next window", &[]);
        let lines = l.drain_memory();
        assert_eq!(lines.len(), 1);
        assert!(
            lines[0].contains("\"suppressed\":3"),
            "first event of the new window reports drops: {}",
            lines[0]
        );
        // Other targets are unaffected by test.rate's window.
        info("test.other", "independent", &[]);
        assert_eq!(l.drain_memory().len(), 1);

        // A dedicated per-target budget: the `alert` channel keeps its own
        // window, so a flapping alert can't suppress unrelated targets and
        // a noisy default target can't starve alerts.
        clock.store(10_000, Ordering::Relaxed);
        l.set_rate_limit(2, 1_000);
        l.set_target_rate_limit("alert", Some(4));
        for _ in 0..6 {
            info("alert", "flap", &[]);
            info("test.rate2", "noise", &[]);
        }
        let lines = l.drain_memory();
        assert_eq!(
            lines
                .iter()
                .filter(|ln| ln.contains("\"target\":\"alert\""))
                .count(),
            4,
            "alert budget is its own"
        );
        assert_eq!(
            lines
                .iter()
                .filter(|ln| ln.contains("\"target\":\"test.rate2\""))
                .count(),
            2,
            "default budget unaffected by the alert flood"
        );
        l.set_target_rate_limit("alert", None);

        // Counters moved.
        assert!(crate::global().snapshot().counter("obs.log.emitted") >= Some(5));
        assert!(crate::global().snapshot().counter("obs.log.suppressed") >= Some(3));

        // Restore defaults for any other test in this binary.
        l.set_rate_limit(32, 1_000);
        l.set_time_source(Arc::new(process_ms));
        l.set_level(Some(Level::Warn));
        l.set_sink_stderr();
    }

    #[test]
    fn level_parse() {
        assert_eq!(Level::parse("debug"), Some(Level::Debug));
        assert_eq!(Level::parse("INFO"), Some(Level::Info));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("off"), None);
        assert_eq!(Level::parse("bogus"), Some(Level::Warn));
    }
}
