//! Exporters: Prometheus text exposition for [`MetricsSnapshot`]s and
//! chrome://tracing `trace_event` JSON for [`FlightEvent`]s.
//!
//! Both formats are emitted by the `figures` harness (`--prom-out`,
//! `--trace-out`) so a figure run leaves behind machine-readable cost
//! evidence next to the rendered numbers. [`parse_prometheus_text`] is the
//! matching format checker: it re-parses an exposition and validates the
//! histogram invariants (cumulative buckets, `+Inf` == `_count`), which CI
//! uses to prove the exporter round-trips.

use std::collections::BTreeMap;

use crate::flight::{FlightEvent, FlightPhase};
use crate::registry::bucket_upper_bound;
use crate::snapshot::{escape, MetricsSnapshot};

/// Maps a dotted metric name onto the Prometheus name charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): dots and other invalid characters become
/// underscores, and a leading digit gets an underscore prefix.
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let valid =
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else if valid {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Renders a snapshot in the Prometheus text exposition format (version
/// 0.0.4): one `# TYPE` comment per metric, counters and gauges as single
/// samples, histograms as cumulative `le` buckets plus `_sum`/`_count`.
/// Output is sorted by metric name, so it is diffable across runs.
pub fn prometheus_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let n = prometheus_name(name);
        out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
    }
    for (name, v) in &snap.gauges {
        let n = prometheus_name(name);
        out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
    }
    for (name, h) in &snap.histograms {
        let n = prometheus_name(name);
        out.push_str(&format!("# TYPE {n} histogram\n"));
        let top = h.buckets.iter().rposition(|&c| c > 0).unwrap_or(0);
        let mut cumulative = 0u64;
        for (i, &c) in h.buckets.iter().enumerate().take(top + 1) {
            cumulative += c;
            out.push_str(&format!(
                "{n}_bucket{{le=\"{}\"}} {cumulative}\n",
                bucket_upper_bound(i)
            ));
        }
        out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {}\n", h.count));
        out.push_str(&format!("{n}_sum {}\n", h.sum));
        out.push_str(&format!("{n}_count {}\n", h.count));
    }
    out
}

/// A histogram re-parsed from an exposition.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PromHistogram {
    pub count: u64,
    pub sum: u64,
    /// `(le, cumulative count)` pairs in exposition order; the final pair
    /// is the `+Inf` bucket.
    pub buckets: Vec<(f64, u64)>,
}

/// A parsed Prometheus text exposition (the subset [`prometheus_text`]
/// emits: no labels other than `le`, integer sample values).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PromParsed {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, PromHistogram>,
}

fn valid_prom_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
}

/// Parses and validates a text exposition, returning the metrics or a
/// description of the first violation. Checks performed:
///
/// * every sample's metric was declared by a `# TYPE` line (histogram
///   samples may use the `_bucket`/`_sum`/`_count` suffixes);
/// * metric names match the Prometheus charset and values parse;
/// * the only label used is `le`, on histogram buckets;
/// * histogram buckets are cumulative (non-decreasing), end in `+Inf`, and
///   the `+Inf` bucket equals `_count`.
pub fn parse_prometheus_text(text: &str) -> Result<PromParsed, String> {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    // (line number, name, le label, value) for every sample.
    let mut samples: Vec<(usize, String, Option<f64>, f64)> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it
                .next()
                .ok_or(format!("line {lineno}: TYPE without name"))?;
            let kind = it
                .next()
                .ok_or(format!("line {lineno}: TYPE without kind"))?;
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                return Err(format!("line {lineno}: unknown metric type {kind:?}"));
            }
            if !valid_prom_name(name) {
                return Err(format!("line {lineno}: invalid metric name {name:?}"));
            }
            if types.insert(name.to_string(), kind.to_string()).is_some() {
                return Err(format!("line {lineno}: duplicate TYPE for {name:?}"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or free-form comment
        }
        // Sample: `name value` or `name{le="bound"} value`.
        let (name_part, value_part) = match line.find(|c: char| c.is_whitespace()) {
            Some(split) => (&line[..split], line[split..].trim()),
            None => return Err(format!("line {lineno}: sample without value")),
        };
        let (name, le) = match name_part.find('{') {
            None => (name_part.to_string(), None),
            Some(open) => {
                let name = &name_part[..open];
                let labels = name_part[open..]
                    .strip_prefix('{')
                    .and_then(|s| s.strip_suffix('}'))
                    .ok_or(format!("line {lineno}: malformed label braces"))?;
                let le = labels
                    .strip_prefix("le=\"")
                    .and_then(|s| s.strip_suffix('"'))
                    .ok_or(format!("line {lineno}: unsupported labels {labels:?}"))?;
                let le = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse::<f64>()
                        .map_err(|_| format!("line {lineno}: bad le bound {le:?}"))?
                };
                (name.to_string(), Some(le))
            }
        };
        if !valid_prom_name(&name) {
            return Err(format!("line {lineno}: invalid metric name {name:?}"));
        }
        let value = value_part
            .parse::<f64>()
            .map_err(|_| format!("line {lineno}: bad sample value {value_part:?}"))?;
        samples.push((lineno, name, le, value));
    }

    let mut parsed = PromParsed::default();
    for (lineno, name, le, value) in &samples {
        // Resolve which declared metric this sample belongs to.
        let base = if let Some(kind) = types.get(name) {
            (name.clone(), kind.clone())
        } else {
            let stripped = name
                .strip_suffix("_bucket")
                .or_else(|| name.strip_suffix("_sum"))
                .or_else(|| name.strip_suffix("_count"));
            match stripped.and_then(|b| types.get(b).map(|k| (b.to_string(), k.clone()))) {
                Some(pair) => pair,
                None => return Err(format!("line {lineno}: sample {name:?} has no TYPE")),
            }
        };
        let (base_name, kind) = base;
        match kind.as_str() {
            "counter" => {
                if *value < 0.0 || value.fract() != 0.0 {
                    return Err(format!("line {lineno}: counter {name:?} not a u64"));
                }
                parsed.counters.insert(base_name, *value as u64);
            }
            "gauge" => {
                parsed.gauges.insert(base_name, *value as i64);
            }
            "histogram" => {
                let h = parsed.histograms.entry(base_name.clone()).or_default();
                if name.ends_with("_bucket") {
                    let le =
                        le.ok_or(format!("line {lineno}: histogram bucket without le label"))?;
                    h.buckets.push((le, *value as u64));
                } else if name.ends_with("_sum") {
                    h.sum = *value as u64;
                } else if name.ends_with("_count") {
                    h.count = *value as u64;
                } else {
                    return Err(format!(
                        "line {lineno}: bare sample {name:?} for histogram type"
                    ));
                }
            }
            _ => unreachable!("validated above"),
        }
    }

    // Histogram invariants.
    for (name, h) in &parsed.histograms {
        if h.buckets.is_empty() {
            return Err(format!("histogram {name:?} has no buckets"));
        }
        for w in h.buckets.windows(2) {
            if w[0].0 >= w[1].0 {
                return Err(format!("histogram {name:?} le bounds not increasing"));
            }
            if w[0].1 > w[1].1 {
                return Err(format!("histogram {name:?} buckets not cumulative"));
            }
        }
        let (last_le, last_count) = *h.buckets.last().expect("non-empty");
        if !last_le.is_infinite() {
            return Err(format!("histogram {name:?} missing +Inf bucket"));
        }
        if last_count != h.count {
            return Err(format!(
                "histogram {name:?} +Inf bucket {last_count} != count {}",
                h.count
            ));
        }
    }
    Ok(parsed)
}

/// Renders flight-recorder events as a chrome://tracing `trace_event` JSON
/// array (load via chrome://tracing or https://ui.perfetto.dev). `ts` and
/// `dur` are microseconds since the recorder was enabled; the trace id and
/// operation label ride along in `args`.
pub fn chrome_trace_json(events: &[FlightEvent]) -> String {
    let mut out = String::from("[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"tu\",\"ph\":\"{}\",\"ts\":{},\"pid\":1,\"tid\":{}",
            escape(&e.name),
            e.phase.chrome_ph(),
            e.ts_us,
            e.tid
        ));
        if e.phase == FlightPhase::Complete {
            out.push_str(&format!(",\"dur\":{}", e.dur_us));
        }
        if e.phase == FlightPhase::Instant {
            out.push_str(",\"s\":\"t\"");
        }
        out.push_str(&format!(
            ",\"args\":{{\"seq\":{},\"trace\":{},\"op\":\"{}\"}}}}",
            e.seq,
            e.trace_id,
            escape(&e.op)
        ));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample_snapshot() -> MetricsSnapshot {
        let r = Registry::new();
        r.counter("cloud.object.get_requests").add(42);
        r.counter("cloud.block.put_requests").add(7);
        r.gauge("lsm.memtable.bytes").set(-1234);
        for v in [100u64, 900, 900, 15_000] {
            r.histogram("span.lsm.flush.ns").record(v);
        }
        r.snapshot()
    }

    #[test]
    fn prometheus_name_sanitizes() {
        assert_eq!(
            prometheus_name("cloud.object.get_requests"),
            "cloud_object_get_requests"
        );
        assert_eq!(prometheus_name("span.lsm.flush.ns"), "span_lsm_flush_ns");
        assert_eq!(prometheus_name("9lives"), "_9lives");
        assert_eq!(prometheus_name("weird name!"), "weird_name_");
    }

    #[test]
    fn prometheus_text_shape() {
        let text = prometheus_text(&sample_snapshot());
        assert!(text.contains("# TYPE cloud_object_get_requests counter\n"));
        assert!(text.contains("cloud_object_get_requests 42\n"));
        assert!(text.contains("# TYPE lsm_memtable_bytes gauge\n"));
        assert!(text.contains("lsm_memtable_bytes -1234\n"));
        assert!(text.contains("# TYPE span_lsm_flush_ns histogram\n"));
        assert!(text.contains("span_lsm_flush_ns_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("span_lsm_flush_ns_sum 16900\n"));
        assert!(text.contains("span_lsm_flush_ns_count 4\n"));
    }

    #[test]
    fn prometheus_round_trips() {
        let snap = sample_snapshot();
        let parsed = parse_prometheus_text(&prometheus_text(&snap)).expect("valid exposition");
        assert_eq!(parsed.counters.len(), snap.counters.len());
        for (name, v) in &snap.counters {
            assert_eq!(parsed.counters.get(&prometheus_name(name)), Some(v));
        }
        for (name, v) in &snap.gauges {
            assert_eq!(parsed.gauges.get(&prometheus_name(name)), Some(v));
        }
        for (name, h) in &snap.histograms {
            let p = parsed
                .histograms
                .get(&prometheus_name(name))
                .expect("histogram present");
            assert_eq!(p.count, h.count);
            assert_eq!(p.sum, h.sum);
        }
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let parsed = parse_prometheus_text(&prometheus_text(&MetricsSnapshot::default()))
            .expect("empty exposition is valid");
        assert_eq!(parsed, PromParsed::default());
    }

    #[test]
    fn parser_rejects_violations() {
        // Sample without a TYPE declaration.
        assert!(parse_prometheus_text("orphan 1\n").is_err());
        // Non-cumulative histogram buckets.
        let bad = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n\
                   h_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 5\n";
        assert!(parse_prometheus_text(bad)
            .unwrap_err()
            .contains("cumulative"));
        // +Inf bucket disagreeing with _count.
        let bad = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_sum 9\nh_count 5\n";
        assert!(parse_prometheus_text(bad).unwrap_err().contains("count"));
        // Missing +Inf bucket.
        let bad = "# TYPE h histogram\nh_bucket{le=\"8\"} 5\nh_sum 9\nh_count 5\n";
        assert!(parse_prometheus_text(bad).unwrap_err().contains("+Inf"));
        // Garbage value.
        assert!(parse_prometheus_text("# TYPE c counter\nc banana\n").is_err());
        // Unsupported label.
        assert!(parse_prometheus_text("# TYPE c counter\nc{job=\"x\"} 1\n").is_err());
    }

    #[test]
    fn chrome_trace_is_wellformed() {
        use crate::flight::{FlightEvent, FlightPhase};
        let events = vec![
            FlightEvent {
                seq: 0,
                name: "core.query".into(),
                phase: FlightPhase::Complete,
                ts_us: 10,
                dur_us: 250,
                trace_id: 3,
                op: "query".into(),
                tid: 1,
            },
            FlightEvent {
                seq: 1,
                name: "tick \"q\"".into(),
                phase: FlightPhase::Instant,
                ts_us: 300,
                dur_us: 0,
                trace_id: 0,
                op: String::new(),
                tid: 2,
            },
        ];
        let json = chrome_trace_json(&events);
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":250"));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"trace\":3"));
        // Hostile characters in names are escaped.
        assert!(json.contains("tick \\\"q\\\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(chrome_trace_json(&[]), "[]");
    }
}
