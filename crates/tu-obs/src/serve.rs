//! A zero-dependency embedded HTTP server for the live endpoints.
//!
//! `std::net::TcpListener`, one accept thread, a small worker pool, and a
//! deliberately tiny HTTP/1.x subset: `GET` only, requests capped at 8 KiB,
//! every response `Connection: close`. That subset is exactly what
//! Prometheus scrapers, Kubernetes probes, and `curl` emit — anything else
//! is answered with a 4xx and the connection dropped, never trusted.
//!
//! | endpoint        | payload |
//! |-----------------|---------|
//! | `/metrics`      | Prometheus text exposition of the global registry |
//! | `/metrics.json` | [`MetricsSnapshot::to_json`](crate::MetricsSnapshot::to_json) |
//! | `/flight`       | chrome://tracing JSON **drain** of the flight recorder (`?peek=1` copies without draining) |
//! | `/healthz`      | aggregated [`HealthReport`] JSON; 503 when unhealthy |
//! | `/readyz`       | same report; 503 until ready / after shutdown begins |
//! | `/vitals`       | windowed [`Vitals`](crate::Vitals) JSON from the monitor (`?window=<secs>` picks the delta window) |
//!
//! Embedders register additional routes via [`ServeSources::extra`] (the
//! engine adds `/introspect/lsm`, `/introspect/partitions`, `/costs`).
//!
//! Shutdown is graceful and bounded: [`ObsServer::shutdown`] flips a flag,
//! nudges the accept loop awake with a loopback connect, and joins every
//! thread before returning.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc};

use crate::lockdep::{self, Mutex};
use std::thread;
use std::time::Duration;

use crate::health::HealthSource;
use crate::monitor::Monitor;
use crate::registry::Counter;

/// Largest request we read before answering 400: callers are scrapers
/// sending one short GET line plus a handful of headers.
const MAX_REQUEST_BYTES: usize = 8 * 1024;
/// Per-connection socket timeout; a stalled scraper cannot pin a worker.
const IO_TIMEOUT: Duration = Duration::from_secs(5);
const WORKERS: usize = 2;

/// A caller-registered endpoint: the handler runs per request with the
/// raw query string (`""` when absent) and returns `(content_type, body)`.
pub struct Endpoint {
    /// Absolute path the endpoint answers on (e.g. `/costs`).
    pub path: String,
    /// Per-request handler (must be cheap and never block on I/O).
    pub handler: Arc<dyn Fn(&str) -> (String, String) + Send + Sync>,
}

impl Endpoint {
    /// An endpoint at `path` answering 200 with `handler`'s
    /// `(content_type, body)`; any query string is ignored.
    pub fn new(
        path: impl Into<String>,
        handler: impl Fn() -> (String, String) + Send + Sync + 'static,
    ) -> Endpoint {
        Endpoint {
            path: path.into(),
            handler: Arc::new(move |_query| handler()),
        }
    }

    /// An endpoint whose handler receives the request's query string
    /// (everything after `?`, undecoded; `""` when absent).
    pub fn with_query(
        path: impl Into<String>,
        handler: impl Fn(&str) -> (String, String) + Send + Sync + 'static,
    ) -> Endpoint {
        Endpoint {
            path: path.into(),
            handler: Arc::new(handler),
        }
    }
}

/// The value of `key` in a `k=v&k2=v2` query string, undecoded.
pub(crate) fn query_param<'a>(query: &'a str, key: &str) -> Option<&'a str> {
    query.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        (k == key).then_some(v)
    })
}

/// What the endpoints serve. [`ObsServer::bind`] snapshots/drains the
/// global registry and flight recorder on each request; health, vitals,
/// and any extra endpoints come from here.
pub struct ServeSources {
    /// Called per `/healthz` / `/readyz` request (must be cheap).
    pub health: HealthSource,
    /// Backs `/vitals`; `None` answers a `warming-up` placeholder.
    pub monitor: Option<Arc<Monitor>>,
    /// Additional endpoints (the engine registers `/introspect/lsm`,
    /// `/introspect/partitions`, `/costs` here). Built-in paths win on
    /// conflict; extras are matched in registration order.
    pub extra: Vec<Endpoint>,
}

impl ServeSources {
    /// Always-ok health and no monitor — the minimal sources for a
    /// harness that only wants `/metrics`.
    pub fn always_ok() -> ServeSources {
        ServeSources {
            health: Arc::new(crate::health::HealthReport::ok),
            monitor: None,
            extra: Vec::new(),
        }
    }
}

/// The running server. Dropping it shuts it down.
pub struct ObsServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    threads: Mutex<Vec<thread::JoinHandle<()>>>,
}

struct Shared {
    sources: ServeSources,
    shutdown: Arc<AtomicBool>,
    requests: &'static Counter,
    bad_requests: &'static Counter,
}

impl ObsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9090`; port 0 picks a free port —
    /// read it back from [`ObsServer::local_addr`]) and starts serving.
    pub fn bind(addr: impl ToSocketAddrs, sources: ServeSources) -> std::io::Result<ObsServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(Shared {
            sources,
            shutdown: Arc::clone(&shutdown),
            requests: crate::counter("obs.http.requests"),
            bad_requests: crate::counter("obs.http.bad_requests"),
        });

        let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = mpsc::channel();
        let rx = Arc::new(Mutex::new(&lockdep::OBS_SERVE_RX, rx));
        let mut threads = Vec::with_capacity(WORKERS + 1);
        for i in 0..WORKERS {
            let rx = Arc::clone(&rx);
            let shared = Arc::clone(&shared);
            threads.push(
                thread::Builder::new()
                    .name(format!("tu-obs-http-{i}"))
                    .spawn(move || loop {
                        // Hold the receiver lock only while waiting for a
                        // connection, not while serving it.
                        let conn = rx.lock().recv();
                        match conn {
                            Ok(stream) => handle_connection(stream, &shared),
                            Err(_) => return, // accept loop hung up
                        }
                    })?,
            );
        }
        {
            let shared = Arc::clone(&shared);
            threads.push(
                thread::Builder::new()
                    .name("tu-obs-http-accept".to_string())
                    .spawn(move || {
                        for stream in listener.incoming() {
                            if shared.shutdown.load(Ordering::Acquire) {
                                break;
                            }
                            if let Ok(stream) = stream {
                                if tx.send(stream).is_err() {
                                    break;
                                }
                            }
                        }
                        // Dropping tx here disconnects the workers.
                    })?,
            );
        }
        Ok(ObsServer {
            local_addr,
            shutdown,
            threads: Mutex::new(&lockdep::OBS_SERVE_THREADS, threads),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting, finishes in-flight responses, joins every thread.
    /// Idempotent.
    pub fn shutdown(&self) {
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // The accept loop blocks in `incoming()`; a throwaway loopback
        // connection wakes it so it can observe the flag and exit.
        let _ = TcpStream::connect(self.local_addr);
        let threads = std::mem::take(&mut *self.threads.lock());
        for t in threads {
            let _ = t.join();
        }
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Reads until the end of the request head (`\r\n\r\n`), the size cap, a
/// timeout, or EOF. Returns what was read; the caller judges validity.
fn read_request_head(stream: &mut TcpStream) -> Vec<u8> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    while buf.len() < MAX_REQUEST_BYTES {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.windows(2).any(|w| w == b"\n\n")
                {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    buf
}

/// Strict parse of the request line: exactly `GET <path> HTTP/1.x`.
/// Returns `(path, query)` — the query string is `""` when absent.
/// `Err(status)` carries the 4xx to answer with.
fn parse_request_line(head: &[u8]) -> Result<(String, String), (u16, &'static str)> {
    if head.len() >= MAX_REQUEST_BYTES {
        return Err((400, "Bad Request"));
    }
    let line_end = head
        .iter()
        .position(|&b| b == b'\n')
        .ok_or((400, "Bad Request"))?;
    let line = std::str::from_utf8(&head[..line_end])
        .map_err(|_| (400, "Bad Request"))?
        .trim_end_matches('\r');
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err((400, "Bad Request")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err((400, "Bad Request"));
    }
    if method != "GET" {
        return Err((405, "Method Not Allowed"));
    }
    if !target.starts_with('/') {
        return Err((400, "Bad Request"));
    }
    // Scrapers append query strings (`/metrics?format=...`); split them
    // off so plain routes ignore them and query-aware ones can opt in.
    let (path, query) = target.split_once('?').unwrap_or((target, ""));
    Ok((path.to_string(), query.to_string()))
}

fn write_response(stream: &mut TcpStream, status: u16, reason: &str, ctype: &str, body: &str) {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let head = read_request_head(&mut stream);
    if head.is_empty() {
        // The shutdown nudge and port scanners land here; nothing to answer.
        return;
    }
    shared.requests.inc();
    let (path, query) = match parse_request_line(&head) {
        Ok(parts) => parts,
        Err((status, reason)) => {
            shared.bad_requests.inc();
            write_response(&mut stream, status, reason, "text/plain", reason);
            return;
        }
    };
    const JSON: &str = "application/json";
    match path.as_str() {
        "/" => {
            let mut body = String::from(
                "tu-obs live endpoints: /metrics /metrics.json /flight /healthz /readyz /vitals",
            );
            for e in &shared.sources.extra {
                body.push(' ');
                body.push_str(&e.path);
            }
            body.push('\n');
            write_response(&mut stream, 200, "OK", "text/plain", &body);
        }
        "/metrics" => {
            let body = crate::prometheus_text(&crate::global().snapshot());
            write_response(
                &mut stream,
                200,
                "OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            );
        }
        "/metrics.json" => {
            write_response(
                &mut stream,
                200,
                "OK",
                JSON,
                &crate::global().snapshot().to_json(),
            );
        }
        "/flight" => {
            // `?peek=1` copies the ring without draining it, so a human
            // scrape cannot race the chrome-trace exporter out of events.
            let events = if query_param(&query, "peek") == Some("1") {
                crate::flight().peek()
            } else {
                crate::flight().drain()
            };
            let body = crate::chrome_trace_json(&events);
            write_response(&mut stream, 200, "OK", JSON, &body);
        }
        "/healthz" => {
            let report = (shared.sources.health)();
            let (status, reason) = if report.healthy() {
                (200, "OK")
            } else {
                (503, "Service Unavailable")
            };
            write_response(&mut stream, status, reason, JSON, &report.to_json());
        }
        "/readyz" => {
            let report = (shared.sources.health)();
            let (status, reason) = if report.ready {
                (200, "OK")
            } else {
                (503, "Service Unavailable")
            };
            write_response(&mut stream, status, reason, JSON, &report.to_json());
        }
        "/vitals" => {
            // `?window=<secs>` picks how far back in the snapshot ring to
            // delta from; default (and any unparsable value) stays the
            // full-ring window, clamped to ring capacity either way.
            let window_ms = query_param(&query, "window")
                .and_then(|v| v.parse::<i64>().ok())
                .filter(|&s| s > 0)
                .map(|s| s.saturating_mul(1_000));
            let body = shared
                .sources
                .monitor
                .as_ref()
                .and_then(|m| match window_ms {
                    Some(w) => m.vitals_window(w),
                    None => m.vitals(),
                })
                .map(|v| v.to_json())
                .unwrap_or_else(|| "{\"status\":\"warming-up\"}".to_string());
            write_response(&mut stream, 200, "OK", JSON, &body);
        }
        _ => {
            match shared
                .sources
                .extra
                .iter()
                .find(|e| e.path == path.as_str())
            {
                Some(e) => {
                    let (ctype, body) = (e.handler)(&query);
                    write_response(&mut stream, 200, "OK", &ctype, &body);
                }
                None => write_response(&mut stream, 404, "Not Found", "text/plain", "Not Found"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::{Health, HealthCheck, HealthReport};

    /// Raw HTTP client: sends `request` bytes, returns the full response.
    fn roundtrip(addr: SocketAddr, request: &[u8]) -> String {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s.write_all(request).expect("write");
        let mut out = Vec::new();
        let _ = s.read_to_end(&mut out);
        String::from_utf8_lossy(&out).into_owned()
    }

    fn get(addr: SocketAddr, path: &str) -> String {
        roundtrip(
            addr,
            format!("GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n").as_bytes(),
        )
    }

    fn status_of(response: &str) -> u16 {
        response
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status line")
    }

    fn body_of(response: &str) -> &str {
        response.split("\r\n\r\n").nth(1).unwrap_or("")
    }

    #[test]
    fn serves_every_endpoint() {
        crate::counter("servetest.requests").add(3);
        let health = Arc::new(std::sync::Mutex::new(HealthReport::ok()));
        let h = Arc::clone(&health);
        let server = ObsServer::bind(
            "127.0.0.1:0",
            ServeSources {
                health: Arc::new(move || h.lock().unwrap().clone()),
                monitor: None,
                extra: vec![
                    Endpoint::new("/custom", || {
                        ("application/json".to_string(), "{\"ok\":true}".to_string())
                    }),
                    Endpoint::with_query("/echo", |query| {
                        ("text/plain".to_string(), format!("q={query}"))
                    }),
                ],
            },
        )
        .expect("bind");
        let addr = server.local_addr();

        // / lists the endpoints, including registered extras.
        let index = get(addr, "/");
        assert_eq!(status_of(&index), 200);
        assert!(body_of(&index).contains("/metrics"));
        assert!(body_of(&index).contains("/custom"));

        // Extra endpoints answer with their handler's content.
        let custom = get(addr, "/custom");
        assert_eq!(status_of(&custom), 200);
        assert!(custom.contains("Content-Type: application/json"));
        assert_eq!(body_of(&custom), "{\"ok\":true}");

        // /metrics parses with our own validating parser and includes the
        // counter we just bumped.
        let metrics = get(addr, "/metrics");
        assert_eq!(status_of(&metrics), 200);
        assert!(metrics.contains("Content-Type: text/plain"));
        let parsed = crate::parse_prometheus_text(body_of(&metrics)).expect("valid exposition");
        assert_eq!(parsed.counters.get("servetest_requests"), Some(&3u64));

        // /metrics.json is the snapshot encoding.
        let json = get(addr, "/metrics.json");
        assert_eq!(status_of(&json), 200);
        assert!(body_of(&json).starts_with("{\"counters\":{"));
        assert!(body_of(&json).contains("\"servetest.requests\":3"));

        // /flight drains the recorder (under the cross-module lock — the
        // recorder is process-global and flight.rs tests use it too), and
        // ?peek=1 reads without draining.
        {
            let _guard = crate::flight::TEST_LOCK
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            crate::flight().enable(32);
            crate::flight().instant("servetest.event");
            let peeked = get(addr, "/flight?peek=1");
            assert_eq!(status_of(&peeked), 200);
            assert!(body_of(&peeked).contains("servetest.event"));
            assert!(!crate::flight().is_empty(), "peek leaves the ring intact");
            let flight = get(addr, "/flight");
            assert_eq!(status_of(&flight), 200);
            assert!(body_of(&flight).contains("servetest.event"));
            assert!(crate::flight().is_empty(), "drained by the request");
            crate::flight().disable();
        }

        // Query strings are ignored by plain routes...
        assert_eq!(status_of(&get(addr, "/metrics?format=prometheus")), 200);
        // ...and delivered verbatim to query-aware extras.
        let echoed = get(addr, "/echo?metric=x&start=5");
        assert_eq!(status_of(&echoed), 200);
        assert_eq!(body_of(&echoed), "q=metric=x&start=5");
        assert_eq!(body_of(&get(addr, "/echo")), "q=");

        // /healthz + /readyz follow the live source: flip it and re-probe.
        assert_eq!(status_of(&get(addr, "/healthz")), 200);
        assert_eq!(status_of(&get(addr, "/readyz")), 200);
        {
            let mut r = health.lock().unwrap();
            r.ready = false;
            r.checks
                .push(HealthCheck::new("wal", Health::Unhealthy, "read-only fs"));
        }
        let unhealthy = get(addr, "/healthz");
        assert_eq!(status_of(&unhealthy), 503);
        assert!(body_of(&unhealthy).contains("read-only fs"));
        assert_eq!(status_of(&get(addr, "/readyz")), 503);

        // /vitals without a monitor answers the warming-up placeholder.
        let vitals = get(addr, "/vitals");
        assert_eq!(status_of(&vitals), 200);
        assert!(body_of(&vitals).contains("warming-up"));

        // Unknown path.
        assert_eq!(status_of(&get(addr, "/nope")), 404);

        server.shutdown();
        server.shutdown(); // idempotent
        assert!(
            TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err()
                || get(addr, "/metrics").is_empty(),
            "no longer serving after shutdown"
        );
    }

    #[test]
    fn vitals_endpoint_reports_monitor_rates() {
        let monitor = Arc::new(Monitor::new(crate::MonitorOptions {
            capacity: 4,
            now_ms: Some({
                let t = Arc::new(std::sync::atomic::AtomicI64::new(0));
                Arc::new(move || t.fetch_add(1_000, Ordering::Relaxed))
            }),
            ..Default::default()
        }));
        monitor.sample();
        crate::counter("core.ingest.samples").add(2_000);
        monitor.sample();
        let server = ObsServer::bind(
            "127.0.0.1:0",
            ServeSources {
                health: Arc::new(HealthReport::ok),
                monitor: Some(monitor),
                extra: Vec::new(),
            },
        )
        .expect("bind");
        let vitals = get(server.local_addr(), "/vitals");
        assert_eq!(status_of(&vitals), 200);
        let body = body_of(&vitals);
        assert!(body.contains("\"window_ms\":1000"), "{body}");
        assert!(body.contains("\"ingest_samples_per_s\":"));
        server.shutdown();
    }

    #[test]
    fn rejects_malformed_requests_and_stays_up() {
        let server = ObsServer::bind("127.0.0.1:0", ServeSources::always_ok()).expect("bind");
        let addr = server.local_addr();
        let bad_before = crate::global()
            .snapshot()
            .counter("obs.http.bad_requests")
            .unwrap_or(0);

        // Wrong method.
        let post = roundtrip(addr, b"POST /metrics HTTP/1.1\r\n\r\n");
        assert_eq!(status_of(&post), 405);
        // Garbage request lines.
        assert_eq!(status_of(&roundtrip(addr, b"NONSENSE\r\n\r\n")), 400);
        assert_eq!(
            status_of(&roundtrip(addr, b"GET /metrics SMTP/9\r\n\r\n")),
            400
        );
        assert_eq!(
            status_of(&roundtrip(addr, b"GET /a b HTTP/1.1\r\n\r\n")),
            400,
            "extra request-line token"
        );
        assert_eq!(
            status_of(&roundtrip(addr, b"GET metrics HTTP/1.1\r\n\r\n")),
            400,
            "path must be absolute"
        );
        assert_eq!(
            status_of(&roundtrip(addr, b"\xff\xfe\x00garbage\n\n")),
            400,
            "non-utf8 head"
        );
        // Oversized request line (no header terminator within the cap).
        let huge = vec![b'A'; MAX_REQUEST_BYTES + 100];
        assert_eq!(status_of(&roundtrip(addr, &huge)), 400);

        let bad_after = crate::global()
            .snapshot()
            .counter("obs.http.bad_requests")
            .unwrap_or(0);
        assert!(bad_after >= bad_before + 7, "every rejection counted");

        // The server survived all of it.
        assert_eq!(status_of(&get(addr, "/healthz")), 200);
        server.shutdown();
    }
}
