//! `lockdep`: the debug-build runtime lock witness.
//!
//! The static concurrency pass in `tu-lint` proves what the *source*
//! says about lock nesting; this module checks what the *threads
//! actually do*. Each wrapped lock carries a [`LockClass`] — name, rank,
//! and flags copied verbatim from `docs/LOCK_ORDER.md` (the drift test at
//! the workspace root fails if they diverge) — and every acquisition is
//! checked against the thread's held-class stack: a thread may only
//! acquire a class whose rank is strictly above everything it already
//! holds (same-class nesting is tolerated for `multi` classes). A
//! violation panics with both classes and the full held stack, so the
//! stress tests (`parallel_ingest`, `parallel_query`, `http_plane`,
//! `introspection`) fail loudly on the exact interleaving the static
//! model says cannot exist.
//!
//! The witness is **debug-only**: in release builds [`enabled`] is
//! compile-time `false` and the wrappers cost one pointer per lock and a
//! predictable never-taken branch per acquisition. In debug builds it
//! defaults **on** and can be silenced with `TU_LOCK_WITNESS=0` (the env
//! var is read once).
//!
//! The wrappers are API-compatible with the workspace's `parking_lot`
//! stub — `lock()`/`read()`/`write()` return guards directly, `try_*`
//! return `Option`, poisoning is swallowed — so retrofitting a lock is a
//! type + constructor change only. [`Condvar`] additionally asserts the
//! condvar discipline at `wait` time: the waiting thread must hold *only*
//! the mutex it is about to release.

use std::cell::RefCell;
use std::mem::ManuallyDrop;
use std::sync::{
    Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, OnceLock,
    RwLock as StdRwLock, RwLockReadGuard as StdRwLockReadGuard,
    RwLockWriteGuard as StdRwLockWriteGuard, WaitTimeoutResult,
};
use std::time::Duration;

/// One lock class from `docs/LOCK_ORDER.md`. Classes are compared by
/// pointer identity: every lock of a class shares one `&'static` def.
#[derive(Debug)]
pub struct LockClass {
    pub name: &'static str,
    /// Position in the declared total order; acquisitions must strictly
    /// ascend.
    pub rank: u16,
    /// Same-class nested acquisition is tolerated (sharded structures).
    pub multi: bool,
}

macro_rules! classes {
    ($($static_name:ident = ($name:literal, $rank:literal $(, $multi:ident)?);)*) => {
        $(pub static $static_name: LockClass = LockClass {
            name: $name,
            rank: $rank,
            multi: classes!(@multi $($multi)?),
        };)*

        static ALL_CLASSES: &[&LockClass] = &[$(&$static_name),*];

        /// Every witness class, for the drift test against
        /// `docs/LOCK_ORDER.md`.
        pub fn all() -> &'static [&'static LockClass] {
            ALL_CLASSES
        }
    };
    (@multi multi) => { true };
    (@multi) => { false };
}

classes! {
    CORE_SELFMON_INGEST = ("core.selfmon.ingest", 14);
    ENGINE_MAINTENANCE = ("engine.maintenance", 16);
    ENGINE_WORKER = ("engine.worker", 18);
    ENGINE_SELFMON = ("engine.selfmon", 19);
    ENGINE_SERVE = ("engine.serve", 20);
    CORE_MAP_LABELS = ("core.map.labels", 24);
    CORE_MAP_SHARD = ("core.map.shard", 26, multi);
    CORE_MAP_OBJECTS = ("core.map.objects", 28);
    CORE_OBJECT = ("core.object", 34);
    ENGINE_CKPTS = ("engine.ckpts", 38);
    CORE_CATALOG_PENDING = ("core.catalog.pending", 42);
    LSM_MEMTABLE_ACTIVE = ("lsm.memtable.active", 66);
    LSM_MEMTABLE_IMM = ("lsm.memtable.imm", 68);
    LSM_TREE_LEVELS = ("lsm.tree.levels", 70);
    LSM_TREE_STATS = ("lsm.tree.stats", 72);
    LSM_TREE_TABLES = ("lsm.tree.tables", 74);
    LSM_LEVELED_LEVELS = ("lsm.leveled.levels", 76);
    LSM_LEVELED_STATS = ("lsm.leveled.stats", 78);
    LSM_LEVELED_TABLES = ("lsm.leveled.tables", 80);
    LSM_CACHE_SHARD = ("lsm.cache.shard", 82);
    LSM_WAL_PENDING = ("lsm.wal.pending", 84);
    LSM_WAL_COMMIT = ("lsm.wal.commit", 86);
    CLOUD_BLOCK_STATE = ("cloud.block.state", 90);
    CLOUD_OBJECT_STATE = ("cloud.object.state", 92);
    CORE_SELFMON_STATE = ("core.selfmon.state", 94);
    OBS_MONITOR_SAMPLER = ("obs.monitor.sampler", 96);
    OBS_MONITOR_STATE = ("obs.monitor.state", 98);
    OBS_MONITOR_OBSERVERS = ("obs.monitor.observers", 100);
    CLOUD_LEDGER_INNER = ("cloud.ledger.inner", 102);
    OBS_MONITOR_RING = ("obs.monitor.ring", 104);
    OBS_SERVE_THREADS = ("obs.serve.threads", 106);
    OBS_SERVE_RX = ("obs.serve.rx", 108);
    OBS_HEAT_CLOCK = ("obs.heat.clock", 110);
    OBS_HEAT_SHARD = ("obs.heat.shard", 112, multi);
    OBS_HEAT_UNATTRIBUTED = ("obs.heat.unattributed", 114);
    OBS_FLIGHT_RING = ("obs.flight.ring", 116);
    OBS_TRACE_SPANS = ("obs.trace.spans", 118);
    OBS_TRACE_COUNTERS = ("obs.trace.counters", 120);
    OBS_REGISTRY = ("obs.registry", 122);
    OBS_LOG_INNER = ("obs.log.inner", 124);
    OBS_LOG_STDERR = ("obs.log.stderr", 126);
    COMMON_POOL_SLOT = ("common.pool.slot", 128);
}

thread_local! {
    /// The classes this thread currently holds, in acquisition order.
    static HELD: RefCell<Vec<&'static LockClass>> = const { RefCell::new(Vec::new()) };
}

/// True when the witness is checking: debug builds only, and
/// `TU_LOCK_WITNESS` is not `"0"` (read once, default on).
pub fn enabled() -> bool {
    if !cfg!(debug_assertions) {
        return false;
    }
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| std::env::var("TU_LOCK_WITNESS").map_or(true, |v| v != "0"))
}

/// Checks `class` against the held stack. Runs *before* blocking on the
/// underlying primitive so an inversion is reported even when the other
/// thread never arrives (the would-be deadlock, not the deadlock).
fn check(class: &'static LockClass) {
    if !enabled() {
        return;
    }
    HELD.with(|h| {
        let h = h.borrow();
        for held in h.iter() {
            let same = std::ptr::eq(*held, class);
            if held.rank < class.rank || (same && class.multi) {
                continue;
            }
            let stack: Vec<&str> = h.iter().map(|c| c.name).collect();
            panic!(
                "lockdep: lock-order violation: acquiring `{}` (rank {}) while \
                 holding `{}` (rank {}); thread's held stack: {:?}. The declared \
                 hierarchy in docs/LOCK_ORDER.md requires strictly ascending ranks.",
                class.name, class.rank, held.name, held.rank, stack
            );
        }
    });
}

/// Records `class` as held (after the underlying primitive granted it).
fn push(class: &'static LockClass) {
    if !enabled() {
        return;
    }
    HELD.with(|h| h.borrow_mut().push(class));
}

/// Forgets the most recent hold of `class` (guard drop, condvar park).
fn pop(class: &'static LockClass) {
    if !enabled() {
        return;
    }
    HELD.with(|h| {
        let mut h = h.borrow_mut();
        if let Some(i) = h.iter().rposition(|c| std::ptr::eq(*c, class)) {
            h.remove(i);
        }
    });
}

/// Asserts the condvar discipline: a thread about to park on `class`'s
/// mutex must hold nothing else — the wait releases only its own mutex,
/// so any other guard would stay locked while the thread sleeps.
fn check_wait(class: &'static LockClass) {
    if !enabled() {
        return;
    }
    HELD.with(|h| {
        let h = h.borrow();
        let others: Vec<&str> = {
            let mut seen_own = false;
            h.iter()
                .filter(|c| {
                    if !seen_own && std::ptr::eq(**c, class) {
                        seen_own = true;
                        false
                    } else {
                        true
                    }
                })
                .map(|c| c.name)
                .collect()
        };
        if !others.is_empty() {
            panic!(
                "lockdep: condvar-discipline violation: waiting on `{}`'s condvar \
                 while also holding {:?}; a condvar wait releases only its own \
                 mutex — every other lock stays held while this thread sleeps.",
                class.name, others
            );
        }
    });
}

/// The classes currently held by this thread, outermost first. Test and
/// diagnostic hook; empty when the witness is disabled.
pub fn held() -> Vec<&'static str> {
    if !enabled() {
        return Vec::new();
    }
    HELD.with(|h| h.borrow().iter().map(|c| c.name).collect())
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// A mutex that reports its acquisitions to the witness.
pub struct Mutex<T: ?Sized> {
    class: &'static LockClass,
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(class: &'static LockClass, value: T) -> Self {
        Mutex {
            class,
            inner: StdMutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        check(self.class);
        let g = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        push(self.class);
        MutexGuard {
            class: self.class,
            inner: ManuallyDrop::new(g),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        check(self.class);
        let g = match self.inner.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        push(self.class);
        Some(MutexGuard {
            class: self.class,
            inner: ManuallyDrop::new(g),
        })
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex")
            .field("class", &self.class.name)
            .finish_non_exhaustive()
    }
}

/// Guard for [`Mutex`]; pops the class from the held stack on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    class: &'static LockClass,
    inner: ManuallyDrop<StdMutexGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // SAFETY: ManuallyDrop::drop in Drop is the canonical pattern;
        // the field is never touched again, and Condvar::wait forgets the
        // guard before this can run.
        unsafe { ManuallyDrop::drop(&mut self.inner) };
        pop(self.class);
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// A reader-writer lock that reports its acquisitions to the witness.
/// Read and write acquisitions rank identically: the order discipline is
/// about *which* lock, not the mode.
pub struct RwLock<T: ?Sized> {
    class: &'static LockClass,
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(class: &'static LockClass, value: T) -> Self {
        RwLock {
            class,
            inner: StdRwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        check(self.class);
        let g = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        push(self.class);
        RwLockReadGuard {
            class: self.class,
            inner: ManuallyDrop::new(g),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        check(self.class);
        let g = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        push(self.class);
        RwLockWriteGuard {
            class: self.class,
            inner: ManuallyDrop::new(g),
        }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        check(self.class);
        let g = match self.inner.try_read() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        push(self.class);
        Some(RwLockReadGuard {
            class: self.class,
            inner: ManuallyDrop::new(g),
        })
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        check(self.class);
        let g = match self.inner.try_write() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        push(self.class);
        Some(RwLockWriteGuard {
            class: self.class,
            inner: ManuallyDrop::new(g),
        })
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RwLock")
            .field("class", &self.class.name)
            .finish_non_exhaustive()
    }
}

/// Shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    class: &'static LockClass,
    inner: ManuallyDrop<StdRwLockReadGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        // SAFETY: ManuallyDrop::drop in Drop; the field is never
        // touched again.
        unsafe { ManuallyDrop::drop(&mut self.inner) };
        pop(self.class);
    }
}

/// Exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    class: &'static LockClass,
    inner: ManuallyDrop<StdRwLockWriteGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        // SAFETY: ManuallyDrop::drop in Drop; the field is never
        // touched again.
        unsafe { ManuallyDrop::drop(&mut self.inner) };
        pop(self.class);
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// A condition variable paired with a witness [`Mutex`]. Beyond relaying
/// to [`std::sync::Condvar`], `wait*` asserts the condvar discipline
/// (no second lock held) and keeps the held stack accurate across the
/// park/wake cycle.
pub struct Condvar(StdCondvar);

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar(StdCondvar::new())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let (class, std_guard) = Self::park(guard);
        let g = match self.0.wait(std_guard) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        push(class);
        MutexGuard {
            class,
            inner: ManuallyDrop::new(g),
        }
    }

    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
        let (class, std_guard) = Self::park(guard);
        let (g, timed_out) = match self.0.wait_timeout(std_guard, dur) {
            Ok(r) => r,
            Err(p) => p.into_inner(),
        };
        push(class);
        (
            MutexGuard {
                class,
                inner: ManuallyDrop::new(g),
            },
            timed_out,
        )
    }

    /// Checks the discipline, marks the mutex released for the duration
    /// of the park, and dismantles the witness guard into its parts.
    fn park<'a, T>(mut guard: MutexGuard<'a, T>) -> (&'static LockClass, StdMutexGuard<'a, T>) {
        let class = guard.class;
        check_wait(class);
        // SAFETY: ManuallyDrop::take paired with mem::forget — exactly
        // one of take/Drop runs, so the std guard is moved out once and
        // never dropped twice.
        let std_guard = unsafe { ManuallyDrop::take(&mut guard.inner) };
        std::mem::forget(guard);
        pop(class);
        (class, std_guard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    // The witness only checks in debug builds with TU_LOCK_WITNESS unset
    // or non-zero; the violation tests are vacuous otherwise.
    fn witness_on() -> bool {
        enabled()
    }

    static T_OUTER: LockClass = LockClass {
        name: "test.outer",
        rank: 1,
        multi: false,
    };
    static T_INNER: LockClass = LockClass {
        name: "test.inner",
        rank: 2,
        multi: false,
    };
    static T_SHARD: LockClass = LockClass {
        name: "test.shard",
        rank: 3,
        multi: true,
    };

    /// Runs `f` on a fresh thread (its own held stack) and reports
    /// whether it panicked.
    fn panics(f: impl FnOnce() + Send + 'static) -> bool {
        std::thread::spawn(f).join().is_err()
    }

    #[test]
    fn conforming_order_is_silent() {
        let ok = !panics(|| {
            let a = Mutex::new(&T_OUTER, 1u32);
            let b = RwLock::new(&T_INNER, 2u32);
            let ga = a.lock();
            let gb = b.read();
            assert_eq!(*ga + *gb, 3);
            assert_eq!(
                held(),
                if witness_on() {
                    vec!["test.outer", "test.inner"]
                } else {
                    vec![]
                }
            );
            drop(gb);
            drop(ga);
            assert!(held().is_empty());
            // Re-acquire in the other order *sequentially* — fine.
            drop(b.write());
            drop(a.lock());
        });
        assert!(ok);
    }

    #[test]
    fn inverted_acquisition_panics() {
        if !witness_on() {
            return;
        }
        assert!(panics(|| {
            let a = Mutex::new(&T_OUTER, ());
            let b = Mutex::new(&T_INNER, ());
            let _gb = b.lock();
            let _ga = a.lock(); // rank 1 under rank 2: inversion
        }));
    }

    #[test]
    fn same_class_nesting_panics_unless_multi() {
        if !witness_on() {
            return;
        }
        assert!(panics(|| {
            let a = Mutex::new(&T_INNER, ());
            let b = Mutex::new(&T_INNER, ());
            let _ga = a.lock();
            let _gb = b.lock();
        }));
        assert!(!panics(|| {
            let a = RwLock::new(&T_SHARD, ());
            let b = RwLock::new(&T_SHARD, ());
            let _ga = a.write();
            let _gb = b.write();
        }));
    }

    #[test]
    fn try_lock_failure_does_not_leak_a_hold() {
        let m = Arc::new(Mutex::new(&T_OUTER, ()));
        let g = m.lock();
        let m2 = Arc::clone(&m);
        std::thread::spawn(move || {
            assert!(m2.try_lock().is_none());
            assert!(held().is_empty());
        })
        .join()
        .expect("no panic");
        drop(g);
    }

    #[test]
    fn drop_order_releases_correctly_with_interleaving() {
        if !witness_on() {
            return;
        }
        let ok = !panics(|| {
            let a = Mutex::new(&T_OUTER, ());
            let b = Mutex::new(&T_INNER, ());
            let ga = a.lock();
            let gb = b.lock();
            // Out-of-order release is legal; only acquisition order matters.
            drop(ga);
            assert_eq!(held(), vec!["test.inner"]);
            drop(gb);
        });
        assert!(ok);
    }

    #[test]
    fn condvar_wait_holding_second_lock_panics() {
        if !witness_on() {
            return;
        }
        assert!(panics(|| {
            let a = Mutex::new(&T_OUTER, ());
            let m = Mutex::new(&T_INNER, false);
            let cv = Condvar::new();
            let _ga = a.lock();
            let gm = m.lock();
            let _ = cv.wait_timeout(gm, Duration::from_millis(1));
        }));
    }

    #[test]
    fn condvar_wait_with_only_its_mutex_works() {
        let m = Arc::new(Mutex::new(&T_INNER, false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let waiter = std::thread::spawn(move || {
            let mut g = m2.lock();
            while !*g {
                g = cv2.wait(g);
            }
            assert_eq!(
                held(),
                if enabled() {
                    vec!["test.inner"]
                } else {
                    vec![]
                }
            );
        });
        std::thread::sleep(Duration::from_millis(10));
        *m.lock() = true;
        cv.notify_all();
        waiter.join().expect("waiter conforms");
    }

    #[test]
    fn class_table_is_strictly_ranked() {
        let all = all();
        assert!(all.len() >= 30);
        for w in all.windows(2) {
            assert!(w[0].rank < w[1].rank, "{} vs {}", w[0].name, w[1].name);
        }
    }
}
