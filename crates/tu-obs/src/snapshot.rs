//! Point-in-time metric snapshots with stable text and JSON renderings.

use std::collections::BTreeMap;
use std::fmt;

use crate::registry::HistogramSnapshot;

/// Every metric of a [`crate::Registry`] at one instant. Maps are sorted
/// by name, so both renderings are deterministic and diffable.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Value of one counter, `None` if never registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Value of one gauge, `None` if never registered.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// Snapshot of one histogram, `None` if never registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Deltas since an earlier snapshot: counters subtract, histograms
    /// subtract count/sum/per-bucket (so per-phase quantiles reflect only
    /// the phase's observations), and gauges — levels, not flows — carry
    /// over their current value.
    ///
    /// A metric absent from `earlier` counts from zero: it is reported at
    /// its full current value, never dropped. Windowed consumers (the
    /// [`crate::Monitor`] ring) rely on this — metrics register lazily on
    /// first use, so a metric's first-ever increments routinely land
    /// between two samples, and losing them would undercount every rate
    /// derived from that window.
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| {
                let before = earlier.counters.get(k).copied().unwrap_or(0);
                (k.clone(), v.saturating_sub(before))
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let delta = match earlier.histograms.get(k) {
                    Some(before) => h.since(before),
                    None => h.clone(),
                };
                (k.clone(), delta)
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms,
        }
    }

    /// Stable JSON encoding:
    /// `{"counters":{...},"gauges":{...},"histograms":{"name":{"count":..,"sum":..,"p50":..,"p95":..,"p99":..},..}}`.
    ///
    /// Hand-rolled because metric names are plain identifiers and values
    /// are integers — no escaping or float formatting subtleties.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        push_entries(
            &mut out,
            self.counters.iter().map(|(k, v)| (k, v.to_string())),
        );
        out.push_str("},\"gauges\":{");
        push_entries(
            &mut out,
            self.gauges.iter().map(|(k, v)| (k, v.to_string())),
        );
        out.push_str("},\"histograms\":{");
        push_entries(
            &mut out,
            self.histograms.iter().map(|(k, h)| {
                let v = format!(
                    "{{\"count\":{},\"sum\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                    h.count,
                    h.sum,
                    h.p50().unwrap_or(0),
                    h.p95().unwrap_or(0),
                    h.p99().unwrap_or(0),
                );
                (k, v)
            }),
        );
        out.push_str("}}");
        out
    }
}

fn push_entries<'a>(out: &mut String, entries: impl Iterator<Item = (&'a String, String)>) {
    let mut first = true;
    for (k, v) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('"');
        out.push_str(escape(k).as_ref());
        out.push_str("\":");
        out.push_str(&v);
    }
}

/// Metric names are dotted identifiers by convention; escape defensively
/// anyway so arbitrary names cannot corrupt the JSON.
pub(crate) fn escape(name: &str) -> std::borrow::Cow<'_, str> {
    if name.contains(['"', '\\']) || name.chars().any(|c| c.is_control()) {
        std::borrow::Cow::Owned(
            name.chars()
                .flat_map(|c| match c {
                    '"' => vec!['\\', '"'],
                    '\\' => vec!['\\', '\\'],
                    c if c.is_control() => format!("\\u{:04x}", c as u32).chars().collect(),
                    c => vec![c],
                })
                .collect(),
        )
    } else {
        std::borrow::Cow::Borrowed(name)
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "--- metrics snapshot ---")?;
        for (name, v) in &self.counters {
            writeln!(f, "{name:<44} {v:>14}")?;
        }
        for (name, v) in &self.gauges {
            writeln!(f, "{name:<44} {v:>14}")?;
        }
        for (name, h) in &self.histograms {
            match (h.mean(), h.p50(), h.p95(), h.p99()) {
                (Some(mean), Some(p50), Some(p95), Some(p99)) => writeln!(
                    f,
                    "{name:<44} count={:<8} mean={mean:<12.0} p50={p50:<10} p95={p95:<10} p99={p99}",
                    h.count,
                )?,
                _ => writeln!(f, "{name:<44} count=0")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("cloud.object.get_requests").add(12);
        r.gauge("lsm.memtable.bytes").set(-3);
        r.histogram("span.flush.ns").record(1_500);
        r
    }

    #[test]
    fn display_lists_every_metric() {
        let text = sample_registry().snapshot().to_string();
        assert!(text.contains("cloud.object.get_requests"));
        assert!(text.contains("12"));
        assert!(text.contains("lsm.memtable.bytes"));
        assert!(text.contains("span.flush.ns"));
        assert!(text.contains("p99="));
    }

    #[test]
    fn json_is_stable_and_parseable_shape() {
        let json = sample_registry().snapshot().to_json();
        assert!(json.starts_with("{\"counters\":{"));
        assert!(json.contains("\"cloud.object.get_requests\":12"));
        assert!(json.contains("\"lsm.memtable.bytes\":-3"));
        assert!(json.contains("\"span.flush.ns\":{\"count\":1,"));
        assert!(json.ends_with("}}"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn json_escapes_hostile_names() {
        let r = Registry::new();
        r.counter("we\"ird\\name").add(1);
        let json = r.snapshot().to_json();
        assert!(json.contains("we\\\"ird\\\\name"));
    }

    #[test]
    fn since_subtracts_counters_and_histograms() {
        let r = sample_registry();
        let before = r.snapshot();
        r.counter("cloud.object.get_requests").add(5);
        r.histogram("span.flush.ns").record(10);
        let delta = r.snapshot().since(&before);
        assert_eq!(delta.counter("cloud.object.get_requests"), Some(5));
        // Histograms are deltas too: only the one new observation remains.
        let h = delta.histogram("span.flush.ns").unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 10);
    }

    #[test]
    fn since_histogram_quantiles_are_per_phase() {
        let r = Registry::new();
        // Phase 1: small observations dominate.
        for _ in 0..100 {
            r.histogram("span.q.ns").record(8);
        }
        let before = r.snapshot();
        // Phase 2: a few large observations.
        for _ in 0..4 {
            r.histogram("span.q.ns").record(1_000_000);
        }
        let full = r.snapshot();
        // The raw distribution still reports the phase-1 median…
        assert_eq!(full.histogram("span.q.ns").unwrap().p50(), Some(15));
        // …but the delta sees only phase 2.
        let delta = full.since(&before);
        let h = delta.histogram("span.q.ns").unwrap();
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 4_000_000);
        assert_eq!(h.p50(), Some((1u64 << 20) - 1));
    }

    #[test]
    fn since_reports_new_in_later_metrics_at_full_value() {
        let r = Registry::new();
        r.counter("pre.existing").add(1);
        let before = r.snapshot();
        // These three register for the first time *between* the snapshots,
        // exactly what a monitor window hits when a code path runs for the
        // first time mid-run.
        r.counter("born.later.requests").add(9);
        r.gauge("born.later.level").set(-4);
        r.histogram("born.later.ns").record(77);
        let delta = r.snapshot().since(&before);
        assert_eq!(delta.counter("born.later.requests"), Some(9));
        assert_eq!(delta.gauge("born.later.level"), Some(-4));
        let h = delta.histogram("born.later.ns").unwrap();
        assert_eq!((h.count, h.sum), (1, 77));
        // And the pre-existing counter still deltas to zero.
        assert_eq!(delta.counter("pre.existing"), Some(0));
    }

    #[test]
    fn since_keeps_gauges_as_levels() {
        let r = Registry::new();
        r.gauge("cache.shard.count").set(8);
        let before = r.snapshot();
        r.gauge("cache.shard.count").set(8);
        let delta = r.snapshot().since(&before);
        // A gauge is a level: the delta report shows the current level,
        // not a meaningless subtraction.
        assert_eq!(delta.gauge("cache.shard.count"), Some(8));
    }

    #[test]
    fn lookup_missing_metrics_is_none() {
        let s = MetricsSnapshot::default();
        assert_eq!(s.counter("nope"), None);
        assert_eq!(s.gauge("nope"), None);
        assert!(s.histogram("nope").is_none());
    }
}
