//! Observability for TimeUnion: a lock-light metrics registry plus RAII
//! span timers, with zero dependencies beyond `std`.
//!
//! The paper's whole evaluation (§6, Figures 13–19) is computed from
//! counters the system itself must expose — S3 Get/Put request counts
//! (Equations 4 and 6 charge one Get per SSTable data block), bytes moved
//! per tier, memory occupied, and per-stage latencies. This crate is the
//! single place those counters live:
//!
//! * [`Counter`] — monotonically increasing `u64` (requests, bytes,
//!   samples). One relaxed atomic add on the hot path.
//! * [`Gauge`] — a signed level (bytes resident, queue depths).
//! * [`Histogram`] — fixed power-of-two buckets over nanoseconds with
//!   p50/p95/p99 estimates; recording is two relaxed atomic adds.
//! * [`Registry`] — names → metrics. Metric handles are `&'static`
//!   (registration leaks one small allocation per metric), so steady-state
//!   instrumentation never takes a lock; the registry's `RwLock` guards
//!   only registration and snapshotting.
//! * [`span!`] / [`span_ns`] — RAII timers that record wall-clock (or
//!   caller-supplied virtual) nanoseconds into a histogram on drop.
//! * [`MetricsSnapshot`] — a point-in-time copy of every metric with a
//!   stable [`std::fmt::Display`] rendering and a [`MetricsSnapshot::to_json`]
//!   encoding, dumped by `tu-bench`'s figure binaries and the examples so
//!   each figure regeneration also emits the raw counters behind it.
//! * [`TraceContext`] / [`traced`] — scoped per-operation attribution:
//!   while a context is installed on a thread (and attached to its
//!   workers), every [`TracedCounter`] charge and span completion is also
//!   accumulated into the context, so a finished operation knows exactly
//!   which `cloud.<tier>.*` requests it caused (the paper's Eq. 3–6,
//!   denominated per operation instead of per process).
//! * [`flight`] — a fixed-capacity ring buffer of begin/end/instant/
//!   complete events, off by default (one atomic load when disabled),
//!   drained on demand.
//! * [`prometheus_text`] / [`chrome_trace_json`] — exporters for registry
//!   snapshots (Prometheus text exposition, re-checkable with
//!   [`parse_prometheus_text`]) and flight recordings (chrome://tracing
//!   `trace_event` JSON).
//! * [`ObsServer`] — a zero-dependency embedded HTTP server exposing the
//!   live endpoints (`/metrics`, `/metrics.json`, `/flight`, `/healthz`,
//!   `/readyz`, `/vitals`) on a `std::net::TcpListener`.
//! * [`Monitor`] — a background sampler keeping a ring of snapshots and
//!   deriving windowed [`Vitals`] rates via [`MetricsSnapshot::since`],
//!   with pluggable per-sample observers (the cost ledger rides it).
//! * [`heat`] — the partition heat registry: per-(time partition, tier)
//!   request/byte totals mirrored from the cloud charge sites, with
//!   exponential-decay 1m/10m/1h access rates for hot/cold placement.
//! * [`log`] — a leveled, rate-limited structured event log (JSON lines,
//!   trace-id-correlated with the flight recorder).
//! * [`HealthReport`] — aggregated engine health driving `/healthz` and
//!   `/readyz`.
//!
//! Instrumented metric names, units, and the paper figure/equation each
//! one maps to are catalogued in `docs/OBSERVABILITY.md`.
//!
//! # Example
//!
//! ```
//! use tu_obs::{counter, global, span};
//!
//! {
//!     let _timer = span("compaction"); // records span.compaction.ns on drop
//!     counter("cloud.object.get_requests").add(3);
//! }
//! let snap = global().snapshot();
//! assert_eq!(snap.counter("cloud.object.get_requests"), Some(3));
//! println!("{snap}");
//! ```

mod export;
mod flight;
pub mod health;
pub mod heat;
pub mod lockdep;
pub mod log;
mod monitor;
mod registry;
pub mod selfmon;
mod serve;
mod snapshot;
mod spans;
pub mod trace;

pub use export::{
    chrome_trace_json, parse_prometheus_text, prometheus_name, prometheus_text, PromHistogram,
    PromParsed,
};
pub use flight::{flight, FlightEvent, FlightPhase, FlightRecorder};
pub use health::{Health, HealthCheck, HealthReport, HealthSource};
pub use heat::{HeatGuard, HeatSnapshot, PartitionHeat, PartitionKey, TierHeat};
pub use monitor::{Monitor, MonitorOptions, SampleObserver, SpanQuantiles, TierRates, Vitals};
pub use registry::{
    bucket_upper_bound, Counter, Gauge, Histogram, HistogramSnapshot, Registry, BUCKETS,
};
pub use serve::{Endpoint, ObsServer, ServeSources};
pub use snapshot::MetricsSnapshot;
pub use spans::{span, span_of, SpanTimer, Stopwatch};
pub use trace::{traced, SpanDelta, TraceContext, TraceHandle, TraceSummary, TracedCounter};

/// The process-wide default registry every instrumented crate records to.
pub fn global() -> &'static Registry {
    registry::global()
}

/// Shorthand for [`Registry::counter`] on the [`global`] registry.
pub fn counter(name: &str) -> &'static Counter {
    global().counter(name)
}

/// Shorthand for [`Registry::gauge`] on the [`global`] registry.
pub fn gauge(name: &str) -> &'static Gauge {
    global().gauge(name)
}

/// Shorthand for [`Registry::histogram`] on the [`global`] registry.
pub fn histogram(name: &str) -> &'static Histogram {
    global().histogram(name)
}

/// Starts an RAII span timer recording `span.<name>.ns` in the [`global`]
/// registry when dropped.
///
/// ```
/// let _guard = tu_obs::span!("flush");
/// // ... timed work ...
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}
