//! Baseline engines the paper compares TimeUnion against (§4.1).
//!
//! * [`tsdb`] — a reimplementation of the Prometheus tsdb architecture
//!   (§2.2): a 2-hour in-memory head block with nested-hash-map inverted
//!   indexes, flushed wholesale into self-contained partitions whose
//!   metadata stays in memory. Extended with cloud-storage support
//!   (persisted blocks on the object store) exactly as the paper extends
//!   it for its "tsdb" baseline.
//! * [`tsdb_ldb`] — "tsdb-LDB": the same head architecture, but flushed
//!   chunks are stored in a classic leveled LSM whose SSTables live on S3.
//! * [`tu_ldb`] — "TU-LDB": TimeUnion's memory-efficient layer (trie
//!   index, file-backed head chunks) over a classic leveled LSM with the
//!   first two levels on EBS and the rest on S3.
//! * [`cortex`] — a Cortex simulator: the tsdb engine behind a modelled
//!   remote-write/query front end that charges per-request RPC overhead
//!   and whole-index loads, the two effects Figure 13 attributes Cortex's
//!   gaps to.

pub mod cortex;
pub mod tsdb;
pub mod tsdb_ldb;
pub mod tu_ldb;

pub use cortex::CortexSim;
pub use tsdb::{Tsdb, TsdbOptions};
pub use tsdb_ldb::TsdbLdb;
pub use tu_ldb::TuLdb;
