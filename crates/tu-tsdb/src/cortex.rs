//! A Cortex simulator for the end-to-end comparison (§4.2, Figure 13).
//!
//! Cortex routes Prometheus remote-write requests through a chain of
//! internal components (distributor → ingester, queriers → store-gateway)
//! over gRPC, and persists with the Prometheus tsdb storage engine whose
//! files are wrapped onto cloud storage. The paper attributes Cortex's
//! measured gaps to
//!
//! 1. per-request gRPC hops accumulating on the HTTP insert path
//!    (Figure 13a), and
//! 2. whole-index loads from S3 on the query path ("the index reading of
//!    Cortex is inefficient where it needs to load the whole index into
//!    memory in advance", Figure 13b).
//!
//! The simulator runs the real [`Tsdb`] baseline underneath and charges
//! both effects on the storage cost clock, so end-to-end comparisons
//! reproduce the shapes without a Go runtime.

use tu_cloud::StorageEnv;
use tu_common::{Labels, Result, Sample, Timestamp, Value};

use crate::tsdb::{Tsdb, TsdbOptions};

/// Modelled front-end costs.
#[derive(Debug, Clone, Copy)]
pub struct CortexCosts {
    /// Fixed cost per remote-write/query API request: HTTP handling plus
    /// the distributor→ingester (resp. querier→store-gateway) gRPC hops.
    pub request_overhead_ns: u64,
    /// Per-sample protobuf serialization/deserialization cost.
    pub per_sample_ns: u64,
    /// Per-label-comparison cost on the insert path (Cortex has no
    /// fast-path insert; every sample carries its full label set, §3.4).
    pub per_label_ns: u64,
}

impl Default for CortexCosts {
    fn default() -> Self {
        CortexCosts {
            request_overhead_ns: 2_000_000, // ~2 ms of hops per request
            per_sample_ns: 1_500,
            per_label_ns: 250,
        }
    }
}

/// The Cortex simulator.
pub struct CortexSim {
    tsdb: Tsdb,
    env: StorageEnv,
    costs: CortexCosts,
}

impl CortexSim {
    pub fn open(env: StorageEnv, opts: TsdbOptions, costs: CortexCosts) -> Result<Self> {
        let tsdb = Tsdb::open(env.clone(), opts)?;
        Ok(CortexSim { tsdb, env, costs })
    }

    /// One remote-write request carrying a batch of samples. Every sample
    /// carries its full label set — Cortex has no ID-based fast path.
    pub fn remote_write(&self, batch: &[(Labels, Timestamp, Value)]) -> Result<()> {
        let label_work: usize = batch.iter().map(|(l, _, _)| l.len()).sum();
        self.env.clock.charge(
            self.costs.request_overhead_ns
                + self.costs.per_sample_ns * batch.len() as u64
                + self.costs.per_label_ns * label_work as u64,
        );
        for (labels, t, v) in batch {
            self.tsdb.put(labels, *t, *v)?;
        }
        Ok(())
    }

    /// One query request. Charges the request overhead; the underlying
    /// tsdb engine additionally fetches every overlapping block's index
    /// file from S3 (the inefficiency the paper measures in Figure 13b).
    pub fn query(
        &self,
        selectors: &[tu_index::Selector],
        start: Timestamp,
        end: Timestamp,
    ) -> Result<Vec<(Labels, Vec<Sample>)>> {
        self.env.clock.charge(self.costs.request_overhead_ns);
        self.tsdb.query(selectors, start, end)
    }

    /// The underlying storage engine (for memory and size accounting).
    pub fn engine(&self) -> &Tsdb {
        &self.tsdb
    }

    pub fn storage(&self) -> &StorageEnv {
        &self.env
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tu_cloud::cost::LatencyMode;
    use tu_index::Selector;

    fn sim() -> (tempfile::TempDir, CortexSim) {
        let dir = tempfile::tempdir().unwrap();
        let env = StorageEnv::open(dir.path(), LatencyMode::Virtual).unwrap();
        let c = CortexSim::open(
            env,
            TsdbOptions {
                chunk_samples: 8,
                ..TsdbOptions::default()
            },
            CortexCosts::default(),
        )
        .unwrap();
        (dir, c)
    }

    fn labels(pairs: &[(&str, &str)]) -> Labels {
        Labels::from_pairs(pairs.iter().copied())
    }

    #[test]
    fn remote_write_and_query_round_trip() {
        let (_d, c) = sim();
        let batch: Vec<(Labels, i64, f64)> = (0..10)
            .map(|i| {
                (
                    labels(&[("metric", "cpu"), ("host", "h1")]),
                    i * 1000,
                    i as f64,
                )
            })
            .collect();
        c.remote_write(&batch).unwrap();
        let res = c
            .query(&[Selector::exact("metric", "cpu")], 0, 100_000)
            .unwrap();
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].1.len(), 10);
    }

    #[test]
    fn request_overhead_is_charged() {
        let (_d, c) = sim();
        let t0 = c.storage().clock.virtual_ns();
        c.remote_write(&[(labels(&[("m", "x")]), 0, 1.0)]).unwrap();
        let t1 = c.storage().clock.virtual_ns();
        assert!(
            t1 - t0 >= CortexCosts::default().request_overhead_ns,
            "write must pay the RPC hops"
        );
    }

    #[test]
    fn queries_reload_block_indexes_from_s3() {
        let (_d, c) = sim();
        // Force a persisted block.
        let two_hours = 2 * 3_600_000;
        c.remote_write(&[(labels(&[("m", "x")]), 0, 1.0)]).unwrap();
        c.remote_write(&[(labels(&[("m", "x")]), two_hours + 1, 2.0)])
            .unwrap();
        assert!(c.engine().block_count() >= 1);
        let gets_before = c.storage().object.stats().get_requests;
        c.query(&[Selector::exact("m", "x")], 0, two_hours).unwrap();
        let gets_after = c.storage().object.stats().get_requests;
        assert!(
            gets_after > gets_before,
            "index files must be re-fetched per query"
        );
    }
}
