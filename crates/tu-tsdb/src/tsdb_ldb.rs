//! The "tsdb-LDB" baseline (§4.1): the Prometheus-style head
//! architecture, but flushed chunks are stored in a classic leveled LSM
//! whose SSTables live on S3 — the paper's §2.4 "Challenge 2" prototype
//! promoted to a baseline.
//!
//! Because the head flush only enqueues chunks into the LSM's memtable,
//! foreground insertion is not blocked (the paper notes tsdb-LDB
//! out-ingests TU-LDB for this reason) — but compaction then reads and
//! merges piles of overlapping SSTables on S3, and pending data
//! accumulates in memory when compaction cannot keep up.

use std::collections::HashMap;

use parking_lot::RwLock;

use tu_cloud::StorageEnv;
use tu_common::{Error, Labels, Result, Sample, SeriesId, Timestamp, Value};
use tu_compress::gorilla;
use tu_lsm::leveled::{LeveledOptions, LeveledTree};

/// tsdb head + leveled LSM chunk storage on the slow tier.
pub struct TsdbLdb {
    tree: LeveledTree,
    chunk_samples: usize,
    /// Head window length — like tsdb, the most recent window's samples
    /// stay in memory and are flushed wholesale when it closes (2 hours).
    block_range_ms: i64,
    window: RwLock<tu_common::TimeRange>,
    by_labels: RwLock<HashMap<Vec<u8>, SeriesId>>,
    labels_of: RwLock<HashMap<SeriesId, Labels>>,
    heads: RwLock<HashMap<SeriesId, Vec<Sample>>>,
    index: RwLock<HashMap<String, HashMap<String, Vec<SeriesId>>>>,
    next_series: RwLock<u64>,
    /// Longest time span of any flushed chunk (query slack).
    max_chunk_span: std::sync::atomic::AtomicI64,
}

impl TsdbLdb {
    /// Opens the engine. All LSM levels live on the object store
    /// (`slow_level_start = 0`), matching the paper's description of
    /// "LevelDB whose SSTables are stored in S3".
    pub fn open(env: StorageEnv, chunk_samples: usize, mut lsm: LeveledOptions) -> Result<Self> {
        lsm.slow_level_start = 0;
        Ok(TsdbLdb {
            tree: LeveledTree::open(env, lsm)?,
            chunk_samples,
            block_range_ms: 2 * 60 * 60 * 1000,
            window: RwLock::new(tu_common::TimeRange::empty()),
            by_labels: RwLock::new(HashMap::new()),
            labels_of: RwLock::new(HashMap::new()),
            heads: RwLock::new(HashMap::new()),
            index: RwLock::new(HashMap::new()),
            next_series: RwLock::new(1),
            max_chunk_span: std::sync::atomic::AtomicI64::new(0),
        })
    }

    pub fn put(&self, labels: &Labels, t: Timestamp, v: Value) -> Result<SeriesId> {
        let id = self.get_or_create(labels);
        self.put_by_id(id, t, v)?;
        Ok(id)
    }

    fn get_or_create(&self, labels: &Labels) -> SeriesId {
        let key = labels.to_bytes();
        if let Some(&id) = self.by_labels.read().get(&key) {
            return id;
        }
        let mut by_labels = self.by_labels.write();
        if let Some(&id) = by_labels.get(&key) {
            return id;
        }
        let mut next = self.next_series.write();
        let id = *next;
        *next += 1;
        by_labels.insert(key, id);
        self.labels_of.write().insert(id, labels.clone());
        let mut index = self.index.write();
        for (k, vv) in labels.iter() {
            index
                .entry(k.to_string())
                .or_default()
                .entry(vv.to_string())
                .or_default()
                .push(id);
        }
        id
    }

    pub fn put_by_id(&self, id: SeriesId, t: Timestamp, v: Value) -> Result<()> {
        if !self.labels_of.read().contains_key(&id) {
            return Err(Error::not_found(format!("series {id}")));
        }
        // Head-window roll, as in tsdb: the closing window's samples are
        // flushed into the LSM wholesale.
        loop {
            let w = *self.window.read();
            if w.is_empty() {
                let start = t.div_euclid(self.block_range_ms) * self.block_range_ms;
                let mut window = self.window.write();
                if window.is_empty() {
                    *window = tu_common::TimeRange::new(start, start + self.block_range_ms);
                }
                continue;
            }
            if t < w.start {
                return Err(Error::invalid("tsdb-LDB rejects out-of-order samples"));
            }
            if t >= w.end {
                self.flush_window()?;
                let start = t.div_euclid(self.block_range_ms) * self.block_range_ms;
                *self.window.write() =
                    tu_common::TimeRange::new(start, start + self.block_range_ms);
                continue;
            }
            break;
        }
        let mut heads = self.heads.write();
        let head = heads.entry(id).or_default();
        if let Some(last) = head.last() {
            if t <= last.t {
                return Err(Error::invalid("tsdb-LDB rejects out-of-order samples"));
            }
        }
        head.push(Sample::new(t, v));
        Ok(())
    }

    /// Flushes every head series of the closing window into the LSM (the
    /// background flush; compaction is deferred — it cannot keep up on S3,
    /// which is the paper's point about tsdb-LDB's memory accumulation).
    fn flush_window(&self) -> Result<()> {
        let drained: Vec<(SeriesId, Vec<Sample>)> = {
            let mut heads = self.heads.write();
            heads
                .iter_mut()
                .filter(|(_, h)| !h.is_empty())
                .map(|(id, h)| (*id, std::mem::take(h)))
                .collect()
        };
        for (id, samples) in drained {
            for chunk_rows in samples.chunks(self.chunk_samples) {
                let chunk = gorilla::compress_chunk(chunk_rows)?;
                let span = chunk_rows[chunk_rows.len() - 1].t - chunk_rows[0].t;
                self.max_chunk_span
                    .fetch_max(span, std::sync::atomic::Ordering::Relaxed);
                self.tree.put(id, chunk_rows[0].t, chunk);
            }
        }
        self.tree.seal();
        self.tree.flush_memtables()
    }

    /// Seals all heads and compacts the LSM to quiescence.
    pub fn flush_all(&self) -> Result<()> {
        self.flush_window()?;
        *self.window.write() = tu_common::TimeRange::empty();
        self.tree.maintain()
    }

    /// Finishes pending compactions without sealing the in-memory head
    /// window (the natural steady state the paper queries against).
    pub fn settle(&self) -> Result<()> {
        self.tree.maintain()
    }

    pub fn query(
        &self,
        selectors: &[tu_index::Selector],
        start: Timestamp,
        end: Timestamp,
    ) -> Result<Vec<(Labels, Vec<Sample>)>> {
        let ids = {
            let index = self.index.read();
            let mut acc: Option<Vec<SeriesId>> = None;
            for sel in selectors {
                let mut matched: Vec<SeriesId> = Vec::new();
                if let Some(values) = index.get(&sel.key) {
                    for (value, list) in values {
                        if sel.matches_value(value) {
                            matched.extend_from_slice(list);
                        }
                    }
                }
                matched.sort_unstable();
                matched.dedup();
                acc = Some(match acc {
                    None => matched,
                    Some(prev) => prev
                        .into_iter()
                        .filter(|id| matched.binary_search(id).is_ok())
                        .collect(),
                });
            }
            acc.unwrap_or_default()
        };
        let mut out = Vec::new();
        for id in ids {
            let labels = self.labels_of.read().get(&id).cloned().expect("indexed");
            let mut samples: Vec<Sample> = Vec::new();
            // Chunks starting earlier than the longest chunk span cannot
            // contain samples in range.
            let slack = self
                .max_chunk_span
                .load(std::sync::atomic::Ordering::Relaxed)
                + 1;
            for (_, chunk) in self
                .tree
                .range_chunks(id, start.saturating_sub(slack), end)?
            {
                for s in gorilla::decompress_chunk(&chunk)? {
                    if s.t >= start && s.t < end {
                        samples.push(s);
                    }
                }
            }
            if let Some(head) = self.heads.read().get(&id) {
                for s in head {
                    if s.t >= start && s.t < end {
                        samples.push(*s);
                    }
                }
            }
            samples.sort_by_key(|s| s.t);
            samples.dedup_by_key(|s| s.t);
            if !samples.is_empty() {
                out.push((labels, samples));
            }
        }
        out.sort_by_cached_key(|r| r.0.to_bytes());
        Ok(out)
    }

    pub fn series_count(&self) -> usize {
        self.by_labels.read().len()
    }

    pub fn lsm_stats(&self) -> tu_lsm::leveled::LeveledStats {
        self.tree.stats()
    }

    /// Drops cached data blocks (benchmarking).
    pub fn clear_block_cache(&self) {
        self.tree.clear_block_cache();
    }

    /// Heap bytes of heads + index (structural estimate).
    pub fn memory_bytes(&self) -> usize {
        let heads: usize = self
            .heads
            .read()
            .values()
            .map(|h| h.capacity() * std::mem::size_of::<Sample>() + 48)
            .sum();
        let mut index_bytes = 0;
        for (k, values) in self.index.read().iter() {
            index_bytes += k.capacity() + values.capacity() * 64;
            for (v, list) in values {
                index_bytes += v.capacity() + list.capacity() * 8 + 32;
            }
        }
        let labels: usize = self
            .labels_of
            .read()
            .values()
            .map(|l| l.heap_bytes() + 16)
            .sum();
        heads + index_bytes + labels + self.tree.memtable_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tu_cloud::cost::LatencyMode;
    use tu_index::Selector;

    fn engine() -> (tempfile::TempDir, TsdbLdb) {
        let dir = tempfile::tempdir().unwrap();
        let env = StorageEnv::open(dir.path(), LatencyMode::Off).unwrap();
        let t = TsdbLdb::open(
            env,
            8,
            LeveledOptions {
                memtable_bytes: 16 << 10,
                l0_table_trigger: 2,
                base_level_bytes: 32 << 10,
                max_sstable_bytes: 16 << 10,
                ..LeveledOptions::default()
            },
        )
        .unwrap();
        (dir, t)
    }

    fn labels(pairs: &[(&str, &str)]) -> Labels {
        Labels::from_pairs(pairs.iter().copied())
    }

    #[test]
    fn put_flush_query_round_trip() {
        let (_d, t) = engine();
        let l = labels(&[("metric", "cpu"), ("host", "h1")]);
        let id = t.put(&l, 0, 0.0).unwrap();
        for i in 1..100i64 {
            t.put_by_id(id, i * 1000, i as f64).unwrap();
        }
        t.flush_all().unwrap();
        let res = t
            .query(&[Selector::exact("metric", "cpu")], 0, 200_000)
            .unwrap();
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].1.len(), 100);
    }

    #[test]
    fn chunks_reach_the_object_store() {
        let dir = tempfile::tempdir().unwrap();
        let env = StorageEnv::open(dir.path(), LatencyMode::Off).unwrap();
        let t = TsdbLdb::open(
            env.clone(),
            8,
            LeveledOptions {
                memtable_bytes: 8 << 10,
                ..LeveledOptions::default()
            },
        )
        .unwrap();
        for sid in 0..8 {
            let id = t
                .put(&labels(&[("host", &format!("h{sid}"))]), 0, 0.0)
                .unwrap();
            for i in 1..64i64 {
                t.put_by_id(id, i * 1000, 1.0).unwrap();
            }
        }
        t.flush_all().unwrap();
        assert!(env.object.stats().put_requests > 0, "all levels on S3");
        assert_eq!(env.block.stats().put_requests, 0);
    }

    #[test]
    fn rejects_out_of_order() {
        let (_d, t) = engine();
        let id = t.put(&labels(&[("m", "x")]), 1000, 1.0).unwrap();
        assert!(t.put_by_id(id, 500, 1.0).is_err());
    }

    #[test]
    fn memory_tracks_heads_and_index() {
        let (_d, t) = engine();
        let m0 = t.memory_bytes();
        for i in 0..200 {
            t.put(&labels(&[("host", &format!("h{i}"))]), 1000, 1.0)
                .unwrap();
        }
        assert!(t.memory_bytes() > m0);
    }
}
