//! A Prometheus-tsdb-like baseline storage engine (§2.2/§2.4), with the
//! cloud-storage extension the paper uses for its "tsdb" baseline.
//!
//! Architecture, faithfully including its pathologies:
//!
//! * All samples of the current time window (2 hours by default) are
//!   batched **on the heap**: an open raw chunk plus completed
//!   Gorilla-compressed chunks per series.
//! * The inverted index of the head is built on the fly in **nested hash
//!   maps** (tag key → tag value → postings) — the memory hog Figure 3
//!   dissects.
//! * When the window closes, everything is flushed into a *self-contained
//!   block* (chunks file + index file). With cloud storage enabled the
//!   chunks file is uploaded to the object store.
//! * Every persisted block's metadata (its full per-block index) is
//!   **kept in memory** for query acceleration — the second memory hog.
//! * Out-of-order samples are rejected, as in Prometheus (§2.2).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use tu_cloud::StorageEnv;
use tu_common::{Error, Labels, Result, Sample, SeriesId, TimeRange, Timestamp, Value};
use tu_compress::gorilla;

use tu_lsm::cache::BlockCache;

/// Configuration of the tsdb baseline.
#[derive(Debug, Clone)]
pub struct TsdbOptions {
    /// Head block time range (Prometheus: 2 hours).
    pub block_range_ms: i64,
    /// Samples per chunk (Prometheus: 120).
    pub chunk_samples: usize,
    /// Store persisted blocks on the slow object store (the paper's cloud
    /// extension); otherwise they stay on the fast block store.
    pub slow_storage: bool,
    /// LRU cache for chunk bytes fetched from storage (1 GiB in §4.1).
    pub chunk_cache_bytes: usize,
}

impl Default for TsdbOptions {
    fn default() -> Self {
        TsdbOptions {
            block_range_ms: 2 * 60 * 60 * 1000,
            chunk_samples: 120,
            slow_storage: true,
            chunk_cache_bytes: 64 << 20,
        }
    }
}

/// Memory breakdown matching Figure 3b's categories.
#[derive(Debug, Default, Clone, Copy)]
pub struct TsdbMemory {
    /// Head inverted index (nested hash maps).
    pub index_bytes: usize,
    /// Persisted blocks' metadata held in memory.
    pub block_meta_bytes: usize,
    /// Head data samples (open raw chunks + completed compressed chunks).
    pub samples_bytes: usize,
}

impl TsdbMemory {
    pub fn total(&self) -> usize {
        self.index_bytes + self.block_meta_bytes + self.samples_bytes
    }
}

struct HeadSeries {
    labels: Labels,
    /// Open chunk, raw.
    open: Vec<Sample>,
    /// Completed chunks of the current window, compressed, with their
    /// first timestamps.
    full: Vec<(Timestamp, Vec<u8>)>,
    last_ts: Timestamp,
}

/// Per-block chunk reference kept in memory.
#[derive(Debug, Clone)]
struct ChunkRef {
    first_ts: Timestamp,
    offset: u64,
    len: u32,
}

/// A persisted block's in-memory metadata (its whole index).
struct BlockMeta {
    range: TimeRange,
    storage_name: String,
    /// tag key -> tag value -> series ids (the nested hash tables).
    index: HashMap<String, HashMap<String, Vec<SeriesId>>>,
    series: HashMap<SeriesId, (Labels, Vec<ChunkRef>)>,
    /// Size of the serialized index file (Table 3's index size).
    index_file_len: u64,
    chunks_file_len: u64,
}

struct Head {
    range: TimeRange,
    series: HashMap<SeriesId, HeadSeries>,
    index: HashMap<String, HashMap<String, Vec<SeriesId>>>,
}

impl Head {
    fn new(range: TimeRange) -> Self {
        Head {
            range,
            series: HashMap::new(),
            index: HashMap::new(),
        }
    }
}

/// The tsdb baseline engine.
pub struct Tsdb {
    env: StorageEnv,
    opts: TsdbOptions,
    head: RwLock<Head>,
    blocks: RwLock<Vec<Arc<BlockMeta>>>,
    by_labels: RwLock<HashMap<Vec<u8>, SeriesId>>,
    labels_of: RwLock<HashMap<SeriesId, Labels>>,
    next_series: Mutex<u64>,
    next_block: Mutex<u64>,
    cache: Arc<BlockCache>,
    obs_samples: tu_obs::TracedCounter,
    obs_queries: tu_obs::TracedCounter,
}

impl Tsdb {
    pub fn open(env: StorageEnv, opts: TsdbOptions) -> Result<Self> {
        let cache = Arc::new(BlockCache::new(opts.chunk_cache_bytes));
        Ok(Tsdb {
            env,
            head: RwLock::new(Head::new(TimeRange::empty())),
            blocks: RwLock::new(Vec::new()),
            by_labels: RwLock::new(HashMap::new()),
            labels_of: RwLock::new(HashMap::new()),
            next_series: Mutex::new(1),
            next_block: Mutex::new(0),
            cache,
            opts,
            obs_samples: tu_obs::traced("tsdb.ingest.samples"),
            obs_queries: tu_obs::traced("tsdb.query.requests"),
        })
    }

    /// Slow-path insert: resolve or create the series by labels.
    pub fn put(&self, labels: &Labels, t: Timestamp, v: Value) -> Result<SeriesId> {
        let id = self.get_or_create(labels);
        self.put_by_id(id, t, v)?;
        Ok(id)
    }

    fn get_or_create(&self, labels: &Labels) -> SeriesId {
        let key = labels.to_bytes();
        if let Some(&id) = self.by_labels.read().get(&key) {
            return id;
        }
        let mut by_labels = self.by_labels.write();
        if let Some(&id) = by_labels.get(&key) {
            return id;
        }
        let mut next = self.next_series.lock();
        let id = *next;
        *next += 1;
        by_labels.insert(key, id);
        self.labels_of.write().insert(id, labels.clone());
        id
    }

    /// Fast-path insert by ID.
    pub fn put_by_id(&self, id: SeriesId, t: Timestamp, v: Value) -> Result<()> {
        if !self.labels_of.read().contains_key(&id) {
            return Err(Error::not_found(format!("series {id}")));
        }
        self.obs_samples.inc();
        // Window roll: flush the head when the sample crosses its end.
        loop {
            let head_range = self.head.read().range;
            if head_range.is_empty() {
                // First sample ever: align the head window.
                let start = t.div_euclid(self.opts.block_range_ms) * self.opts.block_range_ms;
                let mut head = self.head.write();
                if head.range.is_empty() {
                    head.range = TimeRange::new(start, start + self.opts.block_range_ms);
                }
                continue;
            }
            if t < head_range.start {
                // Prometheus rejects out-of-order samples older than the head.
                return Err(Error::invalid(format!(
                    "out-of-order sample at {t} before head start {}",
                    head_range.start
                )));
            }
            if t >= head_range.end {
                self.flush_head()?;
                let start = t.div_euclid(self.opts.block_range_ms) * self.opts.block_range_ms;
                let mut head = self.head.write();
                head.range = TimeRange::new(start, start + self.opts.block_range_ms);
                continue;
            }
            break;
        }
        let mut head = self.head.write();
        if !head.series.contains_key(&id) {
            let labels = self
                .labels_of
                .read()
                .get(&id)
                .cloned()
                .expect("checked above");
            // Index the series in the head's nested hash maps.
            for (k, vv) in labels.iter() {
                head.index
                    .entry(k.to_string())
                    .or_default()
                    .entry(vv.to_string())
                    .or_default()
                    .push(id);
            }
            head.series.insert(
                id,
                HeadSeries {
                    labels,
                    open: Vec::new(),
                    full: Vec::new(),
                    last_ts: i64::MIN,
                },
            );
        }
        let series = head.series.get_mut(&id).expect("inserted above");
        if t <= series.last_ts {
            return Err(Error::invalid(format!(
                "out-of-order sample at {t}, head already at {}",
                series.last_ts
            )));
        }
        series.open.push(Sample::new(t, v));
        series.last_ts = t;
        if series.open.len() >= self.opts.chunk_samples {
            let first = series.open[0].t;
            let chunk = gorilla::compress_chunk(&series.open)?;
            series.full.push((first, chunk));
            series.open.clear();
        }
        Ok(())
    }

    /// Flushes the head into a self-contained persisted block. The paper's
    /// Challenge: this walks and serializes *everything*, stalling inserts.
    pub fn flush_head(&self) -> Result<()> {
        let _span = tu_obs::span("tsdb.flush_head");
        let mut head = self.head.write();
        if head.series.is_empty() {
            return Ok(());
        }
        let range = head.range;
        let block_no = {
            let mut n = self.next_block.lock();
            let v = *n;
            *n += 1;
            v
        };
        let storage_name = format!("tsdb/block-{block_no:06}");
        let mut chunks_file = Vec::new();
        let mut series_meta: HashMap<SeriesId, (Labels, Vec<ChunkRef>)> = HashMap::new();
        for (id, s) in head.series.iter_mut() {
            let mut refs = Vec::new();
            if !s.open.is_empty() {
                let first = s.open[0].t;
                let chunk = gorilla::compress_chunk(&s.open)?;
                s.full.push((first, chunk));
                s.open.clear();
            }
            for (first_ts, chunk) in s.full.drain(..) {
                refs.push(ChunkRef {
                    first_ts,
                    offset: chunks_file.len() as u64,
                    len: chunk.len() as u32,
                });
                chunks_file.extend_from_slice(&chunk);
            }
            series_meta.insert(*id, (s.labels.clone(), refs));
        }
        // The block index is the head index, serialized to its own file
        // and *also kept in memory* (the paper's block-metadata cost).
        let index = std::mem::take(&mut head.index);
        let index_file = serialize_index(&index, &series_meta);
        let chunks_file_len = chunks_file.len() as u64;
        if self.opts.slow_storage {
            self.env
                .object
                .put(&format!("{storage_name}/chunks"), &chunks_file)?;
            self.env
                .object
                .put(&format!("{storage_name}/index"), &index_file)?;
        } else {
            self.env
                .block
                .write_file(&format!("{storage_name}/chunks"), &chunks_file)?;
            self.env
                .block
                .write_file(&format!("{storage_name}/index"), &index_file)?;
        }
        self.blocks.write().push(Arc::new(BlockMeta {
            range,
            storage_name,
            index,
            series: series_meta,
            index_file_len: index_file.len() as u64,
            chunks_file_len,
        }));
        head.series.clear();
        head.range = TimeRange::empty();
        Ok(())
    }

    fn select_ids(
        index: &HashMap<String, HashMap<String, Vec<SeriesId>>>,
        selectors: &[tu_index::Selector],
    ) -> Vec<SeriesId> {
        let mut acc: Option<Vec<SeriesId>> = None;
        for sel in selectors {
            let mut ids: Vec<SeriesId> = Vec::new();
            if let Some(values) = index.get(&sel.key) {
                for (value, list) in values {
                    if sel.matches_value(value) {
                        ids.extend_from_slice(list);
                    }
                }
            }
            ids.sort_unstable();
            ids.dedup();
            acc = Some(match acc {
                None => ids,
                Some(prev) => prev
                    .into_iter()
                    .filter(|id| ids.binary_search(id).is_ok())
                    .collect(),
            });
            if acc.as_ref().is_some_and(|a| a.is_empty()) {
                break;
            }
        }
        acc.unwrap_or_default()
    }

    fn read_chunk(&self, block: &BlockMeta, r: &ChunkRef) -> Result<Vec<u8>> {
        let name = format!("{}/chunks", block.storage_name);
        let cache_key = if self.opts.slow_storage {
            format!("o:{name}")
        } else {
            format!("b:{name}")
        };
        if let Some(hit) = self.cache.get(&cache_key, r.offset) {
            return Ok(hit[0].1.clone());
        }
        let bytes = if self.opts.slow_storage {
            self.env.object.get_range(&name, r.offset, r.len as usize)?
        } else {
            self.env.block.read_range(&name, r.offset, r.len as usize)?
        };
        self.cache.insert(
            &cache_key,
            r.offset,
            Arc::new(vec![(Vec::new(), bytes.clone())]),
            bytes.len(),
        );
        Ok(bytes)
    }

    /// Query: selector evaluation against the head index plus every
    /// overlapping persisted block's index. With cloud storage the paper's
    /// tsdb fetches old partitions' index files from S3 for querying
    /// ("tsdb needs to fetch those large indexes in old time-partitions
    /// from S3", §4.3); that fetch is charged here.
    pub fn query(
        &self,
        selectors: &[tu_index::Selector],
        start: Timestamp,
        end: Timestamp,
    ) -> Result<Vec<(Labels, Vec<Sample>)>> {
        self.obs_queries.inc();
        let _span = tu_obs::span("tsdb.query");
        let mut per_series: HashMap<SeriesId, (Labels, Vec<Sample>)> = HashMap::new();
        // Persisted blocks.
        let blocks = self.blocks.read().clone();
        for block in &blocks {
            if !block.range.overlaps(&TimeRange::new(start, end)) {
                continue;
            }
            if self.opts.slow_storage {
                let _ = self
                    .env
                    .object
                    .get(&format!("{}/index", block.storage_name))?;
            }
            for id in Self::select_ids(&block.index, selectors) {
                if let Some((labels, refs)) = block.series.get(&id) {
                    let entry = per_series
                        .entry(id)
                        .or_insert_with(|| (labels.clone(), Vec::new()));
                    for r in refs {
                        let bytes = self.read_chunk(block, r)?;
                        for s in gorilla::decompress_chunk(&bytes)? {
                            if s.t >= start && s.t < end {
                                entry.1.push(s);
                            }
                        }
                    }
                }
            }
        }
        // Head.
        {
            let head = self.head.read();
            for id in Self::select_ids(&head.index, selectors) {
                if let Some(s) = head.series.get(&id) {
                    let entry = per_series
                        .entry(id)
                        .or_insert_with(|| (s.labels.clone(), Vec::new()));
                    for (_, chunk) in &s.full {
                        for sample in gorilla::decompress_chunk(chunk)? {
                            if sample.t >= start && sample.t < end {
                                entry.1.push(sample);
                            }
                        }
                    }
                    for sample in &s.open {
                        if sample.t >= start && sample.t < end {
                            entry.1.push(*sample);
                        }
                    }
                }
            }
        }
        let mut out: Vec<(Labels, Vec<Sample>)> = per_series
            .into_values()
            .map(|(labels, mut samples)| {
                samples.sort_by_key(|s| s.t);
                samples.dedup_by_key(|s| s.t);
                (labels, samples)
            })
            .filter(|(_, samples)| !samples.is_empty())
            .collect();
        out.sort_by_cached_key(|r| r.0.to_bytes());
        Ok(out)
    }

    /// Number of live series.
    pub fn series_count(&self) -> usize {
        self.by_labels.read().len()
    }

    /// Memory breakdown (Figure 3's categories), estimated structurally.
    /// "Inverted index" counts the nested hash maps of *every* partition
    /// (head and persisted blocks — the paper keeps them all in memory);
    /// "block metadata" counts persisted blocks' label sets and chunk
    /// references.
    pub fn memory(&self) -> TsdbMemory {
        let head = self.head.read();
        let mut index_bytes = nested_index_bytes(&head.index);
        let samples_bytes: usize = head
            .series
            .values()
            .map(|s| {
                s.labels.heap_bytes()
                    + s.open.capacity() * std::mem::size_of::<Sample>()
                    + s.full.iter().map(|(_, c)| c.capacity() + 24).sum::<usize>()
                    + 64
            })
            .sum();
        let mut block_meta_bytes = 0;
        for b in self.blocks.read().iter() {
            index_bytes += nested_index_bytes(&b.index);
            block_meta_bytes += b
                .series
                .values()
                .map(|(l, refs)| l.heap_bytes() + refs.len() * 24 + 48)
                .sum::<usize>();
        }
        TsdbMemory {
            index_bytes,
            block_meta_bytes,
            samples_bytes,
        }
    }

    /// Total persisted index / chunk bytes (Table 3).
    pub fn disk_sizes(&self) -> (u64, u64) {
        let blocks = self.blocks.read();
        (
            blocks.iter().map(|b| b.index_file_len).sum(),
            blocks.iter().map(|b| b.chunks_file_len).sum(),
        )
    }

    pub fn block_count(&self) -> usize {
        self.blocks.read().len()
    }

    pub fn storage(&self) -> &StorageEnv {
        &self.env
    }

    /// Drops cached chunk bytes (benchmarking).
    pub fn clear_block_cache(&self) {
        self.cache.clear();
    }
}

fn nested_index_bytes(index: &HashMap<String, HashMap<String, Vec<SeriesId>>>) -> usize {
    // Hash maps over-allocate to keep load factors low; charge the
    // bucket arrays plus string and postings storage.
    let mut total = index.capacity() * 64;
    for (k, values) in index {
        total += k.capacity() + values.capacity() * 64;
        for (v, list) in values {
            total += v.capacity() + list.capacity() * std::mem::size_of::<SeriesId>() + 32;
        }
    }
    total
}

fn serialize_index(
    index: &HashMap<String, HashMap<String, Vec<SeriesId>>>,
    series: &HashMap<SeriesId, (Labels, Vec<ChunkRef>)>,
) -> Vec<u8> {
    use tu_common::varint;
    let mut out = Vec::new();
    varint::write_u64(&mut out, index.len() as u64);
    let mut keys: Vec<&String> = index.keys().collect();
    keys.sort();
    for k in keys {
        let values = &index[k];
        varint::write_u64(&mut out, k.len() as u64);
        out.extend_from_slice(k.as_bytes());
        varint::write_u64(&mut out, values.len() as u64);
        let mut vals: Vec<&String> = values.keys().collect();
        vals.sort();
        for v in vals {
            varint::write_u64(&mut out, v.len() as u64);
            out.extend_from_slice(v.as_bytes());
            let list = &values[v];
            varint::write_u64(&mut out, list.len() as u64);
            for id in list {
                varint::write_u64(&mut out, *id);
            }
        }
    }
    varint::write_u64(&mut out, series.len() as u64);
    let mut ids: Vec<&SeriesId> = series.keys().collect();
    ids.sort();
    for id in ids {
        let (labels, refs) = &series[id];
        varint::write_u64(&mut out, *id);
        let lb = labels.to_bytes();
        varint::write_u64(&mut out, lb.len() as u64);
        out.extend_from_slice(&lb);
        varint::write_u64(&mut out, refs.len() as u64);
        for r in refs {
            varint::write_u64(&mut out, r.first_ts as u64);
            varint::write_u64(&mut out, r.offset);
            varint::write_u64(&mut out, r.len as u64);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tu_cloud::cost::LatencyMode;
    use tu_index::Selector;

    const HOUR: i64 = 3_600_000;

    fn engine(slow: bool) -> (tempfile::TempDir, Tsdb) {
        let dir = tempfile::tempdir().unwrap();
        let env = StorageEnv::open(dir.path(), LatencyMode::Off).unwrap();
        let t = Tsdb::open(
            env,
            TsdbOptions {
                chunk_samples: 8,
                slow_storage: slow,
                ..TsdbOptions::default()
            },
        )
        .unwrap();
        (dir, t)
    }

    fn labels(pairs: &[(&str, &str)]) -> Labels {
        Labels::from_pairs(pairs.iter().copied())
    }

    #[test]
    fn ingest_and_query_counters_attribute_to_trace_contexts() {
        // The tsdb.* counters are TracedCounters (counter-discipline), so a
        // scoped TraceContext must see exactly the samples/queries charged
        // inside it — the same attribution invariant `query_profiled`
        // relies on for the TU engine.
        let (_d, t) = engine(false);
        let l = labels(&[("metric", "mem"), ("host", "h9")]);
        let ctx = tu_obs::TraceContext::start("tsdb-unit");
        let id = t.put(&l, 1_000, 0.5).unwrap();
        t.put_by_id(id, 2_000, 0.6).unwrap();
        t.query(&[Selector::exact("metric", "mem")], 0, HOUR)
            .unwrap();
        let summary = ctx.finish();
        assert_eq!(summary.counter("tsdb.ingest.samples"), 2);
        assert_eq!(summary.counter("tsdb.query.requests"), 1);
        // Outside any context the same counters keep charging only the
        // global registry.
        t.put_by_id(id, 3_000, 0.7).unwrap();
        assert_eq!(summary.counter("tsdb.ingest.samples"), 2);
    }

    #[test]
    fn head_put_and_query() {
        let (_d, t) = engine(true);
        let l = labels(&[("metric", "cpu"), ("host", "h1")]);
        let id = t.put(&l, 1_000, 0.5).unwrap();
        t.put_by_id(id, 2_000, 0.6).unwrap();
        let res = t
            .query(&[Selector::exact("metric", "cpu")], 0, HOUR)
            .unwrap();
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].1.len(), 2);
    }

    #[test]
    fn out_of_order_is_rejected() {
        let (_d, t) = engine(true);
        let id = t.put(&labels(&[("m", "x")]), 10_000, 1.0).unwrap();
        assert!(t.put_by_id(id, 5_000, 0.5).is_err());
        assert!(t.put_by_id(id, 10_000, 0.5).is_err(), "duplicates too");
    }

    #[test]
    fn window_roll_persists_block_and_keeps_data_queryable() {
        let (_d, t) = engine(true);
        let l = labels(&[("metric", "cpu")]);
        let id = t.put(&l, 0, 0.0).unwrap();
        for i in 1..100i64 {
            t.put_by_id(id, i * 2 * 60_000, i as f64).unwrap(); // 2-min interval
        }
        assert!(t.block_count() >= 1, "head must have rolled");
        let res = t
            .query(&[Selector::exact("metric", "cpu")], 0, 10 * HOUR)
            .unwrap();
        assert_eq!(res[0].1.len(), 100);
        // Chunks actually live on the object store.
        assert!(t.storage().object.stats().put_requests > 0);
    }

    #[test]
    fn fast_storage_mode_writes_to_block_store() {
        let (_d, t) = engine(false);
        let id = t.put(&labels(&[("m", "x")]), 0, 1.0).unwrap();
        for i in 1..200i64 {
            t.put_by_id(id, i * 2 * 60_000, 1.0).unwrap();
        }
        assert!(t.storage().block.stats().put_requests > 0);
        assert_eq!(t.storage().object.stats().put_requests, 0);
    }

    #[test]
    fn memory_grows_with_series_count() {
        let (_d, t) = engine(true);
        let m0 = t.memory().total();
        for i in 0..500 {
            t.put(
                &labels(&[("host", &format!("h{i}")), ("metric", "cpu")]),
                1_000,
                1.0,
            )
            .unwrap();
        }
        let m1 = t.memory().total();
        assert!(m1 > m0 + 100 * 500, "index+samples must grow: {m0} -> {m1}");
    }

    #[test]
    fn block_metadata_stays_in_memory_after_flush() {
        let (_d, t) = engine(true);
        for i in 0..100 {
            t.put(
                &labels(&[("host", &format!("h{i}")), ("metric", "cpu")]),
                1_000,
                1.0,
            )
            .unwrap();
        }
        t.flush_head().unwrap();
        let m = t.memory();
        assert!(m.block_meta_bytes > 0);
        assert_eq!(m.samples_bytes, 0, "head empty after flush");
        let (index_len, chunks_len) = t.disk_sizes();
        assert!(index_len > 0 && chunks_len > 0);
    }

    #[test]
    fn regex_selectors_match_head_and_blocks() {
        let (_d, t) = engine(true);
        for m in ["disk_read", "disk_write", "cpu_user"] {
            t.put(&labels(&[("metric", m)]), 1_000, 1.0).unwrap();
        }
        t.flush_head().unwrap();
        for m in ["disk_io", "mem_used"] {
            t.put(&labels(&[("metric", m)]), 8 * HOUR, 1.0).unwrap();
        }
        let res = t
            .query(
                &[Selector::regex("metric", "disk.*").unwrap()],
                0,
                10 * HOUR,
            )
            .unwrap();
        assert_eq!(res.len(), 3);
    }
}
