//! The "TU-LDB" baseline (§4.1): TimeUnion's memory-efficient layer — the
//! trie-backed global index and file-backed head chunks — over a *classic*
//! leveled LSM, with the first two levels on EBS and the deeper levels on
//! S3.
//!
//! This is the ablation isolating the time-partitioned tree: TU-LDB shares
//! everything with TimeUnion except the storage data structure, so the gap
//! between the two is exactly the paper's §3.3 contribution (recent data
//! scattered across uncompacted top levels; compactions that read piles of
//! overlapping SSTables from S3).

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use tu_cloud::StorageEnv;
use tu_common::{Error, Labels, Result, Sample, SeriesId, Timestamp, Value};
use tu_compress::gorilla;
use tu_core::series::{self, HeadInsert, SeriesObject};
use tu_index::{InvertedIndex, Selector};
use tu_lsm::leveled::{LeveledOptions, LeveledTree};
use tu_mmap::pagecache::PageCache;
use tu_mmap::ChunkArena;

/// TimeUnion memory layer over a classic leveled LSM.
pub struct TuLdb {
    index: InvertedIndex,
    tree: LeveledTree,
    arena: ChunkArena,
    page_cache: Arc<PageCache>,
    chunk_samples: usize,
    series: RwLock<HashMap<SeriesId, Arc<Mutex<SeriesObject>>>>,
    by_labels: RwLock<HashMap<Vec<u8>, SeriesId>>,
    next_series: Mutex<u64>,
    max_chunk_span: std::sync::atomic::AtomicI64,
}

impl TuLdb {
    /// Opens the engine rooted at `dir`. `lsm.slow_level_start` defaults
    /// to 2 (L0/L1 on the fast tier) per the paper.
    pub fn open(
        dir: impl Into<PathBuf>,
        env: StorageEnv,
        chunk_samples: usize,
        page_cache_bytes: usize,
        lsm: LeveledOptions,
    ) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let page_cache = PageCache::new(page_cache_bytes);
        let index = InvertedIndex::open(page_cache.clone(), dir.join("index"), 1 << 16)?;
        let arena = ChunkArena::open(
            page_cache.clone(),
            dir.join("heads"),
            series::slot_size(chunk_samples),
            1 << 14,
        )?;
        Ok(TuLdb {
            index,
            tree: LeveledTree::open(env, lsm)?,
            arena,
            page_cache,
            chunk_samples,
            series: RwLock::new(HashMap::new()),
            by_labels: RwLock::new(HashMap::new()),
            next_series: Mutex::new(1),
            max_chunk_span: std::sync::atomic::AtomicI64::new(0),
        })
    }

    pub fn put(&self, labels: &Labels, t: Timestamp, v: Value) -> Result<SeriesId> {
        let id = self.get_or_create(labels)?;
        self.put_by_id(id, t, v)?;
        Ok(id)
    }

    fn get_or_create(&self, labels: &Labels) -> Result<SeriesId> {
        let key = labels.to_bytes();
        if let Some(&id) = self.by_labels.read().get(&key) {
            return Ok(id);
        }
        let mut by_labels = self.by_labels.write();
        if let Some(&id) = by_labels.get(&key) {
            return Ok(id);
        }
        let id = {
            let mut next = self.next_series.lock();
            let id = *next;
            *next += 1;
            id
        };
        let obj = SeriesObject::new(id, labels.clone(), &self.arena)?;
        self.series.write().insert(id, Arc::new(Mutex::new(obj)));
        by_labels.insert(key, id);
        drop(by_labels);
        self.index.add(labels, id)?;
        Ok(id)
    }

    pub fn put_by_id(&self, id: SeriesId, t: Timestamp, v: Value) -> Result<()> {
        let obj = self
            .series
            .read()
            .get(&id)
            .cloned()
            .ok_or_else(|| Error::not_found(format!("series {id}")))?;
        let mut o = obj.lock();
        let outcome = o.insert(&self.arena, t, v, self.chunk_samples)?;
        drop(o);
        match outcome {
            HeadInsert::Buffered => Ok(()),
            HeadInsert::Sealed {
                first_ts,
                last_ts,
                chunk,
            } => {
                self.max_chunk_span
                    .fetch_max(last_ts - first_ts, std::sync::atomic::Ordering::Relaxed);
                if self.tree.put(id, first_ts, chunk) {
                    self.tree.flush_memtables()?;
                }
                Ok(())
            }
            HeadInsert::OlderThanHead => {
                let chunk = gorilla::compress_chunk(&[Sample::new(t, v)])?;
                if self.tree.put(id, t, chunk) {
                    self.tree.flush_memtables()?;
                }
                Ok(())
            }
        }
    }

    /// Seals every head and compacts to quiescence.
    pub fn flush_all(&self) -> Result<()> {
        let objs: Vec<Arc<Mutex<SeriesObject>>> = self.series.read().values().cloned().collect();
        for obj in objs {
            let mut o = obj.lock();
            if let Some((first, last, chunk)) = o.seal(&self.arena)? {
                let id = o.id;
                drop(o);
                self.max_chunk_span
                    .fetch_max(last - first, std::sync::atomic::Ordering::Relaxed);
                self.tree.put(id, first, chunk);
            }
        }
        self.tree.seal();
        self.tree.maintain()
    }

    /// Finishes pending compactions without sealing head chunks.
    pub fn settle(&self) -> Result<()> {
        self.tree.maintain()
    }

    pub fn query(
        &self,
        selectors: &[Selector],
        start: Timestamp,
        end: Timestamp,
    ) -> Result<Vec<(Labels, Vec<Sample>)>> {
        let ids = self.index.select(selectors)?;
        let mut out = Vec::new();
        for id in ids {
            let Some(obj) = self.series.read().get(&id).cloned() else {
                continue;
            };
            let mut samples: Vec<Sample> = Vec::new();
            let slack = self
                .max_chunk_span
                .load(std::sync::atomic::Ordering::Relaxed)
                + 1;
            for (_, chunk) in self
                .tree
                .range_chunks(id, start.saturating_sub(slack), end)?
            {
                for s in gorilla::decompress_chunk(&chunk)? {
                    if s.t >= start && s.t < end {
                        samples.push(s);
                    }
                }
            }
            let o = obj.lock();
            for s in o.head_samples(&self.arena)? {
                if s.t >= start && s.t < end {
                    samples.push(s);
                }
            }
            let labels = o.labels.clone();
            drop(o);
            samples.sort_by_key(|s| s.t);
            samples.dedup_by_key(|s| s.t);
            if !samples.is_empty() {
                out.push((labels, samples));
            }
        }
        out.sort_by_cached_key(|r| r.0.to_bytes());
        Ok(out)
    }

    pub fn series_count(&self) -> usize {
        self.by_labels.read().len()
    }

    pub fn lsm_stats(&self) -> tu_lsm::leveled::LeveledStats {
        self.tree.stats()
    }

    /// Drops cached data blocks (benchmarking).
    pub fn clear_block_cache(&self) {
        self.tree.clear_block_cache();
    }

    /// Heap + resident memory (structural estimate).
    pub fn memory_bytes(&self) -> usize {
        let objects: usize = self
            .series
            .read()
            .values()
            .map(|o| o.lock().heap_bytes())
            .sum();
        objects
            + self.index.heap_bytes()
            + self.page_cache.stats().resident_bytes as usize
            + self.tree.memtable_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tu_cloud::cost::LatencyMode;

    fn engine() -> (tempfile::TempDir, TuLdb) {
        let dir = tempfile::tempdir().unwrap();
        let env = StorageEnv::open(dir.path().join("store"), LatencyMode::Off).unwrap();
        let t = TuLdb::open(
            dir.path().join("mem"),
            env,
            8,
            8 << 20,
            LeveledOptions {
                memtable_bytes: 16 << 10,
                l0_table_trigger: 2,
                base_level_bytes: 32 << 10,
                max_sstable_bytes: 16 << 10,
                slow_level_start: 2,
                ..LeveledOptions::default()
            },
        )
        .unwrap();
        (dir, t)
    }

    fn labels(pairs: &[(&str, &str)]) -> Labels {
        Labels::from_pairs(pairs.iter().copied())
    }

    #[test]
    fn put_query_round_trip_through_lsm() {
        let (_d, t) = engine();
        let id = t.put(&labels(&[("metric", "cpu")]), 0, 0.0).unwrap();
        for i in 1..200i64 {
            t.put_by_id(id, i * 1000, i as f64).unwrap();
        }
        t.flush_all().unwrap();
        let res = t
            .query(&[Selector::exact("metric", "cpu")], 0, 300_000)
            .unwrap();
        assert_eq!(res[0].1.len(), 200);
    }

    #[test]
    fn out_of_order_goes_through_early_flush() {
        let (_d, t) = engine();
        let id = t.put(&labels(&[("m", "x")]), 100_000, 1.0).unwrap();
        t.put_by_id(id, 50_000, 0.5).unwrap();
        t.flush_all().unwrap();
        let res = t.query(&[Selector::exact("m", "x")], 0, 200_000).unwrap();
        let ts: Vec<i64> = res[0].1.iter().map(|s| s.t).collect();
        assert_eq!(ts, vec![50_000, 100_000]);
    }

    #[test]
    fn trie_index_supports_regex() {
        let (_d, t) = engine();
        for m in ["disk_a", "disk_b", "cpu"] {
            t.put(&labels(&[("metric", m)]), 1000, 1.0).unwrap();
        }
        let res = t
            .query(&[Selector::regex("metric", "disk_.*").unwrap()], 0, 2000)
            .unwrap();
        assert_eq!(res.len(), 2);
    }
}
