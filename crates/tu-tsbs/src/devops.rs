//! The TSBS DevOps dataset: hosts × 101 metrics with 10 host tags.
//!
//! Matches the cardinalities the paper quotes ("each host contains 101
//! timeseries", §4.2; `S_g = 101, T_g = 1` in the grouping analysis).
//! Values are deterministic functions of `(seed, host, metric, step)` so
//! runs are reproducible without per-series RNG state.

use tu_common::{Labels, Timestamp, Value};

/// The 9 measurement families and their field names — 101 metrics total.
pub const MEASUREMENTS: &[(&str, &[&str])] = &[
    (
        "cpu",
        &[
            "usage_user",
            "usage_system",
            "usage_idle",
            "usage_nice",
            "usage_iowait",
            "usage_irq",
            "usage_softirq",
            "usage_steal",
            "usage_guest",
            "usage_guest_nice",
        ],
    ),
    (
        "diskio",
        &[
            "reads",
            "writes",
            "read_bytes",
            "write_bytes",
            "read_time",
            "write_time",
            "io_time",
        ],
    ),
    (
        "disk",
        &[
            "total",
            "free",
            "used",
            "used_percent",
            "inodes_total",
            "inodes_free",
            "inodes_used",
        ],
    ),
    (
        "kernel",
        &[
            "boot_time",
            "interrupts",
            "context_switches",
            "processes_forked",
            "disk_pages_in",
        ],
    ),
    (
        "mem",
        &[
            "total",
            "available",
            "used",
            "free",
            "cached",
            "buffered",
            "used_percent",
            "available_percent",
        ],
    ),
    (
        "net",
        &[
            "bytes_sent",
            "bytes_recv",
            "packets_sent",
            "packets_recv",
            "err_in",
            "err_out",
            "drop_in",
        ],
    ),
    (
        "nginx",
        &[
            "accepts", "active", "handled", "reading", "requests", "waiting", "writing",
        ],
    ),
    (
        "postgresl",
        &[
            "numbackends",
            "xact_commit",
            "xact_rollback",
            "blks_read",
            "blks_hit",
            "tup_returned",
            "tup_fetched",
            "tup_inserted",
            "tup_updated",
            "tup_deleted",
            "conflicts",
            "temp_files",
            "temp_bytes",
            "deadlocks",
            "blk_read_time",
            "blk_write_time",
            "buffers_checkpoint",
            "buffers_clean",
            "buffers_backend",
            "maxwritten_clean",
        ],
    ),
    (
        "redis",
        &[
            "uptime_in_seconds",
            "total_connections_received",
            "expired_keys",
            "evicted_keys",
            "keyspace_hits",
            "keyspace_misses",
            "instantaneous_ops_per_sec",
            "instantaneous_input_kbps",
            "instantaneous_output_kbps",
            "connected_clients",
            "used_memory",
            "used_memory_rss",
            "used_memory_peak",
            "used_memory_lua",
            "rdb_changes_since_last_save",
            "sync_full",
            "sync_partial_ok",
            "sync_partial_err",
            "pubsub_channels",
            "pubsub_patterns",
            "latest_fork_usec",
            "connected_slaves",
            "master_repl_offset",
            "repl_backlog_active",
            "repl_backlog_size",
            "repl_backlog_histlen",
            "mem_fragmentation_ratio",
            "used_cpu_sys",
            "used_cpu_user",
            "total_commands_processed",
        ],
    ),
];

/// Number of metrics each host exports.
pub const METRICS_PER_HOST: usize = 101;

const REGIONS: &[&str] = &[
    "us-east-1",
    "us-west-1",
    "us-west-2",
    "eu-west-1",
    "eu-central-1",
    "ap-southeast-1",
    "ap-southeast-2",
    "ap-northeast-1",
    "sa-east-1",
];
const OSES: &[&str] = &["Ubuntu16.10", "Ubuntu16.04LTS", "Ubuntu15.10"];
const ARCHES: &[&str] = &["x64", "x86"];
const SERVICES: &[&str] = &["6", "11", "18", "2", "9", "14"];
const TEAMS: &[&str] = &["SF", "NYC", "LON", "CHI"];
const ENVS: &[&str] = &["production", "staging", "test"];

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct DevOpsOptions {
    pub hosts: usize,
    /// First scrape timestamp (ms).
    pub start_ms: Timestamp,
    /// Scrape interval (ms). The paper uses 60 s, 30 s, and 10 s.
    pub interval_ms: i64,
    /// Total covered time span (ms); scrapes are at
    /// `start + k*interval < start + duration`.
    pub duration_ms: i64,
    pub seed: u64,
}

impl Default for DevOpsOptions {
    fn default() -> Self {
        DevOpsOptions {
            hosts: 10,
            start_ms: 0,
            interval_ms: 60_000,
            duration_ms: 24 * 3_600_000,
            seed: 0x5eed,
        }
    }
}

/// The DevOps dataset generator.
#[derive(Debug, Clone)]
pub struct DevOpsGenerator {
    opts: DevOpsOptions,
    metric_names: Vec<String>,
}

#[inline]
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl DevOpsGenerator {
    pub fn new(opts: DevOpsOptions) -> Self {
        let metric_names = MEASUREMENTS
            .iter()
            .flat_map(|(m, fields)| fields.iter().map(move |f| format!("{m}_{f}")))
            .collect::<Vec<_>>();
        assert_eq!(metric_names.len(), METRICS_PER_HOST);
        DevOpsGenerator { opts, metric_names }
    }

    pub fn options(&self) -> &DevOpsOptions {
        &self.opts
    }

    /// All 101 metric names, `measurement_field` style.
    pub fn metric_names(&self) -> &[String] {
        &self.metric_names
    }

    /// Number of scrape rounds in the configured span.
    pub fn steps(&self) -> i64 {
        (self.opts.duration_ms + self.opts.interval_ms - 1) / self.opts.interval_ms
    }

    /// Timestamp of scrape round `step`.
    pub fn ts_of(&self, step: i64) -> Timestamp {
        self.opts.start_ms + step * self.opts.interval_ms
    }

    /// End of the covered range (exclusive).
    pub fn end_ms(&self) -> Timestamp {
        self.opts.start_ms + self.opts.duration_ms
    }

    /// The 10 host tags of `host` (TSBS's hostname, region, datacenter,
    /// rack, os, arch, team, service, service_version,
    /// service_environment).
    pub fn host_labels(&self, host: usize) -> Labels {
        let h = splitmix(self.opts.seed ^ host as u64);
        let region = REGIONS[(h % REGIONS.len() as u64) as usize];
        Labels::from_pairs([
            ("hostname", format!("host_{host}")),
            ("region", region.to_string()),
            ("datacenter", format!("{region}{}", (h >> 8) % 3 + 1)),
            ("rack", format!("{}", (h >> 16) % 100)),
            (
                "os",
                OSES[((h >> 24) % OSES.len() as u64) as usize].to_string(),
            ),
            (
                "arch",
                ARCHES[((h >> 32) % ARCHES.len() as u64) as usize].to_string(),
            ),
            (
                "team",
                TEAMS[((h >> 36) % TEAMS.len() as u64) as usize].to_string(),
            ),
            (
                "service",
                SERVICES[((h >> 40) % SERVICES.len() as u64) as usize].to_string(),
            ),
            ("service_version", format!("{}", (h >> 44) % 2)),
            (
                "service_environment",
                ENVS[((h >> 48) % ENVS.len() as u64) as usize].to_string(),
            ),
        ])
    }

    /// The full tag set of one timeseries: host tags plus the metric name.
    pub fn series_labels(&self, host: usize, metric: usize) -> Labels {
        let mut l = self.host_labels(host);
        l.set("metric", self.metric_names[metric].clone());
        l
    }

    /// The deterministic value of `(host, metric)` at scrape `step`: a
    /// bounded random walk in `[0, 100)`.
    pub fn value(&self, host: usize, metric: usize, step: i64) -> Value {
        let base = splitmix(self.opts.seed ^ ((host as u64) << 32) ^ metric as u64);
        // A slow sinusoid plus hash noise, bounded to [0, 100).
        let phase = (base % 1000) as f64 / 1000.0;
        let wave = ((step as f64 / 37.0 + phase * std::f64::consts::TAU).sin() + 1.0) * 40.0;
        let noise = (splitmix(base ^ step as u64) % 2000) as f64 / 100.0;
        wave + noise
    }

    /// Iterates scrape rounds: `(step, timestamp)`.
    pub fn scrape_times(&self) -> impl Iterator<Item = (i64, Timestamp)> + '_ {
        (0..self.steps()).map(move |s| (s, self.ts_of(s)))
    }

    /// All values of one host at one scrape round, metric order.
    pub fn host_row(&self, host: usize, step: i64) -> Vec<Value> {
        (0..METRICS_PER_HOST)
            .map(|m| self.value(host, m, step))
            .collect()
    }

    /// Total number of samples the configured workload generates.
    pub fn total_samples(&self) -> u64 {
        self.opts.hosts as u64 * METRICS_PER_HOST as u64 * self.steps() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_101_metrics() {
        let total: usize = MEASUREMENTS.iter().map(|(_, f)| f.len()).sum();
        assert_eq!(total, 101);
        let gen = DevOpsGenerator::new(DevOpsOptions::default());
        assert_eq!(gen.metric_names().len(), 101);
        // Names are unique.
        let mut names = gen.metric_names().to_vec();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 101);
    }

    #[test]
    fn hosts_have_10_tags_and_unique_hostnames() {
        let gen = DevOpsGenerator::new(DevOpsOptions::default());
        let l0 = gen.host_labels(0);
        assert_eq!(l0.len(), 10);
        assert_eq!(l0.get("hostname"), Some("host_0"));
        assert_ne!(gen.host_labels(1).get("hostname"), l0.get("hostname"));
        // Series labels add the metric tag -> 11 tags (the `T` of Eq 1).
        assert_eq!(gen.series_labels(0, 0).len(), 11);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = DevOpsGenerator::new(DevOpsOptions::default());
        let b = DevOpsGenerator::new(DevOpsOptions::default());
        for host in 0..3 {
            assert_eq!(a.host_labels(host), b.host_labels(host));
            for step in 0..5 {
                assert_eq!(a.host_row(host, step), b.host_row(host, step));
            }
        }
        let c = DevOpsGenerator::new(DevOpsOptions {
            seed: 999,
            ..DevOpsOptions::default()
        });
        assert_ne!(a.value(0, 0, 0), c.value(0, 0, 0));
    }

    #[test]
    fn values_are_bounded_and_vary() {
        let gen = DevOpsGenerator::new(DevOpsOptions::default());
        let mut distinct = std::collections::BTreeSet::new();
        for step in 0..200 {
            let v = gen.value(3, 7, step);
            assert!((0.0..110.0).contains(&v), "{v}");
            distinct.insert((v * 100.0) as i64);
        }
        assert!(distinct.len() > 50, "values should vary");
    }

    #[test]
    fn timing_math() {
        let gen = DevOpsGenerator::new(DevOpsOptions {
            hosts: 2,
            start_ms: 1000,
            interval_ms: 30_000,
            duration_ms: 120_000,
            seed: 1,
        });
        assert_eq!(gen.steps(), 4);
        assert_eq!(gen.ts_of(0), 1000);
        assert_eq!(gen.ts_of(3), 91_000);
        assert_eq!(gen.end_ms(), 121_000);
        assert_eq!(gen.total_samples(), 2 * 101 * 4);
        assert_eq!(gen.scrape_times().count(), 4);
    }
}
