//! Out-of-order workload injection (Figure 18b).
//!
//! After the in-order load, the paper "randomly inserts different portions
//! of out-of-order data of randomly picked timeseries" — p5 means late
//! data equal to 5% of the normal volume. This module produces that late
//! stream deterministically.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::devops::{DevOpsGenerator, METRICS_PER_HOST};
use tu_common::{Timestamp, Value};

/// One late sample: which series, when, and what value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LateSample {
    pub host: usize,
    pub metric: usize,
    pub t: Timestamp,
    pub v: Value,
}

/// Generates `fraction` (e.g. 0.05 for p5) of the normal data volume as
/// out-of-order samples, uniformly over hosts, metrics, and past scrape
/// times. Timestamps are offset by half an interval so they do not
/// collide with in-order samples.
pub fn late_samples(
    gen: &DevOpsGenerator,
    fraction: f64,
    seed: u64,
) -> impl Iterator<Item = LateSample> + '_ {
    assert!((0.0..=1.0).contains(&fraction));
    let total = (gen.total_samples() as f64 * fraction) as u64;
    let mut rng = StdRng::seed_from_u64(seed);
    let hosts = gen.options().hosts;
    let steps = gen.steps().max(1);
    let half = gen.options().interval_ms / 2;
    (0..total).map(move |_| {
        let host = rng.gen_range(0..hosts);
        let metric = rng.gen_range(0..METRICS_PER_HOST);
        let step = rng.gen_range(0..steps);
        LateSample {
            host,
            metric,
            t: gen.ts_of(step) + half.max(1),
            v: gen.value(host, metric, step) + 0.5,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devops::DevOpsOptions;

    fn gen() -> DevOpsGenerator {
        DevOpsGenerator::new(DevOpsOptions {
            hosts: 4,
            start_ms: 0,
            interval_ms: 60_000,
            duration_ms: 3_600_000,
            seed: 1,
        })
    }

    #[test]
    fn volume_matches_fraction() {
        let g = gen();
        let n = late_samples(&g, 0.05, 42).count() as f64;
        let expect = g.total_samples() as f64 * 0.05;
        assert!((n - expect).abs() <= 1.0, "{n} vs {expect}");
        assert_eq!(late_samples(&g, 0.0, 42).count(), 0);
    }

    #[test]
    fn samples_fall_inside_the_loaded_span() {
        let g = gen();
        for s in late_samples(&g, 0.2, 7) {
            assert!(s.host < 4);
            assert!(s.metric < METRICS_PER_HOST);
            assert!(s.t >= g.options().start_ms);
            assert!(s.t < g.end_ms() + g.options().interval_ms);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = gen();
        let a: Vec<LateSample> = late_samples(&g, 0.1, 9).collect();
        let b: Vec<LateSample> = late_samples(&g, 0.1, 9).collect();
        assert_eq!(a, b);
        let c: Vec<LateSample> = late_samples(&g, 0.1, 10).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn offsets_avoid_in_order_collisions() {
        let g = gen();
        for s in late_samples(&g, 0.1, 3).take(100) {
            assert_ne!(
                (s.t - g.options().start_ms) % g.options().interval_ms,
                0,
                "late samples must not collide with scrape points"
            );
        }
    }
}
