//! The TSBS query patterns of Table 2, plus the `*-all` patterns added by
//! the big-timeseries evaluation (Figure 15).
//!
//! Pattern `M-H-D` aggregates (MAX) `M` metrics of `H` hosts every 5
//! minutes over `D` hours (or the whole span for `all`). `lastpoint`
//! fetches the last reading of one CPU metric of one host.

use crate::devops::DevOpsGenerator;
use tu_common::Timestamp;
use tu_index::Selector;

/// Aggregation step used by all range patterns: 5 minutes.
pub const STEP_MS: i64 = 5 * 60_000;

/// A TSBS query pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryPattern {
    /// 1 metric, 1 host, 1 hour.
    P1x1x1,
    /// 1 metric, 1 host, 24 hours.
    P1x1x24,
    /// 1 metric, 8 hosts, 1 hour.
    P1x8x1,
    /// 5 metrics, 1 host, 1 hour.
    P5x1x1,
    /// 5 metrics, 1 host, 24 hours.
    P5x1x24,
    /// 5 metrics, 8 hosts, 1 hour.
    P5x8x1,
    /// Last reading of 1 CPU metric of one host.
    LastPoint,
    /// 1 metric, 1 host, the whole time span (Figure 15).
    P1x1xAll,
    /// 5 metrics, 1 host, the whole time span (Figure 15).
    P5x1xAll,
}

impl QueryPattern {
    /// The Table 2 patterns in the paper's order.
    pub fn table2() -> &'static [QueryPattern] {
        &[
            QueryPattern::P1x1x1,
            QueryPattern::P1x1x24,
            QueryPattern::P1x8x1,
            QueryPattern::P5x1x1,
            QueryPattern::P5x1x24,
            QueryPattern::P5x8x1,
            QueryPattern::LastPoint,
        ]
    }

    /// All patterns including the Figure 15 additions.
    pub fn all() -> &'static [QueryPattern] {
        &[
            QueryPattern::P1x1x1,
            QueryPattern::P1x1x24,
            QueryPattern::P1x8x1,
            QueryPattern::P5x1x1,
            QueryPattern::P5x1x24,
            QueryPattern::P5x8x1,
            QueryPattern::LastPoint,
            QueryPattern::P1x1xAll,
            QueryPattern::P5x1xAll,
        ]
    }

    /// The paper's name for the pattern (e.g. "5-1-24").
    pub fn name(&self) -> &'static str {
        match self {
            QueryPattern::P1x1x1 => "1-1-1",
            QueryPattern::P1x1x24 => "1-1-24",
            QueryPattern::P1x8x1 => "1-8-1",
            QueryPattern::P5x1x1 => "5-1-1",
            QueryPattern::P5x1x24 => "5-1-24",
            QueryPattern::P5x8x1 => "5-8-1",
            QueryPattern::LastPoint => "lastpoint",
            QueryPattern::P1x1xAll => "1-1-all",
            QueryPattern::P5x1xAll => "5-1-all",
        }
    }

    fn metrics(&self) -> usize {
        match self {
            QueryPattern::P1x1x1
            | QueryPattern::P1x1x24
            | QueryPattern::P1x8x1
            | QueryPattern::LastPoint
            | QueryPattern::P1x1xAll => 1,
            _ => 5,
        }
    }

    fn hosts(&self) -> usize {
        match self {
            QueryPattern::P1x8x1 | QueryPattern::P5x8x1 => 8,
            _ => 1,
        }
    }

    fn hours(&self) -> Option<i64> {
        match self {
            QueryPattern::P1x1x24 | QueryPattern::P5x1x24 => Some(24),
            QueryPattern::P1x1xAll | QueryPattern::P5x1xAll | QueryPattern::LastPoint => None,
            _ => Some(1),
        }
    }

    /// Builds a concrete query against the generated dataset.
    /// `pick` seeds which hosts/metrics are chosen, so repeated calls can
    /// vary targets deterministically.
    pub fn spec(&self, gen: &DevOpsGenerator, pick: u64) -> QuerySpec {
        let n_hosts = gen.options().hosts.max(1);
        let first_host = (pick as usize) % n_hosts;
        let hosts: Vec<usize> = (0..self.hosts().min(n_hosts))
            .map(|i| (first_host + i) % n_hosts)
            .collect();
        // TSBS draws from the CPU family (10 metrics).
        let metric_names: Vec<String> = (0..self.metrics())
            .map(|i| gen.metric_names()[((pick as usize) + i) % 10].clone())
            .collect();
        let mut selectors = Vec::with_capacity(2);
        selectors.push(if hosts.len() == 1 {
            Selector::exact("hostname", format!("host_{}", hosts[0]))
        } else {
            let alts: Vec<String> = hosts.iter().map(|h| format!("host_{h}")).collect();
            Selector::regex("hostname", &format!("({})", alts.join("|")))
                .expect("generated pattern is valid")
        });
        selectors.push(if metric_names.len() == 1 {
            Selector::exact("metric", metric_names[0].clone())
        } else {
            Selector::regex("metric", &format!("({})", metric_names.join("|")))
                .expect("generated pattern is valid")
        });
        let end = gen.end_ms();
        let start = match (self, self.hours()) {
            (QueryPattern::LastPoint, _) => {
                // The last reading: scan the final interval only.
                end - gen.options().interval_ms * 2
            }
            (_, Some(h)) => (end - h * 3_600_000).max(gen.options().start_ms),
            (_, None) => gen.options().start_ms,
        };
        QuerySpec {
            pattern: *self,
            selectors,
            start,
            end,
            step_ms: STEP_MS,
        }
    }
}

/// A concrete query: selectors plus range and aggregation step.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    pub pattern: QueryPattern,
    pub selectors: Vec<Selector>,
    pub start: Timestamp,
    pub end: Timestamp,
    pub step_ms: i64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devops::DevOpsOptions;

    fn gen() -> DevOpsGenerator {
        DevOpsGenerator::new(DevOpsOptions {
            hosts: 16,
            start_ms: 0,
            interval_ms: 60_000,
            duration_ms: 48 * 3_600_000,
            seed: 7,
        })
    }

    #[test]
    fn names_match_the_paper() {
        let names: Vec<&str> = QueryPattern::table2().iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            vec![
                "1-1-1",
                "1-1-24",
                "1-8-1",
                "5-1-1",
                "5-1-24",
                "5-8-1",
                "lastpoint"
            ]
        );
        assert_eq!(QueryPattern::all().len(), 9);
    }

    #[test]
    fn ranges_match_pattern_durations() {
        let g = gen();
        let q = QueryPattern::P1x1x1.spec(&g, 0);
        assert_eq!(q.end - q.start, 3_600_000);
        let q = QueryPattern::P5x1x24.spec(&g, 0);
        assert_eq!(q.end - q.start, 24 * 3_600_000);
        let q = QueryPattern::P1x1xAll.spec(&g, 0);
        assert_eq!(q.end - q.start, 48 * 3_600_000);
    }

    #[test]
    fn selector_shapes() {
        let g = gen();
        let q = QueryPattern::P1x1x1.spec(&g, 3);
        assert_eq!(q.selectors.len(), 2);
        assert!(!q.selectors[0].is_regex(), "single host is exact");
        assert!(!q.selectors[1].is_regex(), "single metric is exact");
        let q = QueryPattern::P5x8x1.spec(&g, 3);
        assert!(q.selectors[0].is_regex());
        assert!(q.selectors[1].is_regex());
        assert!(q.selectors[0].matches_value("host_3"));
        assert!(q.selectors[0].matches_value("host_10"));
        assert!(!q.selectors[0].matches_value("host_11"));
    }

    #[test]
    fn metrics_come_from_the_cpu_family() {
        let g = gen();
        for pick in 0..10 {
            let q = QueryPattern::P5x1x1.spec(&g, pick);
            for name in g.metric_names().iter().take(10) {
                // Each chosen metric must be one of the first 10 (cpu_*).
                let _ = name;
            }
            let matched: Vec<&String> = g
                .metric_names()
                .iter()
                .filter(|m| q.selectors[1].matches_value(m))
                .collect();
            assert_eq!(matched.len(), 5, "pick {pick}");
            assert!(matched.iter().all(|m| m.starts_with("cpu_")));
        }
    }

    #[test]
    fn picks_wrap_around_host_count() {
        let g = DevOpsGenerator::new(DevOpsOptions {
            hosts: 4,
            ..DevOpsOptions::default()
        });
        let q = QueryPattern::P1x8x1.spec(&g, 2);
        // Only 4 hosts exist; the pattern clamps.
        let matched = (0..4)
            .filter(|h| q.selectors[0].matches_value(&format!("host_{h}")))
            .count();
        assert_eq!(matched, 4);
    }
}
