//! TSBS workloads for the TimeUnion evaluation (§4.2/§4.3).
//!
//! Reimplements the parts of the Time Series Benchmark Suite the paper
//! consumes:
//!
//! * [`devops`] — the DevOps dataset: hosts carrying 10 tags, each
//!   exporting 101 metrics across 9 measurement families (cpu, diskio,
//!   disk, kernel, mem, net, nginx, postgresl, redis), scraped at a fixed
//!   interval with deterministic pseudo-random-walk values.
//! * [`queries`] — the query patterns of Table 2 (1-1-1 … 5-8-1,
//!   lastpoint) plus the 1-1-all / 5-1-all patterns Figure 15 adds.
//! * [`ooo`] — out-of-order sample injection for the Figure 18b
//!   experiment (p5/p10/p20 late-data volumes).

pub mod devops;
pub mod ooo;
pub mod queries;

pub use devops::{DevOpsGenerator, DevOpsOptions};
pub use queries::{QueryPattern, QuerySpec};
