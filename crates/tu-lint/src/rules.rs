//! The lint rules and the allow-directive machinery.
//!
//! Each rule protects an invariant of the TimeUnion reproduction:
//!
//! * **clock-discipline** — storage cost and retention decisions must flow
//!   through `tu_common::clock` / `tu_obs` timing so simulated-time runs
//!   (SimClock, the cost model's virtual clock) can never observe
//!   wall-clock. A stray `Instant::now()` or `SystemTime` in an engine
//!   crate silently corrupts the paper's cost crossovers (Eq. 3–6).
//! * **counter-discipline** — hot-path crates must charge metrics through
//!   `tu_obs::traced` (`TracedCounter`), never a raw registry counter, so
//!   every charge also lands in the active `TraceContext` and
//!   `query_profiled` attribution stays exact.
//! * **panic-discipline** — no `unwrap`/`expect`/`panic!` in non-test code
//!   of the storage crates; corruption and I/O failures must propagate as
//!   `tu_common::Error`, not abort a query thread.
//! * **print-discipline** — no `println!`/`eprintln!`/`dbg!` in non-test
//!   library code of the engine crates; diagnostics must go through the
//!   structured event log (`tu_obs::log`) or a returned error so they are
//!   leveled, rate-limited, and trace-correlated instead of raw stdio.
//! * **unsafe-audit** — every `unsafe` must carry a `// SAFETY:` comment
//!   justifying it.
//!
//! Any finding can be suppressed by a preceding
//! `// tu-lint: allow(<rule>): <reason>` comment, which consumes exactly
//! one following finding of that rule (same line or below).

use crate::lexer::{lex, Token, TokenKind};
use crate::report::Finding;

/// Crates where panic-discipline applies (non-test code).
pub const PANIC_CRATES: &[&str] = &["tu-cloud", "tu-lsm", "tu-core", "tu-mmap"];

/// Crates where metrics must go through `tu_obs::traced`.
pub const COUNTER_CRATES: &[&str] = &["tu-cloud", "tu-lsm", "tu-core", "tu-tsdb"];

/// Crates allowed to touch wall-clock time directly: the clock abstraction
/// itself, observability timing, benches, and this lint tool.
pub const CLOCK_ALLOW_CRATES: &[&str] = &["tu-obs", "tu-bench", "tu-lint"];

/// Crates where print-discipline applies: engine library code must emit
/// diagnostics through `tu_obs::log`, never raw stdio. Benches, examples,
/// the lint tool itself, and `tu-obs` (which owns the stderr sink) are
/// exempt by omission.
pub const PRINT_CRATES: &[&str] = &["tu-cloud", "tu-lsm", "tu-core", "tu-mmap", "tu-tsdb"];

/// Individual files allowed to touch wall-clock time.
pub const CLOCK_ALLOW_FILES: &[&str] = &["crates/tu-common/src/clock.rs"];

/// All rule names, for arg validation and docs drift checks.
pub const ALL_RULES: &[&str] = &[
    "clock-discipline",
    "condvar-discipline",
    "counter-discipline",
    "held-lock-io",
    "lock-order",
    "panic-discipline",
    "print-discipline",
    "unsafe-audit",
];

/// How far above an `unsafe` token its `// SAFETY:` comment may sit.
const SAFETY_COMMENT_MAX_DISTANCE_LINES: u32 = 5;

/// Lints one file's source. `rel_path` is workspace-relative and drives
/// crate scoping (`crates/<name>/…`); returns findings with allow
/// directives already applied (suppressed findings carry `allowed: true`),
/// plus the file's unused allow directives.
pub fn lint_source(rel_path: &str, src: &str) -> (Vec<Finding>, Vec<AllowDirective>) {
    lint_source_with(
        rel_path,
        src,
        crate::locks::embedded_manifest(),
        &mut Vec::new(),
    )
}

/// [`lint_source`] against an explicit lock-order manifest, additionally
/// collecting the observed lock-nesting edges (for `--lock-graph` and the
/// concurrency fixtures).
pub fn lint_source_with(
    rel_path: &str,
    src: &str,
    manifest: &crate::locks::Manifest,
    edges: &mut Vec<crate::locks::Edge>,
) -> (Vec<Finding>, Vec<AllowDirective>) {
    let tokens = lex(src);
    let file = FileView::new(rel_path, src, &tokens);
    let mut raw = Vec::new();
    clock_discipline(&file, &mut raw);
    counter_discipline(&file, &mut raw);
    panic_discipline(&file, &mut raw);
    print_discipline(&file, &mut raw);
    unsafe_audit(&file, &mut raw);
    crate::locks::scan(&file, manifest, &mut raw, edges);
    raw.sort_by_key(|f| (f.line, f.rule));
    apply_allows(rel_path, raw, file.allows)
}

/// A parsed `// tu-lint: allow(<rule>)` comment.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    pub rule: String,
    pub line: u32,
    pub reason: Option<String>,
    pub used: bool,
}

/// Pre-computed per-file context shared by all rules.
pub(crate) struct FileView<'a> {
    pub(crate) src: &'a str,
    pub(crate) tokens: &'a [Token],
    /// Indices into `tokens` of non-comment tokens (sequence matching
    /// skips comments so an interleaved comment can't break a match).
    pub(crate) code: Vec<usize>,
    pub(crate) crate_name: String,
    pub(crate) rel_path: String,
    /// File lives under a `tests/` or `benches/` directory.
    pub(crate) is_test_file: bool,
    /// `(start, end)` inclusive ranges over *code indices* covered by
    /// `#[cfg(test)]` / `#[test]` items.
    test_regions: Vec<(usize, usize)>,
    allows: Vec<AllowDirective>,
}

impl<'a> FileView<'a> {
    fn new(rel_path: &str, src: &'a str, tokens: &'a [Token]) -> FileView<'a> {
        let code: Vec<usize> = (0..tokens.len())
            .filter(|&i| !tokens[i].is_comment())
            .collect();
        let crate_name = rel_path
            .strip_prefix("crates/")
            .and_then(|rest| rest.split('/').next())
            .unwrap_or("timeunion")
            .to_string();
        let is_test_file = rel_path
            .split('/')
            .any(|part| part == "tests" || part == "benches");
        let mut view = FileView {
            src,
            tokens,
            code,
            crate_name,
            rel_path: rel_path.to_string(),
            is_test_file,
            test_regions: Vec::new(),
            allows: Vec::new(),
        };
        view.test_regions = view.find_test_regions();
        view.allows = view.find_allows();
        view
    }

    /// Text of the code token at code-index `k` (empty past the end).
    pub(crate) fn text(&self, k: usize) -> &str {
        match self.code.get(k) {
            Some(&i) => self.tokens[i].text(self.src),
            None => "",
        }
    }

    pub(crate) fn kind(&self, k: usize) -> Option<TokenKind> {
        self.code.get(k).map(|&i| self.tokens[i].kind)
    }

    pub(crate) fn line(&self, k: usize) -> u32 {
        self.code.get(k).map_or(0, |&i| self.tokens[i].line)
    }

    pub(crate) fn is_punct(&self, k: usize, b: u8) -> bool {
        self.kind(k) == Some(TokenKind::Punct(b))
    }

    pub(crate) fn is_ident(&self, k: usize, name: &str) -> bool {
        self.kind(k) == Some(TokenKind::Ident) && self.text(k) == name
    }

    pub(crate) fn in_test_region(&self, k: usize) -> bool {
        self.is_test_file
            || self
                .test_regions
                .iter()
                .any(|&(start, end)| start <= k && k <= end)
    }

    /// Scans for `#[test]` / `#[cfg(test)]`-gated items and returns the
    /// code-index ranges they cover (attribute through closing `}` or `;`).
    fn find_test_regions(&self) -> Vec<(usize, usize)> {
        let mut regions = Vec::new();
        let mut k = 0usize;
        while k < self.code.len() {
            if !(self.is_punct(k, b'#') && self.is_punct(k + 1, b'[')) {
                k += 1;
                continue;
            }
            let close = self.matching_bracket(k + 1);
            if self.attr_gates_tests(k + 2, close) {
                let end = self.item_end_after_attrs(close + 1);
                regions.push((k, end));
                k = end + 1;
            } else {
                k = close + 1;
            }
        }
        regions
    }

    /// True when attribute content tokens `[start, end)` mean the item is
    /// compiled only for tests: `test`, `cfg(test)`, `cfg(all(test, …))`,
    /// `cfg(any(test, …))` — but not `cfg(not(test))` or `cfg_attr(…)`.
    fn attr_gates_tests(&self, start: usize, end: usize) -> bool {
        if start >= end {
            return false;
        }
        // Bare `#[test]` (possibly namespaced like `#[tokio::test]`).
        if self.is_ident(end - 1, "test") {
            return true;
        }
        if !self.is_ident(start, "cfg") {
            return false;
        }
        let mut saw_test = false;
        for k in start + 1..end {
            match self.text(k) {
                "not" | "cfg_attr" => return false,
                "test" => saw_test = true,
                _ => {}
            }
        }
        saw_test
    }

    /// Code index of the `]` matching the `[` at `open` (clamped to the
    /// last token on unbalanced input).
    fn matching_bracket(&self, open: usize) -> usize {
        let mut depth = 0usize;
        let mut k = open;
        while k < self.code.len() {
            if self.is_punct(k, b'[') {
                depth += 1;
            } else if self.is_punct(k, b']') {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            k += 1;
        }
        self.code.len().saturating_sub(1)
    }

    /// Given the code index just past a test-gating attribute, skips any
    /// further attributes and returns the code index of the item's end:
    /// the `}` matching its first top-level `{`, or a terminating `;`.
    fn item_end_after_attrs(&self, mut k: usize) -> usize {
        while self.is_punct(k, b'#') && self.is_punct(k + 1, b'[') {
            k = self.matching_bracket(k + 1) + 1;
        }
        let mut depth = 0usize;
        while k < self.code.len() {
            if self.is_punct(k, b'{') {
                depth += 1;
            } else if self.is_punct(k, b'}') {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            } else if self.is_punct(k, b';') && depth == 0 {
                return k;
            }
            k += 1;
        }
        self.code.len().saturating_sub(1)
    }

    /// Parses `tu-lint: allow(<rule>)` directives out of comment tokens.
    /// An optional trailing `: reason` documents why.
    fn find_allows(&self) -> Vec<AllowDirective> {
        let mut allows = Vec::new();
        for t in self.tokens.iter().filter(|t| t.is_comment()) {
            let text = t.text(self.src);
            let Some(at) = text.find("tu-lint:") else {
                continue;
            };
            let rest = text[at + "tu-lint:".len()..].trim_start();
            let Some(inner) = rest.strip_prefix("allow(") else {
                continue;
            };
            let Some(close) = inner.find(')') else {
                continue;
            };
            let rule = inner[..close].trim().to_string();
            // Prose that merely mentions the syntax (`allow(<rule>)`, docs,
            // this file) is not a directive: the rule name must be real.
            if !ALL_RULES.contains(&rule.as_str()) {
                continue;
            }
            let after = inner[close + 1..].trim();
            let reason = after
                .strip_prefix(':')
                .map(|r| r.trim().trim_end_matches("*/").trim().to_string())
                .filter(|r| !r.is_empty());
            allows.push(AllowDirective {
                rule,
                line: t.line,
                reason,
                used: false,
            });
        }
        allows
    }
}

/// Pairs findings with allow directives: each finding consumes the nearest
/// preceding (same line or above) unused allow of its rule. Returns the
/// final findings and whatever allows went unused.
fn apply_allows(
    rel_path: &str,
    raw: Vec<Finding>,
    mut allows: Vec<AllowDirective>,
) -> (Vec<Finding>, Vec<AllowDirective>) {
    let mut findings = Vec::with_capacity(raw.len());
    for mut f in raw {
        let candidate = allows
            .iter_mut()
            .filter(|a| !a.used && a.rule == f.rule && a.line <= f.line)
            .max_by_key(|a| a.line);
        if let Some(a) = candidate {
            a.used = true;
            f.allowed = true;
            f.reason = a.reason.clone();
        }
        findings.push(f);
    }
    let unused: Vec<AllowDirective> = allows.into_iter().filter(|a| !a.used).collect();
    debug_assert!(unused.iter().all(|a| !a.rule.is_empty()), "{rel_path}");
    (findings, unused)
}

fn finding(file: &FileView, rule: &'static str, k: usize, message: String) -> Finding {
    Finding {
        rule,
        file: file.rel_path.clone(),
        line: file.line(k),
        message,
        allowed: false,
        reason: None,
    }
}

/// clock-discipline: `Instant::now` / `SystemTime` outside the allowlist.
fn clock_discipline(file: &FileView, out: &mut Vec<Finding>) {
    if CLOCK_ALLOW_CRATES.contains(&file.crate_name.as_str())
        || CLOCK_ALLOW_FILES.contains(&file.rel_path.as_str())
    {
        return;
    }
    for k in 0..file.code.len() {
        if file.in_test_region(k) {
            continue;
        }
        if file.is_ident(k, "Instant")
            && file.is_punct(k + 1, b':')
            && file.is_punct(k + 2, b':')
            && file.is_ident(k + 3, "now")
        {
            out.push(finding(
                file,
                "clock-discipline",
                k,
                "wall-clock `Instant::now()` outside the clock allowlist; use \
                 `tu_common::clock::Clock` for model time or `tu_obs` \
                 spans/Stopwatch for measured durations"
                    .to_string(),
            ));
        }
        if file.is_ident(k, "SystemTime") {
            out.push(finding(
                file,
                "clock-discipline",
                k,
                "`SystemTime` outside the clock allowlist; timestamps must come \
                 from `tu_common::clock::Clock` so simulated-time runs stay \
                 deterministic"
                    .to_string(),
            ));
        }
    }
}

/// counter-discipline: raw registry counters in traced crates.
fn counter_discipline(file: &FileView, out: &mut Vec<Finding>) {
    if !COUNTER_CRATES.contains(&file.crate_name.as_str()) {
        return;
    }
    for k in 0..file.code.len() {
        if file.in_test_region(k) {
            continue;
        }
        let raw_helper = file.is_ident(k, "tu_obs")
            && file.is_punct(k + 1, b':')
            && file.is_punct(k + 2, b':')
            && file.is_ident(k + 3, "counter")
            && file.is_punct(k + 4, b'(');
        let raw_registry = file.is_ident(k, "global")
            && file.is_punct(k + 1, b'(')
            && file.is_punct(k + 2, b')')
            && file.is_punct(k + 3, b'.')
            && file.is_ident(k + 4, "counter")
            && file.is_punct(k + 5, b'(');
        if raw_helper || raw_registry {
            out.push(finding(
                file,
                "counter-discipline",
                k,
                "raw registry counter in a traced crate; use `tu_obs::traced` \
                 so the charge also lands in the active TraceContext \
                 (query_profiled attribution)"
                    .to_string(),
            ));
        }
    }
}

/// panic-discipline: `.unwrap()` / `.expect(` / `panic!` in non-test code
/// of the storage crates.
fn panic_discipline(file: &FileView, out: &mut Vec<Finding>) {
    if !PANIC_CRATES.contains(&file.crate_name.as_str()) {
        return;
    }
    for k in 0..file.code.len() {
        if file.in_test_region(k) {
            continue;
        }
        for method in ["unwrap", "expect"] {
            if file.is_punct(k, b'.') && file.is_ident(k + 1, method) && file.is_punct(k + 2, b'(')
            {
                out.push(finding(
                    file,
                    "panic-discipline",
                    k + 1,
                    format!(
                        "`.{method}()` in storage-crate non-test code; propagate \
                         a `tu_common::Error` instead (or document an \
                         invariant with an allow)"
                    ),
                ));
            }
        }
        if file.is_ident(k, "panic") && file.is_punct(k + 1, b'!') {
            out.push(finding(
                file,
                "panic-discipline",
                k,
                "`panic!` in storage-crate non-test code; return a \
                 `tu_common::Error` instead"
                    .to_string(),
            ));
        }
    }
}

/// print-discipline: `println!` / `eprintln!` / `dbg!` (and their
/// non-newline variants) in non-test library code of the engine crates.
fn print_discipline(file: &FileView, out: &mut Vec<Finding>) {
    if !PRINT_CRATES.contains(&file.crate_name.as_str()) {
        return;
    }
    const MACROS: &[&str] = &["print", "println", "eprint", "eprintln", "dbg"];
    for k in 0..file.code.len() {
        if file.in_test_region(k) {
            continue;
        }
        // `name` immediately followed by `!` is a macro invocation whether
        // written bare (`println!`) or as a path tail (`std::println!`).
        if !file.is_punct(k + 1, b'!') {
            continue;
        }
        let Some(name) = MACROS.iter().find(|m| file.is_ident(k, m)) else {
            continue;
        };
        out.push(finding(
            file,
            "print-discipline",
            k,
            format!(
                "`{name}!` in engine-crate non-test code; emit a structured \
                 event via `tu_obs::log` (leveled, rate-limited, \
                 trace-correlated) or return an error instead of raw stdio"
            ),
        ));
    }
}

/// unsafe-audit: every `unsafe` needs a nearby preceding `// SAFETY:`.
fn unsafe_audit(file: &FileView, out: &mut Vec<Finding>) {
    for k in 0..file.code.len() {
        if !file.is_ident(k, "unsafe") {
            continue;
        }
        let tok_index = file.code[k];
        let line = file.tokens[tok_index].line;
        let documented = file.tokens[..tok_index]
            .iter()
            .rev()
            .take_while(|t| line.saturating_sub(t.line) <= SAFETY_COMMENT_MAX_DISTANCE_LINES)
            .any(|t| t.is_comment() && t.text(file.src).contains("SAFETY:"));
        if !documented {
            out.push(finding(
                file,
                "unsafe-audit",
                k,
                format!(
                    "`unsafe` without a `// SAFETY:` comment within the \
                     preceding {SAFETY_COMMENT_MAX_DISTANCE_LINES} lines"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_at(path: &str, src: &str) -> Vec<Finding> {
        lint_source(path, src).0
    }

    fn unallowed(path: &str, src: &str) -> Vec<Finding> {
        lint_at(path, src)
            .into_iter()
            .filter(|f| !f.allowed)
            .collect()
    }

    // ---- clock-discipline ----

    #[test]
    fn clock_flags_instant_now_in_engine_crate() {
        let src = "fn f() { let t = std::time::Instant::now(); }";
        let fs = unallowed("crates/tu-lsm/src/tree.rs", src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, "clock-discipline");
        assert_eq!(fs[0].line, 1);
    }

    #[test]
    fn clock_flags_system_time_import() {
        let src = "use std::time::SystemTime;\nfn f() {}";
        let fs = unallowed("crates/tu-core/src/engine.rs", src);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].rule, "clock-discipline");
    }

    #[test]
    fn clock_exempts_allowlisted_crates_and_clock_rs() {
        let src = "fn f() { let t = Instant::now(); let s = SystemTime::now(); }";
        assert!(unallowed("crates/tu-obs/src/spans.rs", src).is_empty());
        assert!(unallowed("crates/tu-bench/src/lib.rs", src).is_empty());
        assert!(unallowed("crates/tu-common/src/clock.rs", src).is_empty());
    }

    #[test]
    fn clock_ignores_comments_and_strings() {
        let src = r#"
// Instant::now() is banned here, which this comment may discuss.
/* SystemTime too: SystemTime::now() */
fn f() {
    let a = "Instant::now()";
    let b = r"SystemTime";
}
"#;
        assert!(unallowed("crates/tu-lsm/src/tree.rs", src).is_empty());
    }

    #[test]
    fn clock_exempts_test_code() {
        let src = r#"
#[cfg(test)]
mod tests {
    #[test]
    fn timing() { let t = std::time::Instant::now(); let _ = t; }
}
"#;
        assert!(unallowed("crates/tu-core/src/engine.rs", src).is_empty());
        let in_tests_dir = "fn f() { let t = std::time::Instant::now(); }";
        assert!(unallowed("crates/tu-core/tests/slow.rs", in_tests_dir).is_empty());
    }

    // ---- counter-discipline ----

    #[test]
    fn counter_flags_raw_helper_and_registry() {
        let src = r#"
fn f() {
    let a = tu_obs::counter("x");
    let b = tu_obs::global().counter("y");
}
"#;
        let fs = unallowed("crates/tu-cloud/src/cost.rs", src);
        assert_eq!(fs.len(), 2, "{fs:?}");
        assert!(fs.iter().all(|f| f.rule == "counter-discipline"));
    }

    #[test]
    fn counter_permits_traced_and_summary_reads() {
        let src = r#"
fn f(summary: &tu_obs::TraceSummary) -> u64 {
    let c = tu_obs::traced("x");
    c.inc();
    summary.counter("x")
}
"#;
        assert!(unallowed("crates/tu-core/src/profile.rs", src).is_empty());
    }

    #[test]
    fn counter_flags_raw_agg_counter_in_engine() {
        // The aggregation-pushdown counters feed query_aggregate_profiled
        // attribution, so a raw registry counter would silently drop the
        // per-query deltas from the profile.
        let src = r#"
fn f() {
    tu_obs::counter("core.query.agg.pushdown_chunks").inc();
}
"#;
        let fs = unallowed("crates/tu-core/src/engine.rs", src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, "counter-discipline");
    }

    #[test]
    fn counter_permits_traced_agg_counter_in_engine() {
        let src = r#"
fn f() {
    tu_obs::traced("core.query.agg.meta_answered").add(3);
}
"#;
        assert!(unallowed("crates/tu-core/src/engine.rs", src).is_empty());
    }

    #[test]
    fn counter_flags_raw_heat_and_ledger_counters_in_cloud() {
        // The heat-coverage and ledger counters back the exactness
        // invariants of the introspection plane (heat totals ==
        // `cloud.<tier>.*` deltas, `/costs` windows == priced counter
        // deltas); a raw registry counter would bypass per-operation
        // trace attribution and break those equalities silently.
        let src = r#"
fn f() {
    tu_obs::counter("heat.attributed.requests").inc();
    tu_obs::global().counter("ledger.windows").inc();
}
"#;
        let fs = unallowed("crates/tu-cloud/src/cost.rs", src);
        assert_eq!(fs.len(), 2, "{fs:?}");
        assert!(fs.iter().all(|f| f.rule == "counter-discipline"));
    }

    #[test]
    fn counter_permits_traced_heat_and_ledger_counters() {
        let src = r#"
fn f() {
    tu_obs::traced("heat.attributed.requests").add(2);
    tu_obs::traced("heat.unattributed.bytes").add(512);
    tu_obs::traced("ledger.windows").inc();
}
"#;
        assert!(unallowed("crates/tu-cloud/src/ledger.rs", src).is_empty());
    }

    #[test]
    fn counter_rule_only_applies_to_traced_crates() {
        let src = "fn f() { let c = tu_obs::counter(\"x\"); }";
        assert!(unallowed("crates/tu-obs/src/lib.rs", src).is_empty());
        assert!(unallowed("crates/tu-index/src/lib.rs", src).is_empty());
        let fs = unallowed("crates/tu-tsdb/src/tsdb.rs", src);
        assert_eq!(fs.len(), 1);
    }

    // ---- panic-discipline ----

    #[test]
    fn panic_flags_unwrap_expect_and_panic_macro() {
        let src = r#"
fn f(x: Option<u32>) -> u32 {
    let a = x.unwrap();
    let b = x.expect("present");
    if a + b > 100 { panic!("too big"); }
    a
}
"#;
        let fs = unallowed("crates/tu-mmap/src/file.rs", src);
        assert_eq!(fs.len(), 3, "{fs:?}");
        assert!(fs.iter().all(|f| f.rule == "panic-discipline"));
        assert_eq!(fs[0].line, 3);
        assert_eq!(fs[1].line, 4);
        assert_eq!(fs[2].line, 5);
    }

    #[test]
    fn panic_permits_unwrap_or_variants_and_test_code() {
        let src = r#"
fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) + x.unwrap_or_default() }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { Some(1).unwrap(); panic!("fine in tests"); }
}
"#;
        assert!(unallowed("crates/tu-lsm/src/wal.rs", src).is_empty());
    }

    #[test]
    fn panic_rule_ignores_non_storage_crates() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert!(unallowed("crates/tu-index/src/lib.rs", src).is_empty());
        assert!(unallowed("crates/tu-obs/src/registry.rs", src).is_empty());
    }

    #[test]
    fn panic_in_macro_like_strings_not_flagged() {
        let src = r#"fn f() { let msg = "do not panic!(now)"; let _ = msg; }"#;
        assert!(unallowed("crates/tu-core/src/engine.rs", src).is_empty());
    }

    // ---- print-discipline ----

    #[test]
    fn print_flags_stdio_macros_in_engine_crates() {
        let src = r#"
fn f(x: u32) {
    println!("x = {x}");
    eprintln!("warning: {x}");
    let y = dbg!(x + 1);
    std::print!("{y}");
}
"#;
        let fs = unallowed("crates/tu-core/src/engine.rs", src);
        assert_eq!(fs.len(), 4, "{fs:?}");
        assert!(fs.iter().all(|f| f.rule == "print-discipline"));
        assert_eq!(fs[0].line, 3);
        assert_eq!(fs[3].line, 6);
    }

    #[test]
    fn print_permits_test_code_and_exempt_crates() {
        let src = r#"
#[cfg(test)]
mod tests {
    #[test]
    fn t() { println!("debug output is fine in tests"); }
}
"#;
        assert!(unallowed("crates/tu-lsm/src/tree.rs", src).is_empty());
        let lib = "fn f() { println!(\"benches narrate freely\"); }";
        assert!(unallowed("crates/tu-bench/src/report.rs", lib).is_empty());
        assert!(unallowed("crates/tu-obs/src/log.rs", lib).is_empty());
        assert!(unallowed("examples/quickstart.rs", lib).is_empty());
    }

    #[test]
    fn print_ignores_comments_strings_and_non_macro_idents() {
        let src = r#"
// println! is banned here, which this comment may say out loud.
fn f(w: &mut impl std::fmt::Write) -> std::fmt::Result {
    let msg = "println!(not code)";
    writeln!(w, "{msg}")
}
fn print(x: u32) -> u32 { x }
fn g() -> u32 { print(7) }
"#;
        assert!(unallowed("crates/tu-cloud/src/object.rs", src).is_empty());
    }

    #[test]
    fn print_allow_directive_suppresses() {
        let src = r#"
fn f() {
    // tu-lint: allow(print-discipline): one-shot startup banner
    eprintln!("starting");
}
"#;
        let all = lint_at("crates/tu-tsdb/src/tsdb.rs", src);
        assert_eq!(all.len(), 1);
        assert!(all[0].allowed);
        assert_eq!(all[0].reason.as_deref(), Some("one-shot startup banner"));
    }

    // ---- unsafe-audit ----

    #[test]
    fn unsafe_without_safety_comment_is_flagged() {
        let src = "fn f(p: *const u8) -> u8 { unsafe { *p } }";
        let fs = unallowed("crates/tu-mmap/src/pagecache.rs", src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, "unsafe-audit");
    }

    #[test]
    fn unsafe_with_safety_comment_passes() {
        let src = r#"
fn f(p: *const u8) -> u8 {
    // SAFETY: caller guarantees `p` is valid for reads.
    unsafe { *p }
}
"#;
        assert!(unallowed("crates/tu-mmap/src/pagecache.rs", src).is_empty());
    }

    #[test]
    fn stale_safety_comment_too_far_above_does_not_count() {
        let src = r#"
// SAFETY: this comment is about something else entirely.
fn a() {}
fn b() {}
fn c() {}
fn d() {}
fn e() {}
fn f(p: *const u8) -> u8 { unsafe { *p } }
"#;
        let fs = unallowed("crates/tu-common/src/alloc.rs", src);
        assert_eq!(fs.len(), 1, "{fs:?}");
    }

    // ---- allow directives ----

    #[test]
    fn allow_suppresses_exactly_one_following_finding() {
        let src = r#"
fn f(x: Option<u32>) -> u32 {
    // tu-lint: allow(panic-discipline): invariant — x checked by caller
    let a = x.unwrap();
    let b = x.unwrap();
    a + b
}
"#;
        let all = lint_at("crates/tu-lsm/src/cache.rs", src);
        assert_eq!(all.len(), 2);
        assert!(all[0].allowed, "first finding suppressed");
        assert_eq!(
            all[0].reason.as_deref(),
            Some("invariant — x checked by caller")
        );
        assert!(!all[1].allowed, "second finding still fires");
    }

    #[test]
    fn trailing_same_line_allow_works() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // tu-lint: allow(panic-discipline): caller checked";
        let all = lint_at("crates/tu-core/src/group.rs", src);
        assert_eq!(all.len(), 1);
        assert!(all[0].allowed);
    }

    #[test]
    fn allow_for_other_rule_does_not_suppress() {
        let src = r#"
// tu-lint: allow(clock-discipline): not the right rule
fn f(x: Option<u32>) -> u32 { x.unwrap() }
"#;
        let (all, unused) = lint_source("crates/tu-core/src/group.rs", src);
        assert_eq!(all.len(), 1);
        assert!(!all[0].allowed);
        assert_eq!(unused.len(), 1, "mismatched allow is reported unused");
        assert_eq!(unused[0].rule, "clock-discipline");
    }

    #[test]
    fn allow_after_the_finding_does_not_apply() {
        let src = r#"
fn f(x: Option<u32>) -> u32 { x.unwrap() }
// tu-lint: allow(panic-discipline): too late, directives precede findings
"#;
        let (all, unused) = lint_source("crates/tu-lsm/src/wal.rs", src);
        assert_eq!(all.len(), 1);
        assert!(!all[0].allowed);
        assert_eq!(unused.len(), 1);
    }

    #[test]
    fn unknown_rule_name_in_allow_is_prose_not_a_directive() {
        let src =
            "// tu-lint: allow(made-up-rule): nope\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let (all, unused) = lint_source("crates/tu-core/src/group.rs", src);
        assert_eq!(all.len(), 1);
        assert!(!all[0].allowed);
        assert!(unused.is_empty(), "prose mentions are not stale directives");
    }

    #[test]
    fn seeded_violation_reports_file_line_and_rule() {
        // The acceptance-criteria demo: seed a stray Instant::now() into a
        // tu-lsm fixture and watch the lint name the file, line, and rule.
        let src = "//! Doc header.\n\nfn flush() {\n    let t0 = std::time::Instant::now();\n    let _ = t0;\n}\n";
        let fs = unallowed("crates/tu-lsm/src/tree.rs", src);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].rule, "clock-discipline");
        assert_eq!(fs[0].file, "crates/tu-lsm/src/tree.rs");
        assert_eq!(fs[0].line, 4);
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        let src = r#"
#[cfg(not(test))]
fn f(x: Option<u32>) -> u32 { x.unwrap() }
"#;
        let fs = unallowed("crates/tu-core/src/series.rs", src);
        assert_eq!(fs.len(), 1, "cfg(not(test)) code is production code");
    }

    #[test]
    fn cfg_test_region_ends_at_matching_brace() {
        let src = r#"
#[cfg(test)]
mod tests {
    fn helper(x: Option<u32>) -> u32 { x.unwrap() }
}
fn production(x: Option<u32>) -> u32 { x.unwrap() }
"#;
        let fs = unallowed("crates/tu-core/src/series.rs", src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].line, 6);
    }
}
