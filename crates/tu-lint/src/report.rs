//! Findings and the machine-readable report.

use std::fmt::Write as _;

use crate::rules::AllowDirective;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name, e.g. `clock-discipline`.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// Human explanation, including the fix direction.
    pub message: String,
    /// True when a `// tu-lint: allow(...)` directive suppressed it.
    pub allowed: bool,
    /// The allow directive's documented reason, when present.
    pub reason: Option<String>,
}

/// An allow directive that never matched a finding (likely stale).
#[derive(Debug, Clone)]
pub struct UnusedAllow {
    pub rule: String,
    pub file: String,
    pub line: u32,
}

/// Aggregated result of linting a set of files.
#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub unused_allows: Vec<UnusedAllow>,
    pub files_scanned: usize,
}

impl Report {
    pub fn add_file(&mut self, file: &str, findings: Vec<Finding>, unused: Vec<AllowDirective>) {
        self.files_scanned += 1;
        self.findings.extend(findings);
        self.unused_allows
            .extend(unused.into_iter().map(|a| UnusedAllow {
                rule: a.rule,
                file: file.to_string(),
                line: a.line,
            }));
    }

    /// Findings not suppressed by an allow directive; any of these fail
    /// the build.
    pub fn unallowed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.allowed)
    }

    pub fn unallowed_count(&self) -> usize {
        self.unallowed().count()
    }

    pub fn allowed_count(&self) -> usize {
        self.findings.iter().filter(|f| f.allowed).count()
    }

    /// Human-readable rendering: one `file:line: [rule] message` per
    /// unallowed finding, then a summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in self.unallowed() {
            let _ = writeln!(out, "{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
        }
        for a in &self.unused_allows {
            let _ = writeln!(
                out,
                "{}:{}: note: unused `tu-lint: allow({})` directive",
                a.file, a.line, a.rule
            );
        }
        let _ = writeln!(
            out,
            "tu-lint: {} files scanned, {} findings ({} allowed), {} unused allows",
            self.files_scanned,
            self.unallowed_count(),
            self.allowed_count(),
            self.unused_allows.len()
        );
        out
    }

    /// GitHub Actions workflow-command rendering: one
    /// `::warning file=…,line=…,title=…::…` annotation per unallowed
    /// finding (and per unused allow), so findings surface inline on the
    /// PR diff. Messages are single-line by construction of the escape.
    pub fn render_github(&self) -> String {
        let mut out = String::new();
        for f in self.unallowed() {
            let _ = writeln!(
                out,
                "::warning file={},line={},title=tu-lint {}::{}",
                f.file,
                f.line,
                f.rule,
                escape_gh(&f.message)
            );
        }
        for a in &self.unused_allows {
            let _ = writeln!(
                out,
                "::warning file={},line={},title=tu-lint unused-allow::unused `tu-lint: allow({})` directive",
                a.file, a.line, a.rule
            );
        }
        out
    }

    /// Stable JSON rendering for CI and tooling.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"files_scanned\":{},\"unallowed\":{},\"allowed\":{},\"findings\":[",
            self.files_scanned,
            self.unallowed_count(),
            self.allowed_count()
        );
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"allowed\":{},\"message\":\"{}\"",
                escape(f.rule),
                escape(&f.file),
                f.line,
                f.allowed,
                escape(&f.message)
            );
            if let Some(r) = &f.reason {
                let _ = write!(out, ",\"reason\":\"{}\"", escape(r));
            }
            out.push('}');
        }
        out.push_str("],\"unused_allows\":[");
        for (i, a) in self.unused_allows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{}}}",
                escape(&a.rule),
                escape(&a.file),
                a.line
            );
        }
        out.push_str("]}");
        out
    }
}

/// GitHub workflow-command data escaping: `%`, CR and LF are the only
/// characters with meaning in the message position.
fn escape_gh(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}

/// Minimal JSON string escaping (control chars, quote, backslash).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::default();
        r.add_file(
            "crates/tu-lsm/src/tree.rs",
            vec![
                Finding {
                    rule: "clock-discipline",
                    file: "crates/tu-lsm/src/tree.rs".into(),
                    line: 42,
                    message: "wall-clock \"Instant::now()\"".into(),
                    allowed: false,
                    reason: None,
                },
                Finding {
                    rule: "panic-discipline",
                    file: "crates/tu-lsm/src/tree.rs".into(),
                    line: 50,
                    message: "unwrap".into(),
                    allowed: true,
                    reason: Some("lock poisoning is fatal by design".into()),
                },
            ],
            Vec::new(),
        );
        r
    }

    #[test]
    fn text_lists_unallowed_and_summarizes() {
        let text = sample().render_text();
        assert!(text.contains("crates/tu-lsm/src/tree.rs:42: [clock-discipline]"));
        assert!(!text.contains(":50:"), "allowed findings are not listed");
        assert!(text.contains("1 findings (1 allowed)"));
    }

    #[test]
    fn json_is_balanced_and_escaped() {
        let json = sample().to_json();
        assert!(json.contains("\"unallowed\":1"));
        assert!(json.contains("\\\"Instant::now()\\\""));
        assert!(json.contains("\"reason\":\"lock poisoning is fatal by design\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn github_annotations_carry_file_line_and_rule() {
        let gh = sample().render_github();
        assert!(gh.contains(
            "::warning file=crates/tu-lsm/src/tree.rs,line=42,title=tu-lint clock-discipline::"
        ));
        assert!(
            !gh.contains("line=50"),
            "allowed findings are not annotated"
        );
        assert_eq!(escape_gh("a%b\nc"), "a%25b%0Ac");
    }

    #[test]
    fn counts() {
        let r = sample();
        assert_eq!(r.unallowed_count(), 1);
        assert_eq!(r.allowed_count(), 1);
        assert_eq!(r.files_scanned, 1);
    }
}
