//! CLI for the TimeUnion workspace lint.
//!
//! ```text
//! cargo run -p tu-lint                 # human output, exit 1 on findings
//! cargo run -p tu-lint -- --format json
//! cargo run -p tu-lint -- --format github   # GitHub Actions annotations
//! cargo run -p tu-lint -- --lock-graph      # dump the static lock graph
//! cargo run -p tu-lint -- --root /path/to/workspace
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut format = Format::Text;
    let mut root: Option<PathBuf> = None;
    let mut lock_graph = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next().as_deref() {
                Some("json") => format = Format::Json,
                Some("text") => format = Format::Text,
                Some("github") => format = Format::Github,
                other => {
                    return usage(&format!("--format expects json|text|github, got {other:?}"))
                }
            },
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root expects a path"),
            },
            "--lock-graph" => lock_graph = true,
            "--help" | "-h" => {
                println!(
                    "tu-lint: TimeUnion workspace static analysis\n\n\
                     USAGE: tu-lint [--format text|json|github] [--lock-graph] [--root <workspace>]\n\n\
                     RULES: {}\n\n\
                     --lock-graph dumps the observed lock-nesting edges\n\
                     (`from -> to  file:line`, deduplicated, sorted) instead of\n\
                     findings; the hierarchy itself lives in docs/LOCK_ORDER.md.\n\n\
                     Suppress one finding with a preceding comment:\n  \
                     // tu-lint: allow(<rule>): <reason>\n\n\
                     See docs/STATIC_ANALYSIS.md for the full guide.",
                    tu_lint::ALL_RULES.join(", ")
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    let root = root.unwrap_or_else(tu_lint::workspace_root);
    let (report, edges) = match tu_lint::lint_workspace_with_edges(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("tu-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if lock_graph {
        for e in &edges {
            println!("{} -> {}  {}:{}", e.from, e.to, e.file, e.line);
        }
        eprintln!("tu-lint: {} distinct lock-nesting edges", edges.len());
        return ExitCode::SUCCESS;
    }

    match format {
        Format::Text => print!("{}", report.render_text()),
        Format::Json => println!("{}", report.to_json()),
        Format::Github => {
            print!("{}", report.render_github());
            eprint!("{}", report.render_text());
        }
    }
    if report.unallowed_count() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

enum Format {
    Text,
    Json,
    Github,
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("tu-lint: {msg} (try --help)");
    ExitCode::from(2)
}
