//! The concurrency-discipline pass: lock-order, held-lock-io, and
//! condvar-discipline.
//!
//! Unlike the token-sequence rules in [`crate::rules`], this pass is
//! block/expression aware: it tracks lock-*acquisition scopes* — guards
//! bound with `let` and held across statements, temporaries held to the
//! end of their statement, `match`/`for` scrutinee guards held through the
//! whole block — and checks every acquisition against the declared lock
//! hierarchy in `docs/LOCK_ORDER.md`.
//!
//! Three rules:
//!
//! * **lock-order** — acquiring a lock class whose declared rank is not
//!   strictly above every class already held by the enclosing scope is an
//!   ordering violation (two threads interleaving the two orders
//!   deadlock). Acquiring a lock the manifest does not classify, in an
//!   enforced crate, is also a finding: the manifest must stay complete.
//! * **held-lock-io** — blocking filesystem I/O (`std::fs::*`,
//!   `File::open`, `sync_all`, `read_exact`, …) while any guard is live
//!   stalls every thread queued on that lock for the duration of a disk
//!   (or simulated object-store) round trip. Classes that exist to
//!   serialize I/O by design carry the `io` flag in the manifest.
//! * **condvar-discipline** — `Condvar::wait*` releases exactly one mutex;
//!   any *other* guard held across the wait stays locked while the thread
//!   sleeps, which is a deadlock if the waker needs that lock.
//!
//! The analysis is intra-procedural: a guard returned from a helper (e.g.
//! `WalWriter::lock_commit`) is tracked at the helper's call sites via a
//! manifest *alias bind* (`path::method()`), and anything deeper is the
//! runtime witness's job (`tu_obs::lockdep`). See
//! `docs/STATIC_ANALYSIS.md` § Concurrency rules for the full semantics
//! and limitations.

use crate::report::Finding;
use crate::rules::FileView;

/// Files the pass skips entirely: the lockdep instrumentation layer is
/// the mechanism that *implements* the hierarchy, so its internal
/// `inner.lock()` calls are definitionally unclassifiable.
const LOCK_EXEMPT_FILES: &[&str] = &["crates/tu-obs/src/lockdep.rs"];

/// Crates where an unclassified acquisition is a finding. Everything
/// first-party except the lint tool itself (which has no locks and whose
/// fixtures deliberately mention lock syntax).
fn is_enforced(crate_name: &str) -> bool {
    crate_name != "tu-lint"
}

/// Methods whose zero-argument call on a receiver acquires a lock.
const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write", "try_lock", "try_read", "try_write"];

/// Methods that acquire a lock but take arguments (the sharded-map
/// write-lock helper takes the key).
const ACQUIRE_METHODS_WITH_ARGS: &[&str] = &["lock_shard"];

/// Condition-variable wait methods.
const WAIT_METHODS: &[&str] = &["wait", "wait_timeout", "wait_while"];

/// Zero-argument-irrelevant blocking I/O *method* names (matched as
/// `.name(`). `flush` is deliberately absent: the workspace overloads it
/// for memtable flushes.
const IO_METHODS: &[&str] = &[
    "sync_all",
    "sync_data",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "write_all",
];

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

/// One `path::ident` (receiver bind) or `path::ident()` (alias-call bind)
/// entry from the manifest. A path ending in `/` is a prefix; otherwise it
/// must equal the workspace-relative file path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bind {
    pub path: String,
    pub ident: String,
    /// True for `path::method()` binds: the *method name* acquires the
    /// class (for helpers that return guards), independent of receiver.
    pub alias_call: bool,
}

impl Bind {
    fn matches_path(&self, rel_path: &str) -> bool {
        if self.path.ends_with('/') {
            rel_path.starts_with(&self.path)
        } else {
            rel_path == self.path
        }
    }
}

/// One declared lock class.
#[derive(Debug, Clone)]
pub struct LockClassDef {
    pub name: String,
    /// Position in the total order; acquisitions must strictly ascend.
    pub rank: u16,
    /// Same-class nested acquisition is tolerated (sharded structures
    /// where the static pass cannot distinguish instances).
    pub multi: bool,
    /// Blocking I/O under this lock is by design (I/O-serialization
    /// locks); held-lock-io does not fire for it.
    pub io_ok: bool,
    pub binds: Vec<Bind>,
}

/// The parsed `docs/LOCK_ORDER.md` manifest.
#[derive(Debug, Clone, Default)]
pub struct Manifest {
    pub classes: Vec<LockClassDef>,
}

impl Manifest {
    /// Parses the markdown manifest: every table row
    /// `| rank | class | flags | binds |` between pipes, skipping the
    /// header and separator rows. Unknown flags, duplicate ranks, and
    /// duplicate class names are errors.
    pub fn parse(text: &str) -> Result<Manifest, String> {
        let mut classes: Vec<LockClassDef> = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if !line.starts_with('|') {
                continue;
            }
            let cells: Vec<&str> = line.trim_matches('|').split('|').map(str::trim).collect();
            if cells.len() < 4 || cells[0].starts_with('-') || cells[0] == "rank" {
                continue;
            }
            let rank: u16 = cells[0]
                .parse()
                .map_err(|_| format!("line {}: bad rank {:?}", lineno + 1, cells[0]))?;
            let name = cells[1].trim_matches('`').to_string();
            if name.is_empty()
                || !name
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_')
            {
                return Err(format!("line {}: bad class name {:?}", lineno + 1, name));
            }
            let mut multi = false;
            let mut io_ok = false;
            for flag in cells[2].split(',').map(str::trim).filter(|f| !f.is_empty()) {
                match flag {
                    "multi" => multi = true,
                    "io" => io_ok = true,
                    other => return Err(format!("line {}: unknown flag {other:?}", lineno + 1)),
                }
            }
            let mut binds = Vec::new();
            for b in cells[3]
                .split(',')
                .map(|b| b.trim().trim_matches('`'))
                .filter(|b| !b.is_empty() && *b != "—" && *b != "-")
            {
                let Some((path, ident)) = b.rsplit_once("::") else {
                    return Err(format!(
                        "line {}: bind {b:?} is not path::ident",
                        lineno + 1
                    ));
                };
                let (ident, alias_call) = match ident.strip_suffix("()") {
                    Some(m) => (m, true),
                    None => (ident, false),
                };
                if ident.is_empty() || path.is_empty() {
                    return Err(format!(
                        "line {}: bind {b:?} is not path::ident",
                        lineno + 1
                    ));
                }
                binds.push(Bind {
                    path: path.to_string(),
                    ident: ident.to_string(),
                    alias_call,
                });
            }
            if classes.iter().any(|c| c.name == name) {
                return Err(format!("line {}: duplicate class {name:?}", lineno + 1));
            }
            if classes.iter().any(|c| c.rank == rank) {
                return Err(format!("line {}: duplicate rank {rank}", lineno + 1));
            }
            classes.push(LockClassDef {
                name,
                rank,
                multi,
                io_ok,
                binds,
            });
        }
        if classes.is_empty() {
            return Err("no lock classes found in manifest".to_string());
        }
        Ok(Manifest { classes })
    }

    /// Resolves an acquisition to a class index: `ident` is the receiver
    /// ident (or, for `alias_call`, the called method name).
    fn resolve(&self, rel_path: &str, ident: &str, alias_call: bool) -> Option<usize> {
        self.classes.iter().position(|c| {
            c.binds
                .iter()
                .any(|b| b.alias_call == alias_call && b.ident == ident && b.matches_path(rel_path))
        })
    }

    /// True when any alias-call bind in `rel_path` names `method`.
    fn is_alias_method(&self, rel_path: &str, method: &str) -> bool {
        self.resolve(rel_path, method, true).is_some()
    }
}

/// The embedded manifest (`docs/LOCK_ORDER.md` at compile time), parsed
/// once. Panics if the checked-in manifest is malformed — the self-tests
/// and the tier-1 lint test catch that before it can ship.
pub fn embedded_manifest() -> &'static Manifest {
    use std::sync::OnceLock;
    static PARSED: OnceLock<Manifest> = OnceLock::new();
    PARSED.get_or_init(|| {
        Manifest::parse(include_str!("../../../docs/LOCK_ORDER.md"))
            .expect("docs/LOCK_ORDER.md parses")
    })
}

// ---------------------------------------------------------------------------
// Lock graph
// ---------------------------------------------------------------------------

/// One observed nesting edge: a lock of class `to` acquired while a lock
/// of class `from` was held.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Edge {
    pub from: String,
    pub to: String,
    pub file: String,
    pub line: u32,
}

// ---------------------------------------------------------------------------
// Guard-scope tracking
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Release {
    /// Released when the block at `depth` closes (`let`-bound guards).
    Block,
    /// Released at the end of the statement (temporary guards).
    Stmt,
}

#[derive(Debug)]
struct Guard {
    /// Index into `manifest.classes`, or None for unclassified receivers.
    class: Option<usize>,
    /// The `let`-bound variable name, when there is one (`drop(name)`
    /// releases it early).
    var: Option<String>,
    depth: usize,
    /// Paren-nesting depth at acquisition. A `Stmt` temporary created
    /// inside a call argument or closure (`map(|o| o.lock().len())`)
    /// dies when its enclosing paren group closes — slightly early for
    /// plain call arguments (which really live to the statement's end),
    /// but exact for the per-element closure temporaries that dominate
    /// the codebase.
    paren: usize,
    release: Release,
    line: u32,
}

/// Runs the pass over one file, appending findings and observed nesting
/// edges. Test files and test regions are skipped: the discipline guards
/// production code paths.
pub(crate) fn scan(
    file: &FileView,
    manifest: &Manifest,
    findings: &mut Vec<Finding>,
    edges: &mut Vec<Edge>,
) {
    if file.is_test_file || LOCK_EXEMPT_FILES.contains(&file.rel_path.as_str()) {
        return;
    }
    let enforced = is_enforced(&file.crate_name);
    let mut held: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    let mut paren = 0usize;
    let mut stmt_kw = String::new();
    let mut stmt_start = 0usize;
    let mut k = 0usize;
    while k < file.code.len() {
        if file.is_punct(k, b'(') {
            paren += 1;
            k += 1;
            continue;
        }
        if file.is_punct(k, b')') {
            paren = paren.saturating_sub(1);
            held.retain(|g| !(g.release == Release::Stmt && g.paren > paren));
            k += 1;
            continue;
        }
        if file.is_punct(k, b'{') {
            // Temporaries in an `if`/`while` condition die before the
            // block; `match`/`for` scrutinee temporaries live through it.
            let extend = stmt_kw == "match" || stmt_kw == "for";
            held.retain_mut(|g| {
                if g.release == Release::Stmt && g.depth == depth {
                    if extend {
                        g.release = Release::Block;
                        g.depth = depth + 1;
                        true
                    } else {
                        false
                    }
                } else {
                    true
                }
            });
            depth += 1;
            stmt_kw.clear();
            stmt_start = k + 1;
            k += 1;
            continue;
        }
        if file.is_punct(k, b'}') {
            held.retain(|g| g.depth < depth);
            depth = depth.saturating_sub(1);
            stmt_kw.clear();
            stmt_start = k + 1;
            k += 1;
            continue;
        }
        if file.is_punct(k, b';') {
            held.retain(|g| !(g.release == Release::Stmt && g.depth >= depth));
            stmt_kw.clear();
            stmt_start = k + 1;
            k += 1;
            continue;
        }
        if stmt_kw.is_empty() && file.kind(k) == Some(crate::lexer::TokenKind::Ident) {
            stmt_kw = file.text(k).to_string();
        }
        // drop(name) releases a let-bound guard early.
        if file.is_ident(k, "drop")
            && file.is_punct(k + 1, b'(')
            && file.kind(k + 2) == Some(crate::lexer::TokenKind::Ident)
            && file.is_punct(k + 3, b')')
        {
            let name = file.text(k + 2);
            if let Some(pos) = held.iter().rposition(|g| g.var.as_deref() == Some(name)) {
                held.remove(pos);
            }
            k += 4;
            continue;
        }
        let in_test = file.in_test_region(k);
        // Acquisition?
        if let Some((class, meth_k)) = acquisition_at(file, manifest, k) {
            if !in_test {
                check_order(
                    file, manifest, &held, class, meth_k, enforced, findings, edges,
                );
                let var = binding_var(file, stmt_start, k);
                let (release, gdepth) = match &var {
                    // `if let` / `while let` bind the guard into the block
                    // that follows the condition.
                    Some(_) if stmt_kw == "if" || stmt_kw == "while" || stmt_kw == "else" => {
                        (Release::Block, depth + 1)
                    }
                    Some(_) => (Release::Block, depth),
                    None => (Release::Stmt, depth),
                };
                held.push(Guard {
                    class,
                    var,
                    depth: gdepth,
                    paren,
                    release,
                    line: file.line(meth_k),
                });
            }
            k = meth_k + 1;
            continue;
        }
        // Condvar wait?
        if !in_test && !held.is_empty() && file.is_punct(k, b'.') && file.is_punct(k + 2, b'(') {
            if WAIT_METHODS.iter().any(|m| file.is_ident(k + 1, m)) && held.len() >= 2 {
                let held_names = held_class_names(manifest, &held);
                findings.push(Finding {
                    rule: "condvar-discipline",
                    file: file.rel_path.clone(),
                    line: file.line(k + 1),
                    message: format!(
                        "`.{}()` while {} guards are live ({}); a condvar wait \
                         releases only its own mutex — every other lock stays \
                         held while this thread sleeps",
                        file.text(k + 1),
                        held.len(),
                        held_names
                    ),
                    allowed: false,
                    reason: None,
                });
            }
        }
        // Blocking I/O under a guard?
        if !in_test && !held.is_empty() {
            if let Some(io_name) = io_call_at(file, k) {
                // Only classes *not* flagged io (or unclassified guards)
                // make this a finding.
                if let Some(g) = held
                    .iter()
                    .find(|g| g.class.map_or(true, |c| !manifest.classes[c].io_ok))
                {
                    let holder = g
                        .class
                        .map(|c| manifest.classes[c].name.clone())
                        .unwrap_or_else(|| "<unclassified>".to_string());
                    findings.push(Finding {
                        rule: "held-lock-io",
                        file: file.rel_path.clone(),
                        line: file.line(k),
                        message: format!(
                            "blocking I/O (`{io_name}`) while holding `{holder}` \
                             (acquired line {}); move the I/O outside the guard \
                             or flag the class `io` in docs/LOCK_ORDER.md",
                            g.line
                        ),
                        allowed: false,
                        reason: None,
                    });
                }
            }
        }
        k += 1;
    }
}

/// Reports lock-order findings for acquiring `class` with `held` live,
/// and records nesting edges.
#[allow(clippy::too_many_arguments)]
fn check_order(
    file: &FileView,
    manifest: &Manifest,
    held: &[Guard],
    class: Option<usize>,
    meth_k: usize,
    enforced: bool,
    findings: &mut Vec<Finding>,
    edges: &mut Vec<Edge>,
) {
    let line = file.line(meth_k);
    let Some(new) = class else {
        if enforced {
            findings.push(Finding {
                rule: "lock-order",
                file: file.rel_path.clone(),
                line,
                message: format!(
                    "unclassified lock acquisition `{}`; add a \
                     `path::receiver` bind for it to docs/LOCK_ORDER.md so \
                     the hierarchy stays complete",
                    acquisition_text(file, meth_k)
                ),
                allowed: false,
                reason: None,
            });
        }
        return;
    };
    let new_def = &manifest.classes[new];
    for g in held {
        let Some(h) = g.class else { continue };
        edges.push(Edge {
            from: manifest.classes[h].name.clone(),
            to: new_def.name.clone(),
            file: file.rel_path.clone(),
            line,
        });
        let h_def = &manifest.classes[h];
        let ok = h_def.rank < new_def.rank || (h == new && new_def.multi);
        if !ok {
            findings.push(Finding {
                rule: "lock-order",
                file: file.rel_path.clone(),
                line,
                message: format!(
                    "acquires `{}` (rank {}) while holding `{}` (rank {}, \
                     acquired line {}); the declared hierarchy in \
                     docs/LOCK_ORDER.md requires strictly ascending ranks",
                    new_def.name, new_def.rank, h_def.name, h_def.rank, g.line
                ),
                allowed: false,
                reason: None,
            });
        }
    }
}

fn held_class_names(manifest: &Manifest, held: &[Guard]) -> String {
    held.iter()
        .map(|g| match g.class {
            Some(c) => format!("`{}`", manifest.classes[c].name),
            None => "`<unclassified>`".to_string(),
        })
        .collect::<Vec<_>>()
        .join(", ")
}

/// Detects a lock acquisition starting at code index `k` (the receiver
/// position is discovered by walking back from the `.`). Returns the
/// resolved class (None = unclassified) and the code index of the method
/// ident. `k` must sit on the `.` of `recv.meth(...)`.
fn acquisition_at(
    file: &FileView,
    manifest: &Manifest,
    k: usize,
) -> Option<(Option<usize>, usize)> {
    if !file.is_punct(k, b'.') || !file.is_punct(k + 2, b'(') {
        return None;
    }
    let meth = file.text(k + 1);
    let zero_arg = file.is_punct(k + 3, b')');
    let is_plain = ACQUIRE_METHODS.contains(&meth) && zero_arg;
    let is_args = ACQUIRE_METHODS_WITH_ARGS.contains(&meth);
    let is_alias = zero_arg && manifest.is_alias_method(&file.rel_path, meth);
    if !is_plain && !is_args && !is_alias {
        return None;
    }
    if is_alias {
        let class = manifest.resolve(&file.rel_path, meth, true);
        return Some((class, k + 1));
    }
    let recv = receiver_ident(file, k)?;
    let class = manifest.resolve(&file.rel_path, &recv, false);
    Some((class, k + 1))
}

/// The receiver identifier of the method call whose `.` sits at `k`:
/// walks left over one `[...]` index or `(...)` call, then expects an
/// ident. `self.shards[i].lock()` → `shards`; `clock_slot().read()` →
/// `clock_slot`; `state.lock()` → `state`.
fn receiver_ident(file: &FileView, k: usize) -> Option<String> {
    let mut j = k.checked_sub(1)?;
    loop {
        if file.is_punct(j, b']') {
            j = matching_open(file, j, b'[', b']')?.checked_sub(1)?;
        } else if file.is_punct(j, b')') {
            j = matching_open(file, j, b'(', b')')?.checked_sub(1)?;
        } else {
            break;
        }
    }
    if file.kind(j) == Some(crate::lexer::TokenKind::Ident) {
        Some(file.text(j).to_string())
    } else {
        None
    }
}

/// Code index of the opener matching the closer at `close`, scanning
/// backward.
fn matching_open(file: &FileView, close: usize, open: u8, shut: u8) -> Option<usize> {
    let mut depth = 0usize;
    let mut j = close;
    loop {
        if file.is_punct(j, shut) {
            depth += 1;
        } else if file.is_punct(j, open) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
        j = j.checked_sub(1)?;
    }
}

/// Renders `recv.meth` for an unclassified-acquisition message.
fn acquisition_text(file: &FileView, meth_k: usize) -> String {
    let recv = receiver_ident(file, meth_k - 1).unwrap_or_else(|| "?".to_string());
    format!("{recv}.{}()", file.text(meth_k))
}

/// If the statement beginning at `stmt_start` `let`-binds the *guard*
/// of the acquisition at `acq_k` (the `.` token), returns the bound
/// variable. Handles `let [mut] name [: T] = …`, `if let Pat(name) = …`,
/// `while let Pat(name) = …`.
///
/// The guard is bound — as opposed to being a temporary inside the
/// initializer (`let n = x.lock().len();`) — only when the acquisition
/// chain *is* the whole initializer: it starts right after `=` and,
/// after the acquisition's closing paren, only poison-recovery adapters
/// (`.unwrap()`, `.expect(…)`, `.unwrap_or_else(…)`) precede the
/// terminating `;` or `{`.
fn binding_var(file: &FileView, stmt_start: usize, acq_k: usize) -> Option<String> {
    let mut let_k = None;
    for j in stmt_start..acq_k.min(stmt_start + 12) {
        if file.is_ident(j, "let") {
            let_k = Some(j);
            break;
        }
    }
    let let_k = let_k?;
    // Find the `=` between the pattern and the acquisition.
    let mut eq = None;
    for j in let_k + 1..acq_k {
        if file.is_punct(j, b'=') && !file.is_punct(j + 1, b'=') && !file.is_punct(j - 1, b'=') {
            eq = Some(j);
            break;
        }
    }
    let eq = eq?;
    // The initializer must start with the acquisition's receiver chain
    // (`self.head.read()`, `clock_slot().read()`): no leading `*`, `&`,
    // or wrapping call.
    if chain_start(file, acq_k) != eq + 1 {
        return None;
    }
    // Past the acquisition's `(…)`: skip poison-recovery adapters, then
    // require the statement (or `if let` condition) to end.
    let mut j = matching_close(file, acq_k + 2)? + 1;
    while file.is_punct(j, b'.')
        && file.is_punct(j + 2, b'(')
        && ["unwrap", "expect", "unwrap_or_else"].contains(&file.text(j + 1))
    {
        j = matching_close(file, j + 2)? + 1;
    }
    if !(file.is_punct(j, b';') || file.is_punct(j, b'{')) {
        return None;
    }
    // Last non-`mut` ident in the pattern: `g` in `Some(mut g)`, `name`
    // in `let mut name: T`.
    (let_k + 1..eq)
        .rev()
        .filter(|&j| file.kind(j) == Some(crate::lexer::TokenKind::Ident))
        .map(|j| file.text(j).to_string())
        .find(|t| t != "mut")
}

/// Code index of the leftmost token of the method-call chain whose `.`
/// sits at `acq_k`: `self.head.read()` → the `self`; `clock_slot().read()`
/// → the `clock_slot`.
fn chain_start(file: &FileView, acq_k: usize) -> usize {
    let mut j = acq_k;
    loop {
        let Some(mut p) = j.checked_sub(1) else {
            return j;
        };
        // Step over one `[...]` / `(...)` postfix.
        loop {
            if file.is_punct(p, b']') {
                match matching_open(file, p, b'[', b']').and_then(|o| o.checked_sub(1)) {
                    Some(q) => p = q,
                    None => return j,
                }
            } else if file.is_punct(p, b')') {
                match matching_open(file, p, b'(', b')').and_then(|o| o.checked_sub(1)) {
                    Some(q) => p = q,
                    None => return j,
                }
            } else {
                break;
            }
        }
        if file.kind(p) == Some(crate::lexer::TokenKind::Ident) {
            j = p;
            // Continue left through `.` / `::` path segments.
            let Some(q) = p.checked_sub(1) else {
                return j;
            };
            if file.is_punct(q, b'.') {
                j = q;
                continue;
            }
            if q >= 1 && file.is_punct(q, b':') && file.is_punct(q - 1, b':') {
                j = q - 1;
                continue;
            }
            return j;
        }
        return j;
    }
}

/// Code index of the `)` matching the `(` at `open`, scanning forward.
fn matching_close(file: &FileView, open: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut j = open;
    while j < file.code.len() {
        if file.is_punct(j, b'(') {
            depth += 1;
        } else if file.is_punct(j, b')') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
        j += 1;
    }
    None
}

/// Detects a blocking-I/O call at code index `k`, returning a short name
/// for the message.
pub(crate) fn io_call_at(file: &FileView, k: usize) -> Option<String> {
    // std::fs::anything — `fs :: ident`
    if file.is_ident(k, "fs")
        && file.is_punct(k + 1, b':')
        && file.is_punct(k + 2, b':')
        && file.kind(k + 3) == Some(crate::lexer::TokenKind::Ident)
    {
        return Some(format!("fs::{}", file.text(k + 3)));
    }
    if file.is_ident(k, "File")
        && file.is_punct(k + 1, b':')
        && file.is_punct(k + 2, b':')
        && (file.is_ident(k + 3, "open") || file.is_ident(k + 3, "create"))
    {
        return Some(format!("File::{}", file.text(k + 3)));
    }
    if file.is_ident(k, "OpenOptions") {
        return Some("OpenOptions".to_string());
    }
    if file.is_punct(k, b'.') && file.is_punct(k + 2, b'(') {
        let meth = file.text(k + 1);
        if IO_METHODS.contains(&meth) {
            return Some(format!(".{meth}()"));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A self-contained fixture hierarchy, independent of the real
    /// `docs/LOCK_ORDER.md` so these tests never churn when the
    /// workspace's lock set evolves.
    const FIXTURE_MANIFEST: &str = "\
| rank | class     | flags | binds |
|-----:|-----------|-------|-------|
|    1 | fix.outer |       | `crates/tu-core/src/fix.rs::outer` |
|    2 | fix.inner |       | `crates/tu-core/src/fix.rs::inner` |
|    3 | fix.shard | multi | `crates/tu-core/src/fix.rs::shards` |
|    4 | fix.io    | io    | `crates/tu-core/src/fix.rs::iolog` |
|    5 | fix.alias |       | `crates/tu-core/src/fix.rs::lock_commit()` |
";

    fn run(src: &str) -> (Vec<Finding>, Vec<Edge>) {
        let m = Manifest::parse(FIXTURE_MANIFEST).expect("fixture manifest parses");
        let mut edges = Vec::new();
        let (findings, unused) =
            crate::rules::lint_source_with("crates/tu-core/src/fix.rs", src, &m, &mut edges);
        assert!(unused.is_empty(), "fixture left unused allows: {unused:?}");
        (findings, edges)
    }

    fn only(findings: &[Finding], rule: &str) -> Vec<(u32, String)> {
        findings
            .iter()
            .filter(|f| f.rule == rule && !f.allowed)
            .map(|f| (f.line, f.message.clone()))
            .collect()
    }

    // -- manifest parsing ---------------------------------------------------

    #[test]
    fn manifest_parses_ranks_flags_and_binds() {
        let m = Manifest::parse(FIXTURE_MANIFEST).unwrap();
        assert_eq!(m.classes.len(), 5);
        assert_eq!(m.classes[0].name, "fix.outer");
        assert_eq!(m.classes[0].rank, 1);
        assert!(m.classes[2].multi);
        assert!(m.classes[3].io_ok);
        let alias = &m.classes[4].binds[0];
        assert!(alias.alias_call);
        assert_eq!(alias.ident, "lock_commit");
        assert_eq!(
            m.resolve("crates/tu-core/src/fix.rs", "outer", false),
            Some(0)
        );
        assert_eq!(
            m.resolve("crates/tu-core/src/other.rs", "outer", false),
            None
        );
    }

    #[test]
    fn manifest_prefix_bind_matches_directory() {
        let m = Manifest::parse(
            "| 1 | a.b | | `crates/tu-core/::state` |\n| 2 | c.d | | `x.rs::s` |\n",
        )
        .unwrap();
        assert_eq!(
            m.resolve("crates/tu-core/src/deep/mod.rs", "state", false),
            Some(0)
        );
        assert_eq!(m.resolve("crates/tu-lsm/src/wal.rs", "state", false), None);
    }

    #[test]
    fn manifest_rejects_duplicate_rank_and_name() {
        assert!(
            Manifest::parse("| 1 | a.b | | `x.rs::a` |\n| 1 | c.d | | `x.rs::b` |\n")
                .unwrap_err()
                .contains("duplicate rank")
        );
        assert!(
            Manifest::parse("| 1 | a.b | | `x.rs::a` |\n| 2 | a.b | | `x.rs::b` |\n")
                .unwrap_err()
                .contains("duplicate class")
        );
    }

    #[test]
    fn manifest_rejects_unknown_flag_and_bad_bind() {
        assert!(Manifest::parse("| 1 | a.b | speedy | `x.rs::a` |\n")
            .unwrap_err()
            .contains("unknown flag"));
        assert!(Manifest::parse("| 1 | a.b | | `no-separator` |\n")
            .unwrap_err()
            .contains("not path::ident"));
        assert!(Manifest::parse("no table at all").is_err());
    }

    #[test]
    fn embedded_manifest_is_the_checked_in_lock_order() {
        let m = embedded_manifest();
        assert!(
            m.classes.len() >= 30,
            "expected the full workspace hierarchy"
        );
        assert!(m.classes.iter().any(|c| c.name == "engine.maintenance"));
        assert!(m.classes.iter().any(|c| c.name == "lsm.wal.commit"));
    }

    // -- seeded violations: exact file:line assertions ----------------------

    #[test]
    fn seeded_lock_order_inversion_is_reported() {
        let src = "\
fn bad() {
    let g = inner.lock();
    let h = outer.lock();
    drop(h);
    drop(g);
}
";
        let (findings, edges) = run(src);
        let hits = only(&findings, "lock-order");
        assert_eq!(hits.len(), 1, "{findings:?}");
        assert_eq!(hits[0].0, 3);
        assert!(hits[0].1.contains("`fix.outer` (rank 1)"), "{}", hits[0].1);
        assert!(
            hits[0].1.contains("holding `fix.inner` (rank 2"),
            "{}",
            hits[0].1
        );
        // The inverted nesting still appears in the graph.
        assert!(edges
            .iter()
            .any(|e| e.from == "fix.inner" && e.to == "fix.outer" && e.line == 3));
    }

    #[test]
    fn seeded_unclassified_acquisition_is_reported() {
        let src = "\
fn uncls() {
    let g = mystery.lock();
    drop(g);
}
";
        let (findings, _) = run(src);
        let hits = only(&findings, "lock-order");
        assert_eq!(hits.len(), 1, "{findings:?}");
        assert_eq!(hits[0].0, 2);
        assert!(hits[0].1.contains("unclassified"), "{}", hits[0].1);
        assert!(hits[0].1.contains("mystery.lock()"), "{}", hits[0].1);
    }

    #[test]
    fn seeded_held_lock_io_is_reported() {
        let src = "\
fn io_bad(p: &Path, v: &[u8]) {
    let g = outer.lock();
    fs::write(p, v).ok();
    drop(g);
}
";
        let (findings, _) = run(src);
        let hits = only(&findings, "held-lock-io");
        assert_eq!(hits.len(), 1, "{findings:?}");
        assert_eq!(hits[0].0, 3);
        assert!(hits[0].1.contains("fs::write"), "{}", hits[0].1);
        assert!(hits[0].1.contains("`fix.outer`"), "{}", hits[0].1);
        assert!(hits[0].1.contains("acquired line 2"), "{}", hits[0].1);
    }

    #[test]
    fn seeded_condvar_wait_with_second_lock_is_reported() {
        let src = "\
fn cv_bad(cv: &Condvar) {
    let g = outer.lock();
    let h = inner.lock();
    let _u = cv.wait(h);
    drop(g);
}
";
        let (findings, _) = run(src);
        let hits = only(&findings, "condvar-discipline");
        assert_eq!(hits.len(), 1, "{findings:?}");
        assert_eq!(hits[0].0, 4);
        assert!(hits[0].1.contains("2 guards"), "{}", hits[0].1);
    }

    #[test]
    fn condvar_wait_with_only_its_own_mutex_is_clean() {
        let src = "\
fn cv_ok(cv: &Condvar) {
    let g = inner.lock();
    let _u = cv.wait(g);
}
";
        let (findings, _) = run(src);
        assert!(
            only(&findings, "condvar-discipline").is_empty(),
            "{findings:?}"
        );
    }

    // -- conforming code stays silent ---------------------------------------

    #[test]
    fn conforming_nesting_and_temporaries_are_clean() {
        let src = "\
fn good() {
    let g = outer.lock();
    {
        let h = inner.lock();
        drop(h);
    }
    drop(g);
    let n = inner.lock().len();
    let g2 = outer.lock();
    drop(g2);
    let _ = n;
}
";
        let (findings, edges) = run(src);
        assert!(
            findings.iter().all(|f| f.allowed || f.rule != "lock-order"),
            "{findings:?}"
        );
        assert!(edges
            .iter()
            .any(|e| e.from == "fix.outer" && e.to == "fix.inner"));
        // The temporary on line 8 died at its `;`: no inner→outer edge.
        assert!(!edges
            .iter()
            .any(|e| e.from == "fix.inner" && e.to == "fix.outer"));
    }

    #[test]
    fn drop_releases_a_guard_early() {
        let src = "\
fn seq() {
    let g = inner.lock();
    drop(g);
    let h = outer.lock();
    drop(h);
}
";
        let (findings, _) = run(src);
        assert!(only(&findings, "lock-order").is_empty(), "{findings:?}");
    }

    #[test]
    fn multi_flag_tolerates_same_class_nesting() {
        let src = "\
fn shards2() {
    let a = shards.lock();
    let b = shards.lock();
    drop(a);
    drop(b);
}
";
        let (findings, _) = run(src);
        assert!(only(&findings, "lock-order").is_empty(), "{findings:?}");
    }

    #[test]
    fn non_multi_same_class_nesting_is_reported() {
        let src = "\
fn twice() {
    let a = inner.lock();
    let b = inner.lock();
    drop(a);
    drop(b);
}
";
        let (findings, _) = run(src);
        let hits = only(&findings, "lock-order");
        assert_eq!(hits.len(), 1, "{findings:?}");
        assert_eq!(hits[0].0, 3);
    }

    #[test]
    fn io_flagged_class_permits_io_under_guard() {
        let src = "\
fn log_write(p: &Path, v: &[u8]) {
    let g = iolog.lock();
    fs::write(p, v).ok();
    drop(g);
}
";
        let (findings, _) = run(src);
        assert!(only(&findings, "held-lock-io").is_empty(), "{findings:?}");
    }

    #[test]
    fn alias_bind_tracks_guard_returning_helpers() {
        let src = "\
fn wave(w: &Wal) {
    let c = w.lock_commit();
    let g = inner.lock();
    drop(g);
    drop(c);
}
";
        let (findings, _) = run(src);
        let hits = only(&findings, "lock-order");
        assert_eq!(hits.len(), 1, "{findings:?}");
        assert_eq!(hits[0].0, 3);
        assert!(hits[0].1.contains("holding `fix.alias`"), "{}", hits[0].1);
    }

    #[test]
    fn if_let_guard_is_scoped_to_its_block() {
        let src = "\
fn try_path() {
    if let Some(g) = outer.try_lock() {
        let h = inner.lock();
        drop(h);
        drop(g);
    }
    let q = outer.lock();
    drop(q);
}
";
        let (findings, _) = run(src);
        assert!(only(&findings, "lock-order").is_empty(), "{findings:?}");
    }

    #[test]
    fn closure_temporary_dies_with_its_paren_group() {
        let src = "\
fn sum(objs: &[O]) -> usize {
    objs.iter().map(|o| o.inner.lock().len()).sum::<usize>() + outer.lock().len()
}
";
        let (findings, _) = run(src);
        assert!(only(&findings, "lock-order").is_empty(), "{findings:?}");
    }

    #[test]
    fn initializer_temporary_is_not_a_bound_guard() {
        // `let n = inner.lock().len();` must not pin fix.inner for the
        // rest of the block.
        let src = "\
fn snap() {
    let n = inner.lock().len();
    let g = outer.lock();
    drop(g);
    let _ = n;
}
";
        let (findings, _) = run(src);
        assert!(only(&findings, "lock-order").is_empty(), "{findings:?}");
    }

    #[test]
    fn allow_directive_suppresses_with_reason() {
        let src = "\
fn justified(p: &Path, v: &[u8]) {
    let g = outer.lock();
    // tu-lint: allow(held-lock-io): fixture: snapshot must not interleave
    fs::write(p, v).ok();
    drop(g);
}
";
        let (findings, _) = run(src);
        let hit = findings
            .iter()
            .find(|f| f.rule == "held-lock-io")
            .expect("finding still recorded");
        assert!(hit.allowed);
        assert_eq!(
            hit.reason.as_deref(),
            Some("fixture: snapshot must not interleave")
        );
        assert!(only(&findings, "held-lock-io").is_empty());
    }

    #[test]
    fn unenforced_crate_skips_unclassified_but_not_order() {
        // tu-lint itself: unclassified receivers are fine, but a bound
        // class pair would still be checked if binds matched. Here nothing
        // binds, so the file is silent.
        let m = Manifest::parse(FIXTURE_MANIFEST).unwrap();
        let mut edges = Vec::new();
        let (findings, _) = crate::rules::lint_source_with(
            "crates/tu-lint/src/fake.rs",
            "fn f() { let g = anything.lock(); drop(g); }\n",
            &m,
            &mut edges,
        );
        assert!(only(&findings, "lock-order").is_empty(), "{findings:?}");
    }
}
