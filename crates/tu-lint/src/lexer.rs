//! A small hand-rolled Rust lexer, just deep enough for lint rules.
//!
//! The rules in this crate match token *sequences* (`Instant :: now`,
//! `. unwrap (`), so the lexer's one job is to classify source bytes well
//! enough that text inside line comments, block comments, string literals,
//! raw strings, and char literals can never be mistaken for code. It is not
//! a full Rust lexer: numeric literals are tokenized loosely and keywords
//! are ordinary identifiers, which is all sequence matching needs.

/// Classification of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers like `r#type`).
    Ident,
    /// `// ...` including doc comments (`///`, `//!`).
    LineComment,
    /// `/* ... */` including nested block comments.
    BlockComment,
    /// `"..."`, `b"..."` — escape-aware.
    Str,
    /// `r"..."`, `r#"..."#`, `br#"..."#` — hash-delimited, no escapes.
    RawStr,
    /// `'x'`, `'\n'`, `b'x'`.
    Char,
    /// `'a` in `&'a str` (distinguished from char literals).
    Lifetime,
    /// Numeric literal, tokenized loosely (`1_000`, `0xff`, `1e9`).
    Number,
    /// Any single punctuation byte (`.`, `:`, `!`, `{`, …).
    Punct(u8),
}

/// One token with its 1-based line and byte span in the source.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub line: u32,
    pub start: usize,
    pub end: usize,
}

impl Token {
    /// The token's text within `src` (the string it was lexed from).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// True for comment tokens (which sequence matching skips).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Lexes `src` into tokens. Never fails: unterminated literals extend to
/// end-of-input, and unrecognized bytes become `Punct`.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.src.len() {
            let start = self.pos;
            let line = self.line;
            let b = self.src[self.pos];
            let kind = match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                    continue;
                }
                _ if b.is_ascii_whitespace() => {
                    self.pos += 1;
                    continue;
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(),
                b'\'' => self.char_or_lifetime(),
                b'r' | b'b' if self.raw_or_prefixed_start() => self.raw_or_prefixed(),
                _ if is_ident_start(b) => self.ident(),
                _ if b.is_ascii_digit() => self.number(),
                _ => {
                    self.pos += 1;
                    TokenKind::Punct(b)
                }
            };
            self.out.push(Token {
                kind,
                line,
                start,
                end: self.pos,
            });
        }
        self.out
    }

    fn peek(&self, n: usize) -> Option<u8> {
        self.src.get(self.pos + n).copied()
    }

    /// True when the cursor sits on an `r`/`b`/`br` prefix of a string,
    /// raw string, or byte char — as opposed to a plain identifier.
    fn raw_or_prefixed_start(&self) -> bool {
        let mut i = self.pos;
        if self.src[i] == b'b' {
            i += 1;
            match self.src.get(i) {
                Some(b'"') | Some(b'\'') => return true,
                Some(b'r') => i += 1,
                _ => return false,
            }
        } else {
            // 'r'
            i += 1;
        }
        // After `r` / `br`: a raw string starts `"` or `#..#"`. Anything
        // else (`r#type`, plain `rate`) is an identifier.
        let mut j = i;
        while self.src.get(j) == Some(&b'#') {
            j += 1;
        }
        self.src.get(j) == Some(&b'"')
    }

    fn raw_or_prefixed(&mut self) -> TokenKind {
        if self.src[self.pos] == b'b' {
            self.pos += 1;
            match self.src.get(self.pos) {
                Some(b'"') => return self.string(),
                Some(b'\'') => return self.char_or_lifetime(),
                Some(b'r') => {
                    self.pos += 1;
                    return self.raw_string();
                }
                _ => unreachable!("guarded by raw_or_prefixed_start"),
            }
        }
        // 'r'
        self.pos += 1;
        self.raw_string()
    }

    fn line_comment(&mut self) -> TokenKind {
        while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
            self.pos += 1;
        }
        TokenKind::LineComment
    }

    fn block_comment(&mut self) -> TokenKind {
        self.pos += 2; // consume `/*`
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            match self.src[self.pos] {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    depth += 1;
                    self.pos += 2;
                }
                b'*' if self.peek(1) == Some(b'/') => {
                    depth -= 1;
                    self.pos += 2;
                }
                _ => self.pos += 1,
            }
        }
        TokenKind::BlockComment
    }

    fn string(&mut self) -> TokenKind {
        self.pos += 1; // opening quote
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' => self.pos += 2,
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b'"' => {
                    self.pos += 1;
                    break;
                }
                _ => self.pos += 1,
            }
        }
        TokenKind::Str
    }

    /// Cursor is just past `r`/`br`, on the hashes or opening quote.
    fn raw_string(&mut self) -> TokenKind {
        let mut hashes = 0usize;
        while self.src.get(self.pos) == Some(&b'#') {
            hashes += 1;
            self.pos += 1;
        }
        self.pos += 1; // opening quote
        loop {
            match self.src.get(self.pos) {
                None => break,
                Some(b'\n') => {
                    self.line += 1;
                    self.pos += 1;
                }
                Some(b'"') => {
                    self.pos += 1;
                    let mut closing = 0usize;
                    while closing < hashes && self.src.get(self.pos) == Some(&b'#') {
                        closing += 1;
                        self.pos += 1;
                    }
                    if closing == hashes {
                        break;
                    }
                }
                Some(_) => self.pos += 1,
            }
        }
        TokenKind::RawStr
    }

    fn char_or_lifetime(&mut self) -> TokenKind {
        // Cursor on the opening `'`. Disambiguate lifetime (`'a`, `'static`)
        // from char literal (`'a'`, `'\n'`): a lifetime is `'` + ident with
        // no closing quote right after the first ident char run.
        self.pos += 1;
        match self.src.get(self.pos) {
            Some(b'\\') => {
                self.pos += 2; // escape introducer + escaped byte
                               // consume to closing quote (handles \u{...})
                while self.pos < self.src.len() && self.src[self.pos] != b'\'' {
                    self.pos += 1;
                }
                self.pos = (self.pos + 1).min(self.src.len());
                TokenKind::Char
            }
            Some(&c) if is_ident_start(c) => {
                let mut i = self.pos + 1;
                while self.src.get(i).copied().is_some_and(is_ident_continue) {
                    i += 1;
                }
                if self.src.get(i) == Some(&b'\'') {
                    self.pos = i + 1;
                    TokenKind::Char
                } else {
                    self.pos = i;
                    TokenKind::Lifetime
                }
            }
            Some(_) => {
                // `'x'` where x is punctuation/digit, or stray quote.
                self.pos += 1;
                if self.src.get(self.pos) == Some(&b'\'') {
                    self.pos += 1;
                }
                TokenKind::Char
            }
            None => TokenKind::Char,
        }
    }

    fn ident(&mut self) -> TokenKind {
        // Raw identifier `r#name` arrives here only when it is not a raw
        // string (checked by raw_or_prefixed_start).
        if self.src[self.pos] == b'r' && self.peek(1) == Some(b'#') {
            self.pos += 2;
        }
        while self
            .src
            .get(self.pos)
            .copied()
            .is_some_and(is_ident_continue)
        {
            self.pos += 1;
        }
        TokenKind::Ident
    }

    fn number(&mut self) -> TokenKind {
        // Loose: digits plus alphanumerics/underscores. `1.5` lexes as
        // Number(1) Punct(.) Number(5); rules never inspect numbers.
        while self
            .src
            .get(self.pos)
            .copied()
            .is_some_and(is_ident_continue)
        {
            self.pos += 1;
        }
        TokenKind::Number
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text(src).to_string())
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("let x = foo.bar();");
        assert_eq!(toks[0], (TokenKind::Ident, "let".into()));
        assert_eq!(toks[1], (TokenKind::Ident, "x".into()));
        assert_eq!(toks[2], (TokenKind::Punct(b'='), "=".into()));
        assert!(toks.contains(&(TokenKind::Punct(b'.'), ".".into())));
    }

    #[test]
    fn line_comment_swallows_code_text() {
        // `Instant::now` appears only inside the comment: no Ident tokens.
        let src = "// call Instant::now() here\nlet x = 1;";
        assert_eq!(idents(src), vec!["let", "x"]);
        let toks = lex(src);
        assert_eq!(toks[0].kind, TokenKind::LineComment);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2, "line counting resumes after comment");
    }

    #[test]
    fn nested_block_comment() {
        let src = "/* outer /* inner unwrap() */ still comment */ fn f() {}";
        assert_eq!(idents(src), vec!["fn", "f"]);
    }

    #[test]
    fn string_literals_hide_their_contents() {
        let src = r#"let s = "Instant::now() .unwrap()";"#;
        assert_eq!(idents(src), vec!["let", "s"]);
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let src = r#"let s = "a\"b.unwrap()"; s.len()"#;
        assert_eq!(idents(src), vec!["let", "s", "s", "len"]);
    }

    #[test]
    fn raw_strings_hide_their_contents() {
        let src = "let s = r#\"panic!(\"x\") \"quoted\" .unwrap()\"#; s.len()";
        assert_eq!(idents(src), vec!["let", "s", "s", "len"]);
        let src2 = "let s = r\"SystemTime\";";
        assert_eq!(idents(src2), vec!["let", "s"]);
        let src3 = "let s = br##\"raw \"# still raw\"##; done()";
        assert_eq!(idents(src3), vec!["let", "s", "done"]);
    }

    #[test]
    fn raw_identifier_is_an_ident_not_a_string() {
        let src = "let r#type = 1; r#type.touch()";
        assert_eq!(idents(src), vec!["let", "r#type", "r#type", "touch"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let toks = lex(src);
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        let chars: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(chars, vec!["'x'"]);
    }

    #[test]
    fn escaped_char_literal() {
        let src = r"let c = '\n'; let q = '\''; let u = '\u{1F600}'; f()";
        assert_eq!(idents(src), vec!["let", "c", "let", "q", "let", "u", "f"]);
    }

    #[test]
    fn byte_string_and_byte_char() {
        let src = "let b = b\"unwrap()\"; let c = b'x'; g()";
        assert_eq!(idents(src), vec!["let", "b", "let", "c", "g"]);
    }

    #[test]
    fn line_numbers_are_tracked_through_multiline_tokens() {
        let src = "let a = \"line1\nline2\";\nlet b = 2; /* c1\nc2 */ let c = 3;";
        let toks = lex(src);
        let b_tok = toks
            .iter()
            .find(|t| t.text(src) == "b")
            .expect("ident b present");
        assert_eq!(b_tok.line, 3);
        let c_tok = toks
            .iter()
            .find(|t| t.text(src) == "c")
            .expect("ident c present");
        assert_eq!(c_tok.line, 4);
    }

    #[test]
    fn unterminated_literals_do_not_hang() {
        assert!(!lex("let s = \"abc").is_empty());
        assert!(!lex("let s = r#\"abc").is_empty());
        assert!(!lex("/* never closed").is_empty());
    }
}
