//! `tu-lint`: the TimeUnion workspace static-analysis pass.
//!
//! A zero-dependency lint tool with a small hand-rolled Rust lexer
//! (comment/string/raw-string aware) that enforces project-specific
//! discipline rules across the workspace — see [`rules`] for the rule set
//! and the invariants each one protects, and `docs/STATIC_ANALYSIS.md` for
//! the operator-facing guide.
//!
//! Three entry points:
//! * `cargo run -p tu-lint` — the CLI (human or `--format json` output);
//! * `tests/lint_clean.rs` at the workspace root — a tier-1 test asserting
//!   zero unallowed findings, so `cargo test` gates the rules;
//! * [`lint_source`] — lint a single in-memory file, used by self-tests.

pub mod lexer;
pub mod locks;
pub mod report;
pub mod rules;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use locks::{Edge, Manifest};
pub use report::{Finding, Report, UnusedAllow};
pub use rules::{lint_source, lint_source_with, ALL_RULES};

/// Directories under the workspace root that contain first-party sources.
/// `vendor/` (third-party stubs) and `target/` are deliberately absent.
const SOURCE_ROOTS: &[&str] = &["crates", "src", "tests", "examples", "benches"];

/// Lints every first-party `.rs` file under `root` (a workspace root) and
/// returns the aggregate report. Files are visited in sorted order so the
/// report is deterministic.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    Ok(lint_workspace_with_edges(root)?.0)
}

/// [`lint_workspace`] additionally returning the observed cross-file
/// lock-nesting edges (the static lock graph, for `--lock-graph`).
///
/// The lock hierarchy comes from `root`'s own `docs/LOCK_ORDER.md` when it
/// parses, so `--root` works on checkouts whose manifest differs from the
/// one embedded at compile time; otherwise the embedded copy is used.
pub fn lint_workspace_with_edges(root: &Path) -> io::Result<(Report, Vec<Edge>)> {
    let manifest_owned = fs::read_to_string(root.join("docs/LOCK_ORDER.md"))
        .ok()
        .and_then(|text| Manifest::parse(&text).ok());
    let manifest = manifest_owned
        .as_ref()
        .unwrap_or_else(|| locks::embedded_manifest());
    let mut files = Vec::new();
    for dir in SOURCE_ROOTS {
        let path = root.join(dir);
        if path.is_dir() {
            collect_rs_files(&path, &mut files)?;
        }
    }
    files.sort();
    let mut report = Report::default();
    let mut edges = Vec::new();
    for path in files {
        let src = fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let (findings, unused) = rules::lint_source_with(&rel, &src, manifest, &mut edges);
        report.add_file(&rel, findings, unused);
    }
    edges.sort();
    edges.dedup();
    Ok((report, edges))
}

/// The workspace root when running under cargo: two levels above this
/// crate's manifest (`crates/tu-lint` → workspace).
pub fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "vendor" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_root_points_at_cargo_workspace() {
        let root = workspace_root();
        assert!(root.join("Cargo.toml").is_file(), "{root:?}");
        assert!(root.join("crates/tu-lint").is_dir());
    }

    #[test]
    fn lint_workspace_scans_a_plausible_file_count() {
        let report = lint_workspace(&workspace_root()).expect("workspace lints");
        assert!(
            report.files_scanned > 50,
            "expected the whole workspace, scanned {}",
            report.files_scanned
        );
    }
}
