//! The unified data model (§3.1, Figure 6): identifiers for individual
//! timeseries and timeseries groups.
//!
//! A timeseries identifier is a set of tags. A group declares *group tags*
//! shared by all members; a member is identified inside the group by its
//! remaining (unique) tags. Converting between the flat and the grouped
//! representation is pure tag-set arithmetic, provided here.

use tu_common::{Error, Labels, Result};

/// The grouped form of a timeseries identifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupedIdentity {
    /// Tags shared by every member of the group.
    pub group_tags: Labels,
    /// Tags identifying this member inside the group.
    pub unique_tags: Labels,
}

impl GroupedIdentity {
    /// Reassembles the flat identifier.
    pub fn flatten(&self) -> Labels {
        self.group_tags.merge(&self.unique_tags)
    }
}

/// Splits a flat identifier into its grouped form under `group_tags`.
///
/// Every pair of `group_tags` must appear in `labels` with the same value
/// (Figure 6: the group tags are *extracted*; a mismatch means the series
/// does not belong to this group).
pub fn to_grouped(labels: &Labels, group_tags: &Labels) -> Result<GroupedIdentity> {
    let (shared, unique) = labels.split_group_tags(group_tags);
    if shared.len() != group_tags.len() {
        return Err(Error::invalid(format!(
            "series {labels} does not carry all group tags {group_tags}"
        )));
    }
    Ok(GroupedIdentity {
        group_tags: group_tags.clone(),
        unique_tags: unique,
    })
}

/// Canonical bytes identifying a group by its group tags.
pub fn group_key(group_tags: &Labels) -> Vec<u8> {
    group_tags.to_bytes()
}

/// Canonical bytes identifying a member inside its group.
pub fn member_key(unique_tags: &Labels) -> Vec<u8> {
    unique_tags.to_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(pairs: &[(&str, &str)]) -> Labels {
        Labels::from_pairs(pairs.iter().copied())
    }

    #[test]
    fn split_and_flatten_round_trip() {
        let flat = labels(&[("region", "1"), ("device", "7"), ("metric", "cpu")]);
        let group = labels(&[("region", "1")]);
        let g = to_grouped(&flat, &group).unwrap();
        assert_eq!(g.unique_tags, labels(&[("device", "7"), ("metric", "cpu")]));
        assert_eq!(g.flatten(), flat);
    }

    #[test]
    fn missing_group_tag_is_rejected() {
        let flat = labels(&[("metric", "cpu")]);
        let group = labels(&[("region", "1")]);
        assert!(to_grouped(&flat, &group).is_err());
        // Same key, different value is also a mismatch.
        let flat = labels(&[("region", "2"), ("metric", "cpu")]);
        assert!(to_grouped(&flat, &group).is_err());
    }

    #[test]
    fn member_keys_distinguish_members() {
        let a = to_grouped(
            &labels(&[("region", "1"), ("cpu", "0"), ("mode", "idle")]),
            &labels(&[("region", "1")]),
        )
        .unwrap();
        let b = to_grouped(
            &labels(&[("region", "1"), ("cpu", "0"), ("mode", "user")]),
            &labels(&[("region", "1")]),
        )
        .unwrap();
        assert_ne!(member_key(&a.unique_tags), member_key(&b.unique_tags));
        assert_eq!(group_key(&a.group_tags), group_key(&b.group_tags));
    }
}
