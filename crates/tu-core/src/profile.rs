//! Per-query cost profiles ("explain analyze" for storage spend).
//!
//! [`QueryProfile`] is the paper's cost model (Eq. 4/6) evaluated for one
//! operation instead of the whole process: how many billable Get/Put
//! requests and bytes each tier charged *this* query, how the block cache
//! and coalesced readahead changed that bill, and where the wall time
//! went stage by stage. Built from a finished
//! [`tu_obs::TraceSummary`] by [`crate::TimeUnion::query_profiled`].

use std::collections::BTreeMap;
use std::fmt;

use tu_obs::{SpanDelta, TraceSummary};

/// Request/byte charges one operation caused on one storage tier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierProfile {
    /// Billable Get requests (the per-request term of Eq. 4/6).
    pub get_requests: u64,
    /// Billable Put requests.
    pub put_requests: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
    /// Reads that paid the first-read penalty (Figure 1c).
    pub first_reads: u64,
}

impl TierProfile {
    fn from_summary(summary: &TraceSummary, tier: &str) -> TierProfile {
        let c = |suffix: &str| summary.counter(&format!("cloud.{tier}.{suffix}"));
        TierProfile {
            get_requests: c("get_requests"),
            put_requests: c("put_requests"),
            bytes_read: c("bytes_read"),
            bytes_written: c("bytes_written"),
            first_reads: c("first_reads"),
        }
    }
}

/// Heat one query contributed to one time partition on one tier, from
/// the partition heat registry's before/after delta around the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeatContribution {
    /// Partition start (inclusive, ms since epoch).
    pub start_ms: i64,
    /// Partition end (exclusive, ms since epoch).
    pub end_ms: i64,
    /// Owning tier (`block` or `object`).
    pub tier: &'static str,
    /// Requests this query charged the partition.
    pub requests: u64,
    /// Bytes this query moved for the partition.
    pub bytes: u64,
}

/// One timed stage of a query (from the trace context's span deltas).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageTiming {
    /// Short stage name (`select`, `fanout`, `sort`).
    pub name: String,
    /// Completions of this stage inside the query (normally 1).
    pub count: u64,
    pub total_ns: u64,
}

/// Everything one profiled query spent, with stable text and JSON
/// renderings. The per-tier request/byte totals are exact: the traced
/// counters charge the global registry and the query's context in the
/// same call, on the query thread and every worker it fanned out to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryProfile {
    /// Trace-context id (matches flight-recorder events of this query).
    pub trace_id: u64,
    /// Operation label (`query`).
    pub op: String,
    /// Series/group ids the index matched.
    pub matched_ids: usize,
    /// Query pool width the engine used.
    pub threads: usize,
    /// End-to-end wall time of the profiled call.
    pub wall_ns: u64,
    /// Stage timings in execution order.
    pub stages: Vec<StageTiming>,
    /// Fast-tier (cloud block storage) charges.
    pub block: TierProfile,
    /// Slow-tier (cloud object storage) charges.
    pub object: TierProfile,
    pub cache_hits: u64,
    pub cache_misses: u64,
    /// SSTable data blocks this query fetched from storage.
    pub block_loads: u64,
    pub block_load_bytes: u64,
    /// Coalesced readahead requests (each replaced a run of ≥ 2 Gets).
    pub readahead_requests: u64,
    /// Blocks those coalesced requests carried.
    pub readahead_blocks: u64,
    /// Every raw counter delta of the trace context, for consumers that
    /// need a metric this struct does not surface.
    pub counters: BTreeMap<String, u64>,
    /// Per-partition heat this query contributed (filled by the engine
    /// from a heat-registry delta; empty when no partition was touched).
    pub heat: Vec<HeatContribution>,
}

/// Stage span names, in display order, with their short labels.
const STAGES: [(&str, &str); 3] = [
    ("core.query.select", "select"),
    ("core.query.fanout", "fanout"),
    ("core.query.sort", "sort"),
];

impl QueryProfile {
    /// Builds a profile from a finished query trace context.
    pub fn from_summary(
        summary: &TraceSummary,
        matched_ids: usize,
        threads: usize,
        wall_ns: u64,
    ) -> QueryProfile {
        let stages = STAGES
            .iter()
            .filter_map(|(span, label)| {
                let SpanDelta { count, total_ns } = summary.span(span);
                (count > 0).then(|| StageTiming {
                    name: (*label).to_string(),
                    count,
                    total_ns,
                })
            })
            .collect();
        QueryProfile {
            trace_id: summary.id,
            op: summary.op.clone(),
            matched_ids,
            threads,
            wall_ns,
            stages,
            block: TierProfile::from_summary(summary, "block"),
            object: TierProfile::from_summary(summary, "object"),
            cache_hits: summary.counter("lsm.cache.hits"),
            cache_misses: summary.counter("lsm.cache.misses"),
            block_loads: summary.counter("lsm.sstable.block_loads"),
            block_load_bytes: summary.counter("lsm.sstable.block_load_bytes"),
            readahead_requests: summary.counter("lsm.readahead.coalesced_requests"),
            readahead_blocks: summary.counter("lsm.readahead.coalesced_blocks"),
            counters: summary.counters.clone(),
            heat: Vec::new(),
        }
    }

    /// Fills [`QueryProfile::heat`] from two heat-registry snapshots taken
    /// around the query: the per-partition lifetime request/byte deltas
    /// between them are this query's contribution.
    pub fn fill_heat(&mut self, before: &tu_obs::HeatSnapshot, after: &tu_obs::HeatSnapshot) {
        self.heat.clear();
        for p in &after.partitions {
            let prior = before.partition(p.key.start_ms, p.key.end_ms);
            for (t, tier) in p.tiers.iter().enumerate() {
                let (req0, bytes0) = prior
                    .map(|q| {
                        let h = &q.tiers[t];
                        (h.requests(), h.bytes_read + h.bytes_written)
                    })
                    .unwrap_or((0, 0));
                let requests = tier.requests().saturating_sub(req0);
                let bytes = (tier.bytes_read + tier.bytes_written).saturating_sub(bytes0);
                if requests > 0 || bytes > 0 {
                    self.heat.push(HeatContribution {
                        start_ms: p.key.start_ms,
                        end_ms: p.key.end_ms,
                        tier: tu_obs::heat::HEAT_TIERS[t],
                        requests,
                        bytes,
                    });
                }
            }
        }
    }

    /// Total billable requests across both tiers (Get + Put), the
    /// numerator of the paper's monetary request cost.
    pub fn total_requests(&self) -> u64 {
        self.block.get_requests
            + self.block.put_requests
            + self.object.get_requests
            + self.object.put_requests
    }

    /// Stable JSON encoding of the profile.
    pub fn to_json(&self) -> String {
        let tier = |t: &TierProfile| {
            format!(
                "{{\"get_requests\":{},\"put_requests\":{},\"bytes_read\":{},\
                 \"bytes_written\":{},\"first_reads\":{}}}",
                t.get_requests, t.put_requests, t.bytes_read, t.bytes_written, t.first_reads
            )
        };
        let mut out = format!(
            "{{\"trace_id\":{},\"op\":\"{}\",\"matched_ids\":{},\"threads\":{},\"wall_ns\":{}",
            self.trace_id, self.op, self.matched_ids, self.threads, self.wall_ns
        );
        out.push_str(",\"stages\":[");
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"count\":{},\"total_ns\":{}}}",
                s.name, s.count, s.total_ns
            ));
        }
        out.push_str("],\"heat\":[");
        for (i, h) in self.heat.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"start_ms\":{},\"end_ms\":{},\"tier\":\"{}\",\"requests\":{},\"bytes\":{}}}",
                h.start_ms, h.end_ms, h.tier, h.requests, h.bytes
            ));
        }
        out.push_str("],\"tiers\":{\"block\":");
        out.push_str(&tier(&self.block));
        out.push_str(",\"object\":");
        out.push_str(&tier(&self.object));
        out.push_str(&format!(
            "}},\"cache\":{{\"hits\":{},\"misses\":{}}},\
             \"block_loads\":{{\"count\":{},\"bytes\":{}}},\
             \"readahead\":{{\"coalesced_requests\":{},\"coalesced_blocks\":{}}}}}",
            self.cache_hits,
            self.cache_misses,
            self.block_loads,
            self.block_load_bytes,
            self.readahead_requests,
            self.readahead_blocks
        ));
        out
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

impl fmt::Display for QueryProfile {
    /// The "explain analyze" rendering: stable field order, one concept
    /// per line, parse-friendly `key=value` columns.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "QUERY PROFILE trace={} op={} matched={} threads={} wall={}",
            self.trace_id,
            self.op,
            self.matched_ids,
            self.threads,
            fmt_ns(self.wall_ns)
        )?;
        for s in &self.stages {
            writeln!(
                f,
                "  stage {:<8} time={:<12} count={}",
                s.name,
                fmt_ns(s.total_ns),
                s.count
            )?;
        }
        for (name, t) in [("block", &self.block), ("object", &self.object)] {
            writeln!(
                f,
                "  tier {:<7} gets={:<6} puts={:<6} bytes_read={:<10} bytes_written={:<10} first_reads={}",
                name, t.get_requests, t.put_requests, t.bytes_read, t.bytes_written, t.first_reads
            )?;
        }
        writeln!(
            f,
            "  cache   hits={} misses={} block_loads={} block_load_bytes={}",
            self.cache_hits, self.cache_misses, self.block_loads, self.block_load_bytes
        )?;
        writeln!(
            f,
            "  readahead coalesced_requests={} coalesced_blocks={}",
            self.readahead_requests, self.readahead_blocks
        )?;
        for h in &self.heat {
            writeln!(
                f,
                "  heat partition=[{}..{}) tier={:<7} requests={:<6} bytes={}",
                h.start_ms, h.end_ms, h.tier, h.requests, h.bytes
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_summary() -> TraceSummary {
        let ctx = tu_obs::TraceContext::start("query");
        tu_obs::traced("cloud.object.get_requests").add(40);
        tu_obs::traced("cloud.object.bytes_read").add(163_840);
        tu_obs::traced("cloud.object.first_reads").add(2);
        tu_obs::traced("cloud.block.get_requests").add(3);
        tu_obs::traced("lsm.cache.hits").add(10);
        tu_obs::traced("lsm.cache.misses").add(40);
        tu_obs::traced("lsm.sstable.block_loads").add(40);
        tu_obs::traced("lsm.sstable.block_load_bytes").add(163_840);
        tu_obs::traced("lsm.readahead.coalesced_requests").add(2);
        tu_obs::traced("lsm.readahead.coalesced_blocks").add(39);
        tu_obs::span("core.query.select").observe_ns(10_000);
        tu_obs::span("core.query.fanout").observe_ns(2_000_000);
        tu_obs::span("core.query.sort").observe_ns(5_000);
        ctx.finish()
    }

    #[test]
    fn profile_extracts_tiers_stages_and_cache() {
        let s = sample_summary();
        let p = QueryProfile::from_summary(&s, 7, 8, 2_100_000);
        assert_eq!(p.trace_id, s.id);
        assert_eq!(p.matched_ids, 7);
        assert_eq!(p.threads, 8);
        assert_eq!(p.object.get_requests, 40);
        assert_eq!(p.object.bytes_read, 163_840);
        assert_eq!(p.object.first_reads, 2);
        assert_eq!(p.block.get_requests, 3);
        assert_eq!(p.block.put_requests, 0);
        assert_eq!(p.cache_hits, 10);
        assert_eq!(p.cache_misses, 40);
        assert_eq!(p.readahead_requests, 2);
        assert_eq!(p.readahead_blocks, 39);
        assert_eq!(p.total_requests(), 43);
        assert_eq!(p.stages.len(), 3);
        assert_eq!(p.stages[0].name, "select");
        assert_eq!(p.stages[1].name, "fanout");
        assert_eq!(p.stages[1].total_ns, 2_000_000);
        assert_eq!(p.stages[2].name, "sort");
        // Raw deltas ride along for everything else.
        assert_eq!(p.counters["lsm.cache.misses"], 40);
    }

    #[test]
    fn text_rendering_is_stable() {
        let p = QueryProfile::from_summary(&sample_summary(), 7, 8, 2_100_000);
        let text = p.to_string();
        assert!(text.starts_with(&format!("QUERY PROFILE trace={} op=query", p.trace_id)));
        assert!(text.contains("matched=7 threads=8 wall=2.100ms"));
        assert!(text.contains("stage select"));
        assert!(text.contains("stage fanout"));
        assert!(text.contains("tier object  gets=40"));
        assert!(text.contains("first_reads=2"));
        assert!(text.contains("cache   hits=10 misses=40"));
        assert!(text.contains("coalesced_requests=2"));
    }

    #[test]
    fn json_rendering_is_balanced_and_complete() {
        let p = QueryProfile::from_summary(&sample_summary(), 7, 8, 2_100_000);
        let json = p.to_json();
        assert!(json.contains("\"op\":\"query\""));
        assert!(json.contains("\"matched_ids\":7"));
        assert!(json.contains("\"object\":{\"get_requests\":40"));
        assert!(json.contains("\"stages\":[{\"name\":\"select\""));
        assert!(json.contains("\"coalesced_blocks\":39"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn heat_delta_fills_and_renders() {
        use tu_obs::{HeatSnapshot, PartitionHeat, PartitionKey, TierHeat};
        let key = PartitionKey {
            start_ms: 0,
            end_ms: 7_200_000,
        };
        let cell = |gets: u64, bytes: u64| TierHeat {
            get_requests: gets,
            bytes_read: bytes,
            ..TierHeat::default()
        };
        let before = HeatSnapshot {
            at_ms: 0,
            partitions: vec![PartitionHeat {
                key,
                tiers: [cell(2, 100), TierHeat::default()],
            }],
            unattributed: [TierHeat::default(), TierHeat::default()],
        };
        let after = HeatSnapshot {
            at_ms: 1,
            partitions: vec![PartitionHeat {
                key,
                tiers: [cell(5, 400), cell(1, 64)],
            }],
            unattributed: [TierHeat::default(), TierHeat::default()],
        };
        let mut p = QueryProfile::from_summary(&sample_summary(), 1, 1, 1);
        p.fill_heat(&before, &after);
        assert_eq!(p.heat.len(), 2);
        assert_eq!(p.heat[0].tier, "block");
        assert_eq!(p.heat[0].requests, 3);
        assert_eq!(p.heat[0].bytes, 300);
        assert_eq!(p.heat[1].tier, "object");
        assert_eq!(p.heat[1].requests, 1);
        let text = p.to_string();
        assert!(text.contains("heat partition=[0..7200000) tier=block"));
        let json = p.to_json();
        assert!(json.contains("\"heat\":[{\"start_ms\":0,\"end_ms\":7200000,\"tier\":\"block\",\"requests\":3,\"bytes\":300}"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn empty_summary_profiles_to_zeroes() {
        let ctx = tu_obs::TraceContext::start("query");
        let p = QueryProfile::from_summary(&ctx.finish(), 0, 1, 0);
        assert_eq!(p.total_requests(), 0);
        assert!(p.stages.is_empty());
        assert_eq!(p.block, TierProfile::default());
        assert_eq!(p.object, TierProfile::default());
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(12), "12ns");
        assert_eq!(fmt_ns(1_500), "1.5us");
        assert_eq!(fmt_ns(2_100_000), "2.100ms");
        assert_eq!(fmt_ns(3_500_000_000), "3.500s");
    }
}
